#!/usr/bin/env python3
"""Validate a Chrome-trace/Perfetto JSON emitted by obs::chrome_trace_json.

Structural contract (docs/OBSERVABILITY.md):
  * the file is one JSON object with a `traceEvents` array;
  * event `ts` values are finite and globally monotone non-decreasing in
    array order (the exporter walks the merged (time, track, seq) stream);
  * sync spans nest: every E closes the innermost open B of the same
    (pid, tid) stack with a matching name, and never before it began.
    Spans still open at end-of-stream are allowed (an outage can outlive
    the simulated horizon) and reported;
  * async spans pair: every `e` has an open `b` with the same
    (cat, id, name); unterminated `b`s are allowed (in-flight at horizon)
    and reported;
  * instants carry scope "t"; counters carry a numeric value.

Exit status 0 when the trace is well-formed, 1 on any violation (each is
printed). Stdlib only; used by the CI trace-smoke step:

    python3 tools/check_trace.py trace.json
"""

from __future__ import annotations

import json
import math
import sys


def fail(errors: list[str], message: str) -> None:
    errors.append(message)
    print(f"error: {message}", file=sys.stderr)


def check(events: list[dict]) -> tuple[list[str], dict]:
    errors: list[str] = []
    stats = {
        "events": 0,
        "metadata": 0,
        "spans_closed": 0,
        "spans_open": 0,
        "async_closed": 0,
        "async_open": 0,
        "instants": 0,
        "counters": 0,
        "tracks": set(),
    }
    # (pid, tid) -> stack of (name, ts) for sync B/E nesting.
    sync_stacks: dict[tuple, list[tuple]] = {}
    # (cat, id, name) -> count of open async begins.
    async_open: dict[tuple, int] = {}
    last_ts = None

    for i, e in enumerate(events):
        phase = e.get("ph")
        if phase is None:
            fail(errors, f"event #{i} has no ph field: {e}")
            continue
        if phase == "M":
            stats["metadata"] += 1
            continue

        stats["events"] += 1
        where = f"event #{i} ({phase} {e.get('name', '?')!r})"
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or not math.isfinite(ts):
            fail(errors, f"{where}: non-finite or missing ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            fail(errors, f"{where}: ts {ts} goes backwards (previous {last_ts})")
        last_ts = ts
        key = (e.get("pid"), e.get("tid"))
        stats["tracks"].add(key)

        if phase == "B":
            sync_stacks.setdefault(key, []).append((e.get("name"), ts))
        elif phase == "E":
            stack = sync_stacks.get(key, [])
            if not stack:
                fail(errors, f"{where}: E with no open span on track {key}")
                continue
            name, begin_ts = stack.pop()
            if name != e.get("name"):
                fail(errors, f"{where}: E closes {name!r}, not {e.get('name')!r} "
                             f"(broken nesting on track {key})")
            if ts < begin_ts:
                fail(errors, f"{where}: span ends at {ts} before it began at {begin_ts}")
            stats["spans_closed"] += 1
        elif phase == "b":
            akey = (e.get("cat"), e.get("id"), e.get("name"))
            async_open[akey] = async_open.get(akey, 0) + 1
        elif phase == "e":
            akey = (e.get("cat"), e.get("id"), e.get("name"))
            if async_open.get(akey, 0) <= 0:
                fail(errors, f"{where}: async end with no matching begin {akey}")
                continue
            async_open[akey] -= 1
            stats["async_closed"] += 1
        elif phase == "i":
            if e.get("s") != "t":
                fail(errors, f"{where}: instant scope {e.get('s')!r}, expected 't'")
            stats["instants"] += 1
        elif phase == "C":
            args = e.get("args", {})
            if not args or not all(
                isinstance(v, (int, float)) and math.isfinite(v) for v in args.values()
            ):
                fail(errors, f"{where}: counter without finite numeric args: {args!r}")
            stats["counters"] += 1
        else:
            fail(errors, f"{where}: unknown phase {phase!r}")

    stats["spans_open"] = sum(len(s) for s in sync_stacks.values())
    stats["async_open"] = sum(async_open.values())
    return errors, stats


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: check_trace.py <trace.json>", file=sys.stderr)
        return 2
    try:
        with open(argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {argv[1]}: {exc}", file=sys.stderr)
        return 1
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print("error: no traceEvents array", file=sys.stderr)
        return 1

    errors, stats = check(events)
    print(
        f"{argv[1]}: {stats['events']} events on {len(stats['tracks'])} tracks "
        f"({stats['metadata']} metadata) — "
        f"{stats['spans_closed']} spans (+{stats['spans_open']} open at horizon), "
        f"{stats['async_closed']} async (+{stats['async_open']} in flight), "
        f"{stats['instants']} instants, {stats['counters']} counter samples"
    )
    if errors:
        print(f"FAIL: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("OK: trace is well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
