#!/usr/bin/env python3
"""shog_lint: rule-based determinism & concurrency lint for the shoggoth tree.

The repo's contract (docs/ARCHITECTURE.md, "The determinism contract") is
that every run is bit-reproducible from its config, for any worker count.
The constructs that silently break that contract are boringly regular, so
this lint bans them at CI time instead of hoping a pin test notices:

  unordered-member  std::unordered_map/set declared in the deterministic
                    kernel (src/sim, src/fleet) without an explicit
                    `// shog-lint: membership-only` (or lookup-only)
                    annotation. Hash-table iteration order is
                    implementation-defined; a member that is never iterated
                    must say so, and then the lint holds it to that.
  unordered-iter    range-for / .begin() / std::begin over any unordered
                    container in src/ — including allowlisted members (the
                    annotation is a promise *not* to iterate, not a license).
  wall-clock        std::random_device, rand(), srand(), time(),
                    std::chrono::*_clock::now, getenv-seeded entropy in
                    src/, tests/ or examples/. All time must be
                    Event_queue::now(); all randomness must flow from
                    explicit seeds through shog::Rng. bench/ and tools/ are
                    exempt (wall-clock measurement is their job).
  ptr-key           std::map/std::set keyed by a pointer (iteration order ==
                    allocator address order: nondeterministic across runs),
                    or a pointer-keyed unordered container without a
                    `// shog-lint: lookup-only` annotation. A pointer key
                    may never feed ordering or iteration — cf.
                    Sgd::velocity_, which is safe only because step() walks
                    the caller's stably-ordered params vector.
  bare-mutex        a std::mutex/std::shared_mutex/std::recursive_mutex
                    member: invisible to clang's thread-safety analysis.
                    Shared state must use shog::Mutex
                    (src/common/thread_annotations.hpp) so members can be
                    SHOG_GUARDED_BY it — and a shog::Mutex that guards
                    nothing (no SHOG_GUARDED_BY / SHOG_REQUIRES referencing
                    it in its file) is flagged too.
  raw-seconds       a `double` parameter or member named *_seconds, *_s,
                    *_bytes or *_kbps inside the typed kernel (src/sim,
                    src/netsim, src/common). These quantities have strong
                    types now (Sim_time/Sim_duration/Gpu_seconds/Bytes/Kbps
                    in common/units.hpp); a raw double re-opens the silent
                    unit-mixing bug class. Serialization-boundary fields
                    annotate `// shog-lint: allow(raw-seconds)`.
  unit-escape       a `.value()` unit-unwrap outside units.hpp (bench/ and
                    tools/ are out of scan scope) without a same-line
                    justification comment. The escape hatch exists for
                    serialization and tolerance checks; every use must say
                    which it is, where the next reader can see it.
  trace-wall-clock  a SHOG_TRACE_* emission in src/ whose timestamp argument
                    is a numeric literal, a literal-constructed Sim_time, or
                    a chrono/wall-clock expression. Trace timestamps carry
                    *simulation* time — pass Event_queue::now() / rt.now()
                    (the bare sim epoch Sim_time{} is allowed for engine
                    diagnostics that have no clock), or the exported trace
                    silently loses the determinism contract it exists to
                    witness.

Annotation grammar (docs/ANALYSIS.md):
  // shog-lint: membership-only   container used only for insert/erase/
                                  count/contains/empty/clear — never iterated
  // shog-lint: lookup-only       pointer-keyed map used only for per-key
                                  find/at/try_emplace driven by an
                                  externally-ordered walk — never iterated
  // shog-lint: allow(<rule>)     targeted same-line suppression; use with a
                                  justifying comment

Usage:
  tools/lint/shog_lint.py [--root REPO] [files...]   lint the tree (or files)
  tools/lint/shog_lint.py --github [files...]        additionally emit GitHub
                                                     Actions `::error` workflow
                                                     annotations (auto-enabled
                                                     when $GITHUB_ACTIONS is
                                                     "true"); exit codes are
                                                     unchanged
  tools/lint/shog_lint.py --self-test                inject one violation per
                                                     rule into a temp tree and
                                                     assert the lint fails on
                                                     each (CI runs this first,
                                                     so a silently broken lint
                                                     cannot green the build)
Exit code: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

CODE_SUFFIXES = (".cpp", ".hpp", ".h", ".cc", ".hh")

# Rule scopes, as path prefixes relative to the repo root.
SCAN_ROOTS = ("src", "tests", "examples")
UNORDERED_MEMBER_ROOTS = ("src/sim", "src/fleet")
SRC_ONLY_ROOTS = ("src",)

# The annotated wrapper is allowed to hold the one real std::mutex.
BARE_MUTEX_EXEMPT = ("src/common/thread_annotations.hpp",)

# The dimensional kernel: raw seconds/bytes/kbps doubles are banned here.
UNIT_ROOTS = ("src/sim", "src/netsim", "src/common", "src/obs")
# The strong types themselves may unwrap freely.
UNIT_ESCAPE_EXEMPT = ("src/common/units.hpp",)

DIRECTIVE_RE = re.compile(r"//\s*shog-lint:\s*([a-z()_,\- ]+)")
ALLOW_RE = re.compile(r"allow\(([a-z\-]+)\)")

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
ORDERED_DECL_RE = re.compile(r"\bstd\s*::\s*(?:map|set|multimap|multiset)\s*<")
# Identifier that terminates a member/variable declaration.
DECL_NAME_RE = re.compile(r"(\w+)\s*;\s*$")

WALL_CLOCK_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w.>:])rand\s*\("), "rand()"),
    (re.compile(r"(?<![\w.>:])srand\s*\("), "srand()"),
    (re.compile(r"(?<![\w.>:])time\s*\("), "time()"),
    (re.compile(r"\b\w*_clock\s*::\s*now\b"), "std::chrono::*_clock::now"),
)

RAW_SECONDS_RE = re.compile(
    r"\bdouble\s+(\w*(?:_seconds|_s|_bytes|_kbps))\b(?!\s*\()")
UNIT_ESCAPE_RE = re.compile(r"\.\s*value\s*\(\s*\)")

BARE_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:recursive_|shared_|timed_|recursive_timed_)?mutex\s+(\w+)\s*;")
SHOG_MUTEX_RE = re.compile(r"(?<![\w:])(?:shog\s*::\s*)?Mutex\s+(\w+)\s*;")

TRACE_CALL_RE = re.compile(r"\bSHOG_TRACE_\w+\s*\(")
# Timestamp-argument shapes that are NOT sim time. Sim_time{} (the epoch,
# no digits inside the braces) stays legal for clock-less engine tracks.
TRACE_NUMERIC_AT_RE = re.compile(r"^[+\-]?(?:\.\d|\d)")
TRACE_LITERAL_SIM_TIME_RE = re.compile(r"\bSim_time\s*\{\s*[+\-]?(?:\.\d|\d)")
TRACE_WALL_AT_RE = re.compile(r"\b(?:\w*_clock\b|std\s*::\s*chrono\b|chrono\s*::)")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;()]*?:\s*([\w.\->]+)\s*\)")
BEGIN_CALL_RE = re.compile(r"\b([\w.\->]+?)\s*\.\s*c?r?begin\s*\(")
STD_BEGIN_RE = re.compile(r"\bstd\s*::\s*c?r?begin\s*\(\s*([\w.\->]+)\s*\)")

RULES = {
    "unordered-member": "unordered container in src/sim|src/fleet needs a "
                        "'// shog-lint: membership-only' (or lookup-only) annotation",
    "unordered-iter": "iteration over an unordered container (hash order is "
                      "nondeterministic); use an ordered/indexed mirror",
    "wall-clock": "wall-clock / global-RNG source outside bench/ and tools/; "
                  "use Event_queue::now() and seeded shog::Rng substreams",
    "ptr-key": "pointer-valued keys must never feed ordering or iteration",
    "bare-mutex": "use shog::Mutex + SHOG_GUARDED_BY "
                  "(common/thread_annotations.hpp) so clang's analysis sees it",
    "raw-seconds": "raw double for a dimensioned quantity in the typed kernel; "
                   "use Sim_time/Sim_duration/Gpu_seconds/Bytes/Kbps "
                   "(common/units.hpp) or annotate the serialization boundary "
                   "with '// shog-lint: allow(raw-seconds)'",
    "unit-escape": ".value() unit-unwrap without a same-line justification "
                   "comment; say why the raw double is needed (serialization, "
                   "printf, tolerance check) where the reader can see it",
    "trace-wall-clock": "trace/metric emission must be stamped with simulation "
                        "time (Event_queue::now() / rt.now()), never a numeric "
                        "literal, a literal-constructed Sim_time, or a "
                        "chrono/wall-clock expression",
}


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_strings(line: str) -> str:
    """Blank out string/char literal contents (keeps the quotes, preserves
    column positions well enough for reporting)."""
    out = []
    quote = None
    i = 0
    while i < len(line):
        ch = line[i]
        if quote:
            if ch == "\\":
                out.append("..")
                i += 2
                continue
            if ch == quote:
                quote = None
                out.append(ch)
            else:
                out.append(".")
        else:
            if ch in "\"'":
                quote = ch
            out.append(ch)
        i += 1
    return "".join(out)


class File_scan:
    """One file, split into code lines (comments/strings stripped) plus the
    shog-lint directives harvested from the comments before stripping."""

    def __init__(self, path: str, rel: str, text: str):
        self.path = path
        self.rel = rel
        self.raw_lines = text.splitlines()
        self.directives: dict[int, set[str]] = {}
        self.code_lines: list[str] = []
        in_block = False
        for idx, raw in enumerate(self.raw_lines, start=1):
            m = DIRECTIVE_RE.search(raw)
            if m:
                tokens = {t.strip() for t in re.split(r"[ ,]+", m.group(1)) if t.strip()}
                for allow in ALLOW_RE.finditer(m.group(1)):
                    tokens.add("allow:" + allow.group(1))
                self.directives[idx] = tokens
            line = strip_strings(raw)
            # strip comments (state machine across lines for /* */)
            out = []
            i = 0
            while i < len(line):
                if in_block:
                    end = line.find("*/", i)
                    if end == -1:
                        i = len(line)
                    else:
                        in_block = False
                        i = end + 2
                    continue
                if line.startswith("//", i):
                    break
                if line.startswith("/*", i):
                    in_block = True
                    i += 2
                    continue
                out.append(line[i])
                i += 1
            self.code_lines.append("".join(out))

    def has(self, lineno: int, token: str) -> bool:
        return token in self.directives.get(lineno, set())

    def allowed(self, lineno: int, rule: str) -> bool:
        toks = self.directives.get(lineno, set())
        return ("allow:" + rule) in toks

    def under(self, roots: tuple[str, ...]) -> bool:
        return any(self.rel == r or self.rel.startswith(r + "/") for r in roots)


def first_template_arg(line: str, start: int) -> str:
    """Text of the first top-level template argument after the '<' at/past
    `start` (best effort, line-local)."""
    lt = line.find("<", start)
    if lt == -1:
        return ""
    depth = 1
    i = lt + 1
    arg_start = i
    while i < len(line) and depth > 0:
        ch = line[i]
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
        elif ch == "," and depth == 1:
            return line[arg_start:i]
        i += 1
    return line[arg_start:i - 1] if depth == 0 else line[arg_start:]


def joined_declaration(scan: File_scan, start_idx: int, max_lines: int = 6) -> str:
    """Join code lines from start_idx until the statement's ';' (bounded)."""
    parts = []
    for offset in range(max_lines):
        idx = start_idx + offset
        if idx >= len(scan.code_lines):
            break
        parts.append(scan.code_lines[idx])
        if ";" in scan.code_lines[idx]:
            break
    return " ".join(parts)


def macro_args(text: str, open_paren: int) -> list[str]:
    """Top-level comma-split of the macro argument list whose '(' is at
    `open_paren` (best effort; stops at the matching ')')."""
    depth = 0
    args = []
    start = open_paren + 1
    for i in range(open_paren, len(text)):
        ch = text[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if depth == 0:
                args.append(text[start:i])
                return args
        elif ch == "," and depth == 1:
            args.append(text[start:i])
            start = i + 1
    return args


def trace_at_violation(at: str) -> str | None:
    """Why a SHOG_TRACE_* timestamp argument is not sim time, or None."""
    at = at.strip()
    if TRACE_NUMERIC_AT_RE.match(at):
        return f"timestamp is the numeric literal '{at}'"
    if TRACE_LITERAL_SIM_TIME_RE.search(at):
        return f"timestamp is a literal-constructed Sim_time ('{at}')"
    if TRACE_WALL_AT_RE.search(at):
        return f"timestamp derives from a wall clock ('{at}')"
    return None


def scan_file(scan: File_scan, unordered_names: dict[str, str]) -> list[Finding]:
    findings: list[Finding] = []

    for idx, code in enumerate(scan.code_lines):
        lineno = idx + 1

        # ---- declarations of associative containers -----------------------
        for decl_re, is_unordered in ((UNORDERED_DECL_RE, True), (ORDERED_DECL_RE, False)):
            m = decl_re.search(code)
            if not m:
                continue
            if not is_unordered and UNORDERED_DECL_RE.search(code):
                continue  # the unordered branch already handles this line
            stmt = joined_declaration(scan, idx)
            name_m = DECL_NAME_RE.search(stmt.strip())
            name = name_m.group(1) if name_m else "<unnamed>"
            key = first_template_arg(stmt, m.start())
            ptr_key = "*" in key
            annotated = (scan.has(lineno, "membership-only")
                         or scan.has(lineno, "lookup-only"))
            if is_unordered:
                unordered_names[name] = scan.rel
                if ptr_key and not annotated and not scan.allowed(lineno, "ptr-key") \
                        and scan.under(SRC_ONLY_ROOTS):
                    findings.append(Finding(
                        scan.rel, lineno, "ptr-key",
                        f"'{name}' is keyed by a pointer ({key.strip()}); annotate "
                        "'// shog-lint: lookup-only' and never iterate it"))
                elif not annotated and scan.under(UNORDERED_MEMBER_ROOTS) \
                        and not scan.allowed(lineno, "unordered-member"):
                    findings.append(Finding(
                        scan.rel, lineno, "unordered-member",
                        f"'{name}': {RULES['unordered-member']}"))
            else:
                if ptr_key and scan.under(SRC_ONLY_ROOTS) \
                        and not scan.allowed(lineno, "ptr-key"):
                    findings.append(Finding(
                        scan.rel, lineno, "ptr-key",
                        f"'{name}' is an ordered container keyed by a pointer "
                        f"({key.strip()}): iteration order is allocator address "
                        "order — nondeterministic across runs"))

        # ---- wall clock / global RNG --------------------------------------
        for pat, label in WALL_CLOCK_PATTERNS:
            if pat.search(code) and not scan.allowed(lineno, "wall-clock"):
                findings.append(Finding(
                    scan.rel, lineno, "wall-clock",
                    f"{label}: {RULES['wall-clock']}"))

        # ---- raw dimensioned doubles in the typed kernel ------------------
        if scan.under(UNIT_ROOTS):
            for rm in RAW_SECONDS_RE.finditer(code):
                if not scan.allowed(lineno, "raw-seconds"):
                    findings.append(Finding(
                        scan.rel, lineno, "raw-seconds",
                        f"'{rm.group(1)}': {RULES['raw-seconds']}"))

        # ---- .value() escapes must justify themselves ---------------------
        if scan.rel not in UNIT_ESCAPE_EXEMPT and UNIT_ESCAPE_RE.search(code):
            # A justification is any comment on the same physical line (the
            # allow-directive is itself a comment, so it also satisfies this).
            raw = strip_strings(scan.raw_lines[idx])
            if "//" not in raw and "/*" not in raw \
                    and not scan.allowed(lineno, "unit-escape"):
                findings.append(Finding(
                    scan.rel, lineno, "unit-escape",
                    RULES["unit-escape"]))

        # ---- trace emissions must carry sim time --------------------------
        if scan.under(SRC_ONLY_ROOTS):
            tm = TRACE_CALL_RE.search(code)
            if tm and not scan.allowed(lineno, "trace-wall-clock"):
                stmt = joined_declaration(scan, idx)
                args = macro_args(stmt, stmt.find("(", tm.start()))
                # args[1] is the `at` timestamp in every SHOG_TRACE_* macro
                # (macro definitions in obs/trace.hpp pass the bare `at`
                # parameter through and stay clean by construction).
                if len(args) >= 2:
                    why = trace_at_violation(args[1])
                    if why:
                        findings.append(Finding(
                            scan.rel, lineno, "trace-wall-clock",
                            f"{why}: {RULES['trace-wall-clock']}"))

        # ---- bare std::mutex members --------------------------------------
        if scan.rel not in BARE_MUTEX_EXEMPT and scan.under(SRC_ONLY_ROOTS):
            bm = BARE_MUTEX_RE.search(code)
            if bm and not scan.allowed(lineno, "bare-mutex"):
                findings.append(Finding(
                    scan.rel, lineno, "bare-mutex",
                    f"'{bm.group(1)}' is a bare std::mutex; {RULES['bare-mutex']}"))

    return findings


def scan_iteration(scan: File_scan, unordered_names: dict[str, str]) -> list[Finding]:
    """Second pass (needs the full declared-name set): iteration over any
    known unordered container, by member name, across all scanned files."""
    findings: list[Finding] = []
    if not scan.under(SRC_ONLY_ROOTS):
        return findings
    for idx, code in enumerate(scan.code_lines):
        lineno = idx + 1
        targets = []
        targets.extend(m.group(1) for m in RANGE_FOR_RE.finditer(code))
        targets.extend(m.group(1) for m in BEGIN_CALL_RE.finditer(code))
        targets.extend(m.group(1) for m in STD_BEGIN_RE.finditer(code))
        for target in targets:
            base = target.split(".")[-1].split(">")[-1]  # a.b / p->b -> b
            if base in unordered_names and not scan.allowed(lineno, "unordered-iter"):
                findings.append(Finding(
                    scan.rel, lineno, "unordered-iter",
                    f"'{base}' (declared in {unordered_names[base]}) is an "
                    f"unordered container: {RULES['unordered-iter']}"))
    return findings


def guard_check(scan: File_scan) -> list[Finding]:
    """A shog::Mutex member must guard something: at least one
    SHOG_GUARDED_BY/SHOG_PT_GUARDED_BY/SHOG_REQUIRES naming it in its file."""
    findings: list[Finding] = []
    if not scan.under(SRC_ONLY_ROOTS) or scan.rel in BARE_MUTEX_EXEMPT:
        return findings
    text = "\n".join(scan.code_lines)
    for idx, code in enumerate(scan.code_lines):
        lineno = idx + 1
        m = SHOG_MUTEX_RE.search(code)
        if not m or scan.allowed(lineno, "bare-mutex"):
            continue
        name = m.group(1)
        guard = re.compile(
            r"SHOG_(?:PT_)?(?:GUARDED_BY|REQUIRES(?:_SHARED)?|ACQUIRE|RELEASE|EXCLUDES)"
            r"\s*\(\s*" + re.escape(name) + r"\s*\)")
        if not guard.search(text):
            findings.append(Finding(
                scan.rel, lineno, "bare-mutex",
                f"shog::Mutex '{name}' guards nothing in this file: annotate the "
                f"state it protects with SHOG_GUARDED_BY({name}) (or the methods "
                f"with SHOG_REQUIRES({name}))"))
    return findings


def collect_files(root: str, explicit: list[str]) -> list[tuple[str, str]]:
    """(abs_path, repo_relative_path) pairs to scan."""
    pairs = []
    if explicit:
        for f in explicit:
            abspath = os.path.abspath(f)
            rel = os.path.relpath(abspath, root).replace(os.sep, "/")
            pairs.append((abspath, rel))
        return pairs
    for scan_root in SCAN_ROOTS:
        top = os.path.join(root, scan_root)
        for dirpath, _dirnames, filenames in os.walk(top):
            for fn in sorted(filenames):
                if fn.endswith(CODE_SUFFIXES):
                    abspath = os.path.join(dirpath, fn)
                    rel = os.path.relpath(abspath, root).replace(os.sep, "/")
                    pairs.append((abspath, rel))
    return pairs


def run_lint(root: str, explicit: list[str]) -> list[Finding]:
    scans = []
    for abspath, rel in collect_files(root, explicit):
        try:
            with open(abspath, encoding="utf-8", errors="replace") as fh:
                scans.append(File_scan(abspath, rel, fh.read()))
        except OSError as err:
            raise SystemExit(f"shog_lint: cannot read {abspath}: {err}")
    unordered_names: dict[str, str] = {}
    findings: list[Finding] = []
    for scan in scans:
        findings.extend(scan_file(scan, unordered_names))
    for scan in scans:
        findings.extend(scan_iteration(scan, unordered_names))
        findings.extend(guard_check(scan))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# --------------------------------------------------------------- self-test

SELF_TEST_CASES = [
    # (relative path, source, expected rule or None for must-be-clean)
    ("src/sim/bad_member.hpp",
     "#include <unordered_set>\n"
     "struct S {\n"
     "    std::unordered_set<int> ids_;\n"
     "};\n",
     "unordered-member"),
    ("src/sim/bad_iter.cpp",
     "#include <unordered_set>\n"
     "struct S {\n"
     "    std::unordered_set<int> ids_; // shog-lint: membership-only\n"
     "    int sum() const {\n"
     "        int s = 0;\n"
     "        for (int id : ids_) { s += id; }\n"
     "        return s;\n"
     "    }\n"
     "};\n",
     "unordered-iter"),
    ("src/core/bad_clock.cpp",
     "#include <chrono>\n"
     "double now_seconds() {\n"
     "    auto t = std::chrono::steady_clock::now();\n"
     "    return 0.0 * t.time_since_epoch().count();\n"
     "}\n",
     "wall-clock"),
    ("src/core/bad_entropy.cpp",
     "#include <random>\n"
     "unsigned seed() { std::random_device rd; return rd(); }\n",
     "wall-clock"),
    ("src/nn/bad_ptr_key.hpp",
     "#include <map>\n"
     "struct P {};\n"
     "struct S {\n"
     "    std::map<const P*, int> order_;\n"
     "};\n",
     "ptr-key"),
    ("src/nn/bad_ptr_key_unordered.hpp",
     "#include <unordered_map>\n"
     "struct P {};\n"
     "struct S {\n"
     "    std::unordered_map<P*, int> cache_;\n"
     "};\n",
     "ptr-key"),
    ("src/sim/bad_mutex.hpp",
     "#include <mutex>\n"
     "struct S {\n"
     "    std::mutex mutex_;\n"
     "};\n",
     "bare-mutex"),
    ("src/sim/bad_unguarded.hpp",
     "#include \"common/thread_annotations.hpp\"\n"
     "struct S {\n"
     "    shog::Mutex mutex_;\n"
     "    int x = 0;\n"
     "};\n",
     "bare-mutex"),
    # The exact shape a hand-rolled shard barrier would take: shared round
    # state next to a std::mutex, no annotations. run_cluster_sharded's real
    # Shard_pool must use shog::Mutex + SHOG_GUARDED_BY instead (and does).
    ("src/sim/bad_shard_pool.hpp",
     "#include <mutex>\n"
     "struct Shard_pool {\n"
     "    std::mutex mutex_;\n"
     "    unsigned round = 0;\n"
     "};\n",
     "bare-mutex"),
    ("src/sim/bad_raw_seconds.hpp",
     "struct Checkpoint {\n"
     "    double remaining_seconds = 0.0;\n"
     "};\n",
     "raw-seconds"),
    ("src/netsim/bad_raw_param.hpp",
     "namespace shog::netsim {\n"
     "double transmit(double payload_bytes, double uplink_kbps);\n"
     "}\n",
     "raw-seconds"),
    ("src/sim/bad_escape.cpp",
     "#include \"common/units.hpp\"\n"
     "double leak(shog::Sim_time t) {\n"
     "    return t.value();\n"
     "}\n",
     "unit-escape"),
    ("src/sim/bad_trace_literal.cpp",
     "#include \"obs/trace.hpp\"\n"
     "void mark(shog::obs::Trace_channel trace) {\n"
     "    SHOG_TRACE_INSTANT(trace, 1.5, 0, \"tick\", 0);\n"
     "}\n",
     "trace-wall-clock"),
    ("src/sim/bad_trace_sim_time_literal.cpp",
     "#include \"obs/trace.hpp\"\n"
     "void mark(shog::obs::Trace_channel trace) {\n"
     "    SHOG_TRACE_SPAN_BEGIN(trace, shog::Sim_time{2.0}, 0, \"span\", 1);\n"
     "}\n",
     "trace-wall-clock"),
    # A wall-clock-derived timestamp smuggled through a Sim_time wrapper,
    # split across lines the way clang-format would leave it.
    ("src/sim/bad_trace_wall.cpp",
     "#include <chrono>\n"
     "#include \"obs/trace.hpp\"\n"
     "void mark(shog::obs::Trace_channel trace) {\n"
     "    SHOG_TRACE_INSTANT(trace,\n"
     "                       shog::Sim_time{std::chrono::duration<double>(1).count()},\n"
     "                       0, \"tick\", 0);\n"
     "}\n",
     "trace-wall-clock"),
    ("src/sim/good_trace.cpp",
     "#include \"obs/trace.hpp\"\n"
     "void mark(shog::obs::Trace_channel trace, shog::Event_queue& queue) {\n"
     "    SHOG_TRACE_INSTANT(trace, queue.now(), 0, \"tick\", 7);\n"
     "    SHOG_TRACE_COUNTER(trace, queue.now(), 0, \"depth\", 4.0);\n"
     "}\n",
     None),
    # The sim epoch (no digits in the braces) is legal for clock-less engine
    # diagnostics; a literal epoch offset needs the targeted allow.
    ("src/sim/good_trace_epoch.cpp",
     "#include \"obs/trace.hpp\"\n"
     "void mark(shog::obs::Trace_channel trace) {\n"
     "    SHOG_TRACE_INSTANT(trace, shog::Sim_time{}, 0, \"cell\", 1);\n"
     "    SHOG_TRACE_INSTANT(trace, shog::Sim_time{1.0}, 0, \"e\", 0);"
     " // shog-lint: allow(trace-wall-clock) fixed epoch marker\n"
     "}\n",
     None),
    ("src/sim/good.hpp",
     "#include <unordered_set>\n"
     "#include \"common/thread_annotations.hpp\"\n"
     "struct S {\n"
     "    std::unordered_set<int> ids_; // shog-lint: membership-only\n"
     "    shog::Mutex mutex_;\n"
     "    int completed_ SHOG_GUARDED_BY(mutex_) = 0;\n"
     "    bool has(int id) const { return ids_.count(id) != 0; }\n"
     "};\n",
     None),
    ("src/sim/good_units.hpp",
     "#include \"common/units.hpp\"\n"
     "struct Metrics {\n"
     "    double up_kbps = 0.0; // shog-lint: allow(raw-seconds) serialized metric\n"
     "    double raw(shog::Sim_duration d) {\n"
     "        return d.value(); // JSON serialization boundary\n"
     "    }\n"
     "};\n",
     None),
]


def self_test() -> int:
    failures = []
    with tempfile.TemporaryDirectory(prefix="shog_lint_selftest_") as tmp:
        for rel, source, expected in SELF_TEST_CASES:
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(source)
            findings = run_lint(tmp, [path])
            rules = {f.rule for f in findings}
            if expected is None:
                if findings:
                    failures.append(f"{rel}: expected clean, got {sorted(rules)}")
            elif expected not in rules:
                failures.append(f"{rel}: expected [{expected}], got {sorted(rules) or 'clean'}")
            for f in os.listdir(os.path.dirname(path)):
                os.remove(os.path.join(os.path.dirname(path), f))
    if failures:
        print("shog_lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"shog_lint self-test passed ({len(SELF_TEST_CASES)} cases).")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="inject known violations and assert the lint catches them")
    parser.add_argument("--github", action="store_true",
                        help="also emit GitHub Actions ::error annotations "
                             "(auto-enabled when $GITHUB_ACTIONS is 'true')")
    parser.add_argument("--list-rules", action="store_true", help="print rule ids and exit")
    parser.add_argument("files", nargs="*", help="lint only these files (default: whole tree)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:18} {desc}")
        return 0
    if args.self_test:
        return self_test()

    root = args.root or os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    findings = run_lint(root, args.files)
    for finding in findings:
        print(finding)
    if args.github or os.environ.get("GITHUB_ACTIONS") == "true":
        for finding in findings:
            # Workflow-command annotations render inline on the PR diff. They
            # ride alongside the human report; exit codes are unchanged.
            print(f"::error file={finding.path},line={finding.line},"
                  f"title=shog-lint {finding.rule}::{finding.message}")
    if findings:
        print(f"shog_lint: {len(findings)} finding(s).", file=sys.stderr)
        return 1
    print("shog_lint: clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
