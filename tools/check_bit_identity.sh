#!/usr/bin/env bash
# Bit-identity gate for the simulation kernel.
#
# Runs a short default-config fleet cell (30 sim-seconds, seed 19, 2
# devices, sequential sweep) and compares the SHA-256 of the emitted JSON
# against the committed golden hash. The engine is contractually
# deterministic, so the stream must be byte-identical run over run and
# commit over commit: any numeric drift — a reordered floating-point
# reduction, an eager unit conversion, an "innocent" refactor of the event
# loop — flips the hash and fails the gate. Lines carrying "wall_ms" are
# the one sanctioned nondeterminism (host wall-clock measurements) and are
# stripped before hashing.
#
# The golden hash is tied to IEEE-754 double arithmetic on the default CI
# toolchain (x86-64 gcc, no -ffast-math); regenerate with --update after an
# *intentional* behaviour change and say why in the commit message.
#
# Usage:
#   tools/check_bit_identity.sh [path/to/bench_fleet]   verify (default gate)
#   tools/check_bit_identity.sh --update [bench]        rewrite the golden hash
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
golden="$root/tools/bit_identity.sha256"

update=0
if [ "${1:-}" = "--update" ]; then
    update=1
    shift
fi
bench="${1:-$root/build/bench_fleet}"

if [ ! -x "$bench" ]; then
    echo "check_bit_identity: bench binary not found at '$bench'" >&2
    echo "build it first: cmake --build build --target bench_fleet" >&2
    exit 2
fi

# Short default-config cell: full scaling/policy/sharding/reliability
# sweeps at 2 devices, scale section off, one worker. Keep these arguments
# in lockstep with the golden hash.
actual="$("$bench" 30 19 2 0 1 2>/dev/null | grep -v '"wall_ms"' | sha256sum | cut -d' ' -f1)"

# The same cell through the device-sharded engine (sim::run_cluster_sharded
# with 4 shards): byte-identity across engines is part of the determinism
# contract, so it is hashed against the SAME golden — no second hash file
# to drift out of sync.
sharded="$("$bench" 30 19 2 0 1 --shards 4 2>/dev/null | grep -v '"wall_ms"' | sha256sum | cut -d' ' -f1)"

if [ "$update" -eq 1 ]; then
    printf '%s\n' "$actual" > "$golden"
    echo "check_bit_identity: golden hash updated: $actual"
    if [ "$sharded" != "$actual" ]; then
        echo "check_bit_identity: WARNING — sharded engine output differs from" >&2
        echo "the sequential engine; the gate will fail until that is fixed." >&2
        exit 1
    fi
    exit 0
fi

if [ ! -f "$golden" ]; then
    echo "check_bit_identity: missing golden hash '$golden'" >&2
    echo "seed it with: tools/check_bit_identity.sh --update" >&2
    exit 2
fi

expected="$(tr -d '[:space:]' < "$golden")"
if [ "$actual" != "$expected" ]; then
    echo "check_bit_identity: FAIL — simulation output drifted" >&2
    echo "  expected: $expected" >&2
    echo "  actual:   $actual" >&2
    echo "If the change is intentional, rerun with --update and justify the" >&2
    echo "new golden hash in the commit message." >&2
    exit 1
fi

if [ "$sharded" != "$expected" ]; then
    echo "check_bit_identity: FAIL — sharded engine (--shards 4) drifted from" >&2
    echo "the sequential golden" >&2
    echo "  expected: $expected" >&2
    echo "  sharded:  $sharded" >&2
    exit 1
fi

echo "check_bit_identity: OK ($actual, sharded engine identical)"
