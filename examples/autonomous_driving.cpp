// Autonomous-driving scenario: a KITTI-like ego-motion dashcam (single
// "car" class, day-only weather drift) — the stream where rain, not night,
// is the enemy. Compares all five strategies on the same drive.
//
//   ./autonomous_driving [duration_seconds] [seed]
#include <cstdlib>
#include <iostream>

#include "baselines/ams.hpp"
#include "baselines/cloud_only.hpp"
#include "baselines/edge_only.hpp"
#include "core/shoggoth.hpp"
#include "models/pretrain.hpp"
#include "sim/harness.hpp"
#include "video/presets.hpp"

int main(int argc, char** argv) {
    using namespace shog;

    const double duration = argc > 1 ? std::atof(argv[1]) : 420.0;
    const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 13;

    const video::Dataset_preset preset = video::kitti_like(seed, duration);
    video::Video_stream stream{preset.stream, preset.world, preset.schedule};
    std::cout << "KITTI-like drive: " << duration << " s, ego-motion "
              << stream.config().ego_motion << ", car-only detection\n\n";

    auto pristine = models::make_student(stream.world(), seed);
    auto teacher = models::make_teacher(stream.world(), seed);
    sim::Harness_config harness;

    std::printf("%-12s %8s %9s %10s %6s %9s %10s\n", "strategy", "mAP@0.5", "up Kbps",
                "down Kbps", "fps", "sessions", "cloud GPU");
    auto report = [](const char* name, const sim::Run_result& r) {
        std::printf("%-12s %7.1f%% %9.1f %10.1f %6.1f %9zu %9.1fs\n", name, r.map * 100.0,
                    r.up_kbps, r.down_kbps, r.average_fps, r.training_sessions,
                    r.cloud_gpu_seconds);
    };

    {
        auto student = pristine->clone();
        baselines::Edge_only_strategy s{*student};
        report("Edge-Only", sim::run_strategy(s, stream, harness));
    }
    {
        baselines::Cloud_only_strategy s{*teacher, device::v100()};
        report("Cloud-Only", sim::run_strategy(s, stream, harness));
    }
    {
        auto student = pristine->clone();
        core::Shoggoth_config cfg;
        cfg.adaptive_sampling = false;
        cfg.fixed_rate = 2.0;
        core::Shoggoth_strategy s{*student, *teacher, std::move(cfg),
                                  models::Deployed_profile::yolov4_resnet18(),
                                  device::jetson_tx2(), device::v100()};
        report("Prompt", sim::run_strategy(s, stream, harness));
    }
    {
        auto student = pristine->clone();
        baselines::Ams_strategy s{*student, *teacher, baselines::Ams_config{},
                                  models::Deployed_profile::yolov4_resnet18(),
                                  device::v100()};
        report("AMS", sim::run_strategy(s, stream, harness));
    }
    {
        auto student = pristine->clone();
        core::Shoggoth_strategy s{*student, *teacher, core::Shoggoth_config{},
                                  models::Deployed_profile::yolov4_resnet18(),
                                  device::jetson_tx2(), device::v100()};
        report("Shoggoth", sim::run_strategy(s, stream, harness));
    }
    return 0;
}
