// Traffic-surveillance scenario: a static UA-DETRAC-like intersection
// camera riding through full day/weather cycles, with a live view of the
// sampling-rate controller at work.
//
// Demonstrates:
//  - the control loop (phi / alpha / lambda -> sampling rate, Eq. 2-3)
//  - where the training sessions land relative to scene changes
//  - per-segment accuracy vs the Edge-Only baseline
//
//   ./traffic_surveillance [duration_seconds] [seed]
#include <cstdlib>
#include <iostream>

#include "baselines/edge_only.hpp"
#include "core/shoggoth.hpp"
#include "models/pretrain.hpp"
#include "sim/harness.hpp"
#include "video/presets.hpp"

int main(int argc, char** argv) {
    using namespace shog;

    const double duration = argc > 1 ? std::atof(argv[1]) : 420.0;
    const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 11;

    const video::Dataset_preset preset = video::ua_detrac_like(seed, duration);
    video::Video_stream stream{preset.stream, preset.world, preset.schedule};
    auto student = models::make_student(stream.world(), seed);
    auto teacher = models::make_teacher(stream.world(), seed);
    auto baseline_student = student->clone();

    sim::Harness_config harness;

    baselines::Edge_only_strategy edge_only{*baseline_student};
    const sim::Run_result edge = sim::run_strategy(edge_only, stream, harness);

    core::Shoggoth_strategy shoggoth{*student,
                                     *teacher,
                                     core::Shoggoth_config{},
                                     models::Deployed_profile::yolov4_resnet18(),
                                     device::jetson_tx2(),
                                     device::v100()};
    const sim::Run_result result = sim::run_strategy(shoggoth, stream, harness);

    std::cout << "=== control loop trace (cloud sampling-rate controller) ===\n";
    std::cout << "   time  scene                rate(fps)  alpha  phi_bar\n";
    std::size_t shown = 0;
    for (const auto& rec : shoggoth.control_trace()) {
        if (shown++ % 4 != 0) {
            continue;
        }
        const video::Domain d = stream.schedule().at(rec.at.value()); // frame domain
        std::printf("  %5.0fs  illum=%.2f %-8s  %8.2f  %5.2f  %6.2f\n",
                    rec.at.value(), // printf needs the raw seconds
                    d.illumination, video::to_string(d.weather), rec.rate, rec.alpha,
                    rec.phi_bar);
    }

    std::cout << "\n=== per-window accuracy: Shoggoth vs Edge-Only ===\n";
    for (std::size_t i = 0; i < result.windowed_map.size() && i < edge.windowed_map.size();
         ++i) {
        const double t = result.windowed_map[i].first;
        const video::Domain d = stream.schedule().at(t);
        std::printf("  t=%4.0fs illum=%.2f  shoggoth=%.3f  edge-only=%.3f  gain=%+.3f\n", t,
                    d.illumination, result.windowed_map[i].second, edge.windowed_map[i].second,
                    result.windowed_map[i].second - edge.windowed_map[i].second);
    }

    std::printf("\noverall: Shoggoth %.1f%% vs Edge-Only %.1f%% mAP (uplink %.0f Kbps, "
                "%zu sessions, %zu frames labeled)\n",
                result.map * 100.0, edge.map * 100.0, result.up_kbps,
                result.training_sessions, shoggoth.frames_labeled());
    return 0;
}
