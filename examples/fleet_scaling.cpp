// Fleet scaling: how many edge devices can one cloud GPU support?
//
// The paper argues that because Shoggoth trains at the edge and the cloud
// only labels, a single GPU serves more devices than under AMS (which also
// fine-tunes every device's model in the cloud). This example runs one
// device of each kind and extrapolates GPU occupancy to a fleet.
//
//   ./fleet_scaling [duration_seconds] [seed]
#include <cstdlib>
#include <iostream>

#include "baselines/ams.hpp"
#include "core/shoggoth.hpp"
#include "models/pretrain.hpp"
#include "sim/harness.hpp"
#include "video/presets.hpp"

int main(int argc, char** argv) {
    using namespace shog;

    const double duration = argc > 1 ? std::atof(argv[1]) : 420.0;
    const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 19;

    const video::Dataset_preset preset = video::waymo_like(seed, duration);
    video::Video_stream stream{preset.stream, preset.world, preset.schedule};
    auto pristine = models::make_student(stream.world(), seed);
    auto teacher = models::make_teacher(stream.world(), seed);
    sim::Harness_config harness;

    double shoggoth_gpu = 0.0;
    double ams_gpu = 0.0;
    {
        auto student = pristine->clone();
        core::Shoggoth_strategy s{*student, *teacher, core::Shoggoth_config{},
                                  models::Deployed_profile::yolov4_resnet18(),
                                  device::jetson_tx2(), device::v100()};
        const sim::Run_result r = sim::run_strategy(s, stream, harness);
        shoggoth_gpu = r.cloud_gpu_seconds;
        std::printf("Shoggoth: one device used %.1f s of V100 time over %.0f s "
                    "(labeling only)\n",
                    r.cloud_gpu_seconds, duration);
    }
    {
        auto student = pristine->clone();
        baselines::Ams_strategy s{*student, *teacher, baselines::Ams_config{},
                                  models::Deployed_profile::yolov4_resnet18(),
                                  device::v100()};
        const sim::Run_result r = sim::run_strategy(s, stream, harness);
        ams_gpu = r.cloud_gpu_seconds;
        std::printf("AMS:      one device used %.1f s of V100 time over %.0f s "
                    "(labeling + cloud fine-tuning, %zu model updates)\n",
                    r.cloud_gpu_seconds, duration, s.model_updates_sent());
    }

    const double shoggoth_fleet = duration / std::max(1.0, shoggoth_gpu);
    const double ams_fleet = duration / std::max(1.0, ams_gpu);
    std::printf("\nAt full GPU occupancy, one V100 supports roughly:\n");
    std::printf("  Shoggoth: %4.0f edge devices\n", shoggoth_fleet);
    std::printf("  AMS:      %4.0f edge devices\n", ams_fleet);
    std::printf("  -> decoupled distillation scales %.1fx further on the same cloud "
                "hardware.\n",
                shoggoth_fleet / std::max(1.0, ams_fleet));
    return 0;
}
