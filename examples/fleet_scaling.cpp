// Fleet scaling: how many edge devices can one cloud GPU support?
//
// The paper argues that because Shoggoth trains at the edge and the cloud
// only labels, a single GPU serves more devices than under AMS (which also
// fine-tunes every device's model in the cloud). This example runs *real*
// N-device clusters against one contended cloud GPU: every device has its
// own video stream, strategy state and RNG substream, and GPU utilization,
// queueing delay and label latency emerge from the shared scheduler.
//
//   ./fleet_scaling [duration_seconds] [seed] [max_devices] [--trace path.json]
//
// `--trace path.json` re-runs the last reliability cell with the trace sink
// and metrics registry installed and writes a Chrome-trace/Perfetto JSON
// plus `path.json.metrics.csv` (see docs/OBSERVABILITY.md). The traced run
// reports to stderr; the stdout tables are unchanged.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fleet/testbed.hpp"
#include "obs/trace_export.hpp"

using namespace shog;

namespace {

struct Fleet_run {
    std::size_t devices;
    sim::Cluster_result result;
};

void print_run(const char* name, const Fleet_run& run) {
    const sim::Cluster_result& r = run.result;
    std::printf("  %-8s N=%2zu  gpu_util=%5.1f%%  gpu_s/dev=%6.1f  "
                "label_lat mean=%5.2fs p95=%5.2fs  fleet_mAP=%.3f\n",
                name, run.devices, 100.0 * r.gpu_utilization, r.gpu_seconds_per_device(),
                r.mean_label_latency, r.p95_label_latency, r.fleet_map);
}

} // namespace

int main(int argc, char** argv) {
    std::string trace_path;
    std::vector<const char*> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::string{argv[i]} == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
            continue;
        }
        positional.push_back(argv[i]);
    }
    const std::size_t nargs = positional.size();
    const double duration = nargs > 0 ? std::atof(positional[0]) : 240.0;
    const std::uint64_t seed =
        nargs > 1 ? static_cast<std::uint64_t>(std::atoll(positional[1])) : 19;
    const std::size_t max_devices =
        nargs > 2 ? static_cast<std::size_t>(std::atoll(positional[2])) : 8;
    if (duration <= 0.0 || max_devices < 1) {
        std::fprintf(stderr,
                     "usage: fleet_scaling [duration_seconds>0] [seed] [max_devices>=1] "
                     "[--trace path.json]\n");
        return 1;
    }

    std::vector<std::size_t> fleet_sizes;
    for (std::size_t n = 1; n <= max_devices; n *= 2) {
        fleet_sizes.push_back(n);
    }

    const fleet::Testbed testbed = fleet::make_testbed("waymo", max_devices, seed, duration);
    sim::Cluster_config config;
    config.harness.seed = seed ^ 0x8888;

    std::printf("Fleet scaling on one shared V100, %.0f s Waymo-like streams\n\n", duration);

    std::vector<Fleet_run> shoggoth_runs;
    std::vector<Fleet_run> ams_runs;
    for (std::size_t n : fleet_sizes) {
        fleet::Fleet shoggoth = fleet::make_shoggoth_fleet(testbed, n);
        shoggoth_runs.push_back(Fleet_run{n, sim::run_cluster(shoggoth.specs, config)});
        print_run("Shoggoth", shoggoth_runs.back());
    }
    std::printf("\n");
    for (std::size_t n : fleet_sizes) {
        fleet::Fleet ams = fleet::make_ams_fleet(testbed, n);
        ams_runs.push_back(Fleet_run{n, sim::run_cluster(ams.specs, config)});
        print_run("AMS", ams_runs.back());
    }

    // Devices-per-GPU at a target mAP: take the largest fleet that still
    // holds (within 0.02 of) its single-device accuracy, and extrapolate
    // from its measured GPU occupancy.
    const auto capacity = [](const std::vector<Fleet_run>& runs) {
        const double target = runs.front().result.fleet_map - 0.02;
        const Fleet_run* best = &runs.front();
        for (const Fleet_run& run : runs) {
            if (run.result.fleet_map >= target && run.result.gpu_utilization < 1.0) {
                best = &run;
            }
        }
        const double util = std::max(1e-6, best->result.gpu_utilization);
        return static_cast<double>(best->devices) / util;
    };
    const double shog_capacity = capacity(shoggoth_runs);
    const double ams_capacity = capacity(ams_runs);
    std::printf("\nAt the target mAP (single-device minus 0.02), one V100 supports "
                "roughly:\n");
    std::printf("  Shoggoth: %5.0f edge devices (labeling only)\n", shog_capacity);
    std::printf("  AMS:      %5.0f edge devices (labeling + cloud fine-tuning)\n",
                ams_capacity);
    std::printf("  -> decoupled distillation scales %.1fx further on the same cloud "
                "hardware.\n",
                shog_capacity / std::max(1.0, ams_capacity));

    // Scheduling policies under pressure: a heterogeneous mixed fleet
    // (half Shoggoth, half AMS — so whole-model fine-tunes sit in the job
    // mix) on a scaled-down cloud share, the operating point where dispatch
    // order decides whether labeling starves behind training.
    std::printf("\nScheduling policies, heterogeneous N=%zu mixed fleet "
                "(%zu Shoggoth + %zu AMS) on a contended cloud share:\n",
                max_devices, max_devices - max_devices / 2, max_devices / 2);
    for (const fleet::Policy_setup& setup : fleet::default_policy_setups()) {
        const sim::Cluster_result r = fleet::run_policy_cell(
            testbed, max_devices, /*heterogeneous=*/true, setup, seed);
        std::printf("  %-12s  label_lat mean=%6.2fs p95=%6.2fs  gpu_util=%5.1f%%  "
                    "preemptions=%zu\n",
                    setup.label, r.mean_label_latency, r.p95_label_latency,
                    100.0 * r.gpu_utilization, r.preemptions);
    }

    // Sharding the cloud: the same contended fleet, but the cloud is now
    // split into individually placed GPU servers. device_affinity keeps a
    // device on the server that already holds its teacher state (warm-start
    // discount), kind_partition reserves a server for labels so fine-tunes
    // can't hold every GPU, and the staleness policy labels the
    // fastest-drifting camera first.
    std::printf("\nMulti-GPU sharding, same fleet (gpus x placement x policy; "
                "b = max_batch):\n");
    for (const fleet::Sharding_setup& setup : fleet::default_sharding_setups()) {
        const sim::Cluster_result r = fleet::run_sharding_cell(
            testbed, max_devices, /*heterogeneous=*/true, setup, seed);
        std::printf("  %-27s  label_lat mean=%6.2fs p95=%6.2fs  gpu_util=%5.1f%%  "
                    "labels/s=%5.2f  warm=%zu\n",
                    setup.label, r.mean_label_latency, r.p95_label_latency,
                    100.0 * r.gpu_utilization,
                    r.duration > 0.0 ? static_cast<double>(r.label_jobs) / r.duration
                                     : 0.0,
                    r.warm_dispatches);
    }

    // Unreliable clouds: the same fleet when one shard is a 4x straggler or
    // servers fail and repair (MTBF/MTTR). speed_aware placement keeps label
    // jobs off the slow shard; straggler re-queueing checkpoints the ones it
    // still caught onto a faster server once one frees up.
    std::printf("\nCloud reliability, same fleet (stragglers and MTBF/MTTR "
                "failures at 2 GPUs):\n");
    const std::vector<fleet::Reliability_setup> reliability_setups =
        fleet::default_reliability_setups();
    for (const fleet::Reliability_setup& setup : reliability_setups) {
        const sim::Cluster_result r = fleet::run_reliability_cell(
            testbed, max_devices, /*heterogeneous=*/true, setup, seed);
        std::printf("  %-27s  label_lat mean=%6.2fs p95=%6.2fs  gpu_util=%5.1f%%  "
                    "failures=%zu  requeues=%zu\n",
                    setup.label, r.mean_label_latency, r.p95_label_latency,
                    100.0 * r.gpu_utilization, r.failures, r.straggler_requeues);
    }

    if (!trace_path.empty()) {
        // Re-run the last reliability cell with observability installed
        // (bit-identical to the untraced run above) and export the trace.
        obs::Trace_sink sink;
        obs::Metrics_registry metrics;
        sim::Obs_options obs;
        obs.sink = &sink;
        obs.metrics = &metrics;
        const sim::Cluster_result r = fleet::run_reliability_cell(
            testbed, max_devices, /*heterogeneous=*/true, reliability_setups.back(), seed,
            /*shards=*/0, obs);
        const std::string csv_path = trace_path + ".metrics.csv";
        if (!obs::write_text_file(trace_path, obs::chrome_trace_json(sink)) ||
            !obs::write_text_file(csv_path, obs::serialize_metrics_csv(r.metrics))) {
            std::fprintf(stderr, "error: failed to write %s\n", trace_path.c_str());
            return 1;
        }
        std::fprintf(stderr, "[trace] wrote %s (%zu events) and %s (%zu series)\n",
                     trace_path.c_str(), sink.event_count(), csv_path.c_str(),
                     r.metrics.series.size());
    }
    return 0;
}
