// Quickstart: the smallest end-to-end Shoggoth deployment.
//
// Builds a drifting synthetic traffic stream, pre-trains a lightweight
// student (daytime only) and a golden teacher (all conditions), runs the
// full edge-cloud collaborative system for five simulated minutes, and
// prints the accuracy/bandwidth/fps summary next to the Edge-Only baseline.
//
//   ./quickstart [duration_seconds] [seed]
#include <cstdlib>
#include <iostream>

#include "baselines/edge_only.hpp"
#include "core/shoggoth.hpp"
#include "models/pretrain.hpp"
#include "sim/harness.hpp"
#include "video/presets.hpp"

int main(int argc, char** argv) {
    using namespace shog;

    const double duration = argc > 1 ? std::atof(argv[1]) : 300.0;
    const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;

    // 1. A drifting video stream: UA-DETRAC-like traffic surveillance that
    //    cycles through sunny / cloudy / rain / dusk / night.
    const video::Dataset_preset preset = video::ua_detrac_like(seed, duration);
    video::Video_stream stream{preset.stream, preset.world, preset.schedule};
    std::cout << "stream: " << stream.frame_count() << " frames at " << stream.fps()
              << " fps, " << stream.num_classes() << " classes, "
              << stream.track_count() << " vehicle tracks\n";

    // 2. Detectors: the lightweight edge student (pre-trained on daytime
    //    only — vulnerable to drift) and the cloud teacher (golden model).
    auto student = models::make_student(stream.world(), seed);
    auto teacher = models::make_teacher(stream.world(), seed);

    // 3. Baseline: the same student with no adaptation.
    sim::Harness_config harness;
    auto baseline_student = student->clone();
    baselines::Edge_only_strategy edge_only{*baseline_student};
    const sim::Run_result edge = sim::run_strategy(edge_only, stream, harness);

    // 4. Shoggoth: decoupled knowledge distillation with adaptive online
    //    learning (defaults reproduce the paper's configuration).
    core::Shoggoth_strategy shoggoth{*student,
                                     *teacher,
                                     core::Shoggoth_config{},
                                     models::Deployed_profile::yolov4_resnet18(),
                                     device::jetson_tx2(),
                                     device::v100()};
    const sim::Run_result result = sim::run_strategy(shoggoth, stream, harness);

    // 5. Summary.
    std::cout << "\n               mAP@0.5   up Kbps  down Kbps   fps   sessions\n";
    auto row = [](const char* name, const sim::Run_result& r) {
        std::printf("%-12s %8.1f%% %9.1f %10.1f %5.1f %10zu\n", name, r.map * 100.0,
                    r.up_kbps, r.down_kbps, r.average_fps, r.training_sessions);
    };
    row("Edge-Only", edge);
    row("Shoggoth", result);
    std::cout << "\nadaptive online learning gained "
              << (result.map - edge.map) * 100.0
              << " mAP points over the non-adaptive edge model.\n";
    return 0;
}
