// Drift explorer: a microscope on the data-drift mechanism itself.
//
// Sweeps the domain dial from bright day to deep night and prints, for each
// condition, the student's and teacher's classifier accuracy and detection
// agreement — the raw material behind Fig. 1's "misalignment" story. Then
// runs one adaptive training session on night labels and shows the
// before/after recovery.
//
//   ./drift_explorer [seed]
#include <cstdlib>
#include <iostream>

#include "core/adaptive_trainer.hpp"
#include "core/labeling.hpp"
#include "models/pretrain.hpp"
#include "video/presets.hpp"

int main(int argc, char** argv) {
    using namespace shog;

    const std::uint64_t seed = argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 3;

    const video::Dataset_preset preset = video::ua_detrac_like(seed, 120.0);
    video::World_model world{preset.world};
    auto student = models::make_student(world, seed);
    auto teacher = models::make_teacher(world, seed);

    auto accuracy_under = [&world](models::Detector& det, const video::Domain& domain,
                                   std::uint64_t s) {
        models::Pretrain_config cfg;
        cfg.domains = {domain};
        cfg.samples = 1200;
        cfg.seed = s;
        const auto ds = models::synth_dataset(world, det.config(), cfg);
        return models::classifier_accuracy(det, ds);
    };

    std::cout << "=== classifier accuracy across the domain dial ===\n";
    std::cout << "condition          student  teacher\n";
    struct Probe {
        const char* name;
        video::Domain domain;
    };
    const Probe probes[] = {
        {"bright day", video::day_sunny(0.6)}, {"cloudy", video::day_cloudy(0.6)},
        {"rain", video::day_rainy(0.6)},       {"dusk", video::dusk(0.5)},
        {"night", video::night(0.5)},
    };
    for (const Probe& p : probes) {
        std::printf("%-18s %6.1f%% %8.1f%%\n", p.name,
                    100.0 * accuracy_under(*student, p.domain, seed ^ 1),
                    100.0 * accuracy_under(*teacher, p.domain, seed ^ 1));
    }

    std::cout << "\n=== one adaptive training session on teacher-labeled night data ===\n";
    const double night_before = accuracy_under(*student, video::night(0.5), seed ^ 2);
    const double day_before = accuracy_under(*student, video::day_sunny(0.6), seed ^ 3);

    core::Adaptive_trainer trainer{*student, core::ours_config(),
                                   models::Deployed_profile::yolov4_resnet18(),
                                   device::jetson_tx2()};
    // Warm the replay memory from the offline training data, as deployed.
    models::Pretrain_config warm;
    warm.domains = models::daytime_domains();
    warm.samples = 1200;
    warm.seed = seed ^ 4;
    trainer.warm_start(models::synth_dataset(world, student->config(), warm));

    // Teacher-labeled night samples.
    models::Pretrain_config night_cfg;
    night_cfg.domains = {video::night(0.5)};
    night_cfg.samples = 500;
    night_cfg.seed = seed ^ 5;
    const auto night_batch = models::synth_dataset(world, student->config(), night_cfg);
    const core::Training_report report = trainer.train(night_batch);

    const double night_after = accuracy_under(*student, video::night(0.5), seed ^ 2);
    const double day_after = accuracy_under(*student, video::day_sunny(0.6), seed ^ 3);

    std::printf("night accuracy: %.1f%% -> %.1f%%\n", 100.0 * night_before,
                100.0 * night_after);
    std::printf("day accuracy:   %.1f%% -> %.1f%% (replay memory guards it)\n",
                100.0 * day_before, 100.0 * day_after);
    std::printf("session: %zu mini-batches, loss %.3f -> %.3f, modeled %.1f s on a TX2, "
                "%s\n",
                report.minibatches, report.initial_loss, report.final_loss,
                report.overall_seconds().value(), // printf needs the raw seconds
                report.committed ? "committed" : "rolled back by the validation gate");
    return 0;
}
