#include "models/detector.hpp"

#include <algorithm>
#include <cmath>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"

namespace shog::models {

const std::vector<std::string>& Detector_net::stage_names() {
    static const std::vector<std::string> names = {"stem",    "conv2_x", "conv3_x",
                                                   "conv4_x", "conv5_4", "pool"};
    return names;
}

Detector_net::Detector_net(const Detector_config& config, Rng& rng)
    : feature_dim_{config.feature_dim}, num_classes_{config.num_classes} {
    SHOG_REQUIRE(config.trunk_widths.size() == stage_names().size(),
                 "trunk_widths must have one entry per stage");
    trunk_ = std::make_unique<nn::Sequential>();
    std::size_t in_width = config.feature_dim;
    for (std::size_t s = 0; s < config.trunk_widths.size(); ++s) {
        const std::string& name = stage_names()[s];
        const std::size_t out_width = config.trunk_widths[s];
        trunk_->add(name, std::make_unique<nn::Dense>(in_width, out_width, rng));
        trunk_->add(name, std::make_unique<nn::Batch_renorm>(out_width));
        trunk_->add(name, std::make_unique<nn::Leaky_relu>(0.1));
        stage_end_.push_back(trunk_->layer_count());
        in_width = out_width;
    }

    class_head_ = std::make_unique<nn::Sequential>();
    class_head_->add("cls", std::make_unique<nn::Dense>(in_width, num_classes_ + 1, rng));

    box_head_ = std::make_unique<nn::Sequential>();
    box_head_->add("box_fc1",
                   std::make_unique<nn::Dense>(in_width, config.box_head_hidden, rng));
    box_head_->add("box_act1", std::make_unique<nn::Leaky_relu>(0.1));
    box_head_->add("box_fc2", std::make_unique<nn::Dense>(config.box_head_hidden, 4, rng));
    box_head_->add("box_tanh", std::make_unique<nn::Tanh>());
    // Scale tanh output to +-max_offset via the final Dense's successor: we
    // fold the scale into inference/training by multiplying outputs; keep the
    // scale as data here.
    max_offset_scale_ = config.max_offset;
}

Detector_net::Output Detector_net::infer(const Tensor& features) {
    SHOG_REQUIRE(features.rank() == 2 && features.cols() == feature_dim_,
                 "feature batch width mismatch");
    Output out;
    // Cache-free inference path (bit-identical to forward(..., false)); the
    // eval stride drives this for every device, so the backward caches that
    // forward() keeps alive would be pure overhead at fleet scale.
    const Tensor trunk_out = trunk_->infer(features);
    out.class_probs = nn::softmax(class_head_->infer(trunk_out));
    out.box_offsets = box_head_->infer(trunk_out);
    out.box_offsets *= max_offset_scale_;
    return out;
}

std::size_t Detector_net::cut_after(const std::string& stage) const {
    if (stage == "input") {
        return 0;
    }
    for (std::size_t s = 0; s < stage_names().size(); ++s) {
        if (stage_names()[s] == stage) {
            return stage_end_[s];
        }
    }
    SHOG_REQUIRE(false, "unknown stage '" + stage + "'");
    return 0; // unreachable
}

std::size_t Detector_net::width_at_cut(std::size_t cut) const {
    if (cut == 0) {
        return feature_dim_;
    }
    for (std::size_t s = 0; s < stage_end_.size(); ++s) {
        if (stage_end_[s] == cut) {
            return const_cast<nn::Sequential&>(*trunk_).layer(cut - 3).output_width();
        }
    }
    SHOG_REQUIRE(false, "cut does not align with a stage boundary");
    return 0; // unreachable
}

std::size_t Detector_net::parameter_count() const {
    return trunk_->parameter_count() + class_head_->parameter_count() +
           box_head_->parameter_count();
}

std::vector<double> Detector_net::state_vector() const {
    std::vector<double> state = trunk_->state_vector();
    const std::vector<double> cls = class_head_->state_vector();
    const std::vector<double> box = box_head_->state_vector();
    state.insert(state.end(), cls.begin(), cls.end());
    state.insert(state.end(), box.begin(), box.end());
    return state;
}

void Detector_net::load_state_vector(const std::vector<double>& state) {
    const std::size_t trunk_n = trunk_->state_vector().size();
    const std::size_t cls_n = class_head_->state_vector().size();
    const std::size_t box_n = box_head_->state_vector().size();
    SHOG_REQUIRE(state.size() == trunk_n + cls_n + box_n, "state vector size mismatch");
    trunk_->load_state_vector({state.begin(), state.begin() + static_cast<long>(trunk_n)});
    class_head_->load_state_vector({state.begin() + static_cast<long>(trunk_n),
                                    state.begin() + static_cast<long>(trunk_n + cls_n)});
    box_head_->load_state_vector({state.begin() + static_cast<long>(trunk_n + cls_n),
                                  state.end()});
}

void Detector_net::reinit_heads(Rng& rng) {
    const std::size_t trunk_width = trunk_->output_width();
    const std::size_t hidden = box_head_->layer(0).output_width();

    class_head_ = std::make_unique<nn::Sequential>();
    class_head_->add("cls", std::make_unique<nn::Dense>(trunk_width, num_classes_ + 1, rng));

    box_head_ = std::make_unique<nn::Sequential>();
    box_head_->add("box_fc1", std::make_unique<nn::Dense>(trunk_width, hidden, rng));
    box_head_->add("box_act1", std::make_unique<nn::Leaky_relu>(0.1));
    box_head_->add("box_fc2", std::make_unique<nn::Dense>(hidden, 4, rng));
    box_head_->add("box_tanh", std::make_unique<nn::Tanh>());
}

std::unique_ptr<Detector_net> Detector_net::clone() const {
    auto copy = std::unique_ptr<Detector_net>(new Detector_net());
    copy->feature_dim_ = feature_dim_;
    copy->num_classes_ = num_classes_;
    copy->stage_end_ = stage_end_;
    copy->max_offset_scale_ = max_offset_scale_;
    auto trunk_clone = trunk_->clone();
    copy->trunk_.reset(static_cast<nn::Sequential*>(trunk_clone.release()));
    auto cls_clone = class_head_->clone();
    copy->class_head_.reset(static_cast<nn::Sequential*>(cls_clone.release()));
    auto box_clone = box_head_->clone();
    copy->box_head_.reset(static_cast<nn::Sequential*>(box_clone.release()));
    return copy;
}

Detector::Detector(Detector_config config, Rng& rng) : config_{std::move(config)} {
    net_ = std::make_unique<Detector_net>(config_, rng);
}

std::vector<Proposal> Detector::propose(const video::Frame& frame,
                                        const video::World_model& world) const {
    Rng rng = Rng{config_.seed}.split(0xf00d).split(frame.index);
    std::vector<Proposal> proposals;

    const double keep = 1.0 - config_.domain_robustness;
    const double effective_illum =
        1.0 - (1.0 - frame.domain.illumination) * keep;
    const double gain = world.illumination_gain(effective_illum);
    for (std::size_t i = 0; i < frame.objects.size(); ++i) {
        const video::Rendered_object& obj = frame.objects[i];
        double recall = config_.proposal_recall;
        recall *= 1.0 - config_.illum_recall_k * (1.0 - gain);
        recall *= 1.0 - config_.occlusion_recall_k * obj.occlusion;
        recall *= 1.0 - config_.small_object_k * std::max(0.0, 1.0 - obj.scale);
        if (!rng.chance(std::clamp(recall, 0.02, 1.0))) {
            continue;
        }
        Proposal p;
        const double jw = config_.box_jitter * obj.box.width();
        const double jh = config_.box_jitter * obj.box.height();
        p.box = detect::Box{obj.box.x1 + rng.gaussian(0.0, jw), obj.box.y1 + rng.gaussian(0.0, jh),
                            obj.box.x2 + rng.gaussian(0.0, jw), obj.box.y2 + rng.gaussian(0.0, jh)};
        if (!p.box.valid()) {
            p.box = obj.box;
        }
        p.feature = world.observe(*obj.appearance, frame.domain, config_.sensor_noise,
                                  obj.occlusion, rng, config_.domain_robustness);
        p.from_object = true;
        p.gt_index = i;
        proposals.push_back(std::move(p));
    }

    // Background clutter proposals (false-positive candidates).
    const double night_boost = 1.0 + 0.8 * (1.0 - gain);
    const int n_bg = rng.poisson(config_.clutter_fp_rate * frame.domain.clutter * night_boost);
    for (int b = 0; b < n_bg; ++b) {
        Proposal p;
        const double w = rng.uniform(0.04, 0.16) * 960.0;
        const double h = w * rng.uniform(0.6, 1.0);
        const double cx = rng.uniform(0.05, 0.95) * 960.0;
        const double cy = rng.uniform(0.2, 0.9) * 540.0;
        p.box = detect::Box::from_center(cx, cy, w, h);
        p.feature = world.background(frame.domain, config_.sensor_noise, rng,
                                     config_.domain_robustness);
        p.from_object = false;
        proposals.push_back(std::move(p));
    }
    return proposals;
}

std::vector<detect::Detection> Detector::detect(const video::Frame& frame,
                                                const video::World_model& world) {
    return detect_on(propose(frame, world));
}

std::vector<detect::Detection> Detector::detect_on(const std::vector<Proposal>& proposals) {
    if (proposals.empty()) {
        return {};
    }
    Tensor features{proposals.size(), net_->feature_dim()};
    for (std::size_t i = 0; i < proposals.size(); ++i) {
        SHOG_REQUIRE(proposals[i].feature.size() == net_->feature_dim(),
                     "proposal feature width mismatch");
        for (std::size_t c = 0; c < net_->feature_dim(); ++c) {
            features.at(i, c) = proposals[i].feature[c];
        }
    }
    const Detector_net::Output out = net_->infer(features);

    std::vector<detect::Detection> detections;
    for (std::size_t i = 0; i < proposals.size(); ++i) {
        std::size_t best_class = 0;
        double best_prob = out.class_probs.at(i, 0);
        for (std::size_t c = 1; c <= net_->num_classes(); ++c) {
            if (out.class_probs.at(i, c) > best_prob) {
                best_prob = out.class_probs.at(i, c);
                best_class = c;
            }
        }
        if (best_class == 0 || best_prob < config_.detect_threshold) {
            continue;
        }
        const std::array<double, 4> offsets = {
            out.box_offsets.at(i, 0), out.box_offsets.at(i, 1), out.box_offsets.at(i, 2),
            out.box_offsets.at(i, 3)};
        detect::Detection det;
        det.box = apply_box_offsets(proposals[i].box, offsets);
        det.class_id = best_class;
        det.confidence = best_prob;
        detections.push_back(det);
    }
    return detect::nms(std::move(detections), config_.nms_iou);
}

std::unique_ptr<Detector> Detector::clone() const {
    auto copy = std::unique_ptr<Detector>(new Detector());
    copy->config_ = config_;
    copy->net_ = net_->clone();
    return copy;
}

Detector_config teacher_config(std::size_t feature_dim, std::size_t num_classes,
                               std::uint64_t seed) {
    Detector_config c;
    c.feature_dim = feature_dim;
    c.num_classes = num_classes;
    c.trunk_widths = {96, 128, 128, 128, 128, 96};
    c.box_head_hidden = 64;
    c.sensor_noise = 0.02;
    c.domain_robustness = 0.65;
    c.detect_threshold = 0.35;
    c.proposal_recall = 0.97;
    c.illum_recall_k = 0.12;
    c.occlusion_recall_k = 0.65;
    c.small_object_k = 0.35;
    c.clutter_fp_rate = 2.5;
    c.box_jitter = 0.02;
    c.seed = seed;
    return c;
}

Detector_config student_config(std::size_t feature_dim, std::size_t num_classes,
                               std::uint64_t seed) {
    Detector_config c;
    c.feature_dim = feature_dim;
    c.num_classes = num_classes;
    c.seed = seed;
    return c;
}

} // namespace shog::models
