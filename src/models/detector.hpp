// The detector: proposal generation + a staged neural network with a class
// head (background + C classes, matching Eq. 1's positive/negative scheme)
// and a box-refinement head.
//
// The trunk is a sequence of *named stages* mirroring the paper's
// YOLOv4-ResNet18 student ("stem", "conv2_x" ... "conv5_4", "pool"), so the
// latent-replay ablation of Table II can cut the network at the same places
// the paper does. Heads always sit above the cut.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "detect/box.hpp"
#include "models/samples.hpp"
#include "nn/sequential.hpp"
#include "video/stream.hpp"

namespace shog::models {

struct Detector_config {
    std::size_t feature_dim = 24;
    std::size_t num_classes = 4;
    /// Output widths of the trunk stages stem..pool (6 stages).
    std::vector<std::size_t> trunk_widths = {64, 96, 112, 112, 96, 64};
    std::size_t box_head_hidden = 32;
    /// Detector-specific extra observation noise (teacher << student: the
    /// lightweight edge model works on low-res crops).
    double sensor_noise = 0.12;
    /// Fraction of domain degradation the model's capacity undoes (the
    /// golden teacher recovers most of it; the lightweight student, little).
    double domain_robustness = 0.05;
    /// Posterior gate for emitting a detection.
    double detect_threshold = 0.30;
    double nms_iou = 0.50;
    /// Bound on predicted box offsets (tanh output scale).
    double max_offset = 0.60;

    // Proposal model.
    double proposal_recall = 0.93;   ///< base hit rate on a clean day
    double illum_recall_k = 0.45;    ///< recall loss as illumination gain drops
    double occlusion_recall_k = 0.55;
    double small_object_k = 0.35;
    double clutter_fp_rate = 5.0;    ///< background proposals per frame at clutter 1
    double box_jitter = 0.07;        ///< proposal localization noise (relative)

    std::uint64_t seed = 7;
};

/// The neural network half of a detector.
class Detector_net {
public:
    Detector_net(const Detector_config& config, Rng& rng);

    struct Output {
        Tensor class_probs;  ///< [n x (C+1)] softmax posteriors
        Tensor box_offsets;  ///< [n x 4] bounded offsets
    };

    /// Inference (eval mode) on a feature batch [n x feature_dim].
    [[nodiscard]] Output infer(const Tensor& features);

    [[nodiscard]] nn::Sequential& trunk() noexcept { return *trunk_; }
    [[nodiscard]] nn::Sequential& class_head() noexcept { return *class_head_; }
    [[nodiscard]] nn::Sequential& box_head() noexcept { return *box_head_; }
    /// Scale applied to the (tanh-bounded) box-head output.
    [[nodiscard]] double max_offset() const noexcept { return max_offset_scale_; }

    /// Layer index just past the named stage; activations taken here feed
    /// the rest of the trunk. "input" -> 0. Stages: stem, conv2_x, conv3_x,
    /// conv4_x, conv5_4, pool.
    [[nodiscard]] std::size_t cut_after(const std::string& stage) const;

    /// Feature width flowing across the given cut.
    [[nodiscard]] std::size_t width_at_cut(std::size_t cut) const;

    [[nodiscard]] std::size_t num_classes() const noexcept { return num_classes_; }
    [[nodiscard]] std::size_t feature_dim() const noexcept { return feature_dim_; }
    [[nodiscard]] std::size_t parameter_count() const;

    /// Full serialized weights (trunk + heads, including norm running stats).
    [[nodiscard]] std::vector<double> state_vector() const;
    void load_state_vector(const std::vector<double>& state);

    /// Re-initialize both heads with fresh random weights, keeping the trunk.
    /// Used to build domain-specialized students on a generic backbone.
    void reinit_heads(Rng& rng);

    [[nodiscard]] std::unique_ptr<Detector_net> clone() const;

    /// Names of the trunk stages in order.
    [[nodiscard]] static const std::vector<std::string>& stage_names();

private:
    Detector_net() = default;

    std::size_t feature_dim_ = 0;
    std::size_t num_classes_ = 0;
    double max_offset_scale_ = 0.6;
    std::unique_ptr<nn::Sequential> trunk_;
    std::unique_ptr<nn::Sequential> class_head_;
    std::unique_ptr<nn::Sequential> box_head_;
    std::vector<std::size_t> stage_end_; ///< layer index past each stage
};

/// Full detector pipeline: proposals -> features -> net -> NMS.
class Detector {
public:
    Detector(Detector_config config, Rng& rng);

    /// Candidate regions for a frame (deterministic per frame/detector).
    [[nodiscard]] std::vector<Proposal> propose(const video::Frame& frame,
                                                const video::World_model& world) const;

    /// End-to-end detection on a frame.
    [[nodiscard]] std::vector<detect::Detection> detect(const video::Frame& frame,
                                                        const video::World_model& world);

    /// Detection over precomputed proposals (used by the labeling pipeline).
    [[nodiscard]] std::vector<detect::Detection> detect_on(
        const std::vector<Proposal>& proposals);

    [[nodiscard]] Detector_net& net() noexcept { return *net_; }
    [[nodiscard]] const Detector_config& config() const noexcept { return config_; }

    [[nodiscard]] std::unique_ptr<Detector> clone() const;

private:
    Detector() = default;

    Detector_config config_;
    std::unique_ptr<Detector_net> net_;
};

/// Teacher preset: wide trunk, near-perfect proposals, tiny noise — the
/// "expensive golden model" (Mask R-CNN ResNeXt-101) of the paper, whose
/// labels are "very similar to human-annotated labels".
[[nodiscard]] Detector_config teacher_config(std::size_t feature_dim, std::size_t num_classes,
                                             std::uint64_t seed);

/// Student preset: the lightweight edge model (YOLOv4 + ResNet18 class).
[[nodiscard]] Detector_config student_config(std::size_t feature_dim, std::size_t num_classes,
                                             std::uint64_t seed);

} // namespace shog::models
