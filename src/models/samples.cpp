#include "models/samples.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace shog::models {

std::array<double, 4> encode_box_offsets(const detect::Box& proposal,
                                         const detect::Box& target) {
    SHOG_REQUIRE(proposal.valid(), "proposal box must be valid");
    SHOG_REQUIRE(target.valid(), "target box must be valid");
    const double pw = proposal.width();
    const double ph = proposal.height();
    return {
        (target.center_x() - proposal.center_x()) / pw,
        (target.center_y() - proposal.center_y()) / ph,
        std::log(target.width() / pw),
        std::log(target.height() / ph),
    };
}

detect::Box apply_box_offsets(const detect::Box& proposal,
                              const std::array<double, 4>& offsets) {
    SHOG_REQUIRE(proposal.valid(), "proposal box must be valid");
    const double pw = proposal.width();
    const double ph = proposal.height();
    const double cx = proposal.center_x() + offsets[0] * pw;
    const double cy = proposal.center_y() + offsets[1] * ph;
    const double w = pw * std::exp(offsets[2]);
    const double h = ph * std::exp(offsets[3]);
    return detect::Box::from_center(cx, cy, w, h);
}

} // namespace shog::models
