// Deployed-model cost profile.
//
// Our simulation network is deliberately small so thousands of online
// training steps run in a test suite; the *timing and bandwidth* numbers the
// paper reports, however, are for a YOLOv4-ResNet18 student on real frames.
// This profile maps each named stage of the simulation network to the FLOPs
// and bytes of the deployed model, so device cost models (Jetson TX2, V100)
// can convert "which layers did a sample cross" into realistic seconds, and
// the network simulator can convert "ship a model update" into bytes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/require.hpp"

namespace shog::models {

struct Stage_cost {
    std::string stage;
    double forward_gflops; ///< per image, deployed model
};

class Deployed_profile {
public:
    Deployed_profile(std::vector<Stage_cost> trunk_stages, double heads_forward_gflops,
                     double model_bytes, double update_bytes);

    /// YOLOv4 with ResNet18 backbone at 512x512 (the paper's student).
    [[nodiscard]] static Deployed_profile yolov4_resnet18();

    /// Mask R-CNN ResNeXt-101 (the paper's cloud teacher) — only total
    /// inference cost matters for the cloud.
    [[nodiscard]] static Deployed_profile mask_rcnn_resnext101();

    /// Forward GFLOPs of trunk stages strictly below the cut (cut = number of
    /// stages crossed; 0 = input replay, stage_count() = replay at pool).
    [[nodiscard]] double forward_gflops_below(std::size_t cut_stage) const;

    /// Forward GFLOPs above the cut (remaining trunk stages + heads).
    [[nodiscard]] double forward_gflops_above(std::size_t cut_stage) const;

    /// Backward is modeled as 2x forward (standard rule of thumb).
    [[nodiscard]] double backward_gflops_below(std::size_t cut_stage) const {
        return 2.0 * forward_gflops_below(cut_stage);
    }
    [[nodiscard]] double backward_gflops_above(std::size_t cut_stage) const {
        return 2.0 * forward_gflops_above(cut_stage);
    }

    /// Full-network inference cost per image.
    [[nodiscard]] double inference_gflops() const;

    [[nodiscard]] std::size_t stage_count() const noexcept { return trunk_stages_.size(); }
    [[nodiscard]] const Stage_cost& stage(std::size_t i) const;
    /// Stage index by name; stage_count() for "pool output" cut semantics is
    /// resolved by callers via cut_stage_for().
    [[nodiscard]] std::size_t stage_index(const std::string& name) const;

    /// Number of stages *below* a replay cut named by stage: "input" -> 0,
    /// "stem" -> 1, ..., "pool" -> stage_count().
    [[nodiscard]] std::size_t cut_stage_for(const std::string& replay_stage) const;

    [[nodiscard]] double model_bytes() const noexcept { return model_bytes_; }
    [[nodiscard]] double update_bytes() const noexcept { return update_bytes_; }

private:
    std::vector<Stage_cost> trunk_stages_;
    double heads_forward_gflops_;
    double model_bytes_;
    double update_bytes_;
};

} // namespace shog::models
