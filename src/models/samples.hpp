// Data records exchanged between the detector, the online labeler (cloud)
// and the adaptive trainer (edge).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "detect/box.hpp"

namespace shog::models {

inline constexpr std::size_t k_no_gt = static_cast<std::size_t>(-1);

/// A region proposal: a candidate box plus the feature vector the detector
/// observes for it. Provenance fields are simulation-side bookkeeping (never
/// shown to the model) used to build evaluation ground truth.
struct Proposal {
    detect::Box box;
    std::vector<double> feature;
    bool from_object = false;
    std::size_t gt_index = k_no_gt; ///< index into the frame's object list
};

/// One training sample, per the paper's Eq. 1: X_i is a region (feature
/// vector at the input layer), labeled positive with a class from the
/// teacher detector or negative (class 0).
struct Labeled_sample {
    std::vector<double> feature;
    std::size_t class_label = 0;                   ///< 0 = negative/background
    std::array<double, 4> box_target{0, 0, 0, 0};  ///< offsets; valid when positive
    double weight = 1.0;
};

/// Standard box-regression encoding of a target box relative to a proposal:
/// (dx, dy, dw, dh) with dx/dy scaled by proposal size, dw/dh in log space.
[[nodiscard]] std::array<double, 4> encode_box_offsets(const detect::Box& proposal,
                                                       const detect::Box& target);

/// Inverse of encode_box_offsets.
[[nodiscard]] detect::Box apply_box_offsets(const detect::Box& proposal,
                                            const std::array<double, 4>& offsets);

} // namespace shog::models
