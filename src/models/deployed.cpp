#include "models/deployed.hpp"

namespace shog::models {

Deployed_profile::Deployed_profile(std::vector<Stage_cost> trunk_stages,
                                   double heads_forward_gflops, double model_bytes,
                                   double update_bytes)
    : trunk_stages_{std::move(trunk_stages)},
      heads_forward_gflops_{heads_forward_gflops},
      model_bytes_{model_bytes},
      update_bytes_{update_bytes} {
    SHOG_REQUIRE(!trunk_stages_.empty(), "profile needs at least one stage");
    SHOG_REQUIRE(heads_forward_gflops_ >= 0.0, "head cost must be non-negative");
    SHOG_REQUIRE(model_bytes_ > 0.0 && update_bytes_ > 0.0, "model sizes must be positive");
    for (const Stage_cost& s : trunk_stages_) {
        SHOG_REQUIRE(s.forward_gflops >= 0.0, "stage cost must be non-negative");
    }
}

Deployed_profile Deployed_profile::yolov4_resnet18() {
    // ResNet18 at 512x512 is ~9.5 GFLOPs forward; the YOLO neck/head adds
    // ~1.2. Split across stages roughly as ResNet distributes its blocks.
    return Deployed_profile{
        {
            {"stem", 1.8},
            {"conv2_x", 2.4},
            {"conv3_x", 2.2},
            {"conv4_x", 2.2},
            {"conv5_4", 1.9},
            {"pool", 0.03}, // global pooling: negligible FLOPs
        },
        /*heads_forward_gflops=*/0.008,
        /*model_bytes=*/44.0 * 1024 * 1024,    // ~22M params fp16
        /*update_bytes=*/1.25 * 1024 * 1024};  // quantized delta per AMS update
}

Deployed_profile Deployed_profile::mask_rcnn_resnext101() {
    // Only the total matters (cloud inference); ~280 GFLOPs per image.
    return Deployed_profile{
        {
            {"stem", 30.0},
            {"conv2_x", 60.0},
            {"conv3_x", 70.0},
            {"conv4_x", 70.0},
            {"conv5_4", 30.0},
            {"pool", 10.0},
        },
        /*heads_forward_gflops=*/10.0,
        /*model_bytes=*/340.0 * 1024 * 1024,
        /*update_bytes=*/340.0 * 1024 * 1024};
}

double Deployed_profile::forward_gflops_below(std::size_t cut_stage) const {
    SHOG_REQUIRE(cut_stage <= trunk_stages_.size(), "cut stage out of range");
    double total = 0.0;
    for (std::size_t i = 0; i < cut_stage; ++i) {
        total += trunk_stages_[i].forward_gflops;
    }
    return total;
}

double Deployed_profile::forward_gflops_above(std::size_t cut_stage) const {
    SHOG_REQUIRE(cut_stage <= trunk_stages_.size(), "cut stage out of range");
    double total = heads_forward_gflops_;
    for (std::size_t i = cut_stage; i < trunk_stages_.size(); ++i) {
        total += trunk_stages_[i].forward_gflops;
    }
    return total;
}

double Deployed_profile::inference_gflops() const { return forward_gflops_above(0); }

const Stage_cost& Deployed_profile::stage(std::size_t i) const {
    SHOG_REQUIRE(i < trunk_stages_.size(), "stage index out of range");
    return trunk_stages_[i];
}

std::size_t Deployed_profile::stage_index(const std::string& name) const {
    for (std::size_t i = 0; i < trunk_stages_.size(); ++i) {
        if (trunk_stages_[i].stage == name) {
            return i;
        }
    }
    SHOG_REQUIRE(false, "unknown deployed stage '" + name + "'");
    return 0; // unreachable
}

std::size_t Deployed_profile::cut_stage_for(const std::string& replay_stage) const {
    if (replay_stage == "input") {
        return 0;
    }
    return stage_index(replay_stage) + 1;
}

} // namespace shog::models
