#include "models/pretrain.hpp"

#include <algorithm>
#include <cmath>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace shog::models {

std::vector<video::Domain> all_condition_domains() {
    return {video::day_sunny(0.6),  video::day_cloudy(0.6), video::day_rainy(0.6),
            video::dusk(0.5),       video::night(0.5),      video::day_sunny(0.9),
            video::night(0.8)};
}

std::vector<video::Domain> daytime_domains() {
    return {video::day_sunny(0.4), video::day_sunny(0.7), video::day_sunny(0.9)};
}

std::vector<Labeled_sample> synth_dataset(const video::World_model& world,
                                          const Detector_config& sensor,
                                          const Pretrain_config& config) {
    SHOG_REQUIRE(!config.domains.empty(), "pretraining needs at least one domain");
    SHOG_REQUIRE(config.samples > 0, "pretraining needs samples");
    Rng rng{config.seed};
    std::vector<Labeled_sample> dataset;
    dataset.reserve(config.samples);

    for (std::size_t i = 0; i < config.samples; ++i) {
        video::Domain domain = config.domains[rng.index(config.domains.size())];
        // Slight within-domain variation so the dataset is not degenerate.
        domain.illumination = std::clamp(domain.illumination + 0.05 * rng.gaussian(), 0.0, 1.0);

        Labeled_sample sample;
        if (rng.chance(config.background_fraction)) {
            sample.class_label = 0;
            sample.feature =
                world.background(domain, sensor.sensor_noise, rng, sensor.domain_robustness);
        } else {
            const std::size_t class_id = 1 + rng.index(world.num_classes());
            sample.class_label = class_id;
            const std::vector<double> appearance = world.sample_appearance(class_id, rng);
            const double occlusion = rng.uniform(0.0, config.max_occlusion);
            sample.feature = world.observe(appearance, domain, sensor.sensor_noise, occlusion,
                                           rng, sensor.domain_robustness);
            // Box target: a jittered proposal around a canonical box, with the
            // true box as the regression target.
            const detect::Box gt = detect::Box::from_center(100.0, 100.0, rng.uniform(30.0, 90.0),
                                                            rng.uniform(24.0, 70.0));
            const double jw = sensor.box_jitter * gt.width();
            const double jh = sensor.box_jitter * gt.height();
            const detect::Box proposal{gt.x1 + rng.gaussian(0.0, jw), gt.y1 + rng.gaussian(0.0, jh),
                                       gt.x2 + rng.gaussian(0.0, jw),
                                       gt.y2 + rng.gaussian(0.0, jh)};
            if (proposal.valid()) {
                sample.box_target = encode_box_offsets(proposal, gt);
            }
        }
        dataset.push_back(std::move(sample));
    }
    return dataset;
}

namespace {

/// One full-network training step on a minibatch of samples; returns loss.
double train_step(Detector_net& net, const std::vector<const Labeled_sample*>& batch,
                  nn::Sgd& optimizer, double box_loss_weight) {
    const std::size_t n = batch.size();
    Tensor features{n, net.feature_dim()};
    std::vector<std::size_t> labels(n);
    Tensor box_targets{n, 4};
    std::vector<double> box_mask(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const Labeled_sample& s = *batch[i];
        SHOG_REQUIRE(s.feature.size() == net.feature_dim(), "sample feature width mismatch");
        for (std::size_t c = 0; c < s.feature.size(); ++c) {
            features.at(i, c) = s.feature[c];
        }
        labels[i] = s.class_label;
        if (s.class_label != 0) {
            box_mask[i] = 1.0;
            for (std::size_t c = 0; c < 4; ++c) {
                box_targets.at(i, c) = s.box_target[c];
            }
        }
    }

    nn::Sequential& trunk = net.trunk();
    nn::Sequential& cls = net.class_head();
    nn::Sequential& box = net.box_head();
    trunk.zero_grad();
    cls.zero_grad();
    box.zero_grad();

    const Tensor trunk_out = trunk.forward(features, true);
    const Tensor logits = cls.forward(trunk_out, true);
    Tensor box_out = box.forward(trunk_out, true);
    box_out *= net.max_offset();

    const nn::Loss_result cls_loss = nn::softmax_cross_entropy(logits, labels);
    const nn::Loss_result box_loss = nn::smooth_l1(box_out, box_targets, box_mask);

    Tensor grad_trunk = cls.backward(cls_loss.grad);
    Tensor box_grad = box_loss.grad;
    box_grad *= net.max_offset() * box_loss_weight;
    grad_trunk += box.backward(box_grad);
    (void)trunk.backward(grad_trunk);

    std::vector<nn::Parameter*> params = trunk.parameters();
    for (nn::Parameter* p : cls.parameters()) {
        params.push_back(p);
    }
    for (nn::Parameter* p : box.parameters()) {
        params.push_back(p);
    }
    optimizer.step(params);
    return cls_loss.value + box_loss_weight * box_loss.value;
}

} // namespace

Pretrain_report pretrain(Detector& detector, const std::vector<Labeled_sample>& dataset,
                         const Pretrain_config& config) {
    SHOG_REQUIRE(!dataset.empty(), "cannot pretrain on an empty dataset");
    SHOG_REQUIRE(config.minibatch > 0, "minibatch must be positive");

    Rng rng{config.seed ^ 0xbead};
    nn::Sgd optimizer{nn::Sgd_config{config.learning_rate, config.momentum,
                                     config.weight_decay}};
    Detector_net& net = detector.net();

    std::vector<std::size_t> order(dataset.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }

    Pretrain_report report;
    report.samples = dataset.size();
    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t batches = 0;
        for (std::size_t start = 0; start < order.size(); start += config.minibatch) {
            const std::size_t end = std::min(order.size(), start + config.minibatch);
            if (end - start < 2) {
                continue; // norm layers need at least 2 rows of batch stats
            }
            std::vector<const Labeled_sample*> batch;
            batch.reserve(end - start);
            for (std::size_t i = start; i < end; ++i) {
                batch.push_back(&dataset[order[i]]);
            }
            epoch_loss += train_step(net, batch, optimizer, config.box_loss_weight);
            ++batches;
        }
        report.final_loss = batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0;
    }
    report.train_accuracy = classifier_accuracy(detector, dataset);
    return report;
}

std::unique_ptr<Detector> make_student(const video::World_model& world, std::uint64_t seed) {
    Rng rng{seed};
    auto detector = std::make_unique<Detector>(
        student_config(world.feature_dim(), world.num_classes(), seed), rng);

    // Offline pre-training on the deployment conditions (daytime). The wide
    // information-preserving trunk (leaky activations, no bottleneck) learns
    // low-level features that remain *usable* under other domains — the
    // paper's premise that front layers are "stable and reusable ... after
    // adequate pre-training" — while the classification head is fit to
    // daytime statistics and is what data drift breaks.
    Pretrain_config cfg;
    cfg.domains = daytime_domains();
    cfg.samples = 6000;
    cfg.epochs = 10;
    cfg.seed = seed ^ 0x57;
    const auto dataset = synth_dataset(world, detector->config(), cfg);
    (void)pretrain(*detector, dataset, cfg);
    return detector;
}

std::unique_ptr<Detector> make_teacher(const video::World_model& world, std::uint64_t seed) {
    Rng rng{seed ^ 0x7e11};
    auto detector = std::make_unique<Detector>(
        teacher_config(world.feature_dim(), world.num_classes(), seed ^ 0x7e11), rng);
    Pretrain_config cfg;
    cfg.domains = all_condition_domains();
    cfg.samples = 9000;
    cfg.epochs = 10;
    cfg.seed = seed ^ 0x7e5;
    const auto dataset = synth_dataset(world, detector->config(), cfg);
    (void)pretrain(*detector, dataset, cfg);
    return detector;
}

double classifier_accuracy(Detector& detector, const std::vector<Labeled_sample>& dataset) {
    SHOG_REQUIRE(!dataset.empty(), "accuracy of empty dataset");
    Detector_net& net = detector.net();
    Tensor features{dataset.size(), net.feature_dim()};
    for (std::size_t i = 0; i < dataset.size(); ++i) {
        for (std::size_t c = 0; c < dataset[i].feature.size(); ++c) {
            features.at(i, c) = dataset[i].feature[c];
        }
    }
    const Detector_net::Output out = net.infer(features);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < dataset.size(); ++i) {
        std::size_t best = 0;
        for (std::size_t c = 1; c <= net.num_classes(); ++c) {
            if (out.class_probs.at(i, c) > out.class_probs.at(i, best)) {
                best = c;
            }
        }
        if (best == dataset[i].class_label) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

} // namespace shog::models
