// Offline pre-training of detectors.
//
// The paper's teacher is pre-trained "on extensive image datasets" covering
// all conditions; the student is trained offline once and then suffers data
// drift in the field. We reproduce both: synth_dataset() draws labeled
// region samples under a set of domains, pretrain() runs full-network SGD.
#pragma once

#include <vector>

#include "models/detector.hpp"
#include "video/domain.hpp"
#include "video/world.hpp"

namespace shog::models {

struct Pretrain_config {
    std::vector<video::Domain> domains;   ///< domains represented in the dataset
    std::size_t samples = 6000;           ///< total region samples
    double background_fraction = 0.35;
    double max_occlusion = 0.35;
    std::size_t epochs = 8;
    std::size_t minibatch = 64;
    double learning_rate = 0.02;
    double momentum = 0.9;
    double weight_decay = 1e-4;
    double box_loss_weight = 1.0;
    std::uint64_t seed = 42;
};

/// Draw a labeled synthetic region dataset for the given detector's sensor
/// model under the configured domains.
[[nodiscard]] std::vector<Labeled_sample> synth_dataset(const video::World_model& world,
                                                        const Detector_config& sensor,
                                                        const Pretrain_config& config);

struct Pretrain_report {
    double final_loss = 0.0;
    double train_accuracy = 0.0; ///< classifier accuracy on the training set
    std::size_t samples = 0;
};

/// Train the whole network (trunk + heads) on the dataset. Returns a report.
Pretrain_report pretrain(Detector& detector, const std::vector<Labeled_sample>& dataset,
                         const Pretrain_config& config);

/// Classifier accuracy of a detector's net on a labeled sample set
/// (argmax class including background). Used by tests and calibration.
[[nodiscard]] double classifier_accuracy(Detector& detector,
                                         const std::vector<Labeled_sample>& dataset);

/// Convenience: domains covering all weathers and day/night, for teachers.
[[nodiscard]] std::vector<video::Domain> all_condition_domains();

/// Convenience: the daytime/sunny-only domain list students are born with.
[[nodiscard]] std::vector<video::Domain> daytime_domains();

/// A ready-to-deploy student: lightweight detector pre-trained offline on
/// daytime/sunny data only — the paper's starting point, vulnerable to
/// drift. Deterministic for a given (world, seed).
[[nodiscard]] std::unique_ptr<Detector> make_student(const video::World_model& world,
                                                     std::uint64_t seed);

/// The cloud golden model: wide detector pre-trained across all conditions.
[[nodiscard]] std::unique_ptr<Detector> make_teacher(const video::World_model& world,
                                                     std::uint64_t seed);

} // namespace shog::models
