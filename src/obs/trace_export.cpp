#include "obs/trace_export.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <vector>

namespace shog::obs {
namespace {

// printf-into-string helper (same idiom as bench_fleet's formatf).
template <typename... Args>
std::string formatf(const char* fmt, Args... args) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    return std::string{buf};
}

// Track-encoding decode (see obs/trace.hpp): class in the top five bits,
// index below.
constexpr std::uint32_t kClassMask = 0xF800'0000u;
constexpr std::uint32_t kIndexMask = 0x07FF'FFFFu;
constexpr std::uint32_t kClassGpu = 0x1000'0000u;
constexpr std::uint32_t kClassGpuHealth = 0x1800'0000u;
constexpr std::uint32_t kClassDevice = 0x2000'0000u;
constexpr std::uint32_t kClassEngine = 0x3000'0000u;

struct Track_row {
    int pid = 1;
    long tid = 0;
    std::string process;
    std::string thread;
};

Track_row decode_track(std::uint32_t track) {
    const std::uint32_t cls = track & kClassMask;
    const long idx = static_cast<long>(track & kIndexMask);
    switch (cls) {
    case kClassGpu:
        return Track_row{1, 10 + 2 * idx, "cloud", formatf("gpu %ld", idx)};
    case kClassGpuHealth:
        return Track_row{1, 11 + 2 * idx, "cloud", formatf("gpu %ld health", idx)};
    case kClassDevice:
        return Track_row{2, idx, "devices", formatf("device %ld", idx)};
    case kClassEngine:
        return Track_row{3, idx, "engine", formatf("engine %ld", idx)};
    default:
        return Track_row{1, 0, "cloud", "scheduler"};
    }
}

/// Async category per track class — the (cat, id) pair is the Chrome async
/// match key, and also what tools/check_trace.py pairs b/e events by.
const char* async_category(std::uint32_t track) {
    switch (track & kClassMask) {
    case kClassDevice: return "phase";
    case kClassEngine: return "engine";
    default: return "job";
    }
}

const char* kind_token(Trace_kind kind) {
    switch (kind) {
    case Trace_kind::span_begin: return "B";
    case Trace_kind::span_end: return "E";
    case Trace_kind::async_begin: return "b";
    case Trace_kind::async_end: return "e";
    case Trace_kind::instant: return "i";
    case Trace_kind::counter: return "C";
    }
    return "?";
}

} // namespace

std::string chrome_trace_json(const Trace_sink& sink) {
    const std::vector<Trace_event> events = sink.merged();

    // Name every row up front (metadata events), in sorted track order.
    std::set<std::uint32_t> tracks;
    for (const Trace_event& e : events) {
        tracks.insert(e.track);
    }
    std::string out = "{\"traceEvents\":[\n";
    std::set<int> named_pids;
    bool first = true;
    auto emit = [&](const std::string& line) {
        if (!first) {
            out += ",\n";
        }
        first = false;
        out += line;
    };
    for (const std::uint32_t track : tracks) {
        const Track_row row = decode_track(track);
        if (named_pids.insert(row.pid).second) {
            emit(formatf("{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\","
                         "\"args\":{\"name\":\"%s\"}}",
                         row.pid, row.process.c_str()));
        }
        emit(formatf("{\"ph\":\"M\",\"pid\":%d,\"tid\":%ld,\"name\":\"thread_name\","
                     "\"args\":{\"name\":\"%s\"}}",
                     row.pid, row.tid, row.thread.c_str()));
        emit(formatf("{\"ph\":\"M\",\"pid\":%d,\"tid\":%ld,\"name\":\"thread_sort_index\","
                     "\"args\":{\"sort_index\":%ld}}",
                     row.pid, row.tid, row.tid));
    }

    for (const Trace_event& e : events) {
        const Track_row row = decode_track(e.track);
        const double ts = e.at.value() * 1e6; // trace-event ts is microseconds
        const std::string head = formatf("{\"ph\":\"%s\",\"ts\":%.17g,\"pid\":%d,\"tid\":%ld",
                                         kind_token(e.kind), ts, row.pid, row.tid);
        switch (e.kind) {
        case Trace_kind::span_begin:
        case Trace_kind::span_end:
            emit(head + formatf(",\"name\":\"%s\",\"args\":{\"id\":%llu}}", e.name,
                                static_cast<unsigned long long>(e.id)));
            break;
        case Trace_kind::async_begin:
        case Trace_kind::async_end:
            emit(head + formatf(",\"name\":\"%s\",\"cat\":\"%s\",\"id\":\"%llu\"}", e.name,
                                async_category(e.track),
                                static_cast<unsigned long long>(e.id)));
            break;
        case Trace_kind::instant:
            emit(head + formatf(",\"name\":\"%s\",\"s\":\"t\",\"args\":{\"id\":%llu}}", e.name,
                                static_cast<unsigned long long>(e.id)));
            break;
        case Trace_kind::counter:
            emit(head + formatf(",\"name\":\"%s\",\"args\":{\"value\":%.17g}}", e.name,
                                e.value));
            break;
        }
    }
    out += "\n]}\n";
    return out;
}

std::string serialize_trace(const Trace_sink& sink) {
    std::string out;
    for (const Trace_event& e : sink.merged()) {
        out += formatf("%.17g %lu %s %s %llu %.17g\n",
                       e.at.value(), // canonical text is the serialization boundary
                       static_cast<unsigned long>(e.track), kind_token(e.kind), e.name,
                       static_cast<unsigned long long>(e.id), e.value);
    }
    return out;
}

std::string serialize_metrics_csv(const Metrics_snapshot& snapshot) {
    std::string out = "metric,kind,key,value\n";
    for (const Metric_series& series : snapshot.series) {
        for (const Metric_point& p : series.points) {
            out += formatf("%s,%s,%.17g,%.17g\n", series.name.c_str(),
                           metric_kind_name(series.kind), p.at_seconds, p.value);
        }
    }
    for (const Metric_histogram& h : snapshot.histograms) {
        for (const auto& [bucket, count] : h.buckets) {
            out += formatf("%s,histogram,%lld,%llu\n", h.name.c_str(), bucket,
                           static_cast<unsigned long long>(count));
        }
    }
    return out;
}

bool write_text_file(const std::string& path, const std::string& text) {
    std::ofstream out{path, std::ios::binary};
    if (!out) {
        return false;
    }
    out << text;
    return static_cast<bool>(out.flush());
}

} // namespace shog::obs
