#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace shog::obs {

const char* metric_kind_name(Metric_kind kind) noexcept {
    switch (kind) {
    case Metric_kind::counter: return "counter";
    case Metric_kind::gauge: return "gauge";
    }
    return "?";
}

void Counter::add(Sim_time at, std::uint64_t delta) {
    total_ += delta;
    const double at_raw = at.value(); // serialization boundary: points store raw seconds
    if (!points_.empty() && points_.back().at_seconds == at_raw) {
        points_.back().value = static_cast<double>(total_);
        return;
    }
    points_.push_back(Metric_point{at_raw, static_cast<double>(total_)});
}

void Gauge::set(Sim_time at, double value) {
    if (has_value_ && value == last_) {
        return;
    }
    has_value_ = true;
    last_ = value;
    const double at_raw = at.value(); // serialization boundary: points store raw seconds
    if (!points_.empty() && points_.back().at_seconds == at_raw) {
        points_.back().value = value;
        return;
    }
    points_.push_back(Metric_point{at_raw, value});
}

void Histogram::observe(double value) {
    ++observations_;
    ++buckets_[static_cast<long long>(std::floor(value))];
}

Metrics_snapshot Metrics_registry::snapshot() const {
    Metrics_snapshot snap;
    snap.series.reserve(counters_.size() + gauges_.size());
    for (const auto& [name, counter] : counters_) {
        snap.series.push_back(Metric_series{name, Metric_kind::counter, counter.points()});
    }
    for (const auto& [name, gauge] : gauges_) {
        snap.series.push_back(Metric_series{name, Metric_kind::gauge, gauge.points()});
    }
    // Counters land before gauges above; restore global name order so the
    // snapshot layout does not depend on instrument kind.
    std::stable_sort(snap.series.begin(), snap.series.end(),
                     [](const Metric_series& a, const Metric_series& b) {
                         return a.name < b.name;
                     });
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, histogram] : histograms_) {
        Metric_histogram h;
        h.name = name;
        h.observations = histogram.observations();
        h.buckets.assign(histogram.buckets().begin(), histogram.buckets().end());
        snap.histograms.push_back(std::move(h));
    }
    return snap;
}

} // namespace shog::obs
