// Exporters for the trace/metrics subsystem:
//
//  * chrome_trace_json — Chrome trace-event JSON (loads in Perfetto /
//    chrome://tracing): sync spans as B/E pairs, async phases as nestable
//    b/e pairs keyed by (cat, id), instants, counters, plus metadata
//    events naming the process/thread rows derived from the track
//    encoding in obs/trace.hpp.
//  * serialize_trace — canonical one-line-per-event text of the merged
//    stream at %.17g. The determinism tests compare these byte-for-byte
//    across engines and shard counts.
//  * serialize_metrics_csv — flat CSV of a Metrics_snapshot (series points
//    and histogram buckets).
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace shog::obs {

[[nodiscard]] std::string chrome_trace_json(const Trace_sink& sink);

[[nodiscard]] std::string serialize_trace(const Trace_sink& sink);

[[nodiscard]] std::string serialize_metrics_csv(const Metrics_snapshot& snapshot);

/// Write `text` to `path`, returning false (no throw) on I/O failure so
/// bench/example CLIs can report and move on.
[[nodiscard]] bool write_text_file(const std::string& path, const std::string& text);

} // namespace shog::obs
