// Deterministic sim-time tracing: spans, instants and counters keyed to the
// simulation clock, never wall clock.
//
// Design constraints (docs/OBSERVABILITY.md spells out the full contract):
//
//  * Zero overhead when disabled. Emission goes through a Trace_channel —
//    a nullable buffer pointer — and the SHOG_TRACE_* macros compile to a
//    single branch on that pointer; argument expressions are never
//    evaluated when the channel is dark. A run with no sink installed is a
//    true no-op: identical state transitions, identical output bytes
//    (tools/check_bit_identity.sh pins this).
//
//  * Byte-identical across engines and shard counts. Events are buffered
//    per emitting context (one buffer per device runtime, one for the real
//    cloud) with a per-buffer monotone sequence number, then merged in
//    (time, track, seq) order. All events of a given track are recorded by
//    exactly one buffer, per-device execution is engine-invariant, and the
//    coordinator replays cloud ops in the sequential engine's order — so
//    every per-buffer event sequence, and therefore the merged stream, is
//    identical for run_cluster vs run_cluster_sharded at any shard count
//    (tests/test_obs.cpp pins this differentially).
//
//  * Threading: a Trace_sink and its buffers are phase-owned, not locked.
//    Buffers are created up front on the constructing thread and then
//    follow the ownership of their emitting context: the cloud buffer is
//    written by the thread driving the cloud queue (the coordinator in
//    sharded runs), a device buffer by whoever runs that device's events —
//    its shard worker during parallel rounds, the coordinator during
//    completion delivery, barrier-separated exactly like the rest of the
//    device slot (see sim/shard.cpp). The merge runs after every worker
//    joined. Sweep worker buffers are disjoint by construction, published
//    by the pool's join (see sim/sweep.cpp).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/units.hpp"

namespace shog::obs {

enum class Trace_kind : std::uint8_t {
    span_begin,  ///< synchronous span opens on its track (strict LIFO nesting)
    span_end,    ///< closes the innermost open span of the same name
    async_begin, ///< overlapping span, matched to its end by (name, id)
    async_end,
    instant,     ///< point event
    counter,     ///< sampled numeric series point (value field)
};

/// One trace record. `name` must point at a string literal (static storage):
/// events are stored raw and serialized only at export time.
struct Trace_event {
    Sim_time at{};
    std::uint64_t seq = 0;  ///< per-buffer monotone sequence (merge tiebreak)
    std::uint32_t track = 0;
    Trace_kind kind = Trace_kind::instant;
    const char* name = "";
    std::uint64_t id = 0;   ///< job/dispatch/generation id; async match key
    double value = 0.0;     ///< counter payload
};

// ---------------------------------------------------------------------------
// Track identifiers. Tracks are encoded, not registered: the id carries the
// context class in its top nibble and the index below, so buffers need no
// shared registry (which would order-couple the engines) and the exporter
// can reconstruct process/thread grouping from the id alone.
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t track_cloud = 0; ///< scheduler-level job lifecycle

/// Occupancy track of cloud GPU server `g`: one sync span per dispatch.
[[nodiscard]] constexpr std::uint32_t track_gpu(std::size_t g) noexcept {
    return 0x1000'0000u + static_cast<std::uint32_t>(g);
}

/// Health track of server `g`: "down" spans (MTBF/MTTR outages). Kept
/// separate from the occupancy track so an outage opening mid-dispatch
/// never breaks the occupancy track's LIFO span nesting.
[[nodiscard]] constexpr std::uint32_t track_gpu_health(std::size_t g) noexcept {
    return 0x1800'0000u + static_cast<std::uint32_t>(g);
}

/// Strategy-phase track of device `d` (buffer/upload/await_labels/download
/// async spans, train sync spans, apply/flush instants).
[[nodiscard]] constexpr std::uint32_t track_device(std::size_t d) noexcept {
    return 0x2000'0000u + static_cast<std::uint32_t>(d);
}

/// Engine-internal track `k` (shard coordinator rounds, sweep workers).
/// These depend on the shard/worker count by nature and are EXCLUDED from
/// the determinism contract — emitted only when explicitly enabled.
[[nodiscard]] constexpr std::uint32_t track_engine(std::size_t k) noexcept {
    return 0x3000'0000u + static_cast<std::uint32_t>(k);
}

// ---------------------------------------------------------------------------

/// Append-only event log of one emitting context, with its own sequence
/// counter. Not thread-safe; owned by whichever phase owns the context.
class Trace_buffer {
public:
    void record(Sim_time at, std::uint32_t track, Trace_kind kind, const char* name,
                std::uint64_t id = 0, double value = 0.0) {
        events_.push_back(Trace_event{at, seq_++, track, kind, name, id, value});
    }

    [[nodiscard]] const std::vector<Trace_event>& events() const noexcept { return events_; }
    [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

private:
    std::vector<Trace_event> events_;
    std::uint64_t seq_ = 0;
};

/// Emission handle threaded through the runtimes: a nullable borrow of one
/// buffer. Default-constructed (dark) channels make every SHOG_TRACE_*
/// macro a no-op without evaluating its arguments.
struct Trace_channel {
    Trace_buffer* buf = nullptr;
    [[nodiscard]] explicit operator bool() const noexcept { return buf != nullptr; }
};

/// Owns the per-context buffers of one run and merges them into the
/// canonical stream. Buffers live in a deque so handed-out references stay
/// stable as later contexts register.
class Trace_sink {
public:
    /// Create a fresh buffer (call on the owning/coordinating thread before
    /// the phase that writes it starts).
    [[nodiscard]] Trace_buffer& create_buffer() {
        buffers_.emplace_back();
        return buffers_.back();
    }

    [[nodiscard]] std::size_t buffer_count() const noexcept { return buffers_.size(); }

    [[nodiscard]] std::size_t event_count() const noexcept {
        std::size_t n = 0;
        for (const Trace_buffer& b : buffers_) {
            n += b.size();
        }
        return n;
    }

    /// The canonical merged stream: all buffers, sorted by (time, track,
    /// seq). Within one track every event comes from a single buffer, so
    /// (time, seq) already orders it totally; the track component only
    /// arbitrates cross-track simultaneity, keeping the merge independent
    /// of buffer creation order and shard count.
    [[nodiscard]] std::vector<Trace_event> merged() const {
        std::vector<Trace_event> all;
        all.reserve(event_count());
        for (const Trace_buffer& b : buffers_) {
            all.insert(all.end(), b.events().begin(), b.events().end());
        }
        std::sort(all.begin(), all.end(), [](const Trace_event& a, const Trace_event& b) {
            if (a.at != b.at) {
                return a.at < b.at;
            }
            if (a.track != b.track) {
                return a.track < b.track;
            }
            return a.seq < b.seq;
        });
        return all;
    }

private:
    std::deque<Trace_buffer> buffers_;
};

} // namespace shog::obs

// ---------------------------------------------------------------------------
// Emission macros. `channel` is an obs::Trace_channel lvalue; `at` must be a
// Sim_time carrying the *simulation* clock (the trace-wall-clock lint rule
// rejects numeric literals and wall-clock sources here); `name` must be a
// string literal. When the channel is dark none of the arguments other than
// `channel` are evaluated.
// ---------------------------------------------------------------------------

#define SHOG_TRACE_SPAN_BEGIN(channel, at, track, name, span_id)                          \
    do {                                                                                  \
        if ((channel).buf != nullptr) {                                                   \
            (channel).buf->record((at), (track), ::shog::obs::Trace_kind::span_begin,     \
                                  (name), (span_id));                                     \
        }                                                                                 \
    } while (0)

#define SHOG_TRACE_SPAN_END(channel, at, track, name, span_id)                            \
    do {                                                                                  \
        if ((channel).buf != nullptr) {                                                   \
            (channel).buf->record((at), (track), ::shog::obs::Trace_kind::span_end,       \
                                  (name), (span_id));                                     \
        }                                                                                 \
    } while (0)

#define SHOG_TRACE_ASYNC_BEGIN(channel, at, track, name, async_id)                        \
    do {                                                                                  \
        if ((channel).buf != nullptr) {                                                   \
            (channel).buf->record((at), (track), ::shog::obs::Trace_kind::async_begin,    \
                                  (name), (async_id));                                    \
        }                                                                                 \
    } while (0)

#define SHOG_TRACE_ASYNC_END(channel, at, track, name, async_id)                          \
    do {                                                                                  \
        if ((channel).buf != nullptr) {                                                   \
            (channel).buf->record((at), (track), ::shog::obs::Trace_kind::async_end,      \
                                  (name), (async_id));                                    \
        }                                                                                 \
    } while (0)

#define SHOG_TRACE_INSTANT(channel, at, track, name, inst_id)                             \
    do {                                                                                  \
        if ((channel).buf != nullptr) {                                                   \
            (channel).buf->record((at), (track), ::shog::obs::Trace_kind::instant,        \
                                  (name), (inst_id));                                     \
        }                                                                                 \
    } while (0)

#define SHOG_TRACE_COUNTER(channel, at, track, name, count_value)                         \
    do {                                                                                  \
        if ((channel).buf != nullptr) {                                                   \
            (channel).buf->record((at), (track), ::shog::obs::Trace_kind::counter,        \
                                  (name), 0, (count_value));                              \
        }                                                                                 \
    } while (0)
