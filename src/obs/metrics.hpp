// Named counters / gauges / histograms sampled on engine events into
// compact sim-time series.
//
// Determinism: every metric is written by the engine that owns the emitting
// context (the event loop in run_cluster, the coordinator replay in
// run_cluster_sharded) at replayed sim times, so the series are
// byte-identical across engines and shard counts just like the trace
// stream. Storage is std::map keyed by name — snapshots iterate in sorted
// name order, never insertion or hash order.
//
// Threading: a registry is phase-owned like a Trace_sink — created before
// the run, written only by the single thread driving cloud events, read
// (snapshotted) after the run completes. No locks by design.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace shog::obs {

/// One point of a serialized series. Raw doubles are deliberate: this is a
/// serialization product (CSV/JSON boundary), mirroring Run_result.
struct Metric_point {
    double at_seconds = 0.0; // shog-lint: allow(raw-seconds) serialized metric
    double value = 0.0;
};

enum class Metric_kind : std::uint8_t { counter, gauge };

[[nodiscard]] const char* metric_kind_name(Metric_kind kind) noexcept;

/// Monotone cumulative series: add() appends the new running total,
/// coalescing same-timestamp deltas into one point.
class Counter {
public:
    void add(Sim_time at, std::uint64_t delta = 1);
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    [[nodiscard]] const std::vector<Metric_point>& points() const noexcept { return points_; }

private:
    std::uint64_t total_ = 0;
    std::vector<Metric_point> points_;
};

/// Level series: set() records on change only, coalescing same-timestamp
/// writes (the last value at a timestamp wins — matches the state the
/// engine settles on before time advances).
class Gauge {
public:
    void set(Sim_time at, double value);
    [[nodiscard]] const std::vector<Metric_point>& points() const noexcept { return points_; }

private:
    bool has_value_ = false;
    double last_ = 0.0;
    std::vector<Metric_point> points_;
};

/// Integer-bucketed distribution (floor of the observed value). Buckets
/// live in an ordered map so the snapshot is deterministic.
class Histogram {
public:
    void observe(double value);
    [[nodiscard]] std::uint64_t observations() const noexcept { return observations_; }
    [[nodiscard]] const std::map<long long, std::uint64_t>& buckets() const noexcept {
        return buckets_;
    }

private:
    std::uint64_t observations_ = 0;
    std::map<long long, std::uint64_t> buckets_;
};

/// Snapshot of a whole registry, ready for Cluster_result / CSV export.
/// Series and histograms are in sorted name order.
struct Metric_series {
    std::string name;
    Metric_kind kind = Metric_kind::counter;
    std::vector<Metric_point> points;
};

struct Metric_histogram {
    std::string name;
    std::uint64_t observations = 0;
    std::vector<std::pair<long long, std::uint64_t>> buckets;
};

struct Metrics_snapshot {
    std::vector<Metric_series> series;
    std::vector<Metric_histogram> histograms;
    [[nodiscard]] bool empty() const noexcept { return series.empty() && histograms.empty(); }
};

/// Find-or-create registry of named instruments. References returned are
/// stable for the registry's lifetime (std::map nodes never move), so
/// emitters cache them once at install time instead of re-resolving names
/// on the hot path.
class Metrics_registry {
public:
    [[nodiscard]] Counter& counter(const std::string& name) { return counters_[name]; }
    [[nodiscard]] Gauge& gauge(const std::string& name) { return gauges_[name]; }
    [[nodiscard]] Histogram& histogram(const std::string& name) { return histograms_[name]; }

    [[nodiscard]] Metrics_snapshot snapshot() const;

private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace shog::obs
