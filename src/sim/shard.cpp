// The device-sharded cluster engine. Correctness story, in one page:
//
// In run_cluster every event lives on one queue, so the global execution
// order is (time, insertion seq). Between cloud interactions a device's
// events touch only that device's state — the cloud queue is the *only*
// cross-device coupling — so any schedule that (a) runs each device's own
// events in local (time, seq) order and (b) replays the cloud interactions
// in the sequential global order produces bit-identical state everywhere.
//
// The engine splits execution into alternating phases:
//
//  - Parallel rounds: K worker threads advance their devices' local queues
//    up to (and including) the round bound — the earliest pending
//    cloud-event time, or the horizon when the cloud is idle. Cloud calls
//    made by device events (submit / account_direct) do not execute; a
//    per-device proxy buffers them with their timestamps. A device stops
//    advancing the moment an event buffers a *submit* and stays stopped
//    until the coordinator has applied all of its buffered submits: the
//    reply to a submit is a completion event the cloud hasn't scheduled
//    yet, so advancing past it would be unbounded optimism. (Direct GPU
//    accounting has no reply and never stops a device.)
//  - Serial commit: the coordinator merges the buffered ops (ordered by
//    (time, device index) — equal-time interactions from distinct devices
//    are setup-scheduled events, which the sequential queue fires in
//    device-ascending seq order) with the cloud's own events (failure,
//    repair, preemption checks, completions), firing whichever is earliest.
//    Ops win ties: an op at time t was produced by a device event that the
//    sequential engine ordered before any cloud event scheduled at t.
//    A "frontier" per device bounds where its next op can appear: the
//    first buffered op's time, else its next local event time (a device
//    can only produce ops by running events), else infinity. A cloud event
//    fires only when it precedes every frontier, so no op can ever be
//    ordered behind a cloud event it should precede. When the earliest
//    frontier is only *potential* (no buffered op yet), the coordinator
//    runs another parallel round to materialize or advance it.
//  - Completion delivery: when a completion event fires, the real cloud
//    hands each member's callback to the coordinator (Completion_sink) in
//    job order and defers its trailing dispatch(). The frontier rule
//    guarantees every delivering device has already drained its events up
//    to the completion time with an empty op buffer, so the coordinator
//    aligns the device clock (advance_to), runs the callback — every
//    teacher-detector access in the shipped strategies happens inside
//    these callbacks, so running them serially here is also what makes
//    one shared teacher safe — applies any ops it produced (a follow-up
//    submit dispatches onto the still-unfilled servers, exactly as an
//    inline callback would), then resumes the cloud's dispatch.
//
// Devices never run ahead of an unfired cloud event: round bounds equal
// the earliest cloud-event time, and any event the commit phase schedules
// is at or after the event that fired — never behind a device's clock.
//
// Shared state is phase-owned: device slots and the per-shard dirty lists
// are touched by exactly one worker during a round and only by the
// coordinator between rounds, with the barrier's mutex providing the
// happens-before (the same discipline run_sweep's result slots use; TSan
// checks it via tests/test_shard_stress.cpp). The barrier state itself is
// annotated for clang's thread-safety analysis below.
#include "sim/shard.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/thread_annotations.hpp"
#include "sim/run_internal.hpp"

namespace shog::sim {
namespace {

/// One buffered cloud interaction, replayed by the coordinator at `at`.
struct Cloud_op {
    Sim_time at;
    bool is_submit = false;
    // submit arguments (done/kind/drift_rate/replan forwarded verbatim)
    Sim_duration service;
    Cloud_runtime::Completion done;
    Cloud_job_kind kind = Cloud_job_kind::label;
    double drift_rate = 0.0;
    Cloud_runtime::Resume_replan replan;
    // account_direct argument
    Gpu_seconds gpu_seconds;
};

/// Per-device cloud proxy: records the device's cloud calls instead of
/// executing them. The base class is constructed with the *default*
/// Cloud_config, which is side-effect free (no failure events, no queue
/// traffic — only its own RNG seeding); the real cloud lives on the
/// coordinator and `real` serves the end-of-run ledger reads.
class Shard_cloud final : public Cloud_runtime {
public:
    explicit Shard_cloud(Event_queue& local_queue)
        : Cloud_runtime{local_queue}, local_queue_{local_queue} {}

    void submit(std::size_t /*device_id*/, Sim_duration service, Completion done,
                Cloud_job_kind kind, double drift_rate, Resume_replan replan) override {
        Cloud_op op;
        op.at = local_queue_.now();
        op.is_submit = true;
        op.service = service;
        op.done = std::move(done);
        op.kind = kind;
        op.drift_rate = drift_rate;
        op.replan = std::move(replan);
        ops.push_back(std::move(op));
        ++buffered_submits;
        submitted_ = true;
    }

    void account_direct(std::size_t /*device_id*/, Gpu_seconds gpu_seconds) override {
        Cloud_op op;
        op.at = local_queue_.now();
        op.gpu_seconds = gpu_seconds;
        ops.push_back(std::move(op));
    }

    [[nodiscard]] Gpu_seconds device_gpu_seconds(std::size_t device_id) const override {
        // Only read at result assembly, when every op has been replayed.
        return real->device_gpu_seconds(device_id);
    }

    /// Did the event that just ran buffer a submit? (Clears the flag.)
    [[nodiscard]] bool take_submitted() {
        const bool s = submitted_;
        submitted_ = false;
        return s;
    }

    std::deque<Cloud_op> ops; ///< FIFO; times are non-decreasing
    std::size_t buffered_submits = 0;
    const Cloud_runtime* real = nullptr;

private:
    Event_queue& local_queue_;
    bool submitted_ = false;
};

/// Everything the harness tracks for one device, plus its local queue and
/// cloud proxy. Owned by the device's shard during parallel rounds and by
/// the coordinator during commit (barrier-separated).
struct Device_slot {
    Device_slot(std::size_t id, const Device_spec& spec, const Cluster_config& config)
        : proxy{queue},
          state{id,    spec,
                queue, proxy,
                config.harness, detail::effective_hardware(spec, config.harness)} {}

    Event_queue queue;
    Shard_cloud proxy;
    detail::Device_state state;
    /// Set when an event buffers a submit; cleared by the coordinator once
    /// every buffered submit has been applied to the real cloud (the
    /// completion the device must not outrun is in the cloud queue by then).
    bool stopped = false;
};

/// Barrier state shared between the coordinator and the shard workers.
struct Shard_pool {
    explicit Shard_pool(std::size_t shard_count) : errors(shard_count) {}

    Mutex mutex;
    std::condition_variable_any cv;      ///< workers: new round (or stop) posted
    std::condition_variable_any cv_done; ///< coordinator: all workers arrived
    std::uint64_t round SHOG_GUARDED_BY(mutex) = 0;
    std::size_t running SHOG_GUARDED_BY(mutex) = 0;
    Sim_time bound SHOG_GUARDED_BY(mutex);
    bool stop SHOG_GUARDED_BY(mutex) = false;
    std::vector<std::exception_ptr> errors SHOG_GUARDED_BY(mutex);
};

/// Frontier entry: the earliest time device `device` could next interact
/// with the cloud. Ordered by (time, device index) — the sequential
/// engine's order for equal-time interactions from distinct devices.
struct Frontier {
    Sim_time at;
    std::size_t device;
};
struct Frontier_less {
    bool operator()(const Frontier& a, const Frontier& b) const noexcept {
        if (a.at != b.at) {
            return a.at < b.at;
        }
        return a.device < b.device;
    }
};

} // namespace

Cluster_result run_cluster_sharded(const std::vector<Device_spec>& devices,
                                   const Cluster_config& config,
                                   const Shard_options& options) {
    detail::validate_cluster(devices, config);

    std::size_t shards = options.shards;
    if (shards == 0) {
        shards = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    shards = std::min(shards, devices.size());

    Event_queue cloud_queue;
    Cloud_runtime cloud{cloud_queue, config.cloud};
    // Observability goes on the REAL cloud only (channel creation order —
    // cloud, then devices — mirrors run_cluster; the proxies stay dark so
    // buffered calls emit exactly once, at coordinator replay time, in the
    // sequential engine's order).
    cloud.set_observability(detail::make_trace_channel(config.obs.sink),
                            config.obs.metrics);

    // Same stable-address arena rationale as run_cluster; the slot adds the
    // device-local queue and proxy the event closures are wired to.
    Stable_arena<Device_slot> slots;
    Sim_time horizon;
    for (std::size_t i = 0; i < devices.size(); ++i) {
        slots.emplace_back(i, devices[i], config);
        slots[i].proxy.real = &cloud;
        // The device buffer is phase-owned like the rest of the slot: the
        // shard worker writes it during rounds, the coordinator during
        // completion delivery, barrier-separated.
        slots[i].state.runtime.set_trace(detail::make_trace_channel(config.obs.sink));
        horizon = std::max(horizon, Sim_time{devices[i].stream->duration()});
    }
    for (std::size_t i = 0; i < slots.size(); ++i) {
        detail::schedule_device_events(slots[i].state, slots[i].queue, config.harness);
    }
    // Strategy starts run serially in device order: their t=0 cloud calls
    // must replay device-ascending, exactly as the sequential start loop
    // issues them.
    for (std::size_t i = 0; i < slots.size(); ++i) {
        slots[i].state.spec.strategy->start(slots[i].state.runtime);
        if (slots[i].proxy.take_submitted()) {
            slots[i].stopped = true;
        }
    }

    // Completion callbacks are collected here (in job order within each
    // dispatch) instead of running inside Cloud_runtime::complete().
    std::vector<std::pair<std::size_t, Cloud_runtime::Completion>> deliveries;
    cloud.set_completion_sink(
        [&deliveries](std::size_t device, Cloud_runtime::Completion done) {
            deliveries.emplace_back(device, std::move(done));
        });

    // --- frontier bookkeeping (coordinator-only) ---
    std::set<Frontier, Frontier_less> frontiers;
    std::vector<Sim_time> frontier_at(slots.size());
    std::vector<char> in_set(slots.size(), 0);
    const auto update_frontier = [&](std::size_t d) {
        if (in_set[d] != 0) {
            frontiers.erase(Frontier{frontier_at[d], d});
            in_set[d] = 0;
        }
        Device_slot& slot = slots[d];
        if (!slot.proxy.ops.empty()) {
            frontier_at[d] = slot.proxy.ops.front().at;
        } else if (slot.queue.pending() > 0 && slot.queue.next_time() <= horizon) {
            frontier_at[d] = slot.queue.next_time();
        } else {
            return; // exhausted: no op can ever appear
        }
        frontiers.insert(Frontier{frontier_at[d], d});
        in_set[d] = 1;
    };

    const auto apply_front_op = [&](std::size_t d) {
        Device_slot& slot = slots[d];
        Cloud_op op = std::move(slot.proxy.ops.front());
        slot.proxy.ops.pop_front();
        // Align the cloud clock with the op without firing same-time cloud
        // events: ops win ties (see the file comment).
        cloud_queue.advance_to(op.at);
        if (op.is_submit) {
            cloud.submit(d, op.service, std::move(op.done), op.kind, op.drift_rate,
                         std::move(op.replan));
            --slot.proxy.buffered_submits;
            if (slot.proxy.buffered_submits == 0) {
                slot.stopped = false;
            }
        } else {
            cloud.account_direct(d, op.gpu_seconds);
        }
    };

    const auto fire_cloud_event = [&] {
        deliveries.clear();
        cloud_queue.step();
        if (deliveries.empty()) {
            return; // failure/repair/preempt/straggler or a callback-free completion
        }
        const Sim_time t_c = cloud_queue.now();
        for (auto& [d, done] : deliveries) {
            Device_slot& slot = slots[d];
            // The frontier rule blocked this completion until the device had
            // drained its events up to t_c and its ops were applied.
            SHOG_CHECK(slot.proxy.ops.empty(),
                       "delivering device has unapplied cloud ops");
            slot.queue.advance_to(t_c);
            done();
            (void)slot.proxy.take_submitted();
            // A follow-up submit must dispatch before the completed
            // dispatch's servers refill (AMS chains a fine-tune after
            // labeling) — apply its ops now, before resume_dispatch().
            while (!slot.proxy.ops.empty()) {
                apply_front_op(d);
            }
            update_frontier(d);
        }
        deliveries.clear();
        cloud.resume_dispatch();
    };

    // Merge buffered ops with cloud events until finished or until the
    // earliest frontier is only potential (the devices must run again).
    bool finished = false;
    const auto commit = [&] {
        for (;;) {
            const bool have_cloud =
                cloud_queue.pending() > 0 && cloud_queue.next_time() <= horizon;
            if (frontiers.empty()) {
                if (!have_cloud) {
                    finished = true;
                    return;
                }
                fire_cloud_event();
                continue;
            }
            const Frontier min_f = *frontiers.begin();
            if (have_cloud && cloud_queue.next_time() < min_f.at) {
                fire_cloud_event();
                continue;
            }
            if (slots[min_f.device].proxy.ops.empty()) {
                return; // potential frontier: that device must run events first
            }
            apply_front_op(min_f.device);
            update_frontier(min_f.device);
        }
    };

    // --- worker pool ---
    Shard_pool pool{shards};
    // Devices a round advanced, per shard: the commit phase refreshes only
    // these frontiers. Phase-owned like the slots themselves.
    std::vector<std::vector<std::size_t>> dirty(shards);

    const auto worker = [&slots, &pool, &dirty, shards](std::size_t s) {
        const std::size_t begin = s * slots.size() / shards;
        const std::size_t end = (s + 1) * slots.size() / shards;
        std::uint64_t seen_round = 0;
        for (;;) {
            Sim_time bound;
            pool.mutex.lock();
            while (!pool.stop && pool.round == seen_round) {
                pool.cv.wait(pool.mutex);
            }
            if (pool.stop) {
                pool.mutex.unlock();
                return;
            }
            seen_round = pool.round;
            bound = pool.bound;
            pool.mutex.unlock();

            try {
                for (std::size_t d = begin; d < end; ++d) {
                    Device_slot& slot = slots[d];
                    if (slot.stopped) {
                        continue; // waits for its submits to reach the cloud
                    }
                    bool acted = false;
                    while (!slot.stopped && slot.queue.pending() > 0 &&
                           slot.queue.next_time() <= bound) {
                        slot.queue.step();
                        acted = true;
                        if (slot.proxy.take_submitted()) {
                            slot.stopped = true;
                        }
                    }
                    if (acted) {
                        dirty[s].push_back(d);
                    }
                }
            } catch (...) {
                Mutex_lock lock{pool.mutex};
                if (!pool.errors[s]) {
                    pool.errors[s] = std::current_exception();
                }
            }

            Mutex_lock lock{pool.mutex};
            --pool.running;
            if (pool.running == 0) {
                pool.cv_done.notify_all();
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        threads.emplace_back(worker, s);
    }

    const auto shutdown = [&] {
        {
            Mutex_lock lock{pool.mutex};
            pool.stop = true;
            pool.cv.notify_all();
        }
        for (std::thread& t : threads) {
            if (t.joinable()) {
                t.join();
            }
        }
    };

    try {
        const auto run_round = [&](Sim_time bound) {
            {
                Mutex_lock lock{pool.mutex};
                pool.bound = bound;
                pool.running = shards;
                ++pool.round;
                pool.cv.notify_all();
            }
            // condition_variable_any over the annotated Mutex itself: wait()
            // unlocks/relocks it around the sleep, the guard just pins the
            // critical sections on either side.
            Mutex_lock lock{pool.mutex};
            while (pool.running > 0) {
                pool.cv_done.wait(pool.mutex);
            }
            std::exception_ptr first;
            for (const std::exception_ptr& error : pool.errors) {
                if (error) {
                    first = error;
                    break;
                }
            }
            if (first) {
                std::rethrow_exception(first); // lowest shard wins, like run_sweep
            }
        };

        // Coordinator-round diagnostics (opt-in): round instants depend on
        // the shard count by nature, so they live on an engine track that
        // is excluded from the trace determinism contract.
        obs::Trace_channel engine_trace =
            config.obs.engine_tracks ? detail::make_trace_channel(config.obs.sink)
                                     : obs::Trace_channel{};
        std::uint64_t round_index = 0;

        for (std::size_t d = 0; d < slots.size(); ++d) {
            update_frontier(d);
        }
        commit();
        while (!finished) {
            const bool have_cloud =
                cloud_queue.pending() > 0 && cloud_queue.next_time() <= horizon;
            SHOG_TRACE_INSTANT(engine_trace,
                               have_cloud ? cloud_queue.next_time() : horizon,
                               obs::track_engine(0), "round", round_index++);
            run_round(have_cloud ? cloud_queue.next_time() : horizon);
            for (std::size_t s = 0; s < shards; ++s) {
                for (const std::size_t d : dirty[s]) {
                    update_frontier(d);
                }
                dirty[s].clear();
            }
            commit();
        }
    } catch (...) {
        shutdown();
        throw;
    }
    shutdown();

    // Result assembly is shared with run_cluster verbatim; the proxies
    // forward ledger reads to the real cloud, which has replayed every
    // interaction in sequential order.
    Cluster_result cluster;
    cluster.duration = horizon.value(); // serialized metric
    cluster.devices.reserve(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
        cluster.devices.push_back(
            detail::assemble_device_result(slots[i].state, config.harness));
        cluster.fleet_map += cluster.devices.back().map;
    }
    cluster.fleet_map /= static_cast<double>(cluster.devices.size());

    detail::assemble_cloud_metrics(cluster, cloud, horizon);
    detail::snapshot_metrics(cluster, config);
    return cluster;
}

} // namespace shog::sim
