#include "sim/harness.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/arena.hpp"
#include "sim/run_internal.hpp"

namespace shog::sim {

std::uint64_t device_seed(std::uint64_t seed, std::size_t device_index) noexcept {
    // Golden-ratio stride; device 0 keeps the base seed so a cluster of one
    // reproduces run_strategy exactly. Rng mixes further internally.
    return seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(device_index);
}

Cluster_result run_cluster(const std::vector<Device_spec>& devices,
                           const Cluster_config& config) {
    detail::validate_cluster(devices, config);

    Event_queue queue;
    Cloud_runtime cloud{queue, config.cloud};
    cloud.set_observability(detail::make_trace_channel(config.obs.sink),
                            config.obs.metrics);

    // Device state lives in a chunked arena: event closures capture &state
    // for the whole run, so addresses must be stable, and adjacent devices
    // sharing chunks keeps the per-event working set tight at fleet scale.
    Stable_arena<detail::Device_state> states;
    Sim_time horizon;
    for (std::size_t i = 0; i < devices.size(); ++i) {
        states.emplace_back(i, devices[i], queue, cloud, config.harness,
                            detail::effective_hardware(devices[i], config.harness));
        states[i].runtime.set_trace(detail::make_trace_channel(config.obs.sink));
        horizon = std::max(horizon, Sim_time{devices[i].stream->duration()});
    }

    for (std::size_t i = 0; i < states.size(); ++i) {
        detail::schedule_device_events(states[i], queue, config.harness);
    }

    for (std::size_t i = 0; i < states.size(); ++i) {
        states[i].spec.strategy->start(states[i].runtime);
    }
    (void)queue.run_until(horizon);

    Cluster_result cluster;
    cluster.duration = horizon.value(); // serialized metric
    cluster.devices.reserve(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
        cluster.devices.push_back(
            detail::assemble_device_result(states[i], config.harness));
        cluster.fleet_map += cluster.devices.back().map;
    }
    cluster.fleet_map /= static_cast<double>(cluster.devices.size());

    detail::assemble_cloud_metrics(cluster, cloud, horizon);
    detail::snapshot_metrics(cluster, config);
    return cluster;
}

Run_result run_strategy(Strategy& strategy, const video::Video_stream& stream,
                        const Harness_config& config) {
    Cluster_config cluster_config;
    cluster_config.harness = config;
    Cluster_result cluster =
        run_cluster({Device_spec{&strategy, &stream, {}}}, cluster_config);
    return std::move(cluster.devices.front());
}

std::vector<double> windowed_gain(const Run_result& result, const Run_result& baseline) {
    // Align windows by index = round(start / stride) rather than by exact
    // double equality: two runs that accumulate window starts differently
    // can disagree in the last ulp, and an exact-key map would then silently
    // drop windows from the gain vector. Rounding to the nearest index
    // tolerates any offset below half a stride. The configured window length
    // is the stride of record — inferring it from the first two emitted
    // windows is only a fallback (the evaluator skips empty windows, so the
    // first gap can span several windows and an inflated stride would
    // collapse distinct windows onto one index).
    const auto stride_of = [](const Run_result& r) {
        return r.windowed_map.size() >= 2
                   ? r.windowed_map[1].first - r.windowed_map[0].first
                   : 0.0;
    };
    double stride = result.map_window > 0.0 ? result.map_window : baseline.map_window;
    if (stride <= 0.0) {
        stride = stride_of(result);
    }
    if (stride <= 0.0) {
        stride = stride_of(baseline);
    }
    if (stride <= 0.0) {
        // At most one window on each side: pair them directly.
        std::vector<double> gains;
        if (!result.windowed_map.empty() && !baseline.windowed_map.empty()) {
            gains.push_back(result.windowed_map.front().second -
                            baseline.windowed_map.front().second);
        }
        return gains;
    }
    std::map<long long, double> base;
    for (const auto& [start, value] : baseline.windowed_map) {
        base[std::llround(start / stride)] = value;
    }
    std::vector<double> gains;
    for (const auto& [start, value] : result.windowed_map) {
        const auto it = base.find(std::llround(start / stride));
        if (it != base.end()) {
            gains.push_back(value - it->second);
        }
    }
    return gains;
}

} // namespace shog::sim
