#include "sim/harness.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/arena.hpp"
#include "device/monitor.hpp"

namespace shog::sim {

std::uint64_t device_seed(std::uint64_t seed, std::size_t device_index) noexcept {
    // Golden-ratio stride; device 0 keeps the base seed so a cluster of one
    // reproduces run_strategy exactly. Rng mixes further internally.
    return seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(device_index);
}

namespace {

/// The hardware a device actually runs on: its override if set, otherwise
/// the cluster-wide harness defaults (identical to the homogeneous path).
Device_hardware effective_hardware(const Device_spec& spec, const Harness_config& config) {
    if (spec.hardware) {
        return *spec.hardware;
    }
    return Device_hardware{config.link, device::jetson_tx2(), config.contention,
                           config.edge_inference_gflops};
}

/// Everything the harness tracks for one device of the cluster.
struct Device_state {
    Device_state(std::size_t device_id, const Device_spec& spec, Event_queue& queue,
                 Cloud_runtime& cloud, const Harness_config& config,
                 const Device_hardware& hardware)
        : spec{spec},
          runtime{device_id,
                  *spec.stream,
                  queue,
                  cloud,
                  hardware.link,
                  config.h264,
                  device::Edge_compute{hardware.edge_device, hardware.contention,
                                       hardware.edge_inference_gflops},
                  device_seed(config.seed, device_id)},
          evaluator{spec.stream->num_classes(), config.iou_threshold} {}

    Device_spec spec;
    Edge_runtime runtime;
    detect::Stream_evaluator evaluator;
    device::Fps_tracker fps_tracker;
};

} // namespace

Cluster_result run_cluster(const std::vector<Device_spec>& devices,
                           const Cluster_config& config) {
    SHOG_REQUIRE(!devices.empty(), "cluster needs at least one device");
    SHOG_REQUIRE(config.harness.eval_stride >= 1, "eval stride must be >= 1");
    for (const Device_spec& spec : devices) {
        SHOG_REQUIRE(spec.strategy != nullptr, "device needs a strategy");
        SHOG_REQUIRE(spec.stream != nullptr, "device needs a stream");
    }

    Event_queue queue;
    Cloud_runtime cloud{queue, config.cloud};

    // Device state lives in a chunked arena: event closures capture &state
    // for the whole run, so addresses must be stable, and adjacent devices
    // sharing chunks keeps the per-event working set tight at fleet scale.
    Stable_arena<Device_state> states;
    Sim_time horizon;
    for (std::size_t i = 0; i < devices.size(); ++i) {
        states.emplace_back(i, devices[i], queue, cloud, config.harness,
                            effective_hardware(devices[i], config.harness));
        horizon = std::max(horizon, Sim_time{devices[i].stream->duration()});
    }

    // Per device: evaluation events (stride over frames, query the strategy,
    // score) and fps sampling ticks. Scheduling order matters only for the
    // FIFO tiebreak of simultaneous events and is deterministic.
    for (std::size_t i = 0; i < states.size(); ++i) {
        Device_state& state = states[i];
        const video::Video_stream& stream = *state.spec.stream;
        for (std::size_t idx = 0; idx < stream.frame_count();
             idx += config.harness.eval_stride) {
            const Sim_time at{static_cast<double>(idx) / stream.fps()};
            queue.schedule(at, [&state, idx] {
                const video::Frame frame = state.runtime.stream().frame_at(idx);
                std::vector<detect::Detection> detections =
                    state.spec.strategy->infer(state.runtime, frame);
                state.spec.strategy->on_inference(state.runtime, frame, detections);
                state.evaluator.add_frame(
                    frame.timestamp,
                    detect::Frame_eval{std::move(detections),
                                       video::Video_stream::ground_truth(frame)});
            });
        }
        const double video_fps = stream.fps();
        const Sim_duration duration{stream.duration()};
        const auto sample_fps = [&state, video_fps] {
            const double fps =
                state.runtime.fps_override() >= 0.0
                    ? state.runtime.fps_override()
                    : state.runtime.edge_compute().achieved_fps(
                          video_fps, state.runtime.training_active());
            state.fps_tracker.record_until(state.runtime.now(), fps);
        };
        // Tick times are computed from an integer tick index: accumulating
        // `t += fps_tick` drifts in floating point and can skip the final
        // tick, leaving the fps timeline short of the stream duration.
        const Sim_duration fps_tick = config.harness.fps_tick;
        const auto tick_count = static_cast<std::size_t>(duration / fps_tick + 1e-9);
        for (std::size_t k = 1; k <= tick_count; ++k) {
            queue.schedule(
                Sim_time{} + std::min(static_cast<double>(k) * fps_tick, duration),
                sample_fps);
        }
        // Cover the tail segment up to `duration` when the ticks don't land
        // exactly on it (duration not a multiple of fps_tick).
        if (static_cast<double>(tick_count) * fps_tick < duration) {
            queue.schedule(Sim_time{} + duration, sample_fps);
        }
    }

    for (std::size_t i = 0; i < states.size(); ++i) {
        states[i].spec.strategy->start(states[i].runtime);
    }
    (void)queue.run_until(horizon);

    Cluster_result cluster;
    cluster.duration = horizon.value(); // serialized metric
    cluster.devices.reserve(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
        Device_state& state = states[i];
        const double duration = state.spec.stream->duration();

        Run_result result;
        result.strategy = state.spec.strategy->name();
        result.duration = duration;
        result.map_pooled = state.evaluator.map();
        result.average_iou = state.evaluator.average_iou();
        result.evaluated_frames = state.evaluator.frame_count();
        const Sim_duration span{duration};
        result.up_kbps =
            state.runtime.link().up_meter().average_kbps(span).value(); // serialized metric
        result.down_kbps =
            state.runtime.link().down_meter().average_kbps(span).value(); // serialized metric
        result.average_fps = state.fps_tracker.average_fps();
        result.training_sessions = state.runtime.training_sessions();
        result.cloud_gpu_seconds = state.runtime.cloud_gpu_seconds().value(); // serialized
        for (const auto& s : state.fps_tracker.samples()) {
            result.fps_timeline.emplace_back(s.from.value(), s.fps); // serialized
        }
        result.windowed_map = state.evaluator.windowed_map(
            config.harness.map_window.value()); // detect layer keys windows by raw start
        result.map_window = config.harness.map_window.value(); // serialized
        if (!result.windowed_map.empty()) {
            double total = 0.0;
            for (const auto& [start, value] : result.windowed_map) {
                total += value;
            }
            result.map = total / static_cast<double>(result.windowed_map.size());
        } else {
            result.map = result.map_pooled;
        }
        cluster.fleet_map += result.map;
        cluster.devices.push_back(std::move(result));
    }
    cluster.fleet_map /= static_cast<double>(cluster.devices.size());

    cluster.gpu_busy_seconds =
        (horizon > Sim_time{} ? cloud.busy_seconds_within(horizon) : cloud.busy_seconds())
            .value(); // serialized metric
    cluster.gpu_utilization = horizon > Sim_time{} ? cloud.utilization(horizon) : 0.0;
    cluster.cloud_jobs = cloud.jobs_completed();
    cluster.label_jobs = cloud.labels_completed();
    cluster.mean_label_latency = cloud.mean_label_latency().value(); // serialized
    cluster.p95_label_latency = cloud.p95_label_latency().value();   // serialized
    cluster.mean_label_wait = cloud.mean_label_wait().value();       // serialized
    cluster.peak_queue_depth = cloud.peak_queue_depth();
    cluster.preemptions = cloud.preemptions();
    cluster.warm_dispatches = cloud.warm_dispatches();
    cluster.failures = cloud.failures();
    cluster.straggler_requeues = cloud.straggler_requeues();
    return cluster;
}

Run_result run_strategy(Strategy& strategy, const video::Video_stream& stream,
                        const Harness_config& config) {
    Cluster_config cluster_config;
    cluster_config.harness = config;
    Cluster_result cluster =
        run_cluster({Device_spec{&strategy, &stream, {}}}, cluster_config);
    return std::move(cluster.devices.front());
}

std::vector<double> windowed_gain(const Run_result& result, const Run_result& baseline) {
    // Align windows by index = round(start / stride) rather than by exact
    // double equality: two runs that accumulate window starts differently
    // can disagree in the last ulp, and an exact-key map would then silently
    // drop windows from the gain vector. Rounding to the nearest index
    // tolerates any offset below half a stride. The configured window length
    // is the stride of record — inferring it from the first two emitted
    // windows is only a fallback (the evaluator skips empty windows, so the
    // first gap can span several windows and an inflated stride would
    // collapse distinct windows onto one index).
    const auto stride_of = [](const Run_result& r) {
        return r.windowed_map.size() >= 2
                   ? r.windowed_map[1].first - r.windowed_map[0].first
                   : 0.0;
    };
    double stride = result.map_window > 0.0 ? result.map_window : baseline.map_window;
    if (stride <= 0.0) {
        stride = stride_of(result);
    }
    if (stride <= 0.0) {
        stride = stride_of(baseline);
    }
    if (stride <= 0.0) {
        // At most one window on each side: pair them directly.
        std::vector<double> gains;
        if (!result.windowed_map.empty() && !baseline.windowed_map.empty()) {
            gains.push_back(result.windowed_map.front().second -
                            baseline.windowed_map.front().second);
        }
        return gains;
    }
    std::map<long long, double> base;
    for (const auto& [start, value] : baseline.windowed_map) {
        base[std::llround(start / stride)] = value;
    }
    std::vector<double> gains;
    for (const auto& [start, value] : result.windowed_map) {
        const auto it = base.find(std::llround(start / stride));
        if (it != base.end()) {
            gains.push_back(value - it->second);
        }
    }
    return gains;
}

} // namespace shog::sim
