#include "sim/harness.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "device/monitor.hpp"

namespace shog::sim {

Runtime::Runtime(const video::Video_stream& stream, netsim::Link_config link_config,
                 netsim::H264_config h264_config, device::Edge_compute edge_compute,
                 std::uint64_t seed)
    : stream_{stream},
      link_{link_config},
      h264_{h264_config},
      edge_compute_{std::move(edge_compute)},
      rng_{seed} {}

Run_result run_strategy(Strategy& strategy, const video::Video_stream& stream,
                        const Harness_config& config) {
    SHOG_REQUIRE(config.eval_stride >= 1, "eval stride must be >= 1");

    device::Edge_compute edge_compute{device::jetson_tx2(), config.contention,
                                      config.edge_inference_gflops};
    Runtime rt{stream, config.link, config.h264, edge_compute, config.seed};

    detect::Stream_evaluator evaluator{stream.num_classes(), config.iou_threshold};
    device::Fps_tracker fps_tracker;

    const Seconds duration = stream.duration();

    // Evaluation events: stride over frames, query the strategy, score.
    for (std::size_t idx = 0; idx < stream.frame_count(); idx += config.eval_stride) {
        const Seconds at = static_cast<double>(idx) / stream.fps();
        rt.schedule(at, [&rt, &strategy, &evaluator, idx] {
            const video::Frame frame = rt.stream().frame_at(idx);
            std::vector<detect::Detection> detections = strategy.infer(rt, frame);
            strategy.on_inference(rt, frame, detections);
            evaluator.add_frame(frame.timestamp,
                                detect::Frame_eval{std::move(detections),
                                                   video::Video_stream::ground_truth(frame)});
        });
    }

    // fps sampling ticks.
    const double video_fps = stream.fps();
    for (Seconds t = config.fps_tick; t <= duration; t += config.fps_tick) {
        rt.schedule(t, [&rt, &fps_tracker, video_fps] {
            const double fps = rt.fps_override() >= 0.0
                                   ? rt.fps_override()
                                   : rt.edge_compute().achieved_fps(video_fps,
                                                                    rt.training_active());
            fps_tracker.record_until(rt.now(), fps);
        });
    }

    strategy.start(rt);
    (void)rt.queue().run_until(duration);

    Run_result result;
    result.strategy = strategy.name();
    result.duration = duration;
    result.map_pooled = evaluator.map();
    result.average_iou = evaluator.average_iou();
    result.evaluated_frames = evaluator.frame_count();
    result.up_kbps = rt.link().up_meter().average_kbps(duration);
    result.down_kbps = rt.link().down_meter().average_kbps(duration);
    result.average_fps = fps_tracker.average_fps();
    result.training_sessions = rt.training_sessions();
    result.cloud_gpu_seconds = rt.cloud_gpu_seconds();
    for (const auto& s : fps_tracker.samples()) {
        result.fps_timeline.emplace_back(s.from, s.fps);
    }
    result.windowed_map = evaluator.windowed_map(config.map_window);
    if (!result.windowed_map.empty()) {
        double total = 0.0;
        for (const auto& [start, value] : result.windowed_map) {
            total += value;
        }
        result.map = total / static_cast<double>(result.windowed_map.size());
    } else {
        result.map = result.map_pooled;
    }
    return result;
}

std::vector<double> windowed_gain(const Run_result& result, const Run_result& baseline) {
    std::map<double, double> base;
    for (const auto& [start, value] : baseline.windowed_map) {
        base[start] = value;
    }
    std::vector<double> gains;
    for (const auto& [start, value] : result.windowed_map) {
        const auto it = base.find(start);
        if (it != base.end()) {
            gains.push_back(value - it->second);
        }
    }
    return gains;
}

} // namespace shog::sim
