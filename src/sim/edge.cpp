#include "sim/edge.hpp"

#include <utility>

namespace shog::sim {

Edge_runtime::Edge_runtime(std::size_t device_id, const video::Video_stream& stream,
                           Event_queue& queue, Cloud_runtime& cloud,
                           netsim::Link_config link_config, netsim::H264_config h264_config,
                           device::Edge_compute edge_compute, std::uint64_t seed)
    : device_id_{device_id},
      stream_{stream},
      queue_{queue},
      cloud_{cloud},
      link_{link_config},
      h264_{h264_config},
      edge_compute_{std::move(edge_compute)},
      rng_{seed} {}

} // namespace shog::sim
