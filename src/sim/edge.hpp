// Per-device edge runtime of the cluster engine.
//
// One Edge_runtime per simulated device: its video stream, network link,
// H.264 model, edge compute model and RNG substream. All devices in a
// cluster share one discrete-event clock and one Cloud_runtime; cloud-side
// work is submitted through `cloud()` so GPU time is contended rather than
// per-device. A single-device run is just a cluster of one.
#pragma once

#include <cstdint>
#include <functional>

#include "common/event_queue.hpp"
#include "common/rng.hpp"
#include "device/compute.hpp"
#include "netsim/h264.hpp"
#include "netsim/link.hpp"
#include "netsim/messages.hpp"
#include "obs/trace.hpp"
#include "sim/cloud.hpp"
#include "video/stream.hpp"

namespace shog::sim {

class Edge_runtime {
public:
    Edge_runtime(std::size_t device_id, const video::Video_stream& stream, Event_queue& queue,
                 Cloud_runtime& cloud, netsim::Link_config link_config,
                 netsim::H264_config h264_config, device::Edge_compute edge_compute,
                 std::uint64_t seed);

    [[nodiscard]] std::size_t device_id() const noexcept { return device_id_; }
    [[nodiscard]] Sim_time now() const noexcept { return queue_.now(); }
    void schedule(Sim_duration delay, std::function<void()> action) {
        queue_.schedule_in(delay, std::move(action));
    }

    [[nodiscard]] const video::Video_stream& stream() const noexcept { return stream_; }
    [[nodiscard]] netsim::Link& link() noexcept { return link_; }
    [[nodiscard]] const netsim::H264_model& h264() const noexcept { return h264_; }
    [[nodiscard]] const netsim::Message_size_config& message_sizes() const noexcept {
        return message_sizes_;
    }
    [[nodiscard]] device::Edge_compute& edge_compute() noexcept { return edge_compute_; }
    [[nodiscard]] Rng& rng() noexcept { return rng_; }

    /// The shared cloud this device's labeling/training requests contend on.
    [[nodiscard]] Cloud_runtime& cloud() noexcept { return cloud_; }

    /// Strategies flip this while an edge training session runs; the harness
    /// samples it for the fps timeline (Fig. 4) and for lambda.
    void set_training_active(bool active) noexcept { training_active_ = active; }
    [[nodiscard]] bool training_active() const noexcept { return training_active_; }

    /// Strategies with a non-edge inference path (Cloud-Only) publish their
    /// pipeline fps here; negative means "derive from edge compute".
    void set_fps_override(double fps) noexcept { fps_override_ = fps; }
    [[nodiscard]] double fps_override() const noexcept { return fps_override_; }

    /// Cloud GPU seconds attributed to this device, however consumed
    /// (scheduler jobs or direct accounting).
    void add_cloud_gpu_seconds(Gpu_seconds s) noexcept {
        cloud_.account_direct(device_id_, s);
    }
    [[nodiscard]] Gpu_seconds cloud_gpu_seconds() const noexcept {
        return cloud_.device_gpu_seconds(device_id_);
    }

    /// Count of edge training sessions (reported in results).
    void count_training_session() noexcept { ++training_sessions_; }
    [[nodiscard]] std::size_t training_sessions() const noexcept { return training_sessions_; }

    [[nodiscard]] Event_queue& queue() noexcept { return queue_; }

    /// Install this device's trace channel (dark by default; the engines
    /// create one buffer per device when a sink is configured). Strategy
    /// phases emit through trace()/trace_track() via the SHOG_TRACE_*
    /// macros — a dark channel makes them free.
    void set_trace(obs::Trace_channel trace) noexcept { trace_ = trace; }
    [[nodiscard]] obs::Trace_channel trace() const noexcept { return trace_; }
    /// This device's phase track id (obs::track_device(device_id())).
    [[nodiscard]] std::uint32_t trace_track() const noexcept {
        return obs::track_device(device_id_);
    }

private:
    std::size_t device_id_;
    const video::Video_stream& stream_;
    Event_queue& queue_;
    Cloud_runtime& cloud_;
    netsim::Link link_;
    netsim::H264_model h264_;
    netsim::Message_size_config message_sizes_;
    device::Edge_compute edge_compute_;
    Rng rng_;
    obs::Trace_channel trace_;
    bool training_active_ = false;
    double fps_override_ = -1.0;
    std::size_t training_sessions_ = 0;
};

} // namespace shog::sim
