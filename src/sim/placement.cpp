#include "sim/placement.hpp"

#include <cstring>
#include <string>

#include "common/require.hpp"
#include "sim/policy.hpp"

namespace shog::sim {

const char* to_string(Placement_kind kind) noexcept {
    switch (kind) {
    case Placement_kind::any_free: return "any_free";
    case Placement_kind::device_affinity: return "device_affinity";
    case Placement_kind::kind_partition: return "kind_partition";
    }
    return "?";
}

Placement_kind placement_by_name(const char* name) {
    SHOG_REQUIRE(name != nullptr, "placement name must not be null");
    if (std::strcmp(name, "any_free") == 0) {
        return Placement_kind::any_free;
    }
    if (std::strcmp(name, "device_affinity") == 0) {
        return Placement_kind::device_affinity;
    }
    if (std::strcmp(name, "kind_partition") == 0) {
        return Placement_kind::kind_partition;
    }
    SHOG_REQUIRE(false, std::string{"unknown placement policy '"} + name + "'");
    return Placement_kind::any_free; // unreachable
}

namespace {

std::size_t lowest_free(const std::vector<Gpu_state>& gpus, std::size_t from = 0) {
    for (std::size_t g = from; g < gpus.size(); ++g) {
        if (!gpus[g].busy) {
            return g;
        }
    }
    return no_gpu;
}

std::size_t count_free(const std::vector<Gpu_state>& gpus, std::size_t from = 0) {
    std::size_t free = 0;
    for (std::size_t g = from; g < gpus.size(); ++g) {
        free += gpus[g].busy ? 0 : 1;
    }
    return free;
}

class Any_free_placement final : public Placement_policy {
public:
    [[nodiscard]] const char* name() const noexcept override { return "any_free"; }

    [[nodiscard]] Placement_decision place(Cloud_job_kind, std::size_t,
                                           const std::vector<Gpu_state>& gpus) const override {
        return Placement_decision{lowest_free(gpus), false};
    }

    [[nodiscard]] std::size_t eligible_free(Cloud_job_kind,
                                            const std::vector<Gpu_state>& gpus) const override {
        return count_free(gpus);
    }
};

class Device_affinity_placement final : public Placement_policy {
public:
    [[nodiscard]] const char* name() const noexcept override { return "device_affinity"; }

    [[nodiscard]] Placement_decision place(Cloud_job_kind, std::size_t device,
                                           const std::vector<Gpu_state>& gpus) const override {
        // Warm server first: the one that last loaded this device's weights.
        for (std::size_t g = 0; g < gpus.size(); ++g) {
            if (!gpus[g].busy && gpus[g].resident_device == device) {
                return Placement_decision{g, true};
            }
        }
        return Placement_decision{lowest_free(gpus), false};
    }

    [[nodiscard]] std::size_t eligible_free(Cloud_job_kind,
                                            const std::vector<Gpu_state>& gpus) const override {
        return count_free(gpus);
    }
};

class Kind_partition_placement final : public Placement_policy {
public:
    explicit Kind_partition_placement(std::size_t reserved) : reserved_{reserved} {}

    [[nodiscard]] const char* name() const noexcept override { return "kind_partition"; }

    [[nodiscard]] Placement_decision place(Cloud_job_kind kind, std::size_t,
                                           const std::vector<Gpu_state>& gpus) const override {
        // Labels fill the reserved low-index servers first; trains are kept
        // off them entirely, so a fine-tune burst can never occupy every GPU.
        const std::size_t from = kind == Cloud_job_kind::train ? reserved_ : 0;
        return Placement_decision{lowest_free(gpus, from), false};
    }

    [[nodiscard]] std::size_t eligible_free(Cloud_job_kind kind,
                                            const std::vector<Gpu_state>& gpus) const override {
        return count_free(gpus, kind == Cloud_job_kind::train ? reserved_ : 0);
    }

private:
    std::size_t reserved_;
};

} // namespace

std::unique_ptr<Placement_policy> make_placement(Placement_kind kind,
                                                 std::size_t label_reserved_gpus) {
    switch (kind) {
    case Placement_kind::any_free: return std::make_unique<Any_free_placement>();
    case Placement_kind::device_affinity: return std::make_unique<Device_affinity_placement>();
    case Placement_kind::kind_partition:
        return std::make_unique<Kind_partition_placement>(label_reserved_gpus);
    }
    SHOG_REQUIRE(false, "unknown placement policy kind");
    return nullptr; // unreachable
}

} // namespace shog::sim
