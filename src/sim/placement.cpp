#include "sim/placement.hpp"

#include <cstring>
#include <string>

#include "common/require.hpp"
#include "sim/policy.hpp"

namespace shog::sim {

const char* to_string(Placement_kind kind) noexcept {
    switch (kind) {
    case Placement_kind::any_free: return "any_free";
    case Placement_kind::device_affinity: return "device_affinity";
    case Placement_kind::kind_partition: return "kind_partition";
    case Placement_kind::speed_aware: return "speed_aware";
    }
    return "?";
}

Placement_kind placement_by_name(const char* name) {
    SHOG_REQUIRE(name != nullptr, "placement name must not be null");
    for (Placement_kind kind :
         {Placement_kind::any_free, Placement_kind::device_affinity,
          Placement_kind::kind_partition, Placement_kind::speed_aware}) {
        if (std::strcmp(name, to_string(kind)) == 0) {
            return kind;
        }
    }
    SHOG_REQUIRE(false, std::string{"unknown placement policy '"} + name + "'");
    return Placement_kind::any_free; // unreachable
}

namespace {

std::size_t lowest_free(const std::vector<Gpu_state>& gpus, std::size_t from = 0) {
    for (std::size_t g = from; g < gpus.size(); ++g) {
        if (gpus[g].available()) {
            return g;
        }
    }
    return no_gpu;
}

std::size_t count_free(const std::vector<Gpu_state>& gpus, std::size_t from = 0) {
    std::size_t free = 0;
    for (std::size_t g = from; g < gpus.size(); ++g) {
        free += gpus[g].available() ? 1 : 0;
    }
    return free;
}

class Any_free_placement final : public Placement_policy {
public:
    [[nodiscard]] const char* name() const noexcept override { return "any_free"; }

    [[nodiscard]] Placement_decision place(Cloud_job_kind, std::size_t,
                                           const std::vector<Gpu_state>& gpus) const override {
        return Placement_decision{lowest_free(gpus), false};
    }

    [[nodiscard]] std::size_t eligible_free(Cloud_job_kind,
                                            const std::vector<Gpu_state>& gpus) const override {
        return count_free(gpus);
    }
};

class Device_affinity_placement final : public Placement_policy {
public:
    [[nodiscard]] const char* name() const noexcept override { return "device_affinity"; }

    [[nodiscard]] Placement_decision place(Cloud_job_kind, std::size_t device,
                                           const std::vector<Gpu_state>& gpus) const override {
        // Warm server first: the one that last loaded this device's weights.
        for (std::size_t g = 0; g < gpus.size(); ++g) {
            if (gpus[g].available() && gpus[g].resident_device == device) {
                return Placement_decision{g, true};
            }
        }
        return Placement_decision{lowest_free(gpus), false};
    }

    [[nodiscard]] std::size_t eligible_free(Cloud_job_kind,
                                            const std::vector<Gpu_state>& gpus) const override {
        return count_free(gpus);
    }
};

class Kind_partition_placement final : public Placement_policy {
public:
    explicit Kind_partition_placement(std::size_t reserved) : reserved_{reserved} {}

    [[nodiscard]] const char* name() const noexcept override { return "kind_partition"; }

    [[nodiscard]] Placement_decision place(Cloud_job_kind kind, std::size_t,
                                           const std::vector<Gpu_state>& gpus) const override {
        // Labels fill the reserved low-index servers first; trains are kept
        // off them entirely, so a fine-tune burst can never occupy every GPU.
        const std::size_t from = kind == Cloud_job_kind::train ? reserved_ : 0;
        return Placement_decision{lowest_free(gpus, from), false};
    }

    [[nodiscard]] std::size_t eligible_free(Cloud_job_kind kind,
                                            const std::vector<Gpu_state>& gpus) const override {
        return count_free(gpus, kind == Cloud_job_kind::train ? reserved_ : 0);
    }

private:
    std::size_t reserved_;
};

class Speed_aware_placement final : public Placement_policy {
public:
    [[nodiscard]] const char* name() const noexcept override { return "speed_aware"; }

    [[nodiscard]] Placement_decision place(Cloud_job_kind kind, std::size_t device,
                                           const std::vector<Gpu_state>& gpus) const override {
        // Label dispatches take the fastest free server; train dispatches
        // take the *slowest*. A fine-tune has no latency bound, so it should
        // soak the straggler shard and leave the fast servers for the
        // latency-critical labeling path — fastest-first for everything
        // would instead hand the fast server to whichever long train frees
        // it first, and arriving labels would find only the straggler idle
        // (measurably worse p95 than even index-blind placement). Equal
        // speeds tie-break to the warm server (the one holding this device's
        // weights — same discount as device_affinity), then lowest index.
        const bool fastest = kind != Cloud_job_kind::train;
        std::size_t best = no_gpu;
        for (std::size_t g = 0; g < gpus.size(); ++g) {
            if (!gpus[g].available()) {
                continue;
            }
            bool take = best == no_gpu;
            if (!take) {
                take = fastest ? gpus[g].speed > gpus[best].speed
                               : gpus[g].speed < gpus[best].speed;
                take = take || (gpus[g].speed == gpus[best].speed &&
                                gpus[g].resident_device == device &&
                                gpus[best].resident_device != device);
            }
            if (take) {
                best = g;
            }
        }
        return Placement_decision{best,
                                  best != no_gpu && gpus[best].resident_device == device};
    }

    [[nodiscard]] std::size_t eligible_free(Cloud_job_kind,
                                            const std::vector<Gpu_state>& gpus) const override {
        return count_free(gpus);
    }
};

} // namespace

std::unique_ptr<Placement_policy> make_placement(Placement_kind kind,
                                                 std::size_t label_reserved_gpus) {
    switch (kind) {
    case Placement_kind::any_free: return std::make_unique<Any_free_placement>();
    case Placement_kind::device_affinity: return std::make_unique<Device_affinity_placement>();
    case Placement_kind::kind_partition:
        return std::make_unique<Kind_partition_placement>(label_reserved_gpus);
    case Placement_kind::speed_aware: return std::make_unique<Speed_aware_placement>();
    }
    SHOG_REQUIRE(false, "unknown placement policy kind");
    return nullptr; // unreachable
}

} // namespace shog::sim
