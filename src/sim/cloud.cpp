#include "sim/cloud.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/stats.hpp"

namespace shog::sim {

Cloud_runtime::Cloud_runtime(Event_queue& queue, Cloud_config config)
    : queue_{queue}, config_{config}, policy_{make_policy(config.policy)} {
    SHOG_REQUIRE(config_.gpu_count >= 1, "cloud needs at least one GPU");
    SHOG_REQUIRE(config_.max_batch >= 1, "max_batch must be >= 1");
    SHOG_REQUIRE(config_.batch_efficiency > 0.0 && config_.batch_efficiency <= 1.0,
                 "batch_efficiency must be in (0, 1]");
    SHOG_REQUIRE(config_.preempt_label_wait >= 0.0,
                 "preempt_label_wait must be >= 0 (0 disables preemption)");
}

void Cloud_runtime::ensure_device(std::size_t device_id) {
    if (device_id >= per_device_seconds_.size()) {
        per_device_seconds_.resize(device_id + 1, 0.0);
    }
}

bool Cloud_runtime::is_waiting(std::uint64_t job_id) const {
    for (const Sched_job& job : waiting_) {
        if (job.id == job_id) {
            return true;
        }
    }
    return false;
}

void Cloud_runtime::submit(std::size_t device_id, Seconds service, Completion done,
                           Cloud_job_kind kind) {
    SHOG_REQUIRE(service >= 0.0, "job service time must be >= 0");
    ensure_device(device_id);
    const std::uint64_t id = next_job_id_++;
    waiting_.push_back(Sched_job{device_id, service, queue_.now(), std::move(done), kind, id});
    dispatch();
    if (config_.preempt_label_wait > 0.0 && kind == Cloud_job_kind::label &&
        is_waiting(id)) {
        // The label job is stuck behind busy servers; if it is still waiting
        // when the bound expires, evict a train dispatch to make room.
        queue_.schedule_in(config_.preempt_label_wait, [this, id] { preempt_check(id); });
    }
    // Depth is what is *left* waiting behind busy servers (0 when the job
    // started immediately).
    peak_depth_ = std::max(peak_depth_, waiting_.size());
}

void Cloud_runtime::account_direct(std::size_t device_id, Seconds gpu_seconds) {
    ensure_device(device_id);
    direct_seconds_ += gpu_seconds;
    per_device_seconds_[device_id] += gpu_seconds;
}

void Cloud_runtime::dispatch() {
    while (busy_gpus_ < config_.gpu_count && !waiting_.empty()) {
        // Coalesce only on the last idle server: while other servers are
        // free, each waiting job gets its own GPU (batching must never make
        // a job wait behind a sibling when idle capacity exists).
        const std::size_t batch_limit =
            busy_gpus_ + 1 == config_.gpu_count ? config_.max_batch : 1;
        auto active = std::make_shared<Active_dispatch>();
        active->all_train = true;
        while (active->jobs.size() < batch_limit && !waiting_.empty()) {
            const std::size_t pick = select_next();
            SHOG_REQUIRE(pick < waiting_.size(), "policy picked an out-of-range job");
            // Dispatches are kind-homogeneous: teacher-labeling batches don't
            // amortize with fine-tune kernels, and coalescing a train job
            // behind a label would make the label's completion wait out the
            // train's service — re-pinning latency past the preemption bound
            // the eviction just enforced.
            if (!active->jobs.empty() &&
                waiting_[pick].kind != active->jobs.front().kind) {
                break;
            }
            Sched_job job = std::move(waiting_[pick]);
            waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(pick));
            // The first job of a dispatch runs at full service time;
            // coalesced followers are discounted by the batching efficiency.
            active->service += active->jobs.empty()
                                   ? job.service
                                   : job.service * config_.batch_efficiency;
            active->total_raw += job.service;
            active->all_train &= job.kind == Cloud_job_kind::train;
            active->jobs.push_back(std::move(job));
        }
        // Bill the dispatch total across members in proportion to raw
        // service, so which member arrived first cannot skew any device's
        // GPU-seconds ledger (the first-job full-price term is a property of
        // the *dispatch*, not of one member).
        for (const Sched_job& job : active->jobs) {
            const double share =
                active->total_raw > 0.0
                    ? job.service / active->total_raw
                    : 1.0 / static_cast<double>(active->jobs.size());
            const Seconds billed = active->service * share;
            queued_busy_seconds_ += billed;
            per_device_seconds_[job.device] += billed;
        }
        ++busy_gpus_;
        active->started = queue_.now();
        active->interval_index = dispatches_.size();
        dispatches_.push_back(Dispatch_interval{active->started, active->service});
        active_.push_back(active);
        queue_.schedule_in(active->service, [this, active] { complete(active); });
    }
}

void Cloud_runtime::complete(const std::shared_ptr<Active_dispatch>& active) {
    if (active->cancelled) {
        return; // preempted; its remainder was re-queued
    }
    const Seconds completed = queue_.now();
    active_.erase(std::find(active_.begin(), active_.end(), active));
    --busy_gpus_;
    for (const Sched_job& job : active->jobs) {
        waits_.push_back(active->started - job.submitted);
        latencies_.push_back(completed - job.submitted);
        if (job.kind == Cloud_job_kind::label) {
            label_waits_.push_back(active->started - job.submitted);
            label_latencies_.push_back(completed - job.submitted);
        }
    }
    // Completions may submit follow-up work (AMS chains a training job
    // after labeling); run them before refilling the servers so queue
    // order is preserved across the whole fleet.
    for (Sched_job& job : active->jobs) {
        if (job.done) {
            job.done();
        }
    }
    dispatch();
}

std::size_t Cloud_runtime::select_next() const {
    if (config_.preempt_label_wait > 0.0) {
        // An overdue label outranks any policy's pick: the wait bound is a
        // guarantee, not a preference. Without this, preempting a train
        // frees a server only for the policy to hand it to the next queued
        // train (FIFO front), and the starved label keeps waiting.
        std::size_t overdue = waiting_.size();
        for (std::size_t i = 0; i < waiting_.size(); ++i) {
            const Sched_job& job = waiting_[i];
            if (job.kind == Cloud_job_kind::label &&
                queue_.now() - job.submitted >= config_.preempt_label_wait &&
                (overdue == waiting_.size() ||
                 job.submitted < waiting_[overdue].submitted)) {
                overdue = i;
            }
        }
        if (overdue != waiting_.size()) {
            return overdue;
        }
    }
    return policy_->select(waiting_, per_device_seconds_);
}

void Cloud_runtime::preempt_check(std::uint64_t job_id) {
    if (!is_waiting(job_id)) {
        return; // the label job got served (or another check already acted)
    }
    // Evict the all-train dispatch with the most remaining service; ties
    // fall to the earliest-started dispatch (deterministic).
    std::shared_ptr<Active_dispatch> victim;
    Seconds victim_remaining = 0.0;
    for (const auto& active : active_) {
        if (!active->all_train || active->cancelled) {
            continue;
        }
        const Seconds remaining = active->started + active->service - queue_.now();
        if (remaining <= 0.0) {
            continue; // completes at this very instant; nothing to reclaim
        }
        if (!victim || remaining > victim_remaining) {
            victim = active;
            victim_remaining = remaining;
        }
    }
    if (victim) {
        preempt(victim);
        dispatch();
    }
}

void Cloud_runtime::preempt(const std::shared_ptr<Active_dispatch>& active) {
    const Seconds elapsed = queue_.now() - active->started;
    const double frac_done = active->service > 0.0 ? elapsed / active->service : 1.0;
    // Refund the unexecuted share of each member's bill and truncate the
    // occupancy interval to what actually ran.
    for (const Sched_job& job : active->jobs) {
        const double share = active->total_raw > 0.0
                                 ? job.service / active->total_raw
                                 : 1.0 / static_cast<double>(active->jobs.size());
        const Seconds refund = active->service * share * (1.0 - frac_done);
        queued_busy_seconds_ -= refund;
        per_device_seconds_[job.device] -= refund;
    }
    dispatches_[active->interval_index].service = elapsed;
    active->cancelled = true;
    active_.erase(std::find(active_.begin(), active_.end(), active));
    --busy_gpus_;
    ++preemptions_;
    // Checkpoint/resume: the unexecuted remainder goes back in the queue as
    // the same jobs with proportionally reduced service; `submitted` stays
    // at first submission so latency covers the interruption.
    for (Sched_job& job : active->jobs) {
        job.service *= 1.0 - frac_done;
        waiting_.push_back(std::move(job));
    }
    peak_depth_ = std::max(peak_depth_, waiting_.size());
}

Seconds Cloud_runtime::device_gpu_seconds(std::size_t device_id) const {
    return device_id < per_device_seconds_.size() ? per_device_seconds_[device_id] : 0.0;
}

Seconds Cloud_runtime::busy_seconds_within(Seconds horizon) const {
    // Clamp each dispatch interval to the horizon so a job straddling the
    // end of the run only counts its in-horizon part.
    Seconds in_horizon = 0.0;
    for (const Dispatch_interval& d : dispatches_) {
        if (d.start >= horizon) {
            continue;
        }
        in_horizon += std::min(d.service, horizon - d.start);
    }
    return in_horizon + direct_seconds_;
}

double Cloud_runtime::utilization(Seconds horizon) const {
    SHOG_REQUIRE(horizon > 0.0, "horizon must be positive");
    return busy_seconds_within(horizon) / (horizon * static_cast<double>(config_.gpu_count));
}

namespace {

Seconds mean_of(const std::vector<Seconds>& values) {
    if (values.empty()) {
        return 0.0;
    }
    double total = 0.0;
    for (Seconds s : values) {
        total += s;
    }
    return total / static_cast<double>(values.size());
}

} // namespace

Seconds Cloud_runtime::mean_label_latency() const { return mean_of(label_latencies_); }

Seconds Cloud_runtime::p95_label_latency() const {
    return label_latencies_.empty() ? 0.0 : quantile(label_latencies_, 0.95);
}

Seconds Cloud_runtime::mean_label_wait() const { return mean_of(label_waits_); }

} // namespace shog::sim
