#include "sim/cloud.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/stats.hpp"

namespace shog::sim {

Cloud_runtime::Cloud_runtime(Event_queue& queue, Cloud_config config)
    : queue_{queue}, config_{config} {
    SHOG_REQUIRE(config_.gpu_count >= 1, "cloud needs at least one GPU");
    SHOG_REQUIRE(config_.max_batch >= 1, "max_batch must be >= 1");
    SHOG_REQUIRE(config_.batch_efficiency > 0.0 && config_.batch_efficiency <= 1.0,
                 "batch_efficiency must be in (0, 1]");
}

void Cloud_runtime::ensure_device(std::size_t device_id) {
    if (device_id >= per_device_seconds_.size()) {
        per_device_seconds_.resize(device_id + 1, 0.0);
    }
}

void Cloud_runtime::submit(std::size_t device_id, Seconds service, Completion done,
                           Cloud_job_kind kind) {
    SHOG_REQUIRE(service >= 0.0, "job service time must be >= 0");
    ensure_device(device_id);
    waiting_.push_back(Job{device_id, service, queue_.now(), std::move(done), kind});
    dispatch();
    // Depth is what is *left* waiting behind busy servers (0 when the job
    // started immediately).
    peak_depth_ = std::max(peak_depth_, waiting_.size());
}

void Cloud_runtime::account_direct(std::size_t device_id, Seconds gpu_seconds) {
    ensure_device(device_id);
    direct_seconds_ += gpu_seconds;
    per_device_seconds_[device_id] += gpu_seconds;
}

void Cloud_runtime::dispatch() {
    while (busy_gpus_ < config_.gpu_count && !waiting_.empty()) {
        // Coalesce only on the last idle server: while other servers are
        // free, each waiting job gets its own GPU (batching must never make
        // a job wait behind a sibling when idle capacity exists).
        const std::size_t batch_limit =
            busy_gpus_ + 1 == config_.gpu_count ? config_.max_batch : 1;
        auto batch = std::make_shared<std::vector<Job>>();
        Seconds total_service = 0.0;
        while (batch->size() < batch_limit && !waiting_.empty()) {
            Job job = std::move(waiting_.front());
            waiting_.pop_front();
            // The first job of a dispatch pays full price; coalesced
            // followers are discounted by the batching efficiency.
            const Seconds billed =
                batch->empty() ? job.service : job.service * config_.batch_efficiency;
            total_service += billed;
            queued_busy_seconds_ += billed;
            per_device_seconds_[job.device] += billed;
            batch->push_back(std::move(job));
        }
        ++busy_gpus_;
        const Seconds started = queue_.now();
        dispatches_.push_back(Dispatch_interval{started, total_service});
        queue_.schedule_in(total_service, [this, batch, started] {
            const Seconds completed = queue_.now();
            --busy_gpus_;
            for (Job& job : *batch) {
                waits_.push_back(started - job.submitted);
                latencies_.push_back(completed - job.submitted);
                if (job.kind == Cloud_job_kind::label) {
                    label_waits_.push_back(started - job.submitted);
                    label_latencies_.push_back(completed - job.submitted);
                }
            }
            // Completions may submit follow-up work (AMS chains a training
            // job after labeling); run them before refilling the servers so
            // FIFO order is preserved across the whole fleet.
            for (Job& job : *batch) {
                if (job.done) {
                    job.done();
                }
            }
            dispatch();
        });
    }
}

Seconds Cloud_runtime::device_gpu_seconds(std::size_t device_id) const {
    return device_id < per_device_seconds_.size() ? per_device_seconds_[device_id] : 0.0;
}

Seconds Cloud_runtime::busy_seconds_within(Seconds horizon) const {
    // Clamp each dispatch interval to the horizon so a job straddling the
    // end of the run only counts its in-horizon part.
    Seconds in_horizon = 0.0;
    for (const Dispatch_interval& d : dispatches_) {
        if (d.start >= horizon) {
            continue;
        }
        in_horizon += std::min(d.service, horizon - d.start);
    }
    return in_horizon + direct_seconds_;
}

double Cloud_runtime::utilization(Seconds horizon) const {
    SHOG_REQUIRE(horizon > 0.0, "horizon must be positive");
    return busy_seconds_within(horizon) / (horizon * static_cast<double>(config_.gpu_count));
}

namespace {

Seconds mean_of(const std::vector<Seconds>& values) {
    if (values.empty()) {
        return 0.0;
    }
    double total = 0.0;
    for (Seconds s : values) {
        total += s;
    }
    return total / static_cast<double>(values.size());
}

} // namespace

Seconds Cloud_runtime::mean_label_latency() const { return mean_of(label_latencies_); }

Seconds Cloud_runtime::p95_label_latency() const {
    return label_latencies_.empty() ? 0.0 : quantile(label_latencies_, 0.95);
}

Seconds Cloud_runtime::mean_label_wait() const { return mean_of(label_waits_); }

} // namespace shog::sim
