#include "sim/cloud.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/stats.hpp"

namespace shog::sim {

namespace {

/// Exponentially distributed delay with the given mean. uniform() is in
/// [0, 1), so 1 - u is in (0, 1] and the log is finite.
Sim_duration exponential_delay(Rng& rng, Sim_duration mean) {
    return -mean * std::log(1.0 - rng.uniform());
}

} // namespace

Cloud_runtime::Cloud_runtime(Event_queue& queue, Cloud_config config)
    : queue_{queue},
      config_{std::move(config)},
      policy_{make_policy(config_.policy)},
      placement_{make_placement(config_.placement, config_.label_reserved_gpus)},
      gpus_(config_.gpu_count),
      gpu_finalized_busy_(config_.gpu_count, Gpu_seconds{}) {
    SHOG_REQUIRE(config_.gpu_count >= 1, "cloud needs at least one GPU");
    SHOG_REQUIRE(config_.max_batch >= 1, "max_batch must be >= 1");
    SHOG_REQUIRE(config_.batch_efficiency > 0.0 && config_.batch_efficiency <= 1.0,
                 "batch_efficiency must be in (0, 1]");
    SHOG_REQUIRE(config_.affinity_warm_factor > 0.0 && config_.affinity_warm_factor <= 1.0,
                 "affinity_warm_factor must be in (0, 1]");
    SHOG_REQUIRE(config_.placement != Placement_kind::kind_partition ||
                     config_.label_reserved_gpus < config_.gpu_count,
                 "kind_partition must leave at least one unreserved GPU for train jobs");
    SHOG_REQUIRE(config_.preempt_label_wait >= Sim_duration{},
                 "preempt_label_wait must be >= 0 (0 disables preemption)");
    SHOG_REQUIRE(config_.gpu_profiles.empty() ||
                     config_.gpu_profiles.size() == config_.gpu_count,
                 "gpu_profiles must be empty or have one entry per GPU");
    SHOG_REQUIRE(config_.straggler_requeue_factor == 0.0 ||
                     config_.straggler_requeue_factor >= 1.0,
                 "straggler_requeue_factor must be 0 (off) or >= 1");
    // Per-server substreams from one base: adding servers or jobs never
    // shifts another server's failure times.
    Rng reliability_base{config_.reliability_seed};
    failure_rngs_.reserve(gpus_.size());
    for (std::size_t g = 0; g < gpus_.size(); ++g) {
        const Gpu_profile& profile = profile_of(g);
        SHOG_REQUIRE(profile.speed > 0.0, "Gpu_profile::speed must be > 0");
        SHOG_REQUIRE(profile.mtbf > Sim_duration{},
                     "Gpu_profile::mtbf must be > 0 (inf = never)");
        SHOG_REQUIRE(!std::isfinite(profile.mtbf.value()) || // raw read: finiteness test
                         profile.mttr > Sim_duration{},
                     "Gpu_profile::mttr must be > 0 when mtbf is finite");
        gpus_[g].speed = profile.speed;
        failure_rngs_.push_back(reliability_base.split(g));
        schedule_failure(g);
    }
}

void Cloud_runtime::set_observability(obs::Trace_channel trace,
                                      obs::Metrics_registry* metrics) {
    trace_ = trace;
    metrics_ = metrics;
    if (metrics_ == nullptr) {
        return;
    }
    depth_gauge_ = &metrics_->gauge("cloud.queue_depth");
    busy_gauge_ = &metrics_->gauge("cloud.busy_gpus");
    submit_counter_ = &metrics_->counter("cloud.submits");
    dispatch_counter_ = &metrics_->counter("cloud.dispatches");
    warm_counter_ = &metrics_->counter("cloud.warm_dispatches");
    completion_counter_ = &metrics_->counter("cloud.jobs_completed");
    preempt_counter_ = &metrics_->counter("cloud.preemptions");
    requeue_counter_ = &metrics_->counter("cloud.requeued_jobs");
    straggler_counter_ = &metrics_->counter("cloud.straggler_requeues");
    failure_counter_ = &metrics_->counter("cloud.failures");
    batch_histogram_ = &metrics_->histogram("cloud.batch_occupancy");
}

void Cloud_runtime::sample_gauges() {
    if (metrics_ == nullptr) {
        return;
    }
    depth_gauge_->set(queue_.now(), static_cast<double>(queue_depth()));
    busy_gauge_->set(queue_.now(), static_cast<double>(busy_gpu_count()));
}

void Cloud_runtime::ensure_device(std::size_t device_id) {
    if (device_id >= per_device_seconds_.size()) {
        per_device_seconds_.resize(device_id + 1, Gpu_seconds{});
    }
}

void Cloud_runtime::enqueue(Sched_job job) {
    job.seq = next_seq_++;
    waiting_ids_.insert(job.id);
    waiting_labels_ += job.kind == Cloud_job_kind::label ? 1 : 0;
    waiting_.push_back(std::move(job));
}

Sched_job Cloud_runtime::take_waiting(std::size_t index) {
    Sched_job job = std::move(waiting_[index]);
    waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(index));
    waiting_ids_.erase(job.id);
    overdue_ids_.erase(job.id);
    waiting_labels_ -= job.kind == Cloud_job_kind::label ? 1 : 0;
    return job;
}

void Cloud_runtime::submit(std::size_t device_id, Sim_duration service, Completion done,
                           Cloud_job_kind kind, double drift_rate, Resume_replan replan) {
    SHOG_REQUIRE(service >= Sim_duration{}, "job service time must be >= 0");
    ensure_device(device_id);
    const std::uint64_t id = next_job_id_++;
    Sched_job job;
    job.device = device_id;
    job.service = service;
    job.submitted = queue_.now();
    job.done = std::move(done);
    job.kind = kind;
    job.id = id;
    job.drift_rate = drift_rate;
    job.replan = std::move(replan);
    enqueue(std::move(job));
    // The job's whole cloud lifetime is one async span on the scheduler
    // track, bracketed submit -> complete; instants mark the edges within.
    SHOG_TRACE_ASYNC_BEGIN(trace_, queue_.now(), obs::track_cloud,
                           kind_label(kind == Cloud_job_kind::train), id);
    SHOG_TRACE_INSTANT(trace_, queue_.now(), obs::track_cloud, "submit", id);
    if (submit_counter_ != nullptr) {
        submit_counter_->add(queue_.now());
    }
    dispatch();
    if (config_.preempt_label_wait > Sim_duration{} && kind == Cloud_job_kind::label &&
        is_waiting(id)) {
        // The label job is stuck behind busy servers; if it is still waiting
        // when the bound expires, evict a train dispatch to make room.
        queue_.schedule_in(config_.preempt_label_wait, [this, id] { preempt_check(id); });
    }
    // Depth is what is *left* waiting behind busy servers (0 when the job
    // started immediately).
    peak_depth_ = std::max(peak_depth_, waiting_.size());
    sample_gauges();
}

void Cloud_runtime::account_direct(std::size_t device_id, Gpu_seconds gpu_seconds) {
    ensure_device(device_id);
    direct_seconds_ += gpu_seconds;
    per_device_seconds_[device_id] += gpu_seconds;
}

void Cloud_runtime::dispatch() {
    // Capacity just changed (a dispatch completed, a server was repaired, a
    // checkpoint freed one): labels stuck past their straggler bound get
    // first claim on any faster server that opened up.
    requeue_overdue_stragglers();
    while (!waiting_.empty()) {
        if (available_gpu_count() == 0) {
            break; // every server busy or failed: nothing can be placed
        }
        // Head job: the scheduling policy's pick (overdue labels first). If
        // the placement policy cannot put it on any free server — a train
        // while only label-reserved servers are idle — fall back to the
        // oldest placeable job, so a reserved server never sits idle with
        // eligible work queued behind an unplaceable head.
        std::size_t pick = select_next();
        Placement_decision where =
            placement_->place(waiting_[pick].kind, waiting_[pick].device, gpus_);
        if (where.gpu == no_gpu) {
            // Placement refuses on job *kind* only (kind_partition keeps
            // trains off reserved servers), so the fallback candidate is the
            // oldest job of the other kind — not a place() sweep of the
            // whole queue, which would turn every event of an all-train
            // backlog quadratic in queue depth. A refused train falls back
            // to the first waiting label (queue position order is submission
            // order for labels, and the label counter makes the empty case
            // O(1)); the reverse direction cannot happen with the shipped
            // placements (labels are placeable on every server) but is kept
            // for future placements that can refuse them.
            const Cloud_job_kind refused = waiting_[pick].kind;
            std::size_t fallback = waiting_.size();
            if (refused == Cloud_job_kind::train && waiting_labels_ > 0) {
                for (std::size_t i = 0; i < waiting_.size(); ++i) {
                    if (waiting_[i].kind == Cloud_job_kind::label) {
                        fallback = i;
                        break;
                    }
                }
            } else if (refused == Cloud_job_kind::label &&
                       waiting_labels_ < waiting_.size()) {
                for (std::size_t i = 0; i < waiting_.size(); ++i) {
                    if (waiting_[i].kind != refused &&
                        (fallback == waiting_.size() ||
                         fifo_before(waiting_[i], waiting_[fallback]))) {
                        fallback = i;
                    }
                }
            }
            if (fallback == waiting_.size()) {
                break; // no placeable job of the other kind waiting
            }
            where = placement_->place(waiting_[fallback].kind, waiting_[fallback].device,
                                      gpus_);
            if (where.gpu == no_gpu) {
                break; // every free server is ineligible for every waiting job
            }
            pick = fallback;
        }
        // Coalesce only on the last idle server eligible for this kind:
        // while other eligible servers are free, each waiting job gets its
        // own GPU (batching must never make a job wait behind a sibling when
        // idle capacity exists).
        const std::size_t batch_limit =
            placement_->eligible_free(waiting_[pick].kind, gpus_) == 1 ? config_.max_batch
                                                                       : 1;
        auto active = std::make_shared<Active_dispatch>();
        // Assigned whether or not tracing is on, so traced and dark runs
        // transition through identical state.
        active->trace_id = next_dispatch_id_++;
        active->all_train = true;
        active->jobs.push_back(take_waiting(pick));
        while (active->jobs.size() < batch_limit && !waiting_.empty()) {
            const std::size_t next = select_next();
            SHOG_REQUIRE(next < waiting_.size(), "policy picked an out-of-range job");
            // Dispatches are kind-homogeneous: teacher-labeling batches don't
            // amortize with fine-tune kernels, and coalescing a train job
            // behind a label would make the label's completion wait out the
            // train's service — re-pinning latency past the preemption bound
            // the eviction just enforced.
            if (waiting_[next].kind != active->jobs.front().kind) {
                break;
            }
            active->jobs.push_back(take_waiting(next));
        }
        for (const Sched_job& job : active->jobs) {
            // The first job of a dispatch runs at full service time;
            // coalesced followers are discounted by the batching efficiency.
            active->service += active->jobs.front().id == job.id
                                   ? job.service
                                   : job.service * config_.batch_efficiency;
            active->total_raw += job.service;
            active->all_train &= job.kind == Cloud_job_kind::train;
        }
        // Warm start: the server still holds this device's weights, so the
        // whole dispatch (weight load amortizes across coalesced members)
        // runs at a discount.
        if (where.warm) {
            active->service *= config_.affinity_warm_factor;
            ++warm_dispatches_;
        }
        // Server speed: a straggler shard holds the dispatch (and bills its
        // occupancy) for nominal / speed wall seconds. speed 1 divides
        // exactly, so default profiles stay bit-identical.
        active->service /= gpus_[where.gpu].speed;
        // Bill the dispatch total across members in proportion to raw
        // service, so which member arrived first cannot skew any device's
        // GPU-seconds ledger (the first-job full-price term — and the warm
        // discount — are properties of the *dispatch*, not of one member).
        for (const Sched_job& job : active->jobs) {
            const double share =
                active->total_raw > Sim_duration{}
                    ? job.service / active->total_raw
                    : 1.0 / static_cast<double>(active->jobs.size());
            const Gpu_seconds billed = Gpu_seconds::of(active->service * share);
            queued_busy_seconds_ += billed;
            per_device_seconds_[job.device] += billed;
        }
        active->gpu = where.gpu;
        gpus_[where.gpu].busy = true;
        gpus_[where.gpu].resident_device = active->jobs.front().device;
        active->started = queue_.now();
        active_.push_back(active);
        // Occupancy span on the server's track (dispatches never overlap on
        // one server: each sets busy until complete/checkpoint clears it, so
        // B/E pairs nest trivially); per-member instants on the scheduler
        // track tie the queue picture back to each job id.
        SHOG_TRACE_SPAN_BEGIN(trace_, queue_.now(), obs::track_gpu(where.gpu),
                              kind_label(active->all_train), active->trace_id);
        if (where.warm) {
            SHOG_TRACE_INSTANT(trace_, queue_.now(), obs::track_gpu(where.gpu), "warm",
                               active->trace_id);
        }
        for (const Sched_job& job : active->jobs) {
            SHOG_TRACE_INSTANT(trace_, queue_.now(), obs::track_cloud, "dispatch", job.id);
        }
        if (dispatch_counter_ != nullptr) {
            dispatch_counter_->add(queue_.now());
            batch_histogram_->observe(static_cast<double>(active->jobs.size()));
            if (where.warm) {
                warm_counter_->add(queue_.now());
            }
        }
        queue_.schedule_in(active->service, [this, active] { complete(active); });
        // Straggler bound: only a server too slow to finish this label
        // dispatch within factor x nominal service is ever checked (on a
        // speed-1 server the bound falls past completion and no event is
        // scheduled, so healthy clouds pay nothing). A dispatch is checked
        // while it carries at least one member that has never escaped a
        // straggler — a batch that coalesced a requeued remainder with
        // fresh labels must not strand the fresh ones — and never when all
        // members are already requeued (see Sched_job::straggler_requeued
        // for the termination argument).
        if (config_.straggler_requeue_factor > 0.0 && !active->all_train) {
            bool all_requeued = true;
            for (const Sched_job& job : active->jobs) {
                all_requeued = all_requeued && job.straggler_requeued;
            }
            const Sim_duration nominal = active->service * gpus_[active->gpu].speed;
            const Sim_duration bound = config_.straggler_requeue_factor * nominal;
            if (!all_requeued && nominal > Sim_duration{} && bound < active->service) {
                queue_.schedule_in(bound, [this, active] { straggler_check(active); });
            }
        }
        if (active->all_train && config_.preempt_label_wait > Sim_duration{}) {
            // Defensive backstop for the wait bound: if a train dispatch
            // ever starts while an overdue label is still queued, re-arm its
            // check immediately instead of letting the bound lapse for the
            // train's whole service. With the shipped placements this branch
            // is unreachable — overdue labels outrank every policy pick and
            // are placeable on any free server, so a train head-pick implies
            // no overdue label was waiting — but a future placement that can
            // refuse labels (per-device quotas, say) would need it, and
            // trains only enter flight here.
            const std::size_t overdue = find_overdue();
            if (overdue != waiting_.size()) {
                const std::uint64_t id = waiting_[overdue].id;
                queue_.schedule_in(Sim_duration{}, [this, id] { preempt_check(id); });
            }
        }
    }
    sample_gauges();
}

void Cloud_runtime::complete(const std::shared_ptr<Active_dispatch>& active) {
    if (active->cancelled) {
        return; // preempted; its remainder was re-queued
    }
    const Sim_time completed = queue_.now();
    active_.erase(std::find(active_.begin(), active_.end(), active));
    gpus_[active->gpu].busy = false;
    finalize_occupancy(active->gpu, active->service);
    SHOG_TRACE_SPAN_END(trace_, completed, obs::track_gpu(active->gpu),
                        kind_label(active->all_train), active->trace_id);
    if (completion_counter_ != nullptr) {
        completion_counter_->add(completed, active->jobs.size());
    }
    for (const Sched_job& job : active->jobs) {
        SHOG_TRACE_ASYNC_END(trace_, completed, obs::track_cloud,
                             kind_label(job.kind == Cloud_job_kind::train), job.id);
        waits_.push_back(active->started - job.submitted);
        latencies_.push_back(completed - job.submitted);
        if (job.kind == Cloud_job_kind::label) {
            ++labels_completed_;
            label_wait_sum_ += active->started - job.submitted;
            label_latency_sum_ += completed - job.submitted;
            label_latency_p95_.add((completed - job.submitted).value()); // quantile over raw seconds
        }
    }
    sample_gauges();
    // Completions may submit follow-up work (AMS chains a training job
    // after labeling); run them before refilling the servers so queue
    // order is preserved across the whole fleet. With a completion sink
    // installed, callbacks are handed off instead (in the same job order)
    // and the trailing dispatch() is deferred to resume_dispatch(), so an
    // externally-run callback still submits before the servers refill.
    std::size_t handed_off = 0;
    for (Sched_job& job : active->jobs) {
        if (!job.done) {
            continue;
        }
        if (sink_) {
            sink_(job.device, std::move(job.done));
            ++handed_off;
        } else {
            job.done();
        }
    }
    if (handed_off > 0) {
        dispatch_deferred_ = true;
        return;
    }
    dispatch();
}

void Cloud_runtime::resume_dispatch() {
    if (dispatch_deferred_) {
        dispatch_deferred_ = false;
        dispatch();
    }
}

bool Cloud_runtime::is_overdue(const Sched_job& job) const {
    // The overdue mark is authoritative: it is set by the job's own bound
    // timer, so it cannot miss by an ulp the way `now - submitted >= bound`
    // can when `now` was formed as `submitted + bound` and rounded down.
    return config_.preempt_label_wait > Sim_duration{} && job.kind == Cloud_job_kind::label &&
           (queue_.now() - job.submitted >= config_.preempt_label_wait ||
            overdue_ids_.count(job.id) != 0);
}

std::size_t Cloud_runtime::find_overdue() const {
    if (config_.preempt_label_wait == Sim_duration{} || waiting_labels_ == 0) {
        return waiting_.size();
    }
    // Among never-checkpointed labels queue position order == submission
    // order, so the *first* label is the oldest of those; if it is not
    // clock-overdue, none of them are. Labels CAN re-enter at the back with
    // an older submission time (failure/straggler checkpoints re-queue
    // them), but every such label is covered by the overdue_ids_ deep scan
    // below: checkpoint() marks it synchronously when its bound already
    // expired and re-arms its check timer otherwise (a younger label marked
    // within this same instant — the ulp corner — is covered the same way).
    for (std::size_t i = 0; i < waiting_.size(); ++i) {
        if (waiting_[i].kind != Cloud_job_kind::label) {
            continue;
        }
        if (is_overdue(waiting_[i])) {
            return i;
        }
        break;
    }
    if (!overdue_ids_.empty()) {
        std::size_t best = waiting_.size();
        for (std::size_t i = 0; i < waiting_.size(); ++i) {
            if (is_overdue(waiting_[i]) &&
                (best == waiting_.size() || fifo_before(waiting_[i], waiting_[best]))) {
                best = i;
            }
        }
        return best;
    }
    return waiting_.size();
}

std::size_t Cloud_runtime::select_next() const {
    // An overdue label outranks any policy's pick: the wait bound is a
    // guarantee, not a preference. Without this, preempting a train frees a
    // server only for the policy to hand it to the next queued train, and
    // the starved label keeps waiting.
    const std::size_t overdue = find_overdue();
    if (overdue != waiting_.size()) {
        return overdue;
    }
    return policy_->select(waiting_, per_device_seconds_, queue_.now());
}

void Cloud_runtime::preempt_check(std::uint64_t job_id) {
    if (!is_waiting(job_id)) {
        return; // the label job got served (or another check already acted)
    }
    // The bound has expired for this job while it waits: record that fact so
    // the overdue override in select_next sees it from now on (the clock
    // test alone can round an ulp short at exactly the timer's firing time).
    overdue_ids_.insert(job_id);
    SHOG_TRACE_INSTANT(trace_, queue_.now(), obs::track_cloud, "overdue", job_id);
    // Evict the all-train dispatch with the most remaining service; ties
    // fall to the earliest-started dispatch (deterministic).
    std::shared_ptr<Active_dispatch> victim;
    Sim_duration victim_remaining;
    for (const auto& active : active_) {
        if (!active->all_train || active->cancelled) {
            continue;
        }
        const Sim_duration remaining = active->started + active->service - queue_.now();
        if (remaining <= Sim_duration{}) {
            continue; // completes at this very instant; nothing to reclaim
        }
        if (!victim || remaining > victim_remaining) {
            victim = active;
            victim_remaining = remaining;
        }
    }
    if (victim) {
        preempt(victim);
        dispatch();
    }
    // No victim is not a pass: the job is now marked overdue, so it outranks
    // every policy pick at the next server-free instant — no train can jump
    // ahead of it, however long it waits. (dispatch() additionally re-arms
    // this check if a train dispatch ever starts with the mark still queued;
    // a *polling* re-arm would instead put every waiting label on a periodic
    // timer and blow the event queue up quadratically when oversubscribed.)
}

void Cloud_runtime::preempt(const std::shared_ptr<Active_dispatch>& active) {
    ++preemptions_;
    SHOG_TRACE_INSTANT(trace_, queue_.now(), obs::track_cloud, "preempt", active->trace_id);
    if (preempt_counter_ != nullptr) {
        preempt_counter_->add(queue_.now());
    }
    checkpoint(active);
}

void Cloud_runtime::checkpoint(std::shared_ptr<Active_dispatch> active) {
    const Sim_duration elapsed = queue_.now() - active->started;
    const double frac_done =
        active->service > Sim_duration{} ? elapsed / active->service : 1.0;
    // Refund the unexecuted share of each member's bill and truncate the
    // occupancy interval to what actually ran.
    for (const Sched_job& job : active->jobs) {
        const double share = active->total_raw > Sim_duration{}
                                 ? job.service / active->total_raw
                                 : 1.0 / static_cast<double>(active->jobs.size());
        const Gpu_seconds refund = Gpu_seconds::of(active->service * share * (1.0 - frac_done));
        queued_busy_seconds_ -= refund;
        per_device_seconds_[job.device] -= refund;
    }
    finalize_occupancy(active->gpu, elapsed);
    active->cancelled = true;
    active_.erase(std::find(active_.begin(), active_.end(), active));
    gpus_[active->gpu].busy = false;
    // The occupancy span ends truncated at the checkpoint; the cancelled
    // completion event emits nothing, so the track stays well-nested.
    SHOG_TRACE_SPAN_END(trace_, queue_.now(), obs::track_gpu(active->gpu),
                        kind_label(active->all_train), active->trace_id);
    SHOG_TRACE_INSTANT(trace_, queue_.now(), obs::track_cloud, "checkpoint",
                       active->trace_id);
    // Checkpoint/resume: the unexecuted remainder goes back in the queue as
    // the same jobs with proportionally reduced service; `submitted` stays
    // at first submission so latency covers the interruption. The warm
    // discount and server speed (if any) were baked into active->service,
    // so frac_done prices the raw remainder consistently on whichever
    // server resumes it. A job with a resume planner may shrink its
    // remainder further (an AMS fine-tune drops samples that went stale
    // while checkpointed) — never grow it, so billing stays conservative.
    for (Sched_job& job : active->jobs) {
        Sim_duration remainder = job.service * (1.0 - frac_done);
        if (job.replan) {
            remainder = std::clamp(job.replan(remainder, queue_.now()), Sim_duration{},
                                   remainder);
        }
        const bool is_label = job.kind == Cloud_job_kind::label;
        const std::uint64_t id = job.id;
        const Sim_time submitted = job.submitted;
        job.service = remainder;
        enqueue(std::move(job));
        SHOG_TRACE_INSTANT(trace_, queue_.now(), obs::track_cloud, "requeue", id);
        if (requeue_counter_ != nullptr) {
            requeue_counter_->add(queue_.now());
        }
        // Re-arm the wait bound for re-queued *labels* (failure and
        // straggler checkpoints re-queue them; pre-reliability only train
        // remainders were ever re-enqueued): the submit-time one-shot timer
        // is long spent, so without this the bound would silently lapse —
        // the exact bug class the overdue mark fixed for the waiting path.
        // The bound still measures from first submission. A label already
        // past it is marked overdue *synchronously*: the caller's very next
        // dispatch() must see the override (find_overdue's deep scan keys
        // off overdue_ids_), or a policy could hand the freed server to a
        // train that the 0-delay check would then immediately preempt. The
        // scheduled check still runs for the eviction itself.
        if (is_label && config_.preempt_label_wait > Sim_duration{}) {
            const Sim_time expires = submitted + config_.preempt_label_wait;
            if (queue_.now() >= expires) {
                overdue_ids_.insert(id);
            }
            queue_.schedule_in(std::max(Sim_duration{}, expires - queue_.now()),
                               [this, id] { preempt_check(id); });
        }
    }
    peak_depth_ = std::max(peak_depth_, waiting_.size());
    sample_gauges();
}

void Cloud_runtime::schedule_failure(std::size_t g) {
    const Gpu_profile& profile = profile_of(g);
    if (!std::isfinite(profile.mtbf.value())) { // raw read: finiteness test
        return; // never fails; draws nothing from its substream
    }
    queue_.schedule_in(exponential_delay(failure_rngs_[g], profile.mtbf),
                       [this, g] { fail_server(g); });
}

void Cloud_runtime::fail_server(std::size_t g) {
    gpus_[g].failed = true;
    ++failures_;
    // Outage span on the server's *health* track (separate from occupancy,
    // so a failure mid-dispatch never interleaves with the dispatch span's
    // B/E nesting).
    SHOG_TRACE_INSTANT(trace_, queue_.now(), obs::track_cloud, "server_fail", g);
    SHOG_TRACE_SPAN_BEGIN(trace_, queue_.now(), obs::track_gpu_health(g), "down", g);
    if (failure_counter_ != nullptr) {
        failure_counter_->add(queue_.now());
    }
    if (gpus_[g].busy) {
        // Checkpoint the in-flight dispatch exactly like a preemption: the
        // executed share stays billed, the remainder re-queues at the
        // original submission time. A dispatch completing at this very
        // instant is left to its completion event (nothing to reclaim; the
        // failed flag keeps the server unplaceable once busy clears).
        for (std::size_t i = 0; i < active_.size(); ++i) {
            if (active_[i]->gpu == g) {
                if (active_[i]->started + active_[i]->service - queue_.now() >
                    Sim_duration{}) {
                    checkpoint(active_[i]);
                }
                break;
            }
        }
    }
    queue_.schedule_in(exponential_delay(failure_rngs_[g], profile_of(g).mttr),
                       [this, g] { repair_server(g); });
    // A checkpointed remainder (or queued work) may fit on another server.
    dispatch();
}

void Cloud_runtime::repair_server(std::size_t g) {
    gpus_[g].failed = false;
    SHOG_TRACE_SPAN_END(trace_, queue_.now(), obs::track_gpu_health(g), "down", g);
    SHOG_TRACE_INSTANT(trace_, queue_.now(), obs::track_cloud, "server_repair", g);
    schedule_failure(g); // next failure clock starts at repair
    dispatch();
}

bool Cloud_runtime::is_in_flight(const std::shared_ptr<Active_dispatch>& active) const {
    return !active->cancelled &&
           std::find(active_.begin(), active_.end(), active) != active_.end();
}

bool Cloud_runtime::faster_server_free(double speed) const {
    for (const Gpu_state& gpu : gpus_) {
        if (gpu.available() && gpu.speed > speed) {
            return true;
        }
    }
    return false;
}

void Cloud_runtime::straggler_check(const std::shared_ptr<Active_dispatch>& active) {
    if (!is_in_flight(active)) {
        return; // completed, or some other checkpoint already re-queued it
    }
    if (faster_server_free(gpus_[active->gpu].speed)) {
        ++straggler_requeues_;
        SHOG_TRACE_INSTANT(trace_, queue_.now(), obs::track_cloud, "straggler_requeue",
                           active->trace_id);
        if (straggler_counter_ != nullptr) {
            straggler_counter_->add(queue_.now());
        }
        for (Sched_job& job : active->jobs) {
            job.straggler_requeued = true;
        }
        checkpoint(active);
        dispatch();
        return;
    }
    // No faster server free right now. Mark the dispatch overdue instead of
    // polling: dispatch() re-examines marked stragglers at every capacity
    // change (completion, repair, checkpoint), which are exactly the
    // instants a faster server can open up.
    active->straggler_overdue = true;
}

void Cloud_runtime::requeue_overdue_stragglers() {
    if (config_.straggler_requeue_factor <= 0.0 || active_.empty()) {
        return;
    }
    // Collect first: checkpoint() erases from active_. Victims are examined
    // in dispatch-start order, so the re-queue order is deterministic. Two
    // guards keep a job's single straggler escape from being wasted: a
    // dispatch completing at this very instant has nothing left to reclaim
    // (its completion event fires later within this same tick — same
    // remaining > 0 rule as preempt_check and fail_server), and each victim
    // must be matched to its *own* strictly faster free server (greedy
    // one-to-one reservation) — checkpointing two stragglers against one
    // freed fast server would re-place the loser on a slow shard with its
    // escape burned, the stuck-label outcome this machinery exists to
    // prevent. (The dispatch loop below may still hand a reserved server to
    // an older queued job — that job is starved too; capacity freed is
    // capacity used.)
    std::vector<bool> reserved(gpus_.size(), false);
    std::vector<std::shared_ptr<Active_dispatch>> victims;
    for (const auto& active : active_) {
        if (!active->straggler_overdue ||
            active->started + active->service - queue_.now() <= Sim_duration{}) {
            continue;
        }
        std::size_t fastest = no_gpu;
        for (std::size_t g = 0; g < gpus_.size(); ++g) {
            if (gpus_[g].available() && !reserved[g] &&
                gpus_[g].speed > gpus_[active->gpu].speed &&
                (fastest == no_gpu || gpus_[g].speed > gpus_[fastest].speed)) {
                fastest = g;
            }
        }
        if (fastest != no_gpu) {
            reserved[fastest] = true;
            victims.push_back(active);
        }
    }
    for (const auto& victim : victims) {
        ++straggler_requeues_;
        SHOG_TRACE_INSTANT(trace_, queue_.now(), obs::track_cloud, "straggler_requeue",
                           victim->trace_id);
        if (straggler_counter_ != nullptr) {
            straggler_counter_->add(queue_.now());
        }
        for (Sched_job& job : victim->jobs) {
            job.straggler_requeued = true;
        }
        checkpoint(victim);
    }
}

Gpu_seconds Cloud_runtime::device_gpu_seconds(std::size_t device_id) const {
    return device_id < per_device_seconds_.size() ? per_device_seconds_[device_id]
                                                  : Gpu_seconds{};
}

void Cloud_runtime::finalize_occupancy(std::size_t gpu, Sim_duration elapsed) {
    // The one wall-span -> billed-occupancy conversion of the finalize path.
    const Gpu_seconds billed = Gpu_seconds::of(elapsed);
    gpu_finalized_busy_[gpu] += billed;
    finalized_busy_ += billed;
    max_finalized_end_ = std::max(max_finalized_end_, queue_.now());
}

Gpu_seconds Cloud_runtime::busy_seconds_within(Sim_time horizon) const {
    // Finished dispatches were folded into the accumulators as they ended;
    // only the handful still in flight need clamping to the horizon (a job
    // straddling the end of the run counts its in-horizon part only).
    SHOG_REQUIRE(horizon >= max_finalized_end_,
                 "occupancy horizon precedes an already-finished dispatch");
    Gpu_seconds in_horizon = finalized_busy_;
    for (const auto& active : active_) {
        if (active->started >= horizon) {
            continue;
        }
        in_horizon += Gpu_seconds::of(std::min(active->service, horizon - active->started));
    }
    return in_horizon + direct_seconds_;
}

std::vector<Gpu_seconds> Cloud_runtime::per_gpu_busy_within(Sim_time horizon) const {
    SHOG_REQUIRE(horizon >= max_finalized_end_,
                 "occupancy horizon precedes an already-finished dispatch");
    std::vector<Gpu_seconds> per_gpu = gpu_finalized_busy_;
    for (const auto& active : active_) {
        if (active->started >= horizon) {
            continue;
        }
        per_gpu[active->gpu] +=
            Gpu_seconds::of(std::min(active->service, horizon - active->started));
    }
    return per_gpu;
}

double Cloud_runtime::utilization(Sim_time horizon) const {
    SHOG_REQUIRE(horizon > Sim_time{}, "horizon must be positive");
    const Gpu_seconds capacity =
        Gpu_seconds::of(horizon.since_start()) * static_cast<double>(config_.gpu_count);
    return busy_seconds_within(horizon) / capacity;
}

Sim_duration Cloud_runtime::mean_label_latency() const {
    // Running sums accumulate in completion order — the same order the
    // former per-label vectors were summed in, so the means agree exactly.
    return labels_completed_ > 0
               ? label_latency_sum_ / static_cast<double>(labels_completed_)
               : Sim_duration{};
}

Sim_duration Cloud_runtime::p95_label_latency() const {
    return label_latency_p95_.empty()
               ? Sim_duration{}
               : Sim_duration{label_latency_p95_.value()}; // quantile yields raw seconds
}

Sim_duration Cloud_runtime::mean_label_wait() const {
    return labels_completed_ > 0 ? label_wait_sum_ / static_cast<double>(labels_completed_)
                                 : Sim_duration{};
}

} // namespace shog::sim
