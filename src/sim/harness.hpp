// Simulation harness: runs one strategy over one stream and collects every
// metric the paper's tables and figures report.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "detect/metrics.hpp"
#include "device/compute.hpp"
#include "netsim/h264.hpp"
#include "netsim/link.hpp"
#include "sim/strategy.hpp"
#include "video/stream.hpp"

namespace shog::sim {

struct Harness_config {
    /// Evaluate every Nth frame (bounds simulation cost; detection quality
    /// statistics are unaffected by uniform striding).
    std::size_t eval_stride = 9;
    Seconds fps_tick = 1.0;
    Seconds map_window = 20.0; ///< windowed mAP period for the Fig. 5 CDF
    double iou_threshold = 0.5;
    netsim::Link_config link;
    netsim::H264_config h264;
    device::Edge_contention_config contention;
    /// Deployed inference cost per frame on the edge (GFLOPs); with the TX2
    /// model this pins the idle fps near the paper's 30.
    double edge_inference_gflops = 5.2;
    std::uint64_t seed = 17;
};

struct Run_result {
    std::string strategy;
    std::string dataset;
    /// Time-averaged mAP@IoU: mean of the windowed mAP series. This is the
    /// headline accuracy metric (live video cares about accuracy *over
    /// time*, not about a stream-global detection ranking).
    double map = 0.0;
    /// Stream-pooled mAP@IoU (all evaluated frames ranked together).
    double map_pooled = 0.0;
    double average_iou = 0.0;
    double up_kbps = 0.0;
    double down_kbps = 0.0;
    double average_fps = 0.0;
    Seconds duration = 0.0;
    std::size_t evaluated_frames = 0;
    std::size_t training_sessions = 0;
    Seconds cloud_gpu_seconds = 0.0;
    /// (time, fps) timeline samples at fps_tick resolution (Fig. 4 right).
    std::vector<std::pair<double, double>> fps_timeline;
    /// (window start, mAP) series (Fig. 5 input).
    std::vector<std::pair<double, double>> windowed_map;
};

/// Run `strategy` over the stream and measure everything.
[[nodiscard]] Run_result run_strategy(Strategy& strategy, const video::Video_stream& stream,
                                      const Harness_config& config);

/// Per-window mAP gains of `result` over `baseline` (windows aligned by
/// start time); the Fig. 5 CDF is the distribution of these values.
[[nodiscard]] std::vector<double> windowed_gain(const Run_result& result,
                                                const Run_result& baseline);

} // namespace shog::sim
