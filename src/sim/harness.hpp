// Simulation harness: runs strategies over streams and collects every
// metric the paper's tables and figures report.
//
// Two entry points:
//  - run_strategy: one device, one stream (a cluster of one);
//  - run_cluster:  N devices, each with its own strategy and stream,
//    sharing one discrete-event clock and one contended cloud GPU pool.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "detect/metrics.hpp"
#include "device/compute.hpp"
#include "netsim/h264.hpp"
#include "netsim/link.hpp"
#include "obs/metrics.hpp"
#include "sim/cloud.hpp"
#include "sim/strategy.hpp"
#include "video/stream.hpp"

namespace shog::obs {
class Trace_sink; // obs/trace.hpp — the engines only pass the pointer through
} // namespace shog::obs

namespace shog::sim {

struct Harness_config {
    /// Evaluate every Nth frame (bounds simulation cost; detection quality
    /// statistics are unaffected by uniform striding).
    std::size_t eval_stride = 9;
    Sim_duration fps_tick{1.0};
    Sim_duration map_window{20.0}; ///< windowed mAP period for the Fig. 5 CDF
    double iou_threshold = 0.5;
    netsim::Link_config link;
    netsim::H264_config h264;
    device::Edge_contention_config contention;
    /// Deployed inference cost per frame on the edge (GFLOPs); with the TX2
    /// model this pins the idle fps near the paper's 30.
    double edge_inference_gflops = 5.2;
    std::uint64_t seed = 17;
};

struct Run_result {
    std::string strategy;
    std::string dataset;
    /// Time-averaged mAP@IoU: mean of the windowed mAP series. This is the
    /// headline accuracy metric (live video cares about accuracy *over
    /// time*, not about a stream-global detection ranking).
    double map = 0.0;
    /// Stream-pooled mAP@IoU (all evaluated frames ranked together).
    double map_pooled = 0.0;
    double average_iou = 0.0;
    double up_kbps = 0.0;   // shog-lint: allow(raw-seconds) serialized metric
    double down_kbps = 0.0; // shog-lint: allow(raw-seconds) serialized metric
    double average_fps = 0.0;
    double duration = 0.0;
    std::size_t evaluated_frames = 0;
    std::size_t training_sessions = 0;
    double cloud_gpu_seconds = 0.0; // shog-lint: allow(raw-seconds) serialized metric
    /// (time, fps) timeline samples at fps_tick resolution (Fig. 4 right).
    std::vector<std::pair<double, double>> fps_timeline;
    /// (window start, mAP) series (Fig. 5 input).
    std::vector<std::pair<double, double>> windowed_map;
    /// The window length windowed_map was computed with (windowed_gain
    /// aligns windows by start / map_window; 0 = unknown, infer instead).
    double map_window = 0.0;
};

/// Per-device hardware for heterogeneous fleets: edge accelerator, link
/// profile and deployed-model cost. Devices without an override inherit the
/// cluster-wide Harness_config (so homogeneous fleets are unchanged).
struct Device_hardware {
    netsim::Link_config link;
    device::Compute_model edge_device;
    device::Edge_contention_config contention;
    double edge_inference_gflops = 5.2;
};

/// One device of a cluster: a strategy driving a stream. Both borrowed; the
/// caller keeps them alive across run_cluster.
struct Device_spec {
    Strategy* strategy = nullptr;
    const video::Video_stream* stream = nullptr;
    /// Heterogeneous-fleet override; nullopt = cluster-wide harness config.
    std::optional<Device_hardware> hardware;
};

/// Observability hooks for a cluster run. Both pointers are borrows owned
/// by the caller and default to null, which makes tracing/metrics a true
/// no-op: macros short-circuit on a dark channel without evaluating their
/// arguments, so default runs stay bit-identical to pre-observability
/// builds (pinned by tools/check_bit_identity.sh and tests/test_obs.cpp).
struct Obs_options {
    /// Trace destination. The engine creates one buffer per emitting
    /// context (cloud + each device); merged (time, track, seq) streams
    /// are byte-identical across engines and shard counts.
    obs::Trace_sink* sink = nullptr;
    /// Metrics destination, snapshotted into Cluster_result::metrics.
    obs::Metrics_registry* metrics = nullptr;
    /// Also emit engine-internal tracks (shard coordinator rounds). These
    /// depend on the shard count by nature and are EXCLUDED from the
    /// trace determinism contract — diagnostics only.
    bool engine_tracks = false;
};

struct Cluster_config {
    /// Per-device edge/link/codec settings. Device i derives its RNG
    /// substream from `harness.seed` (device 0 uses it verbatim, so a
    /// cluster of one reproduces run_strategy bit-for-bit).
    Harness_config harness;
    /// The shared cloud GPU pool all devices contend on.
    Cloud_config cloud;
    /// Tracing/metrics hooks (dark by default).
    Obs_options obs;
};

struct Cluster_result {
    std::vector<Run_result> devices;
    /// Simulated horizon: the longest stream duration in the cluster.
    double duration = 0.0;
    /// Cloud GPU seconds consumed by the fleet within the horizon (a job
    /// still running when the horizon ends counts only its in-horizon part).
    double gpu_busy_seconds = 0.0; // shog-lint: allow(raw-seconds) serialized metric
    /// gpu_busy_seconds / (duration * gpu_count).
    double gpu_utilization = 0.0;
    /// Scheduler jobs completed (labeling + cloud training requests).
    std::size_t cloud_jobs = 0;
    /// Label jobs completed (label_jobs / duration is the labeling
    /// throughput the batching knee is measured against).
    std::size_t label_jobs = 0;
    /// Label-job latency statistics (training jobs excluded; they only
    /// count toward occupancy).
    double mean_label_latency = 0.0;
    double p95_label_latency = 0.0;
    double mean_label_wait = 0.0;
    std::size_t peak_queue_depth = 0;
    /// Train dispatches checkpointed to unblock waiting label jobs.
    std::size_t preemptions = 0;
    /// Dispatches that started on a warm server (device_affinity hits).
    std::size_t warm_dispatches = 0;
    /// Cloud server failure events (each checkpoints in-flight work and
    /// takes the server down until repair; see Gpu_profile).
    std::size_t failures = 0;
    /// Label dispatches checkpointed off a straggling server onto a faster
    /// one (Cloud_config::straggler_requeue_factor hits).
    std::size_t straggler_requeues = 0;
    /// Mean of the per-device headline mAPs.
    double fleet_map = 0.0;
    /// Sampled metric series/histograms when Obs_options::metrics was
    /// installed (empty otherwise). Deterministic like every other field.
    obs::Metrics_snapshot metrics;

    // shog-lint: allow(raw-seconds) serialized metric
    [[nodiscard]] double gpu_seconds_per_device() const noexcept {
        return devices.empty() ? 0.0
                               : gpu_busy_seconds / static_cast<double>(devices.size());
    }
};

/// Seed of device i's RNG substream within a cluster (device 0 == seed).
[[nodiscard]] std::uint64_t device_seed(std::uint64_t seed, std::size_t device_index) noexcept;

/// Run N devices against one shared clock and one contended cloud.
[[nodiscard]] Cluster_result run_cluster(const std::vector<Device_spec>& devices,
                                         const Cluster_config& config);

/// Run `strategy` over the stream and measure everything (cluster of one).
[[nodiscard]] Run_result run_strategy(Strategy& strategy, const video::Video_stream& stream,
                                      const Harness_config& config);

/// Per-window mAP gains of `result` over `baseline`; the Fig. 5 CDF is the
/// distribution of these values. Windows are aligned by window *index*
/// (start / stride, rounded), so starts that differ in the last ulp across
/// accumulation paths still pair up.
[[nodiscard]] std::vector<double> windowed_gain(const Run_result& result,
                                                const Run_result& baseline);

} // namespace shog::sim
