// Shared cloud runtime: the contended, sharded GPU scheduler of a
// multi-edge cluster.
//
// Every device's cloud-side work (teacher labeling for Shoggoth/Prompt,
// labeling + whole-model fine-tuning for AMS) is submitted as a job with a
// service time; jobs from all devices drain through `gpu_count` individually
// tracked GPU servers, optionally coalesced into batched dispatches.
// Dispatch *order* is a pluggable Scheduling_policy (sim/policy.hpp): FIFO
// by default, label-first priority, per-device fair share, or drift-weighted
// staleness; *which server* a dispatch lands on is a pluggable
// Placement_policy (sim/placement.hpp): any free server, device affinity
// with a warm-start discount, or a kind partition that reserves servers for
// labels. In-flight all-train dispatches can be preempted when a label job
// has waited too long. Cloud GPU seconds, queueing delay and label latency
// therefore *emerge* from contention instead of being summed per-run, which
// is what makes the paper's devices-per-GPU scalability claim measurable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/event_queue.hpp"
#include "common/units.hpp"
#include "sim/placement.hpp"
#include "sim/policy.hpp"

namespace shog::sim {

struct Cloud_config {
    /// Parallel GPU servers in the cloud.
    std::size_t gpu_count = 1;
    /// Max queued jobs coalesced into one dispatch (1 = pure FIFO). Jobs in
    /// a coalesced dispatch all complete when the whole dispatch does.
    /// Dispatches are kind-homogeneous: label jobs never coalesce with
    /// train jobs (different kernels, and a train rider would pin the
    /// labels' completion past any latency bound). Coalescing happens only
    /// on the last idle server *eligible for the job's kind* — while other
    /// eligible servers are free, each waiting job gets its own GPU.
    std::size_t max_batch = 1;
    /// Cost factor on the service time of every coalesced job after the
    /// first (GPU batching amortizes weight loads and kernel launches).
    double batch_efficiency = 0.7;
    /// Dispatch-order policy; fifo reproduces the PR 1 scheduler exactly.
    Policy_kind policy = Policy_kind::fifo;
    /// Server-placement policy; any_free reproduces the pre-sharding
    /// undifferentiated pool exactly (lowest-index free server).
    Placement_kind placement = Placement_kind::any_free;
    /// kind_partition only: servers [0, label_reserved_gpus) never run
    /// train dispatches. Must be < gpu_count (trains need at least one
    /// server); labels may use every server.
    std::size_t label_reserved_gpus = 0;
    /// device_affinity only: multiplier on a dispatch's service time when it
    /// starts on the server that last ran the same device (weights still
    /// resident — no reload, warm caches). 1.0 disables the discount.
    double affinity_warm_factor = 0.85;
    /// If > 0: when a label job has waited this long with every server busy
    /// and at least one all-train dispatch in flight, that dispatch is
    /// preempted — its executed share stays billed, the remaining service is
    /// checkpointed and re-queued (original submission time preserved) — so
    /// a long AMS fine-tune cannot pin label latency past the bound. The
    /// bound cannot silently lapse: if no train is in flight when it first
    /// expires, the job is marked overdue and outranks every policy pick
    /// from then on, so no later train can be dispatched ahead of it — a
    /// bare one-shot timer could otherwise let the label wait out an entire
    /// fine-tune (the expiry test `now - submitted >= bound` can also miss
    /// by an ulp at the timer's own firing time; the mark is immune). 0
    /// disables preemption.
    Seconds preempt_label_wait = 0.0;
};

class Cloud_runtime {
public:
    using Completion = std::function<void()>;

    Cloud_runtime(Event_queue& queue, Cloud_config config = {});

    /// Queue `service` seconds of GPU work on behalf of `device_id`; `done`
    /// fires on the shared clock once a server has executed the job (after
    /// any queueing delay behind other devices' jobs). `drift_rate` is the
    /// device's current model-drift estimate (|d alpha / dt|); the staleness
    /// policy uses it to label the fastest-rotting device first.
    void submit(std::size_t device_id, Seconds service, Completion done,
                Cloud_job_kind kind = Cloud_job_kind::label, double drift_rate = 0.0);

    /// Account GPU time for analytically-modeled work that bypasses the
    /// queue (Cloud-Only's synchronous per-frame pipeline).
    void account_direct(std::size_t device_id, Seconds gpu_seconds);

    [[nodiscard]] const Cloud_config& config() const noexcept { return config_; }
    [[nodiscard]] const char* policy_name() const noexcept { return policy_->name(); }
    [[nodiscard]] const char* placement_name() const noexcept { return placement_->name(); }

    /// Total GPU seconds committed (queued service + direct accounting).
    /// Includes the full service of jobs still running at the end of a run;
    /// use busy_seconds_within() for horizon-consistent occupancy.
    [[nodiscard]] Seconds busy_seconds() const noexcept {
        return queued_busy_seconds_ + direct_seconds_;
    }
    /// GPU seconds spent inside [0, horizon]: dispatch intervals clamped to
    /// the horizon, plus direct accounting.
    [[nodiscard]] Seconds busy_seconds_within(Seconds horizon) const;
    /// Per-server GPU seconds inside [0, horizon] (no direct accounting —
    /// direct work never touches a specific server). Shard balance metric.
    [[nodiscard]] std::vector<Seconds> per_gpu_busy_within(Seconds horizon) const;
    /// GPU seconds attributed to one device.
    [[nodiscard]] Seconds device_gpu_seconds(std::size_t device_id) const;
    /// busy_seconds_within(horizon) / (horizon * gpu_count). > 1 means
    /// oversubscribed direct work.
    [[nodiscard]] double utilization(Seconds horizon) const;

    [[nodiscard]] std::size_t jobs_completed() const noexcept { return latencies_.size(); }
    [[nodiscard]] std::size_t labels_completed() const noexcept {
        return label_latencies_.size();
    }
    [[nodiscard]] std::size_t jobs_pending() const noexcept {
        return waiting_.size() + busy_gpu_count();
    }
    /// Largest number of jobs ever left waiting behind busy servers (0 on a
    /// fully uncontended cluster).
    [[nodiscard]] std::size_t peak_queue_depth() const noexcept { return peak_depth_; }
    /// Train dispatches checkpointed and re-queued to unblock label jobs.
    [[nodiscard]] std::size_t preemptions() const noexcept { return preemptions_; }
    /// Dispatches that started on a warm server (device_affinity hit).
    [[nodiscard]] std::size_t warm_dispatches() const noexcept { return warm_dispatches_; }

    /// Completion - submission per finished job (wait + service), all kinds.
    [[nodiscard]] const std::vector<Seconds>& job_latencies() const noexcept {
        return latencies_;
    }
    /// Dispatch - submission per finished job (pure queueing delay; for a
    /// preempted-and-resumed job this measures to its *final* dispatch).
    [[nodiscard]] const std::vector<Seconds>& job_waits() const noexcept { return waits_; }

    /// Label-job statistics (training jobs excluded, so an AMS fleet's
    /// fine-tunes don't masquerade as label latency).
    [[nodiscard]] Seconds mean_label_latency() const;
    [[nodiscard]] Seconds p95_label_latency() const;
    [[nodiscard]] Seconds mean_label_wait() const;

private:
    struct Dispatch_interval {
        Seconds start;
        Seconds service;
        std::size_t gpu;
    };
    /// One in-flight dispatch (needed for preemption: the completion event
    /// cannot be removed from the queue, so it checks `cancelled` instead).
    struct Active_dispatch {
        std::vector<Sched_job> jobs;
        Seconds started = 0.0;
        Seconds service = 0.0;    ///< wall duration == billed total
        Seconds total_raw = 0.0;  ///< sum of member raw service (bill shares)
        std::size_t gpu = no_gpu; ///< server this dispatch occupies
        bool all_train = false;
        bool cancelled = false;
        std::size_t interval_index = 0; ///< into dispatches_, for truncation
    };

    /// Start dispatches while an eligible server is idle and jobs wait.
    void dispatch();
    /// Next job to dispatch: an overdue label (past the preemption bound)
    /// if one is waiting, else the policy's pick.
    [[nodiscard]] std::size_t select_next() const;
    void complete(const std::shared_ptr<Active_dispatch>& active);
    /// Fired when a label job's preemption bound expires: marks the job
    /// overdue, then checkpoints the in-flight all-train dispatch with the
    /// most remaining service and re-queues its remainder. No victim right
    /// now is not a pass — the overdue mark outranks every policy pick from
    /// then on (and dispatch() keeps a defensive re-arm for placements that
    /// could refuse labels).
    void preempt_check(std::uint64_t job_id);
    void preempt(const std::shared_ptr<Active_dispatch>& active);
    [[nodiscard]] bool is_waiting(std::uint64_t job_id) const {
        return waiting_ids_.count(job_id) != 0;
    }
    /// Waiting label whose bound expired (marked by its check timer, or
    /// clock-based for robustness).
    [[nodiscard]] bool is_overdue(const Sched_job& job) const;
    /// Index of the oldest overdue waiting label, or waiting_.size() if
    /// none. O(position of the first waiting label): labels are never
    /// re-enqueued, so queue position order is submission order for labels
    /// and the first one is the only clock-overdue candidate (a deeper scan
    /// happens only when a younger label was explicitly marked overdue).
    [[nodiscard]] std::size_t find_overdue() const;
    void enqueue(Sched_job job);
    /// Remove and return waiting_[index] (clears its id from the waiting /
    /// overdue index sets).
    [[nodiscard]] Sched_job take_waiting(std::size_t index);
    void ensure_device(std::size_t device_id);
    [[nodiscard]] std::size_t busy_gpu_count() const noexcept {
        std::size_t busy = 0;
        for (const Gpu_state& gpu : gpus_) {
            busy += gpu.busy ? 1 : 0;
        }
        return busy;
    }

    Event_queue& queue_;
    Cloud_config config_;
    std::unique_ptr<Scheduling_policy> policy_;
    std::unique_ptr<Placement_policy> placement_;
    std::deque<Sched_job> waiting_; ///< insertion-ordered (== seq order)
    std::size_t waiting_labels_ = 0; ///< label jobs currently in waiting_
    /// Ids of waiting jobs: O(1) is_waiting instead of a queue scan per
    /// label submit (quadratic in queue depth at large fleet sizes).
    std::unordered_set<std::uint64_t> waiting_ids_;
    /// Waiting label jobs whose preemption bound expired (set by their
    /// check timer; cleared on dispatch). See preempt_check.
    std::unordered_set<std::uint64_t> overdue_ids_;
    std::vector<std::shared_ptr<Active_dispatch>> active_;
    std::vector<Gpu_state> gpus_;
    std::size_t peak_depth_ = 0;
    std::size_t preemptions_ = 0;
    std::size_t warm_dispatches_ = 0;
    std::uint64_t next_job_id_ = 0;
    std::uint64_t next_seq_ = 0;
    Seconds queued_busy_seconds_ = 0.0;
    Seconds direct_seconds_ = 0.0;
    std::vector<Seconds> per_device_seconds_;
    std::vector<Dispatch_interval> dispatches_;
    std::vector<Seconds> latencies_;
    std::vector<Seconds> waits_;
    std::vector<Seconds> label_latencies_;
    std::vector<Seconds> label_waits_;
};

} // namespace shog::sim
