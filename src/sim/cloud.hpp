// Shared cloud runtime: the contended GPU scheduler of a multi-edge cluster.
//
// Every device's cloud-side work (teacher labeling for Shoggoth/Prompt,
// labeling + whole-model fine-tuning for AMS) is submitted as a job with a
// service time; jobs from all devices drain through `gpu_count` servers,
// optionally coalesced into batched dispatches. Dispatch *order* is a
// pluggable Scheduling_policy (sim/policy.hpp): FIFO by default, or
// label-first priority / per-device fair share, plus optional preemption of
// in-flight train dispatches when a label job has waited too long. Cloud
// GPU seconds, queueing delay and label latency therefore *emerge* from
// contention instead of being summed per-run, which is what makes the
// paper's devices-per-GPU scalability claim measurable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/event_queue.hpp"
#include "common/units.hpp"
#include "sim/policy.hpp"

namespace shog::sim {

struct Cloud_config {
    /// Parallel GPU servers in the cloud.
    std::size_t gpu_count = 1;
    /// Max queued jobs coalesced into one dispatch (1 = pure FIFO). Jobs in
    /// a coalesced dispatch all complete when the whole dispatch does.
    /// Dispatches are kind-homogeneous: label jobs never coalesce with
    /// train jobs (different kernels, and a train rider would pin the
    /// labels' completion past any latency bound).
    std::size_t max_batch = 1;
    /// Cost factor on the service time of every coalesced job after the
    /// first (GPU batching amortizes weight loads and kernel launches).
    double batch_efficiency = 0.7;
    /// Dispatch-order policy; fifo reproduces the PR 1 scheduler exactly.
    Policy_kind policy = Policy_kind::fifo;
    /// If > 0: when a label job has waited this long with every server busy
    /// and at least one all-train dispatch in flight, that dispatch is
    /// preempted — its executed share stays billed, the remaining service is
    /// checkpointed and re-queued (original submission time preserved) — so
    /// a long AMS fine-tune cannot pin label latency past the bound. 0
    /// disables preemption.
    Seconds preempt_label_wait = 0.0;
};

class Cloud_runtime {
public:
    using Completion = std::function<void()>;

    Cloud_runtime(Event_queue& queue, Cloud_config config = {});

    /// Queue `service` seconds of GPU work on behalf of `device_id`; `done`
    /// fires on the shared clock once a server has executed the job (after
    /// any queueing delay behind other devices' jobs).
    void submit(std::size_t device_id, Seconds service, Completion done,
                Cloud_job_kind kind = Cloud_job_kind::label);

    /// Account GPU time for analytically-modeled work that bypasses the
    /// queue (Cloud-Only's synchronous per-frame pipeline).
    void account_direct(std::size_t device_id, Seconds gpu_seconds);

    [[nodiscard]] const Cloud_config& config() const noexcept { return config_; }
    [[nodiscard]] const char* policy_name() const noexcept { return policy_->name(); }

    /// Total GPU seconds committed (queued service + direct accounting).
    /// Includes the full service of jobs still running at the end of a run;
    /// use busy_seconds_within() for horizon-consistent occupancy.
    [[nodiscard]] Seconds busy_seconds() const noexcept {
        return queued_busy_seconds_ + direct_seconds_;
    }
    /// GPU seconds spent inside [0, horizon]: dispatch intervals clamped to
    /// the horizon, plus direct accounting.
    [[nodiscard]] Seconds busy_seconds_within(Seconds horizon) const;
    /// GPU seconds attributed to one device.
    [[nodiscard]] Seconds device_gpu_seconds(std::size_t device_id) const;
    /// busy_seconds_within(horizon) / (horizon * gpu_count). > 1 means
    /// oversubscribed direct work.
    [[nodiscard]] double utilization(Seconds horizon) const;

    [[nodiscard]] std::size_t jobs_completed() const noexcept { return latencies_.size(); }
    [[nodiscard]] std::size_t jobs_pending() const noexcept {
        return waiting_.size() + busy_gpus_;
    }
    /// Largest number of jobs ever left waiting behind busy servers (0 on a
    /// fully uncontended cluster).
    [[nodiscard]] std::size_t peak_queue_depth() const noexcept { return peak_depth_; }
    /// Train dispatches checkpointed and re-queued to unblock label jobs.
    [[nodiscard]] std::size_t preemptions() const noexcept { return preemptions_; }

    /// Completion - submission per finished job (wait + service), all kinds.
    [[nodiscard]] const std::vector<Seconds>& job_latencies() const noexcept {
        return latencies_;
    }
    /// Dispatch - submission per finished job (pure queueing delay; for a
    /// preempted-and-resumed job this measures to its *final* dispatch).
    [[nodiscard]] const std::vector<Seconds>& job_waits() const noexcept { return waits_; }

    /// Label-job statistics (training jobs excluded, so an AMS fleet's
    /// fine-tunes don't masquerade as label latency).
    [[nodiscard]] Seconds mean_label_latency() const;
    [[nodiscard]] Seconds p95_label_latency() const;
    [[nodiscard]] Seconds mean_label_wait() const;

private:
    struct Dispatch_interval {
        Seconds start;
        Seconds service;
    };
    /// One in-flight dispatch (needed for preemption: the completion event
    /// cannot be removed from the queue, so it checks `cancelled` instead).
    struct Active_dispatch {
        std::vector<Sched_job> jobs;
        Seconds started = 0.0;
        Seconds service = 0.0;    ///< wall duration == billed total
        Seconds total_raw = 0.0;  ///< sum of member raw service (bill shares)
        bool all_train = false;
        bool cancelled = false;
        std::size_t interval_index = 0; ///< into dispatches_, for truncation
    };

    /// Start dispatches while a server is idle and jobs are waiting.
    void dispatch();
    /// Next job to dispatch: an overdue label (past the preemption bound)
    /// if one is waiting, else the policy's pick.
    [[nodiscard]] std::size_t select_next() const;
    void complete(const std::shared_ptr<Active_dispatch>& active);
    /// Fired preempt_label_wait after a label job queued: if it is still
    /// waiting, checkpoint the in-flight all-train dispatch with the most
    /// remaining service and re-queue its remainder.
    void preempt_check(std::uint64_t job_id);
    void preempt(const std::shared_ptr<Active_dispatch>& active);
    [[nodiscard]] bool is_waiting(std::uint64_t job_id) const;
    void ensure_device(std::size_t device_id);

    Event_queue& queue_;
    Cloud_config config_;
    std::unique_ptr<Scheduling_policy> policy_;
    std::deque<Sched_job> waiting_;
    std::vector<std::shared_ptr<Active_dispatch>> active_;
    std::size_t busy_gpus_ = 0;
    std::size_t peak_depth_ = 0;
    std::size_t preemptions_ = 0;
    std::uint64_t next_job_id_ = 0;
    Seconds queued_busy_seconds_ = 0.0;
    Seconds direct_seconds_ = 0.0;
    std::vector<Seconds> per_device_seconds_;
    std::vector<Dispatch_interval> dispatches_;
    std::vector<Seconds> latencies_;
    std::vector<Seconds> waits_;
    std::vector<Seconds> label_latencies_;
    std::vector<Seconds> label_waits_;
};

} // namespace shog::sim
