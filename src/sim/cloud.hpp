// Shared cloud runtime: the contended GPU scheduler of a multi-edge cluster.
//
// Every device's cloud-side work (teacher labeling for Shoggoth/Prompt,
// labeling + whole-model fine-tuning for AMS) is submitted as a job with a
// service time; jobs from all devices drain through `gpu_count` servers in
// FIFO order, optionally coalesced into batched dispatches. Cloud GPU
// seconds, queueing delay and label latency therefore *emerge* from
// contention instead of being summed per-run, which is what makes the
// paper's devices-per-GPU scalability claim measurable.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "common/event_queue.hpp"
#include "common/units.hpp"

namespace shog::sim {

struct Cloud_config {
    /// Parallel GPU servers in the cloud.
    std::size_t gpu_count = 1;
    /// Max queued jobs coalesced into one dispatch (1 = pure FIFO). Jobs in
    /// a coalesced dispatch all complete when the whole dispatch does.
    std::size_t max_batch = 1;
    /// Cost factor on the service time of every coalesced job after the
    /// first (GPU batching amortizes weight loads and kernel launches).
    double batch_efficiency = 0.7;
};

/// What a GPU job is for; label jobs feed the per-fleet label-latency
/// statistics, training jobs (AMS cloud fine-tunes) only count toward
/// occupancy.
enum class Cloud_job_kind { label, train };

class Cloud_runtime {
public:
    using Completion = std::function<void()>;

    Cloud_runtime(Event_queue& queue, Cloud_config config = {});

    /// Queue `service` seconds of GPU work on behalf of `device_id`; `done`
    /// fires on the shared clock once a server has executed the job (after
    /// any queueing delay behind other devices' jobs).
    void submit(std::size_t device_id, Seconds service, Completion done,
                Cloud_job_kind kind = Cloud_job_kind::label);

    /// Account GPU time for analytically-modeled work that bypasses the
    /// queue (Cloud-Only's synchronous per-frame pipeline).
    void account_direct(std::size_t device_id, Seconds gpu_seconds);

    [[nodiscard]] const Cloud_config& config() const noexcept { return config_; }

    /// Total GPU seconds committed (queued service + direct accounting).
    /// Includes the full service of jobs still running at the end of a run;
    /// use busy_seconds_within() for horizon-consistent occupancy.
    [[nodiscard]] Seconds busy_seconds() const noexcept {
        return queued_busy_seconds_ + direct_seconds_;
    }
    /// GPU seconds spent inside [0, horizon]: dispatch intervals clamped to
    /// the horizon, plus direct accounting.
    [[nodiscard]] Seconds busy_seconds_within(Seconds horizon) const;
    /// GPU seconds attributed to one device.
    [[nodiscard]] Seconds device_gpu_seconds(std::size_t device_id) const;
    /// busy_seconds_within(horizon) / (horizon * gpu_count). > 1 means
    /// oversubscribed direct work.
    [[nodiscard]] double utilization(Seconds horizon) const;

    [[nodiscard]] std::size_t jobs_completed() const noexcept { return latencies_.size(); }
    [[nodiscard]] std::size_t jobs_pending() const noexcept {
        return waiting_.size() + busy_gpus_;
    }
    /// Largest number of jobs ever left waiting behind busy servers (0 on a
    /// fully uncontended cluster).
    [[nodiscard]] std::size_t peak_queue_depth() const noexcept { return peak_depth_; }

    /// Completion - submission per finished job (wait + service), all kinds.
    [[nodiscard]] const std::vector<Seconds>& job_latencies() const noexcept {
        return latencies_;
    }
    /// Dispatch - submission per finished job (pure queueing delay).
    [[nodiscard]] const std::vector<Seconds>& job_waits() const noexcept { return waits_; }

    /// Label-job statistics (training jobs excluded, so an AMS fleet's
    /// fine-tunes don't masquerade as label latency).
    [[nodiscard]] Seconds mean_label_latency() const;
    [[nodiscard]] Seconds p95_label_latency() const;
    [[nodiscard]] Seconds mean_label_wait() const;

private:
    struct Job {
        std::size_t device;
        Seconds service;
        Seconds submitted;
        Completion done;
        Cloud_job_kind kind;
    };
    struct Dispatch_interval {
        Seconds start;
        Seconds service;
    };

    /// Start dispatches while a server is idle and jobs are waiting.
    void dispatch();
    void ensure_device(std::size_t device_id);

    Event_queue& queue_;
    Cloud_config config_;
    std::deque<Job> waiting_;
    std::size_t busy_gpus_ = 0;
    std::size_t peak_depth_ = 0;
    Seconds queued_busy_seconds_ = 0.0;
    Seconds direct_seconds_ = 0.0;
    std::vector<Seconds> per_device_seconds_;
    std::vector<Dispatch_interval> dispatches_;
    std::vector<Seconds> latencies_;
    std::vector<Seconds> waits_;
    std::vector<Seconds> label_latencies_;
    std::vector<Seconds> label_waits_;
};

} // namespace shog::sim
