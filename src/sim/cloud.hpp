// Shared cloud runtime: the contended, sharded GPU scheduler of a
// multi-edge cluster.
//
// Every device's cloud-side work (teacher labeling for Shoggoth/Prompt,
// labeling + whole-model fine-tuning for AMS) is submitted as a job with a
// service time; jobs from all devices drain through `gpu_count` individually
// tracked GPU servers, optionally coalesced into batched dispatches.
// Dispatch *order* is a pluggable Scheduling_policy (sim/policy.hpp): FIFO
// by default, label-first priority, per-device fair share, or drift-weighted
// staleness; *which server* a dispatch lands on is a pluggable
// Placement_policy (sim/placement.hpp): any free server, device affinity
// with a warm-start discount, or a kind partition that reserves servers for
// labels. In-flight all-train dispatches can be preempted when a label job
// has waited too long. Cloud GPU seconds, queueing delay and label latency
// therefore *emerge* from contention instead of being summed per-run, which
// is what makes the paper's devices-per-GPU scalability claim measurable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/event_queue.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/placement.hpp"
#include "sim/policy.hpp"

namespace shog::sim {

/// Reliability profile of one GPU server. The defaults (speed 1, MTBF =
/// infinity) are an exact no-op: a cloud of default profiles is bit-identical
/// to one with no profiles at all (no RNG draws, no failure events, service
/// times untouched).
struct Gpu_profile {
    /// Service-speed multiplier: a dispatch of nominal service S occupies
    /// this server for S / speed wall seconds (and bills that occupancy).
    /// 1.0 is the reference server; 0.25 is a 4x straggler.
    double speed = 1.0;
    /// Mean time between failures (exponential). A failure checkpoints any
    /// in-flight dispatch exactly like label-wait preemption — the executed
    /// share stays billed, the remainder is re-queued at the original
    /// submission time — and the server takes no work until repaired.
    /// Infinity (the default) means the server never fails.
    Sim_duration mtbf{std::numeric_limits<double>::infinity()};
    /// Mean time to repair (exponential); read only when mtbf is finite.
    Sim_duration mttr{20.0};
};

struct Cloud_config {
    /// Parallel GPU servers in the cloud.
    std::size_t gpu_count = 1;
    /// Max queued jobs coalesced into one dispatch (1 = pure FIFO). Jobs in
    /// a coalesced dispatch all complete when the whole dispatch does.
    /// Dispatches are kind-homogeneous: label jobs never coalesce with
    /// train jobs (different kernels, and a train rider would pin the
    /// labels' completion past any latency bound). Coalescing happens only
    /// on the last idle server *eligible for the job's kind* — while other
    /// eligible servers are free, each waiting job gets its own GPU.
    std::size_t max_batch = 1;
    /// Cost factor on the service time of every coalesced job after the
    /// first (GPU batching amortizes weight loads and kernel launches).
    double batch_efficiency = 0.7;
    /// Dispatch-order policy; fifo reproduces the PR 1 scheduler exactly.
    Policy_kind policy = Policy_kind::fifo;
    /// Server-placement policy; any_free reproduces the pre-sharding
    /// undifferentiated pool exactly (lowest-index free server).
    Placement_kind placement = Placement_kind::any_free;
    /// kind_partition only: servers [0, label_reserved_gpus) never run
    /// train dispatches. Must be < gpu_count (trains need at least one
    /// server); labels may use every server.
    std::size_t label_reserved_gpus = 0;
    /// device_affinity only: multiplier on a dispatch's service time when it
    /// starts on the server that last ran the same device (weights still
    /// resident — no reload, warm caches). 1.0 disables the discount.
    double affinity_warm_factor = 0.85;
    /// If > 0: when a label job has waited this long with every server busy
    /// and at least one all-train dispatch in flight, that dispatch is
    /// preempted — its executed share stays billed, the remaining service is
    /// checkpointed and re-queued (original submission time preserved) — so
    /// a long AMS fine-tune cannot pin label latency past the bound. The
    /// bound cannot silently lapse: if no train is in flight when it first
    /// expires, the job is marked overdue and outranks every policy pick
    /// from then on, so no later train can be dispatched ahead of it — a
    /// bare one-shot timer could otherwise let the label wait out an entire
    /// fine-tune (the expiry test `now - submitted >= bound` can also miss
    /// by an ulp at the timer's own firing time; the mark is immune). 0
    /// disables preemption.
    Sim_duration preempt_label_wait;
    /// Per-server reliability profiles. Empty (the default) means every
    /// server runs the default profile; otherwise the size must equal
    /// gpu_count.
    std::vector<Gpu_profile> gpu_profiles;
    /// Base seed of the per-server failure RNG substreams (server g draws
    /// its failure/repair times from split(g), so fleets of any size replay
    /// bit-identically and adding a server never shifts another's failures).
    std::uint64_t reliability_seed = 0x7e11ab1e;
    /// If >= 1: a *label* dispatch running on a straggling server past
    /// `straggler_requeue_factor x` its nominal (speed-1) service is
    /// checkpointed and re-queued as soon as a strictly faster server is
    /// free — executed share billed, remainder re-queued at the original
    /// submission time — so one slow shard cannot pin a label's latency when
    /// healthy capacity opens up. Only dispatches whose server would hold
    /// them past the bound (speed < 1 / factor) are ever checked, and a job
    /// escapes at most once (Sched_job::straggler_requeued) — where the
    /// remainder lands is still the placement policy's call. 0 disables
    /// straggler re-queueing.
    double straggler_requeue_factor = 0.0;
};

class Cloud_runtime {
public:
    using Completion = std::function<void()>;
    /// Resume planner: see Sched_job::replan.
    using Resume_replan = std::function<Sim_duration(Sim_duration, Sim_time)>;

    Cloud_runtime(Event_queue& queue, Cloud_config config = {});

    /// Virtual so the sharded engine's per-device proxy (sim/shard.cpp) can
    /// interpose on the three calls an Edge_runtime makes: submit,
    /// account_direct and device_gpu_seconds. Everything else (dispatch,
    /// completion, statistics) only ever runs on the real instance.
    virtual ~Cloud_runtime() = default;

    /// Queue `service` seconds of GPU work on behalf of `device_id`; `done`
    /// fires on the shared clock once a server has executed the job (after
    /// any queueing delay behind other devices' jobs). `drift_rate` is the
    /// device's current model-drift estimate (|d alpha / dt|); the staleness
    /// policy uses it to label the fastest-rotting device first. `replan`,
    /// if set, re-prices the job's remainder whenever a checkpoint re-queues
    /// it (see Sched_job::replan).
    virtual void submit(std::size_t device_id, Sim_duration service, Completion done,
                        Cloud_job_kind kind = Cloud_job_kind::label,
                        double drift_rate = 0.0, Resume_replan replan = {});

    /// Account GPU time for analytically-modeled work that bypasses the
    /// queue (Cloud-Only's synchronous per-frame pipeline).
    virtual void account_direct(std::size_t device_id, Gpu_seconds gpu_seconds);

    /// Hand completion callbacks to an external coordinator instead of
    /// running them inline. When set, complete() forwards each finished
    /// job's non-empty `done` to the sink (in job order within the
    /// dispatch) and defers its own trailing dispatch() until
    /// resume_dispatch() — the coordinator runs every callback (each may
    /// submit follow-up work, and submit()'s internal dispatch must see the
    /// servers still unfilled, exactly as an inline callback would) and
    /// then resumes. The sharded engine uses this to route callbacks onto
    /// the owning device's shard thread while keeping fleet-wide queue
    /// order.
    using Completion_sink = std::function<void(std::size_t device_id, Completion done)>;
    void set_completion_sink(Completion_sink sink) { sink_ = std::move(sink); }
    /// Run the dispatch() deferred by a sink handoff. No-op when nothing
    /// was deferred.
    void resume_dispatch();

    /// Install the trace channel and metrics registry (both may be null /
    /// dark — the default, a true no-op). Called once by the engines before
    /// any event runs, and only on the REAL cloud: the sharded engine's
    /// per-device proxies must never emit (their calls replay here, through
    /// the coordinator, in the sequential engine's order — which is exactly
    /// what makes the trace shard-count-invariant). Threading: mutator,
    /// owner-thread only, like every other non-const member.
    void set_observability(obs::Trace_channel trace, obs::Metrics_registry* metrics);

    /// Jobs currently waiting behind busy servers (the queue-depth gauge
    /// reads this instead of reaching into waiting_). Threading: reads
    /// engine-owned state — call only from the thread driving this
    /// runtime's event queue (the coordinator in sharded runs); no locking,
    /// per the phase-ownership discipline in docs/ANALYSIS.md.
    [[nodiscard]] std::size_t queue_depth() const noexcept { return waiting_.size(); }
    /// Dispatches currently occupying a server (busy-GPU gauge). Same
    /// threading contract as queue_depth().
    [[nodiscard]] std::size_t active_dispatch_count() const noexcept {
        return active_.size();
    }

    [[nodiscard]] const Cloud_config& config() const noexcept { return config_; }
    [[nodiscard]] const char* policy_name() const noexcept { return policy_->name(); }
    [[nodiscard]] const char* placement_name() const noexcept { return placement_->name(); }

    /// Total GPU seconds committed (queued service + direct accounting).
    /// Includes the full service of jobs still running at the end of a run;
    /// use busy_seconds_within() for horizon-consistent occupancy.
    [[nodiscard]] Gpu_seconds busy_seconds() const noexcept {
        return queued_busy_seconds_ + direct_seconds_;
    }
    /// GPU seconds spent inside [0, horizon]: finished dispatches are
    /// accounted incrementally as they complete or checkpoint (no end-of-run
    /// interval scan); only the <= gpu_count dispatches still in flight are
    /// clamped at query time. `horizon` must therefore not precede any
    /// already-finished dispatch — true for every run_until(horizon) caller,
    /// since completions past the horizon never execute.
    [[nodiscard]] Gpu_seconds busy_seconds_within(Sim_time horizon) const;
    /// Per-server GPU seconds inside [0, horizon] (no direct accounting —
    /// direct work never touches a specific server). Shard balance metric.
    /// Same horizon contract as busy_seconds_within().
    [[nodiscard]] std::vector<Gpu_seconds> per_gpu_busy_within(Sim_time horizon) const;
    /// GPU seconds attributed to one device.
    [[nodiscard]] virtual Gpu_seconds device_gpu_seconds(std::size_t device_id) const;
    /// busy_seconds_within(horizon) / (horizon * gpu_count). > 1 means
    /// oversubscribed direct work.
    [[nodiscard]] double utilization(Sim_time horizon) const;

    [[nodiscard]] std::size_t jobs_completed() const noexcept { return latencies_.size(); }
    [[nodiscard]] std::size_t labels_completed() const noexcept { return labels_completed_; }
    [[nodiscard]] std::size_t jobs_pending() const noexcept {
        return waiting_.size() + busy_gpu_count();
    }
    /// Largest number of jobs ever left waiting behind busy servers (0 on a
    /// fully uncontended cluster).
    [[nodiscard]] std::size_t peak_queue_depth() const noexcept { return peak_depth_; }
    /// Train dispatches checkpointed and re-queued to unblock label jobs.
    [[nodiscard]] std::size_t preemptions() const noexcept { return preemptions_; }
    /// Dispatches that started on a warm server (device_affinity hit).
    [[nodiscard]] std::size_t warm_dispatches() const noexcept { return warm_dispatches_; }
    /// Server failure events (each checkpoints any in-flight dispatch).
    [[nodiscard]] std::size_t failures() const noexcept { return failures_; }
    /// Label dispatches checkpointed off a straggling server onto a faster
    /// one (straggler_requeue_factor hits).
    [[nodiscard]] std::size_t straggler_requeues() const noexcept {
        return straggler_requeues_;
    }
    /// Servers currently down (failed, not yet repaired).
    [[nodiscard]] std::size_t failed_gpu_count() const noexcept {
        std::size_t failed = 0;
        for (const Gpu_state& gpu : gpus_) {
            failed += gpu.failed ? 1 : 0;
        }
        return failed;
    }

    /// Completion - submission per finished job (wait + service), all kinds.
    [[nodiscard]] const std::vector<Sim_duration>& job_latencies() const noexcept {
        return latencies_;
    }
    /// Dispatch - submission per finished job (pure queueing delay; for a
    /// preempted-and-resumed job this measures to its *final* dispatch).
    [[nodiscard]] const std::vector<Sim_duration>& job_waits() const noexcept {
        return waits_;
    }

    /// Label-job statistics (training jobs excluded, so an AMS fleet's
    /// fine-tunes don't masquerade as label latency). Maintained as running
    /// sums plus an exact streaming quantile — no per-label vectors, no
    /// end-of-run sort — and bit-identical to the former sort-at-end values.
    [[nodiscard]] Sim_duration mean_label_latency() const;
    [[nodiscard]] Sim_duration p95_label_latency() const;
    [[nodiscard]] Sim_duration mean_label_wait() const;

private:
    /// One in-flight dispatch (needed for preemption: the completion event
    /// cannot be removed from the queue, so it checks `cancelled` instead).
    struct Active_dispatch {
        std::vector<Sched_job> jobs;
        Sim_time started;
        Sim_duration service;   ///< wall duration == billed total
        Sim_duration total_raw; ///< sum of member raw service (bill shares)
        std::size_t gpu = no_gpu; ///< server this dispatch occupies
        bool all_train = false;
        bool cancelled = false;
        /// Label dispatch past its straggler bound with no faster server
        /// free at check time; the next capacity change re-examines it.
        bool straggler_overdue = false;
        /// Stable id linking this dispatch's trace span begin/end/instants
        /// (assigned unconditionally so traced and dark runs transition
        /// through identical state).
        std::uint64_t trace_id = 0;
    };

    /// Start dispatches while an eligible server is idle and jobs wait.
    void dispatch();
    /// Next job to dispatch: an overdue label (past the preemption bound)
    /// if one is waiting, else the policy's pick.
    [[nodiscard]] std::size_t select_next() const;
    void complete(const std::shared_ptr<Active_dispatch>& active);
    /// Fired when a label job's preemption bound expires: marks the job
    /// overdue, then checkpoints the in-flight all-train dispatch with the
    /// most remaining service and re-queues its remainder. No victim right
    /// now is not a pass — the overdue mark outranks every policy pick from
    /// then on (and dispatch() keeps a defensive re-arm for placements that
    /// could refuse labels).
    void preempt_check(std::uint64_t job_id);
    void preempt(const std::shared_ptr<Active_dispatch>& active);
    /// Shared checkpoint/resume core of preemption, server failure and
    /// straggler re-queueing: refund the unexecuted share of the bill,
    /// truncate the occupancy interval to what ran, cancel the completion
    /// event, free the server and re-queue each member's remainder (replan
    /// hook applied) at its original submission time. The caller bumps its
    /// own counter. Takes the pointer *by value* on purpose: this function
    /// erases from active_, so a caller-supplied reference into that vector
    /// (e.g. `checkpoint(active_[i])`) would dangle onto the next element
    /// mid-function — freeing the wrong server and re-queueing the wrong
    /// jobs. The copy pins the dispatch for the whole call.
    void checkpoint(std::shared_ptr<Active_dispatch> active);
    /// Fold a finished occupancy interval [started, started + elapsed) on
    /// server `gpu` into the incremental busy accumulators.
    void finalize_occupancy(std::size_t gpu, Sim_duration elapsed);
    /// Arm the failure timer of server `g` (no-op when its MTBF is
    /// infinite). Failure and repair delays come from the server's own RNG
    /// substream, so the process is independent of the job stream.
    void schedule_failure(std::size_t g);
    void fail_server(std::size_t g);
    void repair_server(std::size_t g);
    /// Fired `straggler_requeue_factor x nominal` after a label dispatch
    /// started on a server too slow to finish it by then: checkpoint it onto
    /// a strictly faster free server, or mark it for the next capacity
    /// change (see requeue_overdue_stragglers).
    void straggler_check(const std::shared_ptr<Active_dispatch>& active);
    /// Re-queue marked straggler dispatches for which a strictly faster
    /// server has become free. Runs at the top of dispatch(), i.e. at every
    /// capacity change.
    void requeue_overdue_stragglers();
    [[nodiscard]] bool is_in_flight(const std::shared_ptr<Active_dispatch>& active) const;
    /// A free, non-failed server strictly faster than `speed`.
    [[nodiscard]] bool faster_server_free(double speed) const;
    [[nodiscard]] bool is_waiting(std::uint64_t job_id) const {
        return waiting_ids_.count(job_id) != 0;
    }
    /// Waiting label whose bound expired (marked by its check timer, or
    /// clock-based for robustness).
    [[nodiscard]] bool is_overdue(const Sched_job& job) const;
    /// Index of the oldest overdue waiting label, or waiting_.size() if
    /// none. O(position of the first waiting label): labels are never
    /// re-enqueued, so queue position order is submission order for labels
    /// and the first one is the only clock-overdue candidate (a deeper scan
    /// happens only when a younger label was explicitly marked overdue).
    [[nodiscard]] std::size_t find_overdue() const;
    void enqueue(Sched_job job);
    /// Remove and return waiting_[index] (clears its id from the waiting /
    /// overdue index sets).
    [[nodiscard]] Sched_job take_waiting(std::size_t index);
    void ensure_device(std::size_t device_id);
    [[nodiscard]] std::size_t busy_gpu_count() const noexcept {
        std::size_t busy = 0;
        for (const Gpu_state& gpu : gpus_) {
            busy += gpu.busy ? 1 : 0;
        }
        return busy;
    }
    [[nodiscard]] std::size_t available_gpu_count() const noexcept {
        std::size_t available = 0;
        for (const Gpu_state& gpu : gpus_) {
            available += gpu.available() ? 1 : 0;
        }
        return available;
    }
    [[nodiscard]] const Gpu_profile& profile_of(std::size_t g) const noexcept {
        static constexpr Gpu_profile default_profile{};
        return g < config_.gpu_profiles.size() ? config_.gpu_profiles[g] : default_profile;
    }
    /// Short name of a dispatch/job for trace span labels.
    [[nodiscard]] static const char* kind_label(bool all_train) noexcept {
        return all_train ? "train" : "label";
    }
    /// Sample the queue-depth / busy-GPU gauges at the current sim time
    /// (no-op when no registry is installed; the gauges coalesce repeated
    /// same-time samples, so callers fire this after every state change
    /// without worrying about duplicates).
    void sample_gauges();

    Event_queue& queue_;
    Cloud_config config_;
    std::unique_ptr<Scheduling_policy> policy_;
    std::unique_ptr<Placement_policy> placement_;
    std::deque<Sched_job> waiting_; ///< insertion-ordered (== seq order)
    std::size_t waiting_labels_ = 0; ///< label jobs currently in waiting_
    /// Ids of waiting jobs: O(1) is_waiting instead of a queue scan per
    /// label submit (quadratic in queue depth at large fleet sizes). Never
    /// iterated — unordered_set iteration order is the canonical
    /// nondeterminism leak, so the lint holds this member to
    /// membership/insert/erase only; ordered traversal goes through
    /// waiting_ (the seq-ordered deque).
    std::unordered_set<std::uint64_t> waiting_ids_; // shog-lint: membership-only
    /// Waiting label jobs whose preemption bound expired (set by their
    /// check timer; cleared on dispatch). See preempt_check. Only `empty()`
    /// and `count()` are consulted; find_overdue's deep scan walks the
    /// seq-ordered waiting_ deque, never this set.
    std::unordered_set<std::uint64_t> overdue_ids_; // shog-lint: membership-only
    std::vector<std::shared_ptr<Active_dispatch>> active_;
    std::vector<Gpu_state> gpus_;
    /// Per-server failure RNG substreams (only servers with a finite MTBF
    /// ever draw from theirs).
    std::vector<Rng> failure_rngs_;
    std::size_t peak_depth_ = 0;
    std::size_t preemptions_ = 0;
    std::size_t warm_dispatches_ = 0;
    std::size_t failures_ = 0;
    std::size_t straggler_requeues_ = 0;
    std::uint64_t next_job_id_ = 0;
    std::uint64_t next_seq_ = 0;
    Gpu_seconds queued_busy_seconds_;
    Gpu_seconds direct_seconds_;
    std::vector<Gpu_seconds> per_device_seconds_;
    /// Occupancy of dispatches that already finished (completed or
    /// checkpointed), accumulated as they finish — replaces the former
    /// unbounded interval log + end-of-run scan. `finalize_occupancy`
    /// updates all three together.
    std::vector<Gpu_seconds> gpu_finalized_busy_;
    Gpu_seconds finalized_busy_;
    Sim_time max_finalized_end_;
    std::vector<Sim_duration> latencies_;
    std::vector<Sim_duration> waits_;
    std::size_t labels_completed_ = 0;
    Sim_duration label_latency_sum_;
    Sim_duration label_wait_sum_;
    Streaming_quantile label_latency_p95_{0.95};
    Completion_sink sink_;
    /// complete() handed >= 1 callback to the sink and skipped its trailing
    /// dispatch(); resume_dispatch() clears it.
    bool dispatch_deferred_ = false;

    // Observability (all dark/null by default; see set_observability).
    obs::Trace_channel trace_;
    obs::Metrics_registry* metrics_ = nullptr; ///< borrowed; null = metrics off
    /// Cached instrument handles (stable for the registry's lifetime), so
    /// the hot path never does a name lookup.
    obs::Gauge* depth_gauge_ = nullptr;
    obs::Gauge* busy_gauge_ = nullptr;
    obs::Counter* submit_counter_ = nullptr;
    obs::Counter* dispatch_counter_ = nullptr;
    obs::Counter* warm_counter_ = nullptr;
    obs::Counter* completion_counter_ = nullptr;
    obs::Counter* preempt_counter_ = nullptr;
    obs::Counter* requeue_counter_ = nullptr;
    obs::Counter* straggler_counter_ = nullptr;
    obs::Counter* failure_counter_ = nullptr;
    obs::Histogram* batch_histogram_ = nullptr;
    /// Monotone dispatch id (see Active_dispatch::trace_id); incremented
    /// whether or not tracing is on.
    std::uint64_t next_dispatch_id_ = 0;
};

} // namespace shog::sim
