#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "common/require.hpp"

namespace shog::sim {

std::uint64_t sweep_cell_seed(std::uint64_t base_seed, std::size_t cell_index) noexcept {
    if (cell_index == 0) {
        return base_seed;
    }
    // splitmix64 finalizer over a golden-ratio stride.
    std::uint64_t z =
        base_seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(cell_index);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<std::string> run_sweep(std::size_t cell_count,
                                   const std::function<std::string(std::size_t)>& cell,
                                   const Sweep_options& options) {
    SHOG_REQUIRE(cell != nullptr, "run_sweep needs a cell function");
    std::vector<std::string> results(cell_count);
    if (cell_count == 0) {
        return results;
    }

    std::size_t workers = options.workers;
    if (workers == 0) {
        workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers = std::min(workers, cell_count);

    std::vector<std::exception_ptr> errors(cell_count);
    if (workers <= 1) {
        for (std::size_t i = 0; i < cell_count; ++i) {
            try {
                results[i] = cell(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    } else {
        // Work stealing off a shared counter: completion order varies with
        // scheduling, but every result is written to its own index slot, so
        // the returned vector is order-independent by construction.
        std::atomic<std::size_t> next{0};
        const auto worker = [&] {
            for (;;) {
                const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= cell_count) {
                    return;
                }
                try {
                    results[i] = cell(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back(worker);
        }
        for (std::thread& t : pool) {
            t.join();
        }
    }

    for (const std::exception_ptr& error : errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
    return results;
}

std::string merge_sweep_lines(const std::vector<std::string>& results) {
    std::size_t total = 0;
    for (const std::string& r : results) {
        total += r.size();
    }
    std::string merged;
    merged.reserve(total);
    for (const std::string& r : results) {
        merged += r;
    }
    return merged;
}

} // namespace shog::sim
