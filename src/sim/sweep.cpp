#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "common/require.hpp"
#include "common/thread_annotations.hpp"
#include "obs/trace.hpp"

namespace shog::sim {
namespace {

/// Everything the sweep workers share, with the locking discipline spelled
/// out for clang's thread-safety analysis (and checked under TSan by
/// tests/test_sweep_stress.cpp):
///  - `next_cell` is the lock-free work cursor: fetch_add hands each index
///    to exactly one worker.
///  - `results` / `errors` are pre-sized before the pool starts; slot i is
///    written only by the worker that claimed index i and read only after
///    the join barrier, so the writes are disjoint and need no lock (the
///    join publishes them). The analysis cannot express "guarded by
///    disjoint indices + join", so these two stay out of SHOG_GUARDED_BY
///    on purpose — TSan is the checker for this pattern.
///  - `completed` and the user progress callback are serialized under
///    `mutex`: the callback contract promises strictly increasing counts,
///    which a bare atomic increment could not (two workers could invoke
///    the callback with reordered counts between the increment and the
///    call).
struct Sweep_shared {
    explicit Sweep_shared(std::size_t cell_count, const Sweep_options& options)
        : results(cell_count), errors(cell_count), on_cell_done(options.on_cell_done) {}

    std::atomic<std::size_t> next_cell{0};
    std::vector<std::string> results;
    std::vector<std::exception_ptr> errors;

    Mutex mutex;
    std::size_t completed SHOG_GUARDED_BY(mutex) = 0;
    const std::function<void(std::size_t, std::size_t)>& on_cell_done;

    /// Run one claimed cell into its slot; a throwing cell parks its
    /// exception in the matching error slot (rethrown after the drain).
    void run_cell(const std::function<std::string(std::size_t)>& cell, std::size_t index) {
        try {
            results[index] = cell(index);
        } catch (...) {
            errors[index] = std::current_exception();
        }
        Mutex_lock lock{mutex};
        notify_done(index);
    }

private:
    void notify_done(std::size_t index) SHOG_REQUIRES(mutex) {
        ++completed;
        if (on_cell_done) {
            on_cell_done(completed, index);
        }
    }
};

} // namespace

std::uint64_t sweep_cell_seed(std::uint64_t base_seed, std::size_t cell_index) noexcept {
    if (cell_index == 0) {
        return base_seed;
    }
    // splitmix64 finalizer over a golden-ratio stride.
    std::uint64_t z =
        base_seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(cell_index);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<std::string> run_sweep(std::size_t cell_count,
                                   const std::function<std::string(std::size_t)>& cell,
                                   const Sweep_options& options) {
    SHOG_REQUIRE(cell != nullptr, "run_sweep needs a cell function");
    if (cell_count == 0) {
        return {};
    }

    std::size_t workers = options.workers;
    if (workers == 0) {
        workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    workers = std::min(workers, cell_count);

    Sweep_shared shared{cell_count, options};
    // Worker trace buffers are created up front on this thread, each written
    // by exactly one worker, and published by the join — same discipline as
    // the result slots. Engine-track events use the sim epoch as their
    // timestamp (a sweep has no global clock; the stream is diagnostics
    // only, see Sweep_options::trace).
    std::vector<obs::Trace_channel> channels(workers);
    if (options.trace != nullptr) {
        for (std::size_t w = 0; w < workers; ++w) {
            channels[w] = obs::Trace_channel{&options.trace->create_buffer()};
        }
    }
    if (workers <= 1) {
        for (std::size_t i = 0; i < cell_count; ++i) {
            shared.run_cell(cell, i);
            SHOG_TRACE_INSTANT(channels[0], Sim_time{}, obs::track_engine(0), "cell", i);
        }
    } else {
        // Work stealing off a shared counter: completion order varies with
        // scheduling, but every result is written to its own index slot, so
        // the returned vector is order-independent by construction.
        const auto worker = [&shared, &cell, &channels, cell_count](std::size_t w) {
            for (;;) {
                const std::size_t i =
                    shared.next_cell.fetch_add(1, std::memory_order_relaxed);
                if (i >= cell_count) {
                    return;
                }
                shared.run_cell(cell, i);
                SHOG_TRACE_INSTANT(channels[w], Sim_time{}, obs::track_engine(w), "cell", i);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back(worker, w);
        }
        for (std::thread& t : pool) {
            t.join();
        }
    }

    for (const std::exception_ptr& error : shared.errors) {
        if (error) {
            std::rethrow_exception(error);
        }
    }
    return std::move(shared.results);
}

std::string merge_sweep_lines(const std::vector<std::string>& results) {
    std::size_t total = 0;
    for (const std::string& r : results) {
        total += r.size();
    }
    std::string merged;
    merged.reserve(total);
    for (const std::string& r : results) {
        merged += r;
    }
    return merged;
}

} // namespace shog::sim
