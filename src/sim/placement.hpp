// Multi-GPU placement policies for the sharded cloud.
//
// Cloud_runtime models the cloud as `gpu_count` individually tracked GPU
// servers rather than an undifferentiated pool. A Placement_policy decides
// *which* free server a dispatch lands on (the Scheduling_policy in
// sim/policy.hpp decides which job goes next):
//
//  - `any_free`        — lowest-index free server; at gpu_count = 1 (and for
//                        any gpu_count with the default knobs) this is
//                        bit-identical to the pre-sharding pool semantics.
//  - `device_affinity` — a device's jobs prefer the server that last ran a
//                        dispatch for that device: its teacher / fine-tune
//                        weights are still resident, modeled as a warm-start
//                        discount (`Cloud_config::affinity_warm_factor`) on
//                        the dispatch's service time. Falls back to the
//                        lowest-index free server (cold, full price) when no
//                        warm server is free.
//  - `kind_partition`  — servers [0, label_reserved_gpus) are reserved for
//                        label jobs; train dispatches (AMS-style whole-model
//                        fine-tunes) may only occupy the remaining servers,
//                        so fine-tunes can never hold *every* GPU and the
//                        labeling path keeps a dedicated fast lane. Label
//                        jobs may use any server (reserved ones are at the
//                        low indices, so labels fill them first).
//  - `speed_aware`     — labels take the fastest free server, trains the
//                        slowest (heterogeneous clouds: a straggler shard
//                        should soak latency-insensitive fine-tunes, not be
//                        the server a label job lands on by index accident
//                        — or the only idle one left because a train took
//                        the fast shard). Among equal speeds the warm
//                        server wins (affinity tie-break, with the same
//                        warm-start discount), then the lowest index.
//
// Every policy skips *failed* servers (Gpu_state::failed — a server down
// between its MTBF/MTTR events takes no dispatches until repaired).
//
// Placement is deterministic: equal GPU states always yield the same server.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/units.hpp"

namespace shog::sim {

enum class Cloud_job_kind;

enum class Placement_kind { any_free, device_affinity, kind_partition, speed_aware };

[[nodiscard]] const char* to_string(Placement_kind kind) noexcept;

/// Inverse of to_string ("any_free", "device_affinity", "kind_partition",
/// "speed_aware"); throws on unknown names (bench CLI input).
[[nodiscard]] Placement_kind placement_by_name(const char* name);

/// No GPU available / no device resident.
inline constexpr std::size_t no_gpu = static_cast<std::size_t>(-1);
inline constexpr std::size_t no_device = static_cast<std::size_t>(-1);

/// One GPU server of the sharded cloud as the placement policy sees it.
struct Gpu_state {
    bool busy = false;
    /// Down between a failure event and its repair (Cloud_runtime drives the
    /// MTBF/MTTR process). A failed server takes no dispatches.
    bool failed = false;
    /// Service-speed multiplier (Gpu_profile::speed): a dispatch of nominal
    /// service S occupies this server for S / speed wall seconds. 1.0 is the
    /// reference server; 0.25 is a 4x straggler.
    double speed = 1.0;
    /// Device whose weights the server last loaded (set when a dispatch
    /// starts; survives completion and preemption). device_affinity treats a
    /// matching free server as warm.
    std::size_t resident_device = no_device;

    /// Free to take a dispatch right now.
    [[nodiscard]] bool available() const noexcept { return !busy && !failed; }
};

struct Placement_decision {
    std::size_t gpu = no_gpu; ///< no_gpu = no eligible free server
    /// The dispatch starts with this device's weights already resident;
    /// Cloud_runtime multiplies the dispatch service time by
    /// `Cloud_config::affinity_warm_factor`.
    bool warm = false;
};

class Placement_policy {
public:
    virtual ~Placement_policy() = default;

    [[nodiscard]] virtual const char* name() const noexcept = 0;

    /// Server for a dispatch headed by a `kind` job from `device`, or
    /// `no_gpu` when no free server may take it (kind_partition keeps trains
    /// off the reserved servers even when those are idle).
    [[nodiscard]] virtual Placement_decision place(
        Cloud_job_kind kind, std::size_t device,
        const std::vector<Gpu_state>& gpus) const = 0;

    /// How many free servers could take a `kind` dispatch right now. The
    /// scheduler coalesces (max_batch > 1) only on the *last* eligible idle
    /// server, so this drives the batching decision.
    [[nodiscard]] virtual std::size_t eligible_free(
        Cloud_job_kind kind, const std::vector<Gpu_state>& gpus) const = 0;

protected:
    Placement_policy() = default;
};

/// `label_reserved_gpus` is only read by kind_partition.
[[nodiscard]] std::unique_ptr<Placement_policy> make_placement(
    Placement_kind kind, std::size_t label_reserved_gpus);

} // namespace shog::sim
