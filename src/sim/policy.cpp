#include "sim/policy.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "common/require.hpp"

namespace shog::sim {

const char* to_string(Policy_kind kind) noexcept {
    switch (kind) {
    case Policy_kind::fifo: return "fifo";
    case Policy_kind::priority: return "priority";
    case Policy_kind::fair_share: return "fair_share";
    case Policy_kind::staleness: return "staleness";
    }
    return "?";
}

Policy_kind policy_by_name(const char* name) {
    SHOG_REQUIRE(name != nullptr, "policy name must not be null");
    for (Policy_kind kind : {Policy_kind::fifo, Policy_kind::priority,
                             Policy_kind::fair_share, Policy_kind::staleness}) {
        if (std::strcmp(name, to_string(kind)) == 0) {
            return kind;
        }
    }
    SHOG_REQUIRE(false, std::string{"unknown scheduling policy '"} + name + "'");
    return Policy_kind::fifo; // unreachable
}

namespace {

class Fifo_policy final : public Scheduling_policy {
public:
    [[nodiscard]] const char* name() const noexcept override { return "fifo"; }

    [[nodiscard]] std::size_t select(const std::deque<Sched_job>& waiting,
                                     const std::vector<Gpu_seconds>&, Sim_time) const override {
        // The queue is insertion-ordered, so the front is the lowest enqueue
        // counter in O(1). A preempted remainder re-enters at the back with
        // a fresh seq, so FIFO serves jobs submitted before the preemption
        // first — exactly the pre-sharding deque semantics.
        (void)waiting;
        return 0;
    }
};

class Priority_policy final : public Scheduling_policy {
public:
    [[nodiscard]] const char* name() const noexcept override { return "priority"; }

    [[nodiscard]] std::size_t select(const std::deque<Sched_job>& waiting,
                                     const std::vector<Gpu_seconds>&, Sim_time) const override {
        // Label jobs before train jobs; within a kind, oldest submission
        // first (preemption re-queues break enqueue order, so compare
        // submission times rather than trusting seq alone).
        std::size_t best = 0;
        for (std::size_t i = 1; i < waiting.size(); ++i) {
            const bool i_label = waiting[i].kind == Cloud_job_kind::label;
            const bool best_label = waiting[best].kind == Cloud_job_kind::label;
            if (i_label != best_label) {
                if (i_label) {
                    best = i;
                }
                continue;
            }
            if (fifo_before(waiting[i], waiting[best])) {
                best = i;
            }
        }
        return best;
    }
};

class Fair_share_policy final : public Scheduling_policy {
public:
    [[nodiscard]] const char* name() const noexcept override { return "fair_share"; }

    [[nodiscard]] std::size_t select(const std::deque<Sched_job>& waiting,
                                     const std::vector<Gpu_seconds>& device_gpu_seconds,
                                     Sim_time) const override {
        // Deficit round-robin: the waiting device that has consumed the
        // least GPU time goes first (largest service deficit). Ties fall to
        // the oldest submission, then the enqueue order, so the policy
        // degenerates to FIFO on a single-device cluster. The tie test is an
        // epsilon band, not exact equality: prorated coalesced billing and
        // preemption refunds leave ulp-scale residue on the ledger, and an
        // exact compare would turn those into nondeterministic-looking
        // priority inversions between equally-served devices.
        const auto consumed = [&](std::size_t device) {
            return device < device_gpu_seconds.size() ? device_gpu_seconds[device]
                                                      : Gpu_seconds{};
        };
        std::size_t best = 0;
        for (std::size_t i = 1; i < waiting.size(); ++i) {
            // Raw doubles for the epsilon-band tie test: the band scales off
            // fabs() magnitudes, which has no dimensional reading.
            const double ci = consumed(waiting[i].device).value(); // ledger residue compare
            const double cb = consumed(waiting[best].device).value(); // ledger residue compare
            const double eps = 1e-9 * std::max({1.0, std::abs(ci), std::abs(cb)});
            if (std::abs(ci - cb) > eps) {
                if (ci < cb) {
                    best = i;
                }
                continue;
            }
            if (fifo_before(waiting[i], waiting[best])) {
                best = i;
            }
        }
        return best;
    }
};

class Staleness_policy final : public Scheduling_policy {
public:
    [[nodiscard]] const char* name() const noexcept override { return "staleness"; }

    [[nodiscard]] std::size_t select(const std::deque<Sched_job>& waiting,
                                     const std::vector<Gpu_seconds>&, Sim_time now) const override {
        // Label jobs before train jobs (a fine-tune must never starve the
        // labeling path — same guarantee as `priority`). Among labels, the
        // highest *drift-weighted age* goes first: age is time since first
        // submission, weight is the device's |d alpha / dt| estimate, so a
        // batch from a camera crossing day->night outranks an equally old
        // batch from a static scene. The floor keeps devices with no drift
        // signal comparable (pure age ordering among themselves) instead of
        // permanently last. Among trains: plain FIFO order.
        std::size_t best = 0;
        for (std::size_t i = 1; i < waiting.size(); ++i) {
            const bool i_label = waiting[i].kind == Cloud_job_kind::label;
            const bool best_label = waiting[best].kind == Cloud_job_kind::label;
            if (i_label != best_label) {
                if (i_label) {
                    best = i;
                }
                continue;
            }
            if (i_label) {
                const double si = staleness(waiting[i], now);
                const double sb = staleness(waiting[best], now);
                if (si != sb) {
                    if (si > sb) {
                        best = i;
                    }
                    continue;
                }
            }
            if (fifo_before(waiting[i], waiting[best])) {
                best = i;
            }
        }
        return best;
    }

private:
    /// Devices without a drift estimate age at this rate (alpha per second).
    static constexpr double drift_floor = 1e-3;

    static double staleness(const Sched_job& job, Sim_time now) {
        // Dimensionless priority score: age x (alpha per second) drift rate.
        return (now - job.submitted).value() // raw age: multiplied by a per-second rate
               * std::max(job.drift_rate, drift_floor);
    }
};

} // namespace

std::unique_ptr<Scheduling_policy> make_policy(Policy_kind kind) {
    switch (kind) {
    case Policy_kind::fifo: return std::make_unique<Fifo_policy>();
    case Policy_kind::priority: return std::make_unique<Priority_policy>();
    case Policy_kind::fair_share: return std::make_unique<Fair_share_policy>();
    case Policy_kind::staleness: return std::make_unique<Staleness_policy>();
    }
    SHOG_REQUIRE(false, "unknown scheduling policy kind");
    return nullptr; // unreachable
}

} // namespace shog::sim
