#include "sim/policy.hpp"

#include <cstring>
#include <string>

#include "common/require.hpp"

namespace shog::sim {

const char* to_string(Policy_kind kind) noexcept {
    switch (kind) {
    case Policy_kind::fifo: return "fifo";
    case Policy_kind::priority: return "priority";
    case Policy_kind::fair_share: return "fair_share";
    }
    return "?";
}

Policy_kind policy_by_name(const char* name) {
    SHOG_REQUIRE(name != nullptr, "policy name must not be null");
    if (std::strcmp(name, "fifo") == 0) {
        return Policy_kind::fifo;
    }
    if (std::strcmp(name, "priority") == 0) {
        return Policy_kind::priority;
    }
    if (std::strcmp(name, "fair_share") == 0) {
        return Policy_kind::fair_share;
    }
    SHOG_REQUIRE(false, std::string{"unknown scheduling policy '"} + name + "'");
    return Policy_kind::fifo; // unreachable
}

namespace {

class Fifo_policy final : public Scheduling_policy {
public:
    [[nodiscard]] const char* name() const noexcept override { return "fifo"; }

    [[nodiscard]] std::size_t select(const std::deque<Sched_job>& waiting,
                                     const std::vector<Seconds>&) const override {
        (void)waiting;
        return 0;
    }
};

class Priority_policy final : public Scheduling_policy {
public:
    [[nodiscard]] const char* name() const noexcept override { return "priority"; }

    [[nodiscard]] std::size_t select(const std::deque<Sched_job>& waiting,
                                     const std::vector<Seconds>&) const override {
        // Label jobs before train jobs; within a kind, oldest submission
        // first (the queue is not submission-ordered once preemption
        // re-queues checkpointed work, so scan rather than trust position).
        std::size_t best = 0;
        for (std::size_t i = 1; i < waiting.size(); ++i) {
            const bool i_label = waiting[i].kind == Cloud_job_kind::label;
            const bool best_label = waiting[best].kind == Cloud_job_kind::label;
            if (i_label != best_label) {
                if (i_label) {
                    best = i;
                }
                continue;
            }
            if (waiting[i].submitted < waiting[best].submitted) {
                best = i;
            }
        }
        return best;
    }
};

class Fair_share_policy final : public Scheduling_policy {
public:
    [[nodiscard]] const char* name() const noexcept override { return "fair_share"; }

    [[nodiscard]] std::size_t select(
        const std::deque<Sched_job>& waiting,
        const std::vector<Seconds>& device_gpu_seconds) const override {
        // Deficit round-robin: the waiting device that has consumed the
        // least GPU time goes first (largest service deficit). Ties fall to
        // the oldest submission, then the earliest queue position, so the
        // policy degenerates to FIFO on a single-device cluster.
        const auto consumed = [&](std::size_t device) {
            return device < device_gpu_seconds.size() ? device_gpu_seconds[device] : 0.0;
        };
        std::size_t best = 0;
        for (std::size_t i = 1; i < waiting.size(); ++i) {
            const Seconds ci = consumed(waiting[i].device);
            const Seconds cb = consumed(waiting[best].device);
            if (ci != cb) {
                if (ci < cb) {
                    best = i;
                }
                continue;
            }
            if (waiting[i].submitted < waiting[best].submitted) {
                best = i;
            }
        }
        return best;
    }
};

} // namespace

std::unique_ptr<Scheduling_policy> make_policy(Policy_kind kind) {
    switch (kind) {
    case Policy_kind::fifo: return std::make_unique<Fifo_policy>();
    case Policy_kind::priority: return std::make_unique<Priority_policy>();
    case Policy_kind::fair_share: return std::make_unique<Fair_share_policy>();
    }
    SHOG_REQUIRE(false, "unknown scheduling policy kind");
    return nullptr; // unreachable
}

} // namespace shog::sim
