// Strategy interface over the cluster simulation runtime.
//
// A Strategy is one of the paper's five systems (Edge-Only, Cloud-Only,
// Prompt, AMS, Shoggoth), driving ONE edge device. The harness owns
// simulated time, the network link, the H.264 model and the edge compute
// model (per device, via Edge_runtime) plus the shared contended cloud
// (Cloud_runtime); strategies schedule their own events (sampling, uploads,
// training sessions) against the runtime, route cloud-side work through
// `rt.cloud()`, and answer inference queries when the evaluator asks.
#pragma once

#include <string>
#include <vector>

#include "detect/box.hpp"
#include "sim/edge.hpp"
#include "video/stream.hpp"

namespace shog::sim {

class Strategy {
public:
    virtual ~Strategy() = default;
    Strategy(const Strategy&) = delete;
    Strategy& operator=(const Strategy&) = delete;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Called once at t=0; schedule initial events here.
    virtual void start(Edge_runtime& rt) = 0;

    /// The results the application sees for this frame right now.
    [[nodiscard]] virtual std::vector<detect::Detection> infer(Edge_runtime& rt,
                                                               const video::Frame& frame) = 0;

    /// Callback with the detections the harness evaluated (used by Shoggoth
    /// to maintain the alpha accuracy estimate).
    virtual void on_inference(Edge_runtime& rt, const video::Frame& frame,
                              const std::vector<detect::Detection>& detections) {
        (void)rt;
        (void)frame;
        (void)detections;
    }

protected:
    Strategy() = default;
};

} // namespace shog::sim
