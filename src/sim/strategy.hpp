// Strategy interface + simulation runtime.
//
// A Strategy is one of the paper's five systems (Edge-Only, Cloud-Only,
// Prompt, AMS, Shoggoth). The harness owns simulated time, the network
// link, the H.264 model and the edge compute model; strategies schedule
// their own events (sampling, uploads, training sessions) against the
// runtime and answer inference queries when the evaluator asks.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/event_queue.hpp"
#include "common/rng.hpp"
#include "detect/box.hpp"
#include "device/compute.hpp"
#include "netsim/h264.hpp"
#include "netsim/link.hpp"
#include "netsim/messages.hpp"
#include "video/stream.hpp"

namespace shog::sim {

class Runtime {
public:
    Runtime(const video::Video_stream& stream, netsim::Link_config link_config,
            netsim::H264_config h264_config, device::Edge_compute edge_compute,
            std::uint64_t seed);

    [[nodiscard]] Seconds now() const noexcept { return queue_.now(); }
    void schedule(Seconds delay, std::function<void()> action) {
        queue_.schedule_in(delay, std::move(action));
    }

    [[nodiscard]] const video::Video_stream& stream() const noexcept { return stream_; }
    [[nodiscard]] netsim::Link& link() noexcept { return link_; }
    [[nodiscard]] const netsim::H264_model& h264() const noexcept { return h264_; }
    [[nodiscard]] const netsim::Message_size_config& message_sizes() const noexcept {
        return message_sizes_;
    }
    [[nodiscard]] device::Edge_compute& edge_compute() noexcept { return edge_compute_; }
    [[nodiscard]] Rng& rng() noexcept { return rng_; }

    /// Strategies flip this while an edge training session runs; the harness
    /// samples it for the fps timeline (Fig. 4) and for lambda.
    void set_training_active(bool active) noexcept { training_active_ = active; }
    [[nodiscard]] bool training_active() const noexcept { return training_active_; }

    /// Strategies with a non-edge inference path (Cloud-Only) publish their
    /// pipeline fps here; negative means "derive from edge compute".
    void set_fps_override(double fps) noexcept { fps_override_ = fps; }
    [[nodiscard]] double fps_override() const noexcept { return fps_override_; }

    /// Cloud-side GPU seconds consumed (labeling + any cloud training); the
    /// paper's scalability argument (more edges per GPU) reads this.
    void add_cloud_gpu_seconds(Seconds s) noexcept { cloud_gpu_seconds_ += s; }
    [[nodiscard]] Seconds cloud_gpu_seconds() const noexcept { return cloud_gpu_seconds_; }

    /// Count of edge training sessions (reported in results).
    void count_training_session() noexcept { ++training_sessions_; }
    [[nodiscard]] std::size_t training_sessions() const noexcept { return training_sessions_; }

    [[nodiscard]] Event_queue& queue() noexcept { return queue_; }

private:
    const video::Video_stream& stream_;
    Event_queue queue_;
    netsim::Link link_;
    netsim::H264_model h264_;
    netsim::Message_size_config message_sizes_;
    device::Edge_compute edge_compute_;
    Rng rng_;
    bool training_active_ = false;
    double fps_override_ = -1.0;
    Seconds cloud_gpu_seconds_ = 0.0;
    std::size_t training_sessions_ = 0;
};

class Strategy {
public:
    virtual ~Strategy() = default;
    Strategy(const Strategy&) = delete;
    Strategy& operator=(const Strategy&) = delete;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Called once at t=0; schedule initial events here.
    virtual void start(Runtime& rt) = 0;

    /// The results the application sees for this frame right now.
    [[nodiscard]] virtual std::vector<detect::Detection> infer(Runtime& rt,
                                                               const video::Frame& frame) = 0;

    /// Callback with the detections the harness evaluated (used by Shoggoth
    /// to maintain the alpha accuracy estimate).
    virtual void on_inference(Runtime& rt, const video::Frame& frame,
                              const std::vector<detect::Detection>& detections) {
        (void)rt;
        (void)frame;
        (void)detections;
    }

protected:
    Strategy() = default;
};

} // namespace shog::sim
