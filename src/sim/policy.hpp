// Cloud GPU scheduling policies.
//
// Cloud_runtime's dispatch order is a strategy object: given the waiting
// queue and the per-device GPU-seconds ledger, a policy picks which job
// starts (or joins a coalesced dispatch) next. `fifo` reproduces the PR 1
// scheduler bit-for-bit; `priority` serves label jobs before train jobs so
// AMS-style whole-model fine-tunes cannot starve Shoggoth's small labeling
// requests; `fair_share` is a deficit round-robin on accumulated per-device
// GPU seconds, so one chatty (or fine-tune-heavy) device cannot monopolize
// the pool under a heterogeneous fleet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"

namespace shog::sim {

/// What a GPU job is for; label jobs feed the per-fleet label-latency
/// statistics, training jobs (AMS cloud fine-tunes) only count toward
/// occupancy.
enum class Cloud_job_kind { label, train };

enum class Policy_kind { fifo, priority, fair_share };

[[nodiscard]] const char* to_string(Policy_kind kind) noexcept;

/// Inverse of to_string ("fifo", "priority", "fair_share"); throws on
/// unknown names (bench CLI input).
[[nodiscard]] Policy_kind policy_by_name(const char* name);

/// One queued GPU job as the scheduler sees it. `service` is the *remaining*
/// raw service time (preemption re-queues a checkpointed job with the
/// unexecuted remainder); `submitted` never changes across re-queues, so
/// latency always measures from first submission.
struct Sched_job {
    std::size_t device = 0;
    Seconds service = 0.0;
    Seconds submitted = 0.0;
    std::function<void()> done;
    Cloud_job_kind kind = Cloud_job_kind::label;
    std::uint64_t id = 0;
};

class Scheduling_policy {
public:
    virtual ~Scheduling_policy() = default;

    [[nodiscard]] virtual const char* name() const noexcept = 0;

    /// Index into `waiting` (non-empty) of the job to dispatch next.
    /// `device_gpu_seconds` is the billed-GPU-seconds ledger indexed by
    /// device id (devices beyond its size have consumed nothing). Must be
    /// deterministic: equal inputs always pick the same index.
    [[nodiscard]] virtual std::size_t select(
        const std::deque<Sched_job>& waiting,
        const std::vector<Seconds>& device_gpu_seconds) const = 0;
};

[[nodiscard]] std::unique_ptr<Scheduling_policy> make_policy(Policy_kind kind);

} // namespace shog::sim
