// Cloud GPU scheduling policies.
//
// Cloud_runtime's dispatch order is a strategy object: given the waiting
// jobs and the per-device GPU-seconds ledger, a policy picks which job
// starts (or joins a coalesced dispatch) next. `fifo` reproduces the PR 1
// scheduler bit-for-bit; `priority` serves label jobs before train jobs so
// AMS-style whole-model fine-tunes cannot starve Shoggoth's small labeling
// requests; `fair_share` is a deficit round-robin on accumulated per-device
// GPU seconds, so one chatty (or fine-tune-heavy) device cannot monopolize
// the pool under a heterogeneous fleet; `staleness` orders label jobs by
// time-since-submission weighted by the submitting device's drift rate (cf.
// AMS, Khani et al.), so the device whose deployed model is rotting fastest
// gets labeled first.
//
// Policies see the waiting queue in *insertion order*: the scheduler only
// push_backs and erases, so position order always equals the per-job `seq`
// enqueue counter (fifo can just take the front in O(1)). Tiebreaks still
// bottom out on `seq` explicitly, so a policy never depends on position
// beyond that invariant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.hpp"

namespace shog::sim {

/// What a GPU job is for; label jobs feed the per-fleet label-latency
/// statistics, training jobs (AMS cloud fine-tunes) only count toward
/// occupancy.
enum class Cloud_job_kind { label, train };

enum class Policy_kind { fifo, priority, fair_share, staleness };

[[nodiscard]] const char* to_string(Policy_kind kind) noexcept;

/// Inverse of to_string ("fifo", "priority", "fair_share", "staleness");
/// throws on unknown names (bench CLI input).
[[nodiscard]] Policy_kind policy_by_name(const char* name);

/// One queued GPU job as the scheduler sees it. `service` is the *remaining*
/// raw service time (preemption re-queues a checkpointed job with the
/// unexecuted remainder); `submitted` never changes across re-queues, so
/// latency always measures from first submission. `seq` is the enqueue
/// counter (re-assigned when a preempted remainder re-enters the queue) and
/// is the queue-order tiebreak every policy bottoms out on.
struct Sched_job {
    std::size_t device = 0;
    Sim_duration service;
    Sim_time submitted;
    std::function<void()> done;
    Cloud_job_kind kind = Cloud_job_kind::label;
    std::uint64_t id = 0;
    std::uint64_t seq = 0;
    /// Submitting device's model-drift rate (|d alpha / dt| estimate, from
    /// Cloud_runtime::submit); only the staleness policy reads it. 0 means
    /// "no signal" and falls back to the policy's drift floor.
    double drift_rate = 0.0;
    /// Optional resume planner: when a checkpoint (preemption, server
    /// failure, straggler re-queue) puts this job's remainder back in the
    /// queue, the scheduler calls `replan(remainder, now)` and re-queues the
    /// returned service instead — clamped to [0, remainder], so a planner
    /// can only *shrink* the remaining work (an AMS fine-tune drops samples
    /// that went stale while it sat checkpointed), never inflate the bill.
    std::function<Sim_duration(Sim_duration, Sim_time)> replan;
    /// This job was already re-queued off a straggling server. A dispatch
    /// whose members have all escaped once is never checked again: a
    /// placement that puts the remainder straight back on the slow shard
    /// (index-ordered ones do) would otherwise re-checkpoint it forever —
    /// the remainder halves each round until the time increment underflows
    /// and stops shrinking at all. A marked job can escape again only by
    /// coalescing with a never-requeued label (the fresh member must not be
    /// stranded), and every escape marks all members, so total re-queues
    /// are bounded by the number of labels ever submitted.
    bool straggler_requeued = false;
};

/// Queue-order comparison shared by the policies and the scheduler's
/// overdue/fallback picks: older submission first, enqueue order on ties.
/// This is exactly the pre-sharding deque order (jobs are pushed in seq
/// order and erased in place, preserving it) — keep the two users in sync
/// by never duplicating this rule.
[[nodiscard]] inline bool fifo_before(const Sched_job& a, const Sched_job& b) noexcept {
    if (a.submitted != b.submitted) {
        return a.submitted < b.submitted;
    }
    return a.seq < b.seq;
}

class Scheduling_policy {
public:
    virtual ~Scheduling_policy() = default;

    [[nodiscard]] virtual const char* name() const noexcept = 0;

    /// Index into `waiting` (non-empty, insertion-ordered) of the job to
    /// dispatch next. `device_gpu_seconds` is the billed-GPU-seconds ledger
    /// indexed by device id (devices beyond its size have consumed
    /// nothing); `now` is the simulation clock (staleness ages jobs against
    /// it). Must be deterministic: equal inputs always pick the same job,
    /// with tiebreaks bottoming out on `seq`.
    [[nodiscard]] virtual std::size_t select(
        const std::deque<Sched_job>& waiting,
        const std::vector<Gpu_seconds>& device_gpu_seconds, Sim_time now) const = 0;
};

[[nodiscard]] std::unique_ptr<Scheduling_policy> make_policy(Policy_kind kind);

} // namespace shog::sim
