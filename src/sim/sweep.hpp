// Parallel sweep replication: fan independent simulation cells across a
// worker-thread pool with a deterministic merge.
//
// The simulator itself is single-threaded by design (one event queue, one
// clock), but parameter sweeps and seed replications are embarrassingly
// parallel: each cell owns its fleet, cloud, and event queue, and cells
// never touch shared mutable state (fleets clone the teacher per cell —
// see fleet::Fleet). run_sweep exploits exactly that: workers pull cell
// indices from a shared counter, results land in index-addressed slots,
// and the merged output is byte-identical for ANY worker count — the
// determinism tests pin 1 worker vs 8 workers producing identical JSON.
// Threading model (enforced by thread_annotations.hpp + TSan, see
// docs/ANALYSIS.md): the only cross-thread state is owned by run_sweep
// itself — an atomic cursor handing out cell indices, pre-sized
// index-addressed result/error slots (disjoint writes, published by the
// join barrier), and a mutex-guarded progress counter. Cells must be
// self-contained: they may not touch each other's state, and anything a
// cell reads from the enclosing scope (testbeds, configs) must be
// logically const for the duration of the sweep — fleet::Fleet clones the
// testbed's teacher per cell for exactly this reason.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace shog::obs {
class Trace_sink;
}

namespace shog::sim {

/// Seed for replication cell `cell_index` of a sweep based on `base_seed`.
/// Cell 0 keeps the base seed (so a one-cell sweep reproduces the direct
/// run exactly); later cells get splitmix64-finalized substreams, which
/// also keeps them disjoint from the harness's golden-ratio device seeds.
[[nodiscard]] std::uint64_t sweep_cell_seed(std::uint64_t base_seed,
                                            std::size_t cell_index) noexcept;

struct Sweep_options {
    /// Worker threads; 0 means one per hardware thread. The pool is capped
    /// at the cell count (never more threads than cells).
    std::size_t workers = 1;
    /// Progress observer: fired once per finished cell with (cells done so
    /// far, the cell index that just finished). Calls are serialized under
    /// the pool's mutex and `done` is strictly increasing to cell_count,
    /// but the *order of cell indices is completion order* — it varies
    /// with scheduling, so a callback must only drive side channels
    /// (stderr progress bars, cancellation checks), never the merged
    /// output. The determinism contract covers run_sweep's return value,
    /// not this stream.
    std::function<void(std::size_t done, std::size_t cell_index)> on_cell_done;
    /// Optional engine diagnostics: when set, every worker gets its own
    /// trace buffer (created before the pool starts, published by the join)
    /// and marks each cell it finishes with an instant on its
    /// obs::track_engine track. Which worker runs which cell is a
    /// scheduling accident, so — like Obs_options::engine_tracks — this
    /// stream is EXCLUDED from the determinism contract; the merged sweep
    /// output stays byte-identical either way.
    obs::Trace_sink* trace = nullptr;
};

/// Run `cell(i)` for every i in [0, cell_count) on a worker pool and return
/// the results in cell-index order regardless of completion order. `cell`
/// must be self-contained (own model clones, own RNG substream via
/// sweep_cell_seed) and is called at most once per index. If any cell
/// throws, the lowest-index exception is rethrown after all workers drain.
[[nodiscard]] std::vector<std::string> run_sweep(
    std::size_t cell_count, const std::function<std::string(std::size_t)>& cell,
    const Sweep_options& options = {});

/// Concatenate sweep results in cell order (cells emit newline-terminated
/// JSON lines; the merge adds nothing, so sequential output is reproduced
/// byte for byte).
[[nodiscard]] std::string merge_sweep_lines(const std::vector<std::string>& results);

} // namespace shog::sim
