// Shared internals of the two cluster engines: the sequential run_cluster
// (sim/harness.cpp) and the device-sharded run_cluster_sharded
// (sim/shard.cpp). Both engines build the same per-device state, schedule
// the same per-device events and assemble the same Cluster_result — the
// only difference is *which* Event_queue and Cloud_runtime a device is
// wired to. Keeping the bodies here (not duplicated) is what makes the
// byte-identity pins between the engines meaningful: a drift in one
// engine's scheduling or assembly is a drift in both, caught by the
// sequential golden hash.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "detect/metrics.hpp"
#include "device/monitor.hpp"
#include "sim/edge.hpp"
#include "sim/harness.hpp"

namespace shog::sim::detail {

/// The hardware a device actually runs on: its override if set, otherwise
/// the cluster-wide harness defaults (identical to the homogeneous path).
[[nodiscard]] inline Device_hardware effective_hardware(const Device_spec& spec,
                                                        const Harness_config& config) {
    if (spec.hardware) {
        return *spec.hardware;
    }
    return Device_hardware{config.link, device::jetson_tx2(), config.contention,
                           config.edge_inference_gflops};
}

/// Everything the harness tracks for one device of the cluster. The queue
/// and cloud references are the engine's choice: the sequential engine
/// passes the single shared pair, the sharded engine a device-local queue
/// and its cloud proxy.
struct Device_state {
    Device_state(std::size_t device_id, const Device_spec& spec, Event_queue& queue,
                 Cloud_runtime& cloud, const Harness_config& config,
                 const Device_hardware& hardware)
        : spec{spec},
          runtime{device_id,
                  *spec.stream,
                  queue,
                  cloud,
                  hardware.link,
                  config.h264,
                  device::Edge_compute{hardware.edge_device, hardware.contention,
                                       hardware.edge_inference_gflops},
                  device_seed(config.seed, device_id)},
          evaluator{spec.stream->num_classes(), config.iou_threshold} {}

    Device_spec spec;
    Edge_runtime runtime;
    detect::Stream_evaluator evaluator;
    device::Fps_tracker fps_tracker;
};

/// Shared argument validation of both engines.
inline void validate_cluster(const std::vector<Device_spec>& devices,
                             const Cluster_config& config) {
    SHOG_REQUIRE(!devices.empty(), "cluster needs at least one device");
    SHOG_REQUIRE(config.harness.eval_stride >= 1, "eval stride must be >= 1");
    for (const Device_spec& spec : devices) {
        SHOG_REQUIRE(spec.strategy != nullptr, "device needs a strategy");
        SHOG_REQUIRE(spec.stream != nullptr, "device needs a stream");
    }
}

/// Schedule one device's evaluation events (stride over frames, query the
/// strategy, score) and fps sampling ticks into `queue`. Scheduling order
/// matters only for the FIFO tiebreak of simultaneous events and is
/// deterministic; the closures capture &state for the whole run.
inline void schedule_device_events(Device_state& state, Event_queue& queue,
                                   const Harness_config& config) {
    const video::Video_stream& stream = *state.spec.stream;
    for (std::size_t idx = 0; idx < stream.frame_count(); idx += config.eval_stride) {
        const Sim_time at{static_cast<double>(idx) / stream.fps()};
        queue.schedule(at, [&state, idx] {
            const video::Frame frame = state.runtime.stream().frame_at(idx);
            std::vector<detect::Detection> detections =
                state.spec.strategy->infer(state.runtime, frame);
            state.spec.strategy->on_inference(state.runtime, frame, detections);
            state.evaluator.add_frame(
                frame.timestamp,
                detect::Frame_eval{std::move(detections),
                                   video::Video_stream::ground_truth(frame)});
        });
    }
    const double video_fps = stream.fps();
    const Sim_duration duration{stream.duration()};
    const auto sample_fps = [&state, video_fps] {
        const double fps =
            state.runtime.fps_override() >= 0.0
                ? state.runtime.fps_override()
                : state.runtime.edge_compute().achieved_fps(
                      video_fps, state.runtime.training_active());
        state.fps_tracker.record_until(state.runtime.now(), fps);
    };
    // Tick times are computed from an integer tick index: accumulating
    // `t += fps_tick` drifts in floating point and can skip the final
    // tick, leaving the fps timeline short of the stream duration.
    const Sim_duration fps_tick = config.fps_tick;
    const auto tick_count = static_cast<std::size_t>(duration / fps_tick + 1e-9);
    for (std::size_t k = 1; k <= tick_count; ++k) {
        queue.schedule(
            Sim_time{} + std::min(static_cast<double>(k) * fps_tick, duration),
            sample_fps);
    }
    // Cover the tail segment up to `duration` when the ticks don't land
    // exactly on it (duration not a multiple of fps_tick).
    if (static_cast<double>(tick_count) * fps_tick < duration) {
        queue.schedule(Sim_time{} + duration, sample_fps);
    }
}

/// One device's slice of the Cluster_result. Field computation order is the
/// serialization contract — do not reorder.
[[nodiscard]] inline Run_result assemble_device_result(Device_state& state,
                                                       const Harness_config& config) {
    const double duration = state.spec.stream->duration();

    Run_result result;
    result.strategy = state.spec.strategy->name();
    result.duration = duration;
    result.map_pooled = state.evaluator.map();
    result.average_iou = state.evaluator.average_iou();
    result.evaluated_frames = state.evaluator.frame_count();
    const Sim_duration span{duration};
    result.up_kbps =
        state.runtime.link().up_meter().average_kbps(span).value(); // serialized metric
    result.down_kbps =
        state.runtime.link().down_meter().average_kbps(span).value(); // serialized metric
    result.average_fps = state.fps_tracker.average_fps();
    result.training_sessions = state.runtime.training_sessions();
    result.cloud_gpu_seconds = state.runtime.cloud_gpu_seconds().value(); // serialized
    for (const auto& s : state.fps_tracker.samples()) {
        result.fps_timeline.emplace_back(s.from.value(), s.fps); // serialized
    }
    result.windowed_map = state.evaluator.windowed_map(
        config.map_window.value()); // detect layer keys windows by raw start
    result.map_window = config.map_window.value(); // serialized
    if (!result.windowed_map.empty()) {
        double total = 0.0;
        for (const auto& [start, value] : result.windowed_map) {
            total += value;
        }
        result.map = total / static_cast<double>(result.windowed_map.size());
    } else {
        result.map = result.map_pooled;
    }
    return result;
}

/// The cloud-side aggregates of a finished run. Reads the *real* cloud (the
/// sharded engine folds proxies away before this) at the shared horizon;
/// accumulation order inside the cloud is completion order, which both
/// engines reproduce identically.
inline void assemble_cloud_metrics(Cluster_result& cluster, const Cloud_runtime& cloud,
                                   Sim_time horizon) {
    cluster.gpu_busy_seconds =
        (horizon > Sim_time{} ? cloud.busy_seconds_within(horizon) : cloud.busy_seconds())
            .value(); // serialized metric
    cluster.gpu_utilization = horizon > Sim_time{} ? cloud.utilization(horizon) : 0.0;
    cluster.cloud_jobs = cloud.jobs_completed();
    cluster.label_jobs = cloud.labels_completed();
    cluster.mean_label_latency = cloud.mean_label_latency().value(); // serialized
    cluster.p95_label_latency = cloud.p95_label_latency().value();   // serialized
    cluster.mean_label_wait = cloud.mean_label_wait().value();       // serialized
    cluster.peak_queue_depth = cloud.peak_queue_depth();
    cluster.preemptions = cloud.preemptions();
    cluster.warm_dispatches = cloud.warm_dispatches();
    cluster.failures = cloud.failures();
    cluster.straggler_requeues = cloud.straggler_requeues();
}

/// One trace buffer for the next emitting context, or a dark channel when
/// no sink is configured. Both engines call this in the same order (cloud
/// first, then devices in index order) on the constructing/coordinating
/// thread — buffer identity never matters for the merged stream (every
/// track lives in exactly one buffer), only for ownership.
[[nodiscard]] inline obs::Trace_channel make_trace_channel(obs::Trace_sink* sink) {
    return sink != nullptr ? obs::Trace_channel{&sink->create_buffer()}
                           : obs::Trace_channel{};
}

/// Snapshot the metrics registry (if any) onto the result. Runs after
/// assemble_cloud_metrics in both engines.
inline void snapshot_metrics(Cluster_result& cluster, const Cluster_config& config) {
    if (config.obs.metrics != nullptr) {
        cluster.metrics = config.obs.metrics->snapshot();
    }
}

} // namespace shog::sim::detail
