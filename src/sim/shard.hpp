// Device-sharded cluster engine: parallelism *inside* one fleet run.
//
// run_cluster holds every device on one Event_queue, so a 10^4-device run
// is sequential even though the cloud queue is the only cross-device
// coupling. run_cluster_sharded partitions the devices across K worker
// threads; each device advances on its own local Event_queue, optimistically
// running ahead until its next cloud interaction (submit or direct GPU
// accounting — buffered by a per-device cloud proxy), and the shards
// synchronize at a barrier keyed on the global next-cloud-event time. A
// single coordinator thread then replays the buffered interactions and the
// cloud's own events in exactly the sequential engine's (time, seq) order,
// so the merged Cluster_result — including Streaming_quantile fold order
// and incremental mAP — is byte-identical for any shard count. The barrier
// protocol and the determinism argument are documented in
// docs/ARCHITECTURE.md ("Sharded single runs") and at the top of
// sim/shard.cpp.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/harness.hpp"

namespace shog::sim {

struct Shard_options {
    /// Worker threads (device shards). 0 = one per hardware core. shards=1
    /// still runs the full sharded protocol (buffer, barrier, replay) on a
    /// single worker — the bit-identity pin against run_cluster covers the
    /// protocol, not a bypass.
    std::size_t shards = 0;
};

/// Drop-in replacement for run_cluster: same inputs, byte-identical output,
/// K-way parallel execution. Each Device_spec's strategy must be exclusive
/// to its device (run_cluster allows this too, but the sharded engine runs
/// devices concurrently, so a strategy shared across devices would be a
/// data race); the shared teacher detector is safe because every teacher
/// access happens inside a cloud completion callback, and the coordinator
/// runs all completion callbacks serially in fleet order.
[[nodiscard]] Cluster_result run_cluster_sharded(const std::vector<Device_spec>& devices,
                                                 const Cluster_config& config,
                                                 const Shard_options& options = {});

} // namespace shog::sim
