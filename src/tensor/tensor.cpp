#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace shog {

namespace {

std::size_t shape_product(const std::vector<std::size_t>& shape) {
    std::size_t n = 1;
    for (std::size_t d : shape) {
        n *= d;
    }
    return shape.empty() ? 0 : n;
}

} // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_{std::move(shape)}, data_(shape_product(shape_), 0.0) {
    for (std::size_t d : shape_) {
        SHOG_REQUIRE(d > 0, "tensor dimensions must be positive");
    }
}

Tensor Tensor::from_vector(std::vector<double> values) {
    SHOG_REQUIRE(!values.empty(), "from_vector needs at least one value");
    Tensor t;
    t.shape_ = {values.size()};
    t.data_ = std::move(values);
    return t;
}

Tensor Tensor::from_rows(std::initializer_list<std::initializer_list<double>> rows) {
    SHOG_REQUIRE(rows.size() > 0, "from_rows needs at least one row");
    const std::size_t cols = rows.begin()->size();
    SHOG_REQUIRE(cols > 0, "from_rows needs at least one column");
    Tensor t{rows.size(), cols};
    std::size_t r = 0;
    for (const auto& row : rows) {
        SHOG_REQUIRE(row.size() == cols, "ragged rows in from_rows");
        std::size_t c = 0;
        for (double v : row) {
            t.at(r, c++) = v;
        }
        ++r;
    }
    return t;
}

Tensor Tensor::full(std::vector<std::size_t> shape, double value) {
    Tensor t{std::move(shape)};
    t.fill(value);
    return t;
}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, double mean, double stddev) {
    Tensor t{std::move(shape)};
    for (double& x : t.data_) {
        x = rng.gaussian(mean, stddev);
    }
    return t;
}

std::size_t Tensor::dim(std::size_t i) const {
    SHOG_REQUIRE(i < shape_.size(), "shape dimension out of range");
    return shape_[i];
}

std::size_t Tensor::rows() const {
    SHOG_REQUIRE(rank() == 2, "rows() requires a rank-2 tensor");
    return shape_[0];
}

std::size_t Tensor::cols() const {
    SHOG_REQUIRE(rank() == 2, "cols() requires a rank-2 tensor");
    return shape_[1];
}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const {
    const std::size_t n = shape_product(shape);
    SHOG_REQUIRE(n == size(), "reshape must preserve element count");
    Tensor t;
    t.shape_ = std::move(shape);
    t.data_ = data_;
    return t;
}

double& Tensor::at(std::size_t i) {
    SHOG_REQUIRE(i < data_.size(), "flat index out of range");
    return data_[i];
}

double Tensor::at(std::size_t i) const {
    SHOG_REQUIRE(i < data_.size(), "flat index out of range");
    return data_[i];
}

double& Tensor::at(std::size_t r, std::size_t c) {
    SHOG_REQUIRE(rank() == 2, "2-index access requires a rank-2 tensor");
    SHOG_REQUIRE(r < shape_[0] && c < shape_[1], "index out of range");
    return data_[r * shape_[1] + c];
}

double Tensor::at(std::size_t r, std::size_t c) const {
    SHOG_REQUIRE(rank() == 2, "2-index access requires a rank-2 tensor");
    SHOG_REQUIRE(r < shape_[0] && c < shape_[1], "index out of range");
    return data_[r * shape_[1] + c];
}

void Tensor::check_same_shape(const Tensor& rhs, const char* op) const {
    SHOG_REQUIRE(shape_ == rhs.shape_,
                 std::string{op} + ": shape mismatch " + shape_str() + " vs " + rhs.shape_str());
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
    check_same_shape(rhs, "operator+=");
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += rhs.data_[i];
    }
    return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
    check_same_shape(rhs, "operator-=");
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] -= rhs.data_[i];
    }
    return *this;
}

Tensor& Tensor::operator*=(const Tensor& rhs) {
    check_same_shape(rhs, "operator*=");
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] *= rhs.data_[i];
    }
    return *this;
}

Tensor& Tensor::operator*=(double s) noexcept {
    for (double& x : data_) {
        x *= s;
    }
    return *this;
}

Tensor& Tensor::operator+=(double s) noexcept {
    for (double& x : data_) {
        x += s;
    }
    return *this;
}

Tensor Tensor::operator+(const Tensor& rhs) const {
    Tensor out = *this;
    out += rhs;
    return out;
}

Tensor Tensor::operator-(const Tensor& rhs) const {
    Tensor out = *this;
    out -= rhs;
    return out;
}

Tensor Tensor::operator*(double s) const {
    Tensor out = *this;
    out *= s;
    return out;
}

Tensor& Tensor::add_row_vector(const Tensor& bias) {
    SHOG_REQUIRE(rank() == 2, "add_row_vector target must be rank-2");
    SHOG_REQUIRE(bias.rank() == 1 && bias.size() == cols(),
                 "bias length must equal column count");
    for (std::size_t r = 0; r < rows(); ++r) {
        double* row_ptr = data_.data() + r * cols();
        for (std::size_t c = 0; c < cols(); ++c) {
            row_ptr[c] += bias.data_[c];
        }
    }
    return *this;
}

void Tensor::fill(double value) noexcept { std::fill(data_.begin(), data_.end(), value); }

double Tensor::sum() const noexcept { return std::accumulate(data_.begin(), data_.end(), 0.0); }

double Tensor::mean() const noexcept {
    return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
}

Tensor Tensor::column_mean() const {
    SHOG_REQUIRE(rank() == 2, "column_mean requires a rank-2 tensor");
    Tensor out{std::vector<std::size_t>{cols()}};
    for (std::size_t r = 0; r < rows(); ++r) {
        for (std::size_t c = 0; c < cols(); ++c) {
            out.data_[c] += at(r, c);
        }
    }
    out *= 1.0 / static_cast<double>(rows());
    return out;
}

Tensor Tensor::column_variance(const Tensor& mean_vec) const {
    SHOG_REQUIRE(rank() == 2, "column_variance requires a rank-2 tensor");
    SHOG_REQUIRE(mean_vec.rank() == 1 && mean_vec.size() == cols(),
                 "mean vector length must equal column count");
    Tensor out{std::vector<std::size_t>{cols()}};
    for (std::size_t r = 0; r < rows(); ++r) {
        for (std::size_t c = 0; c < cols(); ++c) {
            const double d = at(r, c) - mean_vec.data_[c];
            out.data_[c] += d * d;
        }
    }
    out *= 1.0 / static_cast<double>(rows());
    return out;
}

Tensor Tensor::column_sum() const {
    SHOG_REQUIRE(rank() == 2, "column_sum requires a rank-2 tensor");
    Tensor out{std::vector<std::size_t>{cols()}};
    for (std::size_t r = 0; r < rows(); ++r) {
        for (std::size_t c = 0; c < cols(); ++c) {
            out.data_[c] += at(r, c);
        }
    }
    return out;
}

Tensor Tensor::row(std::size_t r) const {
    SHOG_REQUIRE(rank() == 2, "row() requires a rank-2 tensor");
    SHOG_REQUIRE(r < rows(), "row index out of range");
    Tensor out{std::vector<std::size_t>{cols()}};
    std::copy_n(data_.data() + r * cols(), cols(), out.data_.data());
    return out;
}

void Tensor::set_row(std::size_t r, const Tensor& values) {
    SHOG_REQUIRE(rank() == 2, "set_row() requires a rank-2 tensor");
    SHOG_REQUIRE(r < rows(), "row index out of range");
    SHOG_REQUIRE(values.rank() == 1 && values.size() == cols(),
                 "row values length must equal column count");
    std::copy_n(values.data_.data(), cols(), data_.data() + r * cols());
}

Tensor Tensor::slice_rows(std::size_t begin, std::size_t end) const {
    SHOG_REQUIRE(rank() == 2, "slice_rows requires a rank-2 tensor");
    SHOG_REQUIRE(begin <= end && end <= rows(), "invalid row slice");
    SHOG_REQUIRE(begin < end, "empty row slice");
    Tensor out{end - begin, cols()};
    std::copy_n(data_.data() + begin * cols(), (end - begin) * cols(), out.data_.data());
    return out;
}

Tensor Tensor::gather_rows(const std::vector<std::size_t>& indices) const {
    SHOG_REQUIRE(rank() == 2, "gather_rows requires a rank-2 tensor");
    SHOG_REQUIRE(!indices.empty(), "gather_rows needs at least one index");
    Tensor out{indices.size(), cols()};
    for (std::size_t i = 0; i < indices.size(); ++i) {
        SHOG_REQUIRE(indices[i] < rows(), "gather index out of range");
        std::copy_n(data_.data() + indices[i] * cols(), cols(), out.data_.data() + i * cols());
    }
    return out;
}

std::string Tensor::shape_str() const {
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        os << shape_[i] << (i + 1 < shape_.size() ? "x" : "");
    }
    os << ']';
    return os.str();
}

namespace {

/// crow[j] += a * brow[j] for j in [0, n). Each j is an independent
/// multiply-then-add, so the avx2 clone (SIMD across j, no FMA — the avx2
/// target does not enable fma, so mul and add stay separate roundings)
/// produces bit-identical results to the scalar clone. This row update is
/// the inner loop of matmul and matmul_tn; matmul_nt's dot-product loop is
/// a genuine reduction and deliberately stays scalar (vectorizing it would
/// reassociate the sum and change low bits).
///
/// Multi-versioning is disabled under TSan: target_clones emits an IFUNC
/// whose resolver runs during relocation, *before* libtsan has set up its
/// thread state — the instrumented resolver's first TLS access then
/// segfaults inside the runtime (every TSan binary linking this TU died at
/// startup). The scalar clone is bit-identical anyway, so SHOG_SANITIZE=
/// thread just runs that.
#if defined(__SANITIZE_THREAD__)
#define SHOG_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SHOG_UNDER_TSAN 1
#endif
#endif
#if defined(SHOG_UNDER_TSAN)
#define SHOG_SIMD_CLONES
#else
#define SHOG_SIMD_CLONES __attribute__((target_clones("avx2", "default")))
#endif
SHOG_SIMD_CLONES void
add_scaled_row(double* crow, const double a, const double* brow, const std::size_t n) {
    for (std::size_t j = 0; j < n; ++j) {
        crow[j] += a * brow[j];
    }
}

} // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
    SHOG_REQUIRE(a.rank() == 2 && b.rank() == 2, "matmul needs rank-2 operands");
    SHOG_REQUIRE(a.cols() == b.rows(), "matmul inner dimension mismatch");
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    Tensor c{m, n};
    const double* ad = a.data();
    const double* bd = b.data();
    double* cd = c.data();
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t p = 0; p < k; ++p) {
            const double aip = ad[i * k + p];
            if (aip == 0.0) {
                continue;
            }
            add_scaled_row(cd + i * n, aip, bd + p * n, n);
        }
    }
    return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
    SHOG_REQUIRE(a.rank() == 2 && b.rank() == 2, "matmul_nt needs rank-2 operands");
    SHOG_REQUIRE(a.cols() == b.cols(), "matmul_nt inner dimension mismatch");
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.rows();
    Tensor c{m, n};
    const double* ad = a.data();
    const double* bd = b.data();
    double* cd = c.data();
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const double* arow = ad + i * k;
            const double* brow = bd + j * k;
            double acc = 0.0;
            for (std::size_t p = 0; p < k; ++p) {
                acc += arow[p] * brow[p];
            }
            cd[i * n + j] = acc;
        }
    }
    return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
    SHOG_REQUIRE(a.rank() == 2 && b.rank() == 2, "matmul_tn needs rank-2 operands");
    SHOG_REQUIRE(a.rows() == b.rows(), "matmul_tn inner dimension mismatch");
    const std::size_t m = a.cols();
    const std::size_t k = a.rows();
    const std::size_t n = b.cols();
    Tensor c{m, n};
    const double* ad = a.data();
    const double* bd = b.data();
    double* cd = c.data();
    for (std::size_t p = 0; p < k; ++p) {
        const double* arow = ad + p * m;
        const double* brow = bd + p * n;
        for (std::size_t i = 0; i < m; ++i) {
            const double aval = arow[i];
            if (aval == 0.0) {
                continue;
            }
            add_scaled_row(cd + i * n, aval, brow, n);
        }
    }
    return c;
}

Tensor transpose(const Tensor& a) {
    SHOG_REQUIRE(a.rank() == 2, "transpose needs a rank-2 tensor");
    Tensor t{a.cols(), a.rows()};
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t c = 0; c < a.cols(); ++c) {
            t.at(c, r) = a.at(r, c);
        }
    }
    return t;
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
    SHOG_REQUIRE(!parts.empty(), "concat_rows needs at least one part");
    const std::size_t cols = parts.front().cols();
    std::size_t total_rows = 0;
    for (const Tensor& p : parts) {
        SHOG_REQUIRE(p.rank() == 2 && p.cols() == cols, "concat_rows column mismatch");
        total_rows += p.rows();
    }
    Tensor out{total_rows, cols};
    std::size_t r = 0;
    for (const Tensor& p : parts) {
        std::copy_n(p.data(), p.size(), out.data() + r * cols);
        r += p.rows();
    }
    return out;
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
    SHOG_REQUIRE(a.shape() == b.shape(), "max_abs_diff shape mismatch");
    double best = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        best = std::max(best, std::abs(a.at(i) - b.at(i)));
    }
    return best;
}

} // namespace shog
