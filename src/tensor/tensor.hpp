// Dense row-major tensor of doubles. The NN stack works almost entirely
// with rank-2 tensors (batch x features); rank-1 is supported for bias and
// label vectors. The class owns its storage (std::vector) and follows the
// rule of zero.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace shog {

class Tensor {
public:
    /// Empty tensor (rank 0, no elements).
    Tensor() = default;

    /// Zero-filled tensor with the given shape.
    explicit Tensor(std::vector<std::size_t> shape);

    /// rank-2 convenience.
    Tensor(std::size_t rows, std::size_t cols) : Tensor(std::vector<std::size_t>{rows, cols}) {}

    /// Build a rank-1 tensor from values.
    static Tensor from_vector(std::vector<double> values);

    /// Build a rank-2 tensor from nested initializer lists (row major).
    static Tensor from_rows(std::initializer_list<std::initializer_list<double>> rows);

    /// Tensor of the given shape with every element = value.
    static Tensor full(std::vector<std::size_t> shape, double value);

    /// Gaussian-initialized tensor.
    static Tensor randn(std::vector<std::size_t> shape, Rng& rng, double mean = 0.0,
                        double stddev = 1.0);

    // -- shape ---------------------------------------------------------------

    [[nodiscard]] const std::vector<std::size_t>& shape() const noexcept { return shape_; }
    [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    /// Dimension i of the shape; throws if out of range.
    [[nodiscard]] std::size_t dim(std::size_t i) const;

    /// Rows/cols for rank-2 tensors (throws otherwise).
    [[nodiscard]] std::size_t rows() const;
    [[nodiscard]] std::size_t cols() const;

    /// Reshape preserving element count (row-major order).
    [[nodiscard]] Tensor reshaped(std::vector<std::size_t> shape) const;

    // -- element access ------------------------------------------------------

    [[nodiscard]] double& at(std::size_t i);
    [[nodiscard]] double at(std::size_t i) const;
    [[nodiscard]] double& at(std::size_t r, std::size_t c);
    [[nodiscard]] double at(std::size_t r, std::size_t c) const;

    [[nodiscard]] double* data() noexcept { return data_.data(); }
    [[nodiscard]] const double* data() const noexcept { return data_.data(); }
    [[nodiscard]] std::vector<double>& storage() noexcept { return data_; }
    [[nodiscard]] const std::vector<double>& storage() const noexcept { return data_; }

    // -- elementwise ops (shape-checked) --------------------------------------

    Tensor& operator+=(const Tensor& rhs);
    Tensor& operator-=(const Tensor& rhs);
    Tensor& operator*=(const Tensor& rhs); // Hadamard
    Tensor& operator*=(double s) noexcept;
    Tensor& operator+=(double s) noexcept;

    [[nodiscard]] Tensor operator+(const Tensor& rhs) const;
    [[nodiscard]] Tensor operator-(const Tensor& rhs) const;
    [[nodiscard]] Tensor operator*(double s) const;

    /// Add a rank-1 bias to every row of a rank-2 tensor.
    Tensor& add_row_vector(const Tensor& bias);

    /// Apply a unary function to all elements, in place.
    template <typename F>
    Tensor& apply(F&& f) {
        for (double& x : data_) {
            x = f(x);
        }
        return *this;
    }

    void fill(double value) noexcept;

    // -- reductions / views ----------------------------------------------------

    [[nodiscard]] double sum() const noexcept;
    [[nodiscard]] double mean() const noexcept;
    /// Per-column mean/variance over rows of a rank-2 tensor.
    [[nodiscard]] Tensor column_mean() const;
    [[nodiscard]] Tensor column_variance(const Tensor& mean) const;
    /// Sum over rows -> rank-1 of length cols().
    [[nodiscard]] Tensor column_sum() const;

    /// Copy of row r of a rank-2 tensor, as rank-1.
    [[nodiscard]] Tensor row(std::size_t r) const;
    /// Overwrite row r from a rank-1 tensor of length cols().
    void set_row(std::size_t r, const Tensor& values);

    /// Rows [begin, end) of a rank-2 tensor.
    [[nodiscard]] Tensor slice_rows(std::size_t begin, std::size_t end) const;

    /// Gather rows by index into a new tensor.
    [[nodiscard]] Tensor gather_rows(const std::vector<std::size_t>& indices) const;

    [[nodiscard]] std::string shape_str() const;

private:
    std::vector<std::size_t> shape_;
    std::vector<double> data_;

    void check_same_shape(const Tensor& rhs, const char* op) const;
};

// -- free-function linear algebra ---------------------------------------------

/// C = A x B for rank-2 tensors.
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A x B^T (common in backward passes; avoids materializing transposes).
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C = A^T x B.
[[nodiscard]] Tensor matmul_tn(const Tensor& a, const Tensor& b);

[[nodiscard]] Tensor transpose(const Tensor& a);

/// Concatenate rank-2 tensors along rows (axis 0). All must share cols.
[[nodiscard]] Tensor concat_rows(const std::vector<Tensor>& parts);

/// Max |a - b| over elements; shapes must match.
[[nodiscard]] double max_abs_diff(const Tensor& a, const Tensor& b);

} // namespace shog
