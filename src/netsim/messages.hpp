// Payload size models for the messages the architecture exchanges.
//
// Uplink: H.264-compressed frame batches and tiny telemetry. Downlink:
// per-frame labels (boxes + instance masks from the Mask R-CNN teacher),
// annotated result frames (Cloud-Only), or model updates (AMS).
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace shog::netsim {

struct Message_size_config {
    Bytes label_header_bytes{180.0};   ///< per labeled frame
    Bytes label_per_box_bytes{36.0};   ///< box + class + score
    Bytes mask_per_box_bytes{280.0};   ///< RLE instance mask (teacher labels)
    Bytes telemetry_bytes{96.0};       ///< lambda/alpha report
    Bytes rate_command_bytes{48.0};    ///< controller -> edge new rate
    /// Cloud-Only returns rendered result frames; overlay adds a little
    /// entropy on top of the original encoded frame.
    double result_frame_overhead = 1.08;
};

/// Bytes of a label message for one frame with `boxes` detections.
[[nodiscard]] constexpr Bytes label_bytes(const Message_size_config& cfg,
                                          std::size_t boxes) noexcept {
    return cfg.label_header_bytes +
           static_cast<double>(boxes) * (cfg.label_per_box_bytes + cfg.mask_per_box_bytes);
}

} // namespace shog::netsim
