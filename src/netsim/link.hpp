// Network link simulation and bandwidth accounting.
//
// Table I's Up/Down columns are *measured averages* over the experiment —
// the meters here integrate actual message bytes over simulated time. The
// Link adds transmission + propagation delay so staleness (e.g. AMS model
// updates in flight) is physical rather than assumed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/require.hpp"
#include "common/units.hpp"

namespace shog::netsim {

/// Records transferred bytes over time; reports average rates.
class Bandwidth_meter {
public:
    void record(Sim_time at, Bytes bytes);

    [[nodiscard]] Bytes total_bytes() const noexcept { return total_; }
    [[nodiscard]] std::size_t message_count() const noexcept { return count_; }

    /// Average rate over an externally-known horizon.
    [[nodiscard]] Kbps average_kbps(Sim_duration horizon) const {
        SHOG_REQUIRE(horizon > Sim_duration{}, "horizon must be positive");
        return bytes_to_kbps(total_, horizon);
    }

    /// Average rate within [from, to) using recorded timestamps.
    [[nodiscard]] Kbps windowed_kbps(Sim_time from, Sim_time to) const;

    void reset() noexcept;

private:
    struct Record {
        Sim_time at;
        Bytes bytes;
    };
    std::vector<Record> records_;
    Bytes total_;
    std::size_t count_ = 0;
};

struct Link_config {
    double uplink_mbps = 12.0;    ///< edge -> cloud capacity
    double downlink_mbps = 40.0;  ///< cloud -> edge capacity
    Sim_duration propagation{0.025}; ///< one-way propagation delay
};

/// Point-to-point link between one edge device and the cloud.
class Link {
public:
    explicit Link(Link_config config = {});

    [[nodiscard]] const Link_config& config() const noexcept { return config_; }

    /// Delay to deliver a payload edge->cloud, metering the bytes at `now`.
    [[nodiscard]] Sim_duration send_up(Sim_time now, Bytes bytes);

    /// Delay to deliver a payload cloud->edge, metering the bytes at `now`.
    [[nodiscard]] Sim_duration send_down(Sim_time now, Bytes bytes);

    [[nodiscard]] const Bandwidth_meter& up_meter() const noexcept { return up_; }
    [[nodiscard]] const Bandwidth_meter& down_meter() const noexcept { return down_; }

    void reset_meters() noexcept;

private:
    Link_config config_;
    Bandwidth_meter up_;
    Bandwidth_meter down_;
};

} // namespace shog::netsim
