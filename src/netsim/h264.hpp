// H.264 encoding cost model.
//
// Shoggoth never ships pixels in this reproduction; what the system needs
// from a video codec is (a) how many bytes a frame costs given resolution,
// scene complexity, motion, and the time gap to the previous encoded frame
// (temporal redundancy), and (b) how long encoding a buffered batch takes
// (the paper reports 1-3 s). The model is calibrated so that the paper's
// operating points hold: a 30 fps stream lands near 3 Mbps at DETRAC-like
// resolution, while sparsely sampled frames cost close to I-frame size.
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace shog::netsim {

struct H264_config {
    /// Bits per pixel of an intra frame at complexity 1.0.
    double intra_bpp = 0.9;
    /// Sub-linear resolution scaling (larger frames compress better per px).
    double resolution_exponent = 0.85;
    /// Fraction of I-frame cost that a fully-redundant P-frame still costs.
    double p_floor = 0.40;
    /// Temporal redundancy decay time constant at motion 0 (seconds).
    double redundancy_tau = 1.6;
    /// Motion shortens the redundancy window: tau_eff = tau / (1 + k*motion).
    double motion_tau_k = 2.2;
    /// Encoder throughput in megapixels per second (drives encode latency).
    double encode_mpix_per_second = 9.0;
    /// Fixed per-batch encode setup latency.
    Sim_duration encode_setup_seconds{0.8};
};

class H264_model {
public:
    explicit H264_model(H264_config config = {});

    [[nodiscard]] const H264_config& config() const noexcept { return config_; }

    /// Bytes of an intra (I) frame.
    [[nodiscard]] Bytes intra_frame_bytes(double width, double height,
                                          double complexity) const;

    /// Bytes of a predicted (P) frame encoded `gap_seconds` after the
    /// previous frame in the same encode, under the given motion level.
    [[nodiscard]] Bytes predicted_frame_bytes(double width, double height, double complexity,
                                              double motion, Sim_duration gap_seconds) const;

    /// Average per-frame bytes of a continuous stream at `fps` with an
    /// I-frame every `gop` frames (Cloud-Only uplink).
    [[nodiscard]] Bytes stream_frame_bytes(double width, double height, double complexity,
                                           double motion, double fps,
                                           std::size_t gop = 60) const;

    /// Total bytes of a buffered sample batch: first frame is intra, the
    /// rest predicted at the batch's inter-frame gap.
    [[nodiscard]] Bytes batch_bytes(std::size_t frames, double width, double height,
                                    double complexity, double motion,
                                    Sim_duration gap_seconds) const;

    /// Wall-clock encode latency for a batch (paper: 1-3 s).
    [[nodiscard]] Sim_duration encode_seconds(std::size_t frames, double width,
                                              double height) const;

private:
    H264_config config_;

    [[nodiscard]] double pixel_term(double width, double height) const;
};

} // namespace shog::netsim
