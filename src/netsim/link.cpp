#include "netsim/link.hpp"

#include <algorithm>

namespace shog::netsim {

void Bandwidth_meter::record(Sim_time at, Bytes bytes) {
    SHOG_REQUIRE(bytes >= Bytes{}, "cannot record negative bytes");
    SHOG_REQUIRE(records_.empty() || at >= records_.back().at,
                 "meter records must be time-ordered");
    records_.push_back(Record{at, bytes});
    total_ += bytes;
    ++count_;
}

Kbps Bandwidth_meter::windowed_kbps(Sim_time from, Sim_time to) const {
    SHOG_REQUIRE(to > from, "empty metering window");
    Bytes bytes;
    for (const Record& r : records_) {
        if (r.at >= from && r.at < to) {
            bytes += r.bytes;
        }
    }
    return bytes_to_kbps(bytes, to - from);
}

void Bandwidth_meter::reset() noexcept {
    records_.clear();
    total_ = Bytes{};
    count_ = 0;
}

Link::Link(Link_config config) : config_{config} {
    SHOG_REQUIRE(config_.uplink_mbps > 0.0, "uplink capacity must be positive");
    SHOG_REQUIRE(config_.downlink_mbps > 0.0, "downlink capacity must be positive");
    SHOG_REQUIRE(config_.propagation >= Sim_duration{}, "propagation must be non-negative");
}

Sim_duration Link::send_up(Sim_time now, Bytes bytes) {
    up_.record(now, bytes);
    return config_.propagation + transmit_seconds(bytes, config_.uplink_mbps);
}

Sim_duration Link::send_down(Sim_time now, Bytes bytes) {
    down_.record(now, bytes);
    return config_.propagation + transmit_seconds(bytes, config_.downlink_mbps);
}

void Link::reset_meters() noexcept {
    up_.reset();
    down_.reset();
}

} // namespace shog::netsim
