#include "netsim/link.hpp"

#include <algorithm>

namespace shog::netsim {

void Bandwidth_meter::record(Seconds at, Bytes bytes) {
    SHOG_REQUIRE(bytes >= 0.0, "cannot record negative bytes");
    SHOG_REQUIRE(records_.empty() || at >= records_.back().at,
                 "meter records must be time-ordered");
    records_.push_back(Record{at, bytes});
    total_ += bytes;
    ++count_;
}

double Bandwidth_meter::windowed_kbps(Seconds from, Seconds to) const {
    SHOG_REQUIRE(to > from, "empty metering window");
    Bytes bytes = 0.0;
    for (const Record& r : records_) {
        if (r.at >= from && r.at < to) {
            bytes += r.bytes;
        }
    }
    return bytes_to_kbps(bytes, to - from);
}

void Bandwidth_meter::reset() noexcept {
    records_.clear();
    total_ = 0.0;
    count_ = 0;
}

Link::Link(Link_config config) : config_{config} {
    SHOG_REQUIRE(config_.uplink_mbps > 0.0, "uplink capacity must be positive");
    SHOG_REQUIRE(config_.downlink_mbps > 0.0, "downlink capacity must be positive");
    SHOG_REQUIRE(config_.propagation >= 0.0, "propagation must be non-negative");
}

Seconds Link::send_up(Seconds now, Bytes bytes) {
    up_.record(now, bytes);
    return config_.propagation + transmit_seconds(bytes, config_.uplink_mbps);
}

Seconds Link::send_down(Seconds now, Bytes bytes) {
    down_.record(now, bytes);
    return config_.propagation + transmit_seconds(bytes, config_.downlink_mbps);
}

void Link::reset_meters() noexcept {
    up_.reset();
    down_.reset();
}

} // namespace shog::netsim
