#include "netsim/h264.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace shog::netsim {

H264_model::H264_model(H264_config config) : config_{config} {
    SHOG_REQUIRE(config_.intra_bpp > 0.0, "intra bpp must be positive");
    SHOG_REQUIRE(config_.p_floor > 0.0 && config_.p_floor < 1.0, "p_floor must lie in (0, 1)");
    SHOG_REQUIRE(config_.redundancy_tau > 0.0, "tau must be positive");
    SHOG_REQUIRE(config_.encode_mpix_per_second > 0.0, "encoder throughput must be positive");
}

double H264_model::pixel_term(double width, double height) const {
    SHOG_REQUIRE(width > 0.0 && height > 0.0, "frame size must be positive");
    // Normalize around a 512x512 frame so intra_bpp is directly the bpp there.
    const double pixels = width * height;
    const double reference = 512.0 * 512.0;
    return reference * std::pow(pixels / reference, config_.resolution_exponent);
}

Bytes H264_model::intra_frame_bytes(double width, double height, double complexity) const {
    const double c = std::clamp(complexity, 0.05, 1.0);
    return Bytes{pixel_term(width, height) * config_.intra_bpp * c / k_bits_per_byte};
}

Bytes H264_model::predicted_frame_bytes(double width, double height, double complexity,
                                        double motion, Sim_duration gap_seconds) const {
    SHOG_REQUIRE(gap_seconds >= Sim_duration{}, "gap must be non-negative");
    const double m = std::clamp(motion, 0.0, 1.0);
    const double tau = config_.redundancy_tau / (1.0 + config_.motion_tau_k * m);
    const double novelty = 1.0 - std::exp(-gap_seconds.value() / tau); // dimensionless decay exponent
    const double fraction = config_.p_floor + (1.0 - config_.p_floor) * novelty;
    return intra_frame_bytes(width, height, complexity) * fraction;
}

Bytes H264_model::stream_frame_bytes(double width, double height, double complexity,
                                     double motion, double fps, std::size_t gop) const {
    SHOG_REQUIRE(fps > 0.0, "fps must be positive");
    SHOG_REQUIRE(gop >= 1, "GOP must be at least 1");
    const Bytes i_bytes = intra_frame_bytes(width, height, complexity);
    const Bytes p_bytes =
        predicted_frame_bytes(width, height, complexity, motion, Sim_duration{1.0 / fps});
    const double g = static_cast<double>(gop);
    return (i_bytes + (g - 1.0) * p_bytes) / g;
}

Bytes H264_model::batch_bytes(std::size_t frames, double width, double height,
                              double complexity, double motion, Sim_duration gap_seconds) const {
    if (frames == 0) {
        return Bytes{};
    }
    const Bytes i_bytes = intra_frame_bytes(width, height, complexity);
    const Bytes p_bytes =
        predicted_frame_bytes(width, height, complexity, motion, gap_seconds);
    return i_bytes + static_cast<double>(frames - 1) * p_bytes;
}

Sim_duration H264_model::encode_seconds(std::size_t frames, double width,
                                        double height) const {
    const double mpix = static_cast<double>(frames) * width * height / 1e6;
    return config_.encode_setup_seconds + Sim_duration{mpix / config_.encode_mpix_per_second};
}

} // namespace shog::netsim
