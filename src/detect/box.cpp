#include "detect/box.hpp"

#include <algorithm>
#include <cmath>

namespace shog::detect {

Box Box::clipped(double image_w, double image_h) const noexcept {
    Box b = *this;
    b.x1 = std::max(0.0, std::min(b.x1, image_w));
    b.x2 = std::max(0.0, std::min(b.x2, image_w));
    b.y1 = std::max(0.0, std::min(b.y1, image_h));
    b.y2 = std::max(0.0, std::min(b.y2, image_h));
    return b;
}

double iou(const Box& a, const Box& b) noexcept {
    const double ix1 = std::max(a.x1, b.x1);
    const double iy1 = std::max(a.y1, b.y1);
    const double ix2 = std::min(a.x2, b.x2);
    const double iy2 = std::min(a.y2, b.y2);
    const double iw = ix2 - ix1;
    const double ih = iy2 - iy1;
    if (iw <= 0.0 || ih <= 0.0) {
        return 0.0;
    }
    const double inter = iw * ih;
    const double uni = a.area() + b.area() - inter;
    return uni > 0.0 ? inter / uni : 0.0;
}

std::vector<Detection> nms(std::vector<Detection> detections, double iou_threshold) {
    std::sort(detections.begin(), detections.end(),
              [](const Detection& a, const Detection& b) { return a.confidence > b.confidence; });
    std::vector<Detection> kept;
    kept.reserve(detections.size());
    std::vector<bool> suppressed(detections.size(), false);
    for (std::size_t i = 0; i < detections.size(); ++i) {
        if (suppressed[i]) {
            continue;
        }
        kept.push_back(detections[i]);
        for (std::size_t j = i + 1; j < detections.size(); ++j) {
            if (suppressed[j] || detections[j].class_id != detections[i].class_id) {
                continue;
            }
            if (iou(detections[i].box, detections[j].box) > iou_threshold) {
                suppressed[j] = true;
            }
        }
    }
    return kept;
}

Match_result match_detections(const std::vector<Detection>& detections,
                              const std::vector<Ground_truth>& ground_truth,
                              double iou_threshold) {
    Match_result result;
    result.detection_to_gt.assign(detections.size(), Match_result::npos);
    result.matched_iou.assign(detections.size(), 0.0);

    // Confidence-ordered detection indices.
    std::vector<std::size_t> order(detections.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return detections[a].confidence > detections[b].confidence;
    });

    std::vector<bool> gt_taken(ground_truth.size(), false);
    for (std::size_t oi : order) {
        const Detection& det = detections[oi];
        double best_iou = iou_threshold;
        std::size_t best_gt = Match_result::npos;
        for (std::size_t g = 0; g < ground_truth.size(); ++g) {
            if (gt_taken[g] || ground_truth[g].class_id != det.class_id) {
                continue;
            }
            const double overlap = iou(det.box, ground_truth[g].box);
            if (overlap >= best_iou) {
                best_iou = overlap;
                best_gt = g;
            }
        }
        if (best_gt != Match_result::npos) {
            gt_taken[best_gt] = true;
            result.detection_to_gt[oi] = best_gt;
            result.matched_iou[oi] = best_iou;
            ++result.true_positives;
        } else {
            ++result.false_positives;
        }
    }
    result.false_negatives = ground_truth.size() - result.true_positives;
    return result;
}

} // namespace shog::detect
