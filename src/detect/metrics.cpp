#include "detect/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace shog::detect {

namespace {

/// Collect confidence-scored TP/FP flags for one class across frames,
/// matching per frame (class-restricted).
std::pair<std::vector<Scored_hit>, std::size_t> scored_hits(
    const std::vector<Frame_eval>& frames, std::size_t class_id, double iou_threshold) {
    std::vector<Scored_hit> hits;
    std::size_t total_gt = 0;
    for (const Frame_eval& frame : frames) {
        std::vector<Detection> dets;
        dets.reserve(frame.detections.size());
        for (const Detection& d : frame.detections) {
            if (d.class_id == class_id) {
                dets.push_back(d);
            }
        }
        std::vector<Ground_truth> gts;
        gts.reserve(frame.ground_truth.size());
        for (const Ground_truth& g : frame.ground_truth) {
            if (g.class_id == class_id) {
                gts.push_back(g);
            }
        }
        total_gt += gts.size();
        const Match_result match = match_detections(dets, gts, iou_threshold);
        for (std::size_t i = 0; i < dets.size(); ++i) {
            hits.push_back(
                Scored_hit{dets[i].confidence, match.detection_to_gt[i] != Match_result::npos});
        }
    }
    return {std::move(hits), total_gt};
}

} // namespace

std::optional<double> average_precision_from_hits(std::vector<Scored_hit> hits,
                                                  std::size_t total_gt) {
    if (total_gt == 0) {
        return std::nullopt;
    }
    if (hits.empty()) {
        return 0.0;
    }
    std::sort(hits.begin(), hits.end(),
              [](const Scored_hit& a, const Scored_hit& b) { return a.confidence > b.confidence; });

    // Precision/recall points.
    std::vector<double> precision(hits.size());
    std::vector<double> recall(hits.size());
    std::size_t tp = 0;
    for (std::size_t i = 0; i < hits.size(); ++i) {
        if (hits[i].true_positive) {
            ++tp;
        }
        precision[i] = static_cast<double>(tp) / static_cast<double>(i + 1);
        recall[i] = static_cast<double>(tp) / static_cast<double>(total_gt);
    }

    // Precision envelope (monotone non-increasing from the right).
    for (std::size_t i = precision.size() - 1; i > 0; --i) {
        precision[i - 1] = std::max(precision[i - 1], precision[i]);
    }

    // Area under the stepwise PR curve.
    double ap = recall[0] * precision[0];
    for (std::size_t i = 1; i < hits.size(); ++i) {
        ap += (recall[i] - recall[i - 1]) * precision[i];
    }
    return ap;
}

std::optional<double> average_precision(const std::vector<Frame_eval>& frames,
                                        std::size_t class_id, double iou_threshold) {
    auto [hits, total_gt] = scored_hits(frames, class_id, iou_threshold);
    return average_precision_from_hits(std::move(hits), total_gt);
}

double mean_average_precision(const std::vector<Frame_eval>& frames, std::size_t num_classes,
                              double iou_threshold) {
    SHOG_REQUIRE(num_classes > 0, "need at least one class");
    double total = 0.0;
    std::size_t counted = 0;
    for (std::size_t c = 1; c <= num_classes; ++c) {
        if (const auto ap = average_precision(frames, c, iou_threshold)) {
            total += *ap;
            ++counted;
        }
    }
    return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

double mean_matched_iou(const std::vector<Frame_eval>& frames, double iou_threshold) {
    double total = 0.0;
    std::size_t count = 0;
    for (const Frame_eval& frame : frames) {
        const Match_result match =
            match_detections(frame.detections, frame.ground_truth, iou_threshold);
        for (std::size_t i = 0; i < frame.detections.size(); ++i) {
            if (match.detection_to_gt[i] != Match_result::npos) {
                total += match.matched_iou[i];
                ++count;
            }
        }
    }
    return count > 0 ? total / static_cast<double>(count) : 0.0;
}

Stream_evaluator::Stream_evaluator(std::size_t num_classes, double iou_threshold)
    : num_classes_{num_classes}, iou_threshold_{iou_threshold} {
    SHOG_REQUIRE(num_classes > 0, "need at least one class");
    SHOG_REQUIRE(iou_threshold > 0.0 && iou_threshold < 1.0, "IoU gate must lie in (0, 1)");
}

void Stream_evaluator::add_frame(double timestamp, Frame_eval frame) {
    SHOG_REQUIRE(frames_.empty() || timestamp >= frames_.back().timestamp,
                 "frames must arrive in time order");

    // Whole-frame matching (all classes together) feeds the running matched
    // IoU totals in the same frame/detection order the batch
    // mean_matched_iou() accumulates in, so the sums agree bit-for-bit.
    const Match_result full_match =
        match_detections(frame.detections, frame.ground_truth, iou_threshold_);
    for (std::size_t i = 0; i < frame.detections.size(); ++i) {
        if (full_match.detection_to_gt[i] != Match_result::npos) {
            matched_iou_total_ += full_match.matched_iou[i];
            ++matched_iou_count_;
        }
    }

    // Class-restricted matching, recorded per class in detection order —
    // exactly the hit sequence scored_hits() would produce for this frame.
    Frame_record record;
    record.timestamp = timestamp;
    for (std::size_t c = 1; c <= num_classes_; ++c) {
        std::vector<Detection> dets;
        dets.reserve(frame.detections.size());
        for (const Detection& d : frame.detections) {
            if (d.class_id == c) {
                dets.push_back(d);
            }
        }
        std::vector<Ground_truth> gts;
        gts.reserve(frame.ground_truth.size());
        for (const Ground_truth& g : frame.ground_truth) {
            if (g.class_id == c) {
                gts.push_back(g);
            }
        }
        if (dets.empty() && gts.empty()) {
            continue;
        }
        Class_record cls;
        cls.class_id = static_cast<std::uint32_t>(c);
        cls.gt_count = static_cast<std::uint32_t>(gts.size());
        const Match_result match = match_detections(dets, gts, iou_threshold_);
        cls.hits.reserve(dets.size());
        for (std::size_t i = 0; i < dets.size(); ++i) {
            cls.hits.push_back(
                Scored_hit{dets[i].confidence, match.detection_to_gt[i] != Match_result::npos});
        }
        record.classes.push_back(std::move(cls));
    }
    frames_.push_back(std::move(record));
}

double Stream_evaluator::map_over(std::size_t begin, std::size_t end) const {
    double total = 0.0;
    std::size_t counted = 0;
    for (std::size_t c = 1; c <= num_classes_; ++c) {
        std::vector<Scored_hit> hits;
        std::size_t total_gt = 0;
        for (std::size_t f = begin; f < end; ++f) {
            for (const Class_record& cls : frames_[f].classes) {
                if (cls.class_id == c) {
                    hits.insert(hits.end(), cls.hits.begin(), cls.hits.end());
                    total_gt += cls.gt_count;
                    break;
                }
            }
        }
        if (const auto ap = average_precision_from_hits(std::move(hits), total_gt)) {
            total += *ap;
            ++counted;
        }
    }
    return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

double Stream_evaluator::map() const { return map_over(0, frames_.size()); }

double Stream_evaluator::average_iou() const {
    return matched_iou_count_ > 0
               ? matched_iou_total_ / static_cast<double>(matched_iou_count_)
               : 0.0;
}

std::vector<std::pair<double, double>> Stream_evaluator::windowed_map(
    double window_seconds) const {
    SHOG_REQUIRE(window_seconds > 0.0, "window must be positive");
    std::vector<std::pair<double, double>> out;
    if (frames_.empty()) {
        return out;
    }
    const double start = frames_.front().timestamp;
    std::size_t begin = 0;
    while (begin < frames_.size()) {
        const double window_start =
            start +
            std::floor((frames_[begin].timestamp - start) / window_seconds) * window_seconds;
        const double window_end = window_start + window_seconds;
        std::size_t end = begin;
        while (end < frames_.size() && frames_[end].timestamp < window_end) {
            ++end;
        }
        out.emplace_back(window_start, map_over(begin, end));
        begin = end;
    }
    return out;
}

} // namespace shog::detect
