// Axis-aligned boxes, IoU, non-maximum suppression, and greedy matching —
// the geometry layer under every detection metric in the paper (mAP@0.5 in
// Tables I/II, average IoU in Table III, the CDF of Fig. 5).
#pragma once

#include <cstddef>
#include <vector>

namespace shog::detect {

/// Axis-aligned box in pixel coordinates, corner form.
struct Box {
    double x1 = 0.0;
    double y1 = 0.0;
    double x2 = 0.0;
    double y2 = 0.0;

    [[nodiscard]] double width() const noexcept { return x2 - x1; }
    [[nodiscard]] double height() const noexcept { return y2 - y1; }
    [[nodiscard]] double area() const noexcept {
        const double w = width();
        const double h = height();
        return (w > 0.0 && h > 0.0) ? w * h : 0.0;
    }
    [[nodiscard]] double center_x() const noexcept { return 0.5 * (x1 + x2); }
    [[nodiscard]] double center_y() const noexcept { return 0.5 * (y1 + y2); }
    [[nodiscard]] bool valid() const noexcept { return x2 > x1 && y2 > y1; }

    /// Build from center/size form.
    [[nodiscard]] static Box from_center(double cx, double cy, double w, double h) noexcept {
        return Box{cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0};
    }

    /// Clip to an image of the given size.
    [[nodiscard]] Box clipped(double image_w, double image_h) const noexcept;
};

/// Intersection-over-union of two boxes; 0 when either is degenerate.
[[nodiscard]] double iou(const Box& a, const Box& b) noexcept;

/// One detector output.
struct Detection {
    Box box;
    std::size_t class_id = 0; ///< 1-based object classes; 0 is background
    double confidence = 0.0;  ///< model posterior in [0, 1]
};

/// One annotated object.
struct Ground_truth {
    Box box;
    std::size_t class_id = 0;
};

/// Class-aware greedy NMS: detections sorted by confidence suppress
/// same-class boxes with IoU above `iou_threshold`. Returns survivors in
/// descending-confidence order.
[[nodiscard]] std::vector<Detection> nms(std::vector<Detection> detections,
                                         double iou_threshold);

/// Result of greedily matching detections to ground truth at an IoU gate.
struct Match_result {
    /// match[i] = index into ground truth for detection i, or npos.
    std::vector<std::size_t> detection_to_gt;
    /// IoU of each matched detection (0 for unmatched).
    std::vector<double> matched_iou;
    std::size_t true_positives = 0;
    std::size_t false_positives = 0;
    std::size_t false_negatives = 0;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Greedy confidence-ordered one-to-one matching with class agreement and
/// IoU >= `iou_threshold` (the standard VOC/COCO evaluation protocol).
[[nodiscard]] Match_result match_detections(const std::vector<Detection>& detections,
                                            const std::vector<Ground_truth>& ground_truth,
                                            double iou_threshold);

} // namespace shog::detect
