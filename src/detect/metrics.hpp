// Detection quality metrics: per-class average precision (all-point
// interpolation), mAP@IoU, mean matched IoU, plus a frame-accumulating
// evaluator with windowed reporting used for the Fig. 5 CDF.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "detect/box.hpp"

namespace shog::detect {

/// A frame's evaluation payload.
struct Frame_eval {
    std::vector<Detection> detections;
    std::vector<Ground_truth> ground_truth;
};

/// One class-restricted detection outcome: its confidence and whether the
/// per-frame greedy matching paired it with a ground-truth box.
struct Scored_hit {
    double confidence;
    bool true_positive;
};

/// Average precision for one class over a set of frames, using greedy
/// per-frame matching at `iou_threshold` and all-point interpolation of the
/// precision envelope. Returns nullopt when the class has no ground truth.
[[nodiscard]] std::optional<double> average_precision(const std::vector<Frame_eval>& frames,
                                                      std::size_t class_id,
                                                      double iou_threshold);

/// All-point-interpolated AP from pre-matched hits (sorted internally by
/// descending confidence). The shared core of average_precision() and the
/// incremental Stream_evaluator: both feed it the same hit sequence, so the
/// two paths agree bit-for-bit. Returns nullopt when total_gt is zero.
[[nodiscard]] std::optional<double> average_precision_from_hits(std::vector<Scored_hit> hits,
                                                                std::size_t total_gt);

/// Mean AP over all classes that appear in the ground truth.
[[nodiscard]] double mean_average_precision(const std::vector<Frame_eval>& frames,
                                            std::size_t num_classes, double iou_threshold);

/// Mean IoU of true-positive matches across frames (Table III's metric).
[[nodiscard]] double mean_matched_iou(const std::vector<Frame_eval>& frames,
                                      double iou_threshold);

/// Accumulates frames over time and reports stream-level and windowed scores.
///
/// Matching happens once, at add_frame() time (greedy matching is
/// frame-local, so deferring it buys nothing); only compact per-class
/// (confidence, matched) records and running IoU totals are retained.
/// Queries replay the identical hit sequences through the identical AP
/// code, so every reported number is bit-for-bit the value the original
/// store-all-frames evaluator computed — pinned by the metrics tests —
/// while memory stays O(detections) instead of O(frames x boxes) and
/// end-of-run queries do no box matching at all.
class Stream_evaluator {
public:
    Stream_evaluator(std::size_t num_classes, double iou_threshold);

    void add_frame(double timestamp, Frame_eval frame);

    [[nodiscard]] std::size_t frame_count() const noexcept { return frames_.size(); }

    /// mAP over the whole stream so far.
    [[nodiscard]] double map() const;

    /// Mean matched IoU over the whole stream so far.
    [[nodiscard]] double average_iou() const;

    /// mAP per fixed-duration window; returns {window start time, mAP}.
    [[nodiscard]] std::vector<std::pair<double, double>> windowed_map(
        double window_seconds) const;

    [[nodiscard]] std::size_t num_classes() const noexcept { return num_classes_; }
    [[nodiscard]] double iou_threshold() const noexcept { return iou_threshold_; }

private:
    /// Match outcome of one class within one frame.
    struct Class_record {
        std::uint32_t class_id = 0;
        std::uint32_t gt_count = 0;
        std::vector<Scored_hit> hits; ///< in detection order
    };
    /// Compact residue of one evaluated frame.
    struct Frame_record {
        double timestamp = 0.0;
        std::vector<Class_record> classes; ///< ascending class_id; only
                                           ///< classes with a det or a gt
    };

    /// mAP over frames_[begin, end): concatenates each class's per-frame hit
    /// sequences (frame order, detection order — the order the reference
    /// scored_hits() produces) and runs the shared AP core.
    [[nodiscard]] double map_over(std::size_t begin, std::size_t end) const;

    std::size_t num_classes_;
    double iou_threshold_;
    std::vector<Frame_record> frames_;
    double matched_iou_total_ = 0.0;
    std::size_t matched_iou_count_ = 0;
};

} // namespace shog::detect
