// Detection quality metrics: per-class average precision (all-point
// interpolation), mAP@IoU, mean matched IoU, plus a frame-accumulating
// evaluator with windowed reporting used for the Fig. 5 CDF.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "detect/box.hpp"

namespace shog::detect {

/// A frame's evaluation payload.
struct Frame_eval {
    std::vector<Detection> detections;
    std::vector<Ground_truth> ground_truth;
};

/// Average precision for one class over a set of frames, using greedy
/// per-frame matching at `iou_threshold` and all-point interpolation of the
/// precision envelope. Returns nullopt when the class has no ground truth.
[[nodiscard]] std::optional<double> average_precision(const std::vector<Frame_eval>& frames,
                                                      std::size_t class_id,
                                                      double iou_threshold);

/// Mean AP over all classes that appear in the ground truth.
[[nodiscard]] double mean_average_precision(const std::vector<Frame_eval>& frames,
                                            std::size_t num_classes, double iou_threshold);

/// Mean IoU of true-positive matches across frames (Table III's metric).
[[nodiscard]] double mean_matched_iou(const std::vector<Frame_eval>& frames,
                                      double iou_threshold);

/// Accumulates frames over time and reports stream-level and windowed scores.
class Stream_evaluator {
public:
    Stream_evaluator(std::size_t num_classes, double iou_threshold);

    void add_frame(double timestamp, Frame_eval frame);

    [[nodiscard]] std::size_t frame_count() const noexcept { return frames_.size(); }

    /// mAP over the whole stream so far.
    [[nodiscard]] double map() const;

    /// Mean matched IoU over the whole stream so far.
    [[nodiscard]] double average_iou() const;

    /// mAP per fixed-duration window; returns {window start time, mAP}.
    [[nodiscard]] std::vector<std::pair<double, double>> windowed_map(
        double window_seconds) const;

    [[nodiscard]] std::size_t num_classes() const noexcept { return num_classes_; }
    [[nodiscard]] double iou_threshold() const noexcept { return iou_threshold_; }

private:
    std::size_t num_classes_;
    double iou_threshold_;
    std::vector<double> timestamps_;
    std::vector<Frame_eval> frames_;
};

} // namespace shog::detect
