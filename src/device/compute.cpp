#include "device/compute.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace shog::device {

Compute_model jetson_tx2() { return Compute_model{"jetson_tx2", 0.18}; }

Compute_model v100() { return Compute_model{"v100", 7.0}; }

Edge_compute::Edge_compute(Compute_model model, Edge_contention_config config,
                           double inference_gflops_per_frame)
    : model_{std::move(model)}, config_{config}, inference_gflops_{inference_gflops_per_frame} {
    SHOG_REQUIRE(model_.effective_tflops > 0.0, "throughput must be positive");
    SHOG_REQUIRE(config_.training_share > 0.0 && config_.training_share < 1.0,
                 "training share must lie in (0, 1)");
    SHOG_REQUIRE(inference_gflops_ > 0.0, "inference cost must be positive");
}

double Edge_compute::idle_fps() const noexcept {
    const Sim_duration per_frame =
        model_.seconds_for_gflops(inference_gflops_) + config_.per_frame_overhead;
    return Sim_duration{1.0} / per_frame;
}

double Edge_compute::training_fps() const noexcept {
    const Sim_duration compute = model_.seconds_for_gflops(inference_gflops_) /
                                 (1.0 - config_.training_share);
    return Sim_duration{1.0} / (compute + config_.per_frame_overhead);
}

double Edge_compute::achieved_fps(double video_fps, bool training_active) const noexcept {
    const double capacity = training_active ? training_fps() : idle_fps();
    return std::min(video_fps, capacity);
}

Sim_duration Edge_compute::training_wall_seconds(double gflops) const noexcept {
    return model_.seconds_for_gflops(gflops) / config_.training_share;
}

double Edge_compute::utilization(double video_fps, bool training_active) const noexcept {
    if (training_active) {
        return 1.0;
    }
    const double demand = video_fps * (model_.seconds_for_gflops(inference_gflops_) +
                                       config_.per_frame_overhead)
                                          .value(); // duty cycle: fps x s/frame is dimensionless
    return std::min(1.0, demand);
}

} // namespace shog::device
