// Device compute cost models.
//
// Converts deployed-model FLOPs (models::Deployed_profile) into seconds on
// a given accelerator, and models edge GPU contention: while an adaptive
// training session runs, inference throughput drops (the paper's Fig. 4
// shows 30 -> ~15 fps during sessions).
#pragma once

#include <string>

#include "common/units.hpp"

namespace shog::device {

struct Compute_model {
    std::string name;
    /// Sustained effective throughput for this workload, TFLOP/s.
    double effective_tflops = 1.0;

    [[nodiscard]] Sim_duration seconds_for_gflops(double gflops) const noexcept {
        return Sim_duration{gflops / (effective_tflops * 1000.0)};
    }
};

/// NVIDIA Jetson TX2 (edge): ~1.3 TFLOPS fp16 peak; sustained efficiency on
/// detection workloads lands near 0.18 TFLOP/s effective.
[[nodiscard]] Compute_model jetson_tx2();

/// NVIDIA V100 (cloud): ~7 TFLOP/s effective on this workload mix.
[[nodiscard]] Compute_model v100();

/// Edge GPU contention model.
struct Edge_contention_config {
    /// Fraction of device compute granted to a training session while one is
    /// active (the remainder serves inference).
    double training_share = 0.55;
    /// Fixed per-frame overhead besides the network forward (pre/post
    /// processing).
    Sim_duration per_frame_overhead{0.004};
};

class Edge_compute {
public:
    Edge_compute(Compute_model model, Edge_contention_config config,
                 double inference_gflops_per_frame);

    /// Peak inference fps with no training running.
    [[nodiscard]] double idle_fps() const noexcept;

    /// Inference fps while a training session shares the device.
    [[nodiscard]] double training_fps() const noexcept;

    /// Achieved fps for a video of `video_fps` (can't exceed the source).
    [[nodiscard]] double achieved_fps(double video_fps, bool training_active) const noexcept;

    /// Wall-clock duration of a training session of `gflops` total work,
    /// given that training only gets its share of the device.
    [[nodiscard]] Sim_duration training_wall_seconds(double gflops) const noexcept;

    /// GPU utilization in [0,1] for the lambda resource signal.
    [[nodiscard]] double utilization(double video_fps, bool training_active) const noexcept;

    [[nodiscard]] const Compute_model& model() const noexcept { return model_; }
    [[nodiscard]] const Edge_contention_config& config() const noexcept { return config_; }

private:
    Compute_model model_;
    Edge_contention_config config_;
    double inference_gflops_;
};

} // namespace shog::device
