// Edge-side runtime telemetry: the fps timeline (Fig. 4) and the resource
// usage signal lambda that the cloud's sampling-rate controller consumes
// (paper §III-C: "only GPU or CPU resource usage in percent for every
// second is monitored", with a configurable collection frequency).
#pragma once

#include <vector>

#include "common/require.hpp"
#include "common/units.hpp"

namespace shog::device {

/// Time-weighted fps timeline.
class Fps_tracker {
public:
    /// Record that fps was `fps` from the last recorded time until `until`.
    void record_until(Seconds until, double fps);

    [[nodiscard]] double average_fps() const noexcept;

    struct Sample {
        Seconds from;
        Seconds to;
        double fps;
    };
    [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }

    /// fps at a given time (0 if before the first record).
    [[nodiscard]] double fps_at(Seconds t) const noexcept;

private:
    std::vector<Sample> samples_;
    Seconds cursor_ = 0.0;
};

/// Periodic resource-usage collector.
class Resource_monitor {
public:
    explicit Resource_monitor(Seconds collect_period = 1.0);

    /// Record utilization (in [0,1]) covering the span since the last call.
    void record_until(Seconds until, double utilization);

    /// Mean utilization since the last drain (what gets sent to the cloud);
    /// drains the accumulator.
    [[nodiscard]] double drain_average();

    /// Mean utilization over everything recorded so far (not drained).
    [[nodiscard]] double lifetime_average() const noexcept;

    [[nodiscard]] Seconds collect_period() const noexcept { return period_; }

private:
    Seconds period_;
    Seconds cursor_ = 0.0;
    // Pending (since last drain).
    double pending_weighted_ = 0.0;
    Seconds pending_span_ = 0.0;
    // Lifetime.
    double life_weighted_ = 0.0;
    Seconds life_span_ = 0.0;
};

} // namespace shog::device
