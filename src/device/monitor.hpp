// Edge-side runtime telemetry: the fps timeline (Fig. 4) and the resource
// usage signal lambda that the cloud's sampling-rate controller consumes
// (paper §III-C: "only GPU or CPU resource usage in percent for every
// second is monitored", with a configurable collection frequency).
#pragma once

#include <vector>

#include "common/require.hpp"
#include "common/units.hpp"

namespace shog::device {

/// Time-weighted fps timeline.
class Fps_tracker {
public:
    /// Record that fps was `fps` from the last recorded time until `until`.
    void record_until(Sim_time until, double fps);

    [[nodiscard]] double average_fps() const noexcept;

    struct Sample {
        Sim_time from;
        Sim_time to;
        double fps;
    };
    [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }

    /// fps at a given time (0 if before the first record).
    [[nodiscard]] double fps_at(Sim_time t) const noexcept;

private:
    std::vector<Sample> samples_;
    Sim_time cursor_;
};

/// Periodic resource-usage collector.
class Resource_monitor {
public:
    explicit Resource_monitor(Sim_duration collect_period = Sim_duration{1.0});

    /// Record utilization (in [0,1]) covering the span since the last call.
    void record_until(Sim_time until, double utilization);

    /// Mean utilization since the last drain (what gets sent to the cloud);
    /// drains the accumulator.
    [[nodiscard]] double drain_average();

    /// Mean utilization over everything recorded so far (not drained).
    [[nodiscard]] double lifetime_average() const noexcept;

    [[nodiscard]] Sim_duration collect_period() const noexcept { return period_; }

private:
    Sim_duration period_;
    Sim_time cursor_;
    // Pending (since last drain). The weighted accumulators are
    // utilization-scaled spans, still dimensioned as time.
    Sim_duration pending_weighted_;
    Sim_duration pending_span_;
    // Lifetime.
    Sim_duration life_weighted_;
    Sim_duration life_span_;
};

} // namespace shog::device
