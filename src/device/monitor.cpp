#include "device/monitor.hpp"

namespace shog::device {

void Fps_tracker::record_until(Sim_time until, double fps) {
    SHOG_REQUIRE(until >= cursor_, "fps record must move forward in time");
    SHOG_REQUIRE(fps >= 0.0, "fps must be non-negative");
    if (until == cursor_) {
        return;
    }
    if (!samples_.empty() && samples_.back().fps == fps) {
        samples_.back().to = until; // merge runs
    } else {
        samples_.push_back(Sample{cursor_, until, fps});
    }
    cursor_ = until;
}

double Fps_tracker::average_fps() const noexcept {
    Sim_duration weighted; // fps-weighted span
    Sim_duration span;
    for (const Sample& s : samples_) {
        weighted += s.fps * (s.to - s.from);
        span += s.to - s.from;
    }
    return span > Sim_duration{} ? weighted / span : 0.0;
}

double Fps_tracker::fps_at(Sim_time t) const noexcept {
    for (const Sample& s : samples_) {
        if (t >= s.from && t < s.to) {
            return s.fps;
        }
    }
    return samples_.empty() ? 0.0 : (t >= samples_.back().to ? samples_.back().fps : 0.0);
}

Resource_monitor::Resource_monitor(Sim_duration collect_period) : period_{collect_period} {
    SHOG_REQUIRE(collect_period > Sim_duration{}, "collection period must be positive");
}

void Resource_monitor::record_until(Sim_time until, double utilization) {
    SHOG_REQUIRE(until >= cursor_, "resource record must move forward in time");
    SHOG_REQUIRE(utilization >= 0.0 && utilization <= 1.0, "utilization must lie in [0, 1]");
    const Sim_duration span = until - cursor_;
    cursor_ = until;
    if (span <= Sim_duration{}) {
        return;
    }
    pending_weighted_ += utilization * span;
    pending_span_ += span;
    life_weighted_ += utilization * span;
    life_span_ += span;
}

double Resource_monitor::drain_average() {
    const double avg =
        pending_span_ > Sim_duration{} ? pending_weighted_ / pending_span_ : 0.0;
    pending_weighted_ = Sim_duration{};
    pending_span_ = Sim_duration{};
    return avg;
}

double Resource_monitor::lifetime_average() const noexcept {
    return life_span_ > Sim_duration{} ? life_weighted_ / life_span_ : 0.0;
}

} // namespace shog::device
