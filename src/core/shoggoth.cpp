#include "core/shoggoth.hpp"

#include <algorithm>
#include <cmath>

#include "models/pretrain.hpp"

namespace shog::core {

Shoggoth_strategy::Shoggoth_strategy(models::Detector& student, models::Detector& teacher,
                                     Shoggoth_config config,
                                     models::Deployed_profile edge_profile,
                                     device::Compute_model edge_device,
                                     device::Compute_model cloud_device)
    : student_{student},
      config_{std::move(config)},
      trainer_{student, config_.trainer, std::move(edge_profile), std::move(edge_device)},
      labeler_{teacher, config_.labeler},
      controller_{config_.controller, config_.initial_rate},
      resource_monitor_{Sim_duration{1.0}},
      cloud_device_{std::move(cloud_device)},
      teacher_infer_gflops_{
          models::Deployed_profile::mask_rcnn_resnext101().inference_gflops()} {
    SHOG_REQUIRE(config_.upload_batch_frames >= 1, "upload batch must be >= 1 frame");
    SHOG_REQUIRE(config_.fixed_rate > 0.0, "fixed rate must be positive");
    SHOG_REQUIRE(config_.training_wall_factor >= 1.0, "wall factor must be >= 1");
}

double Shoggoth_strategy::current_rate() const noexcept {
    return config_.adaptive_sampling ? controller_.rate() : config_.fixed_rate;
}

void Shoggoth_strategy::start(sim::Edge_runtime& rt) {
    // Decorrelate this device's labeling noise from the rest of the fleet
    // (every device would otherwise draw the same stream of label jitter).
    label_rng_ = rt.rng().split(0x1abe1);
    if (config_.warm_replay && trainer_.memory().enabled()) {
        models::Pretrain_config warm_cfg;
        warm_cfg.domains = models::daytime_domains();
        warm_cfg.samples = config_.warm_samples;
        warm_cfg.seed = config_.trainer.seed ^ 0xab;
        trainer_.warm_start(
            models::synth_dataset(rt.stream().world(), student_.config(), warm_cfg));
    }
    schedule_next_sample(rt);
}

void Shoggoth_strategy::schedule_next_sample(sim::Edge_runtime& rt) {
    const Sim_duration gap{1.0 / current_rate()};
    if (rt.now() + gap >= Sim_time{rt.stream().duration()}) {
        return;
    }
    rt.schedule(gap, [this, &rt] { on_sample_tick(rt); });
}

void Shoggoth_strategy::on_sample_tick(sim::Edge_runtime& rt) {
    const std::size_t index = rt.stream().index_at(rt.now().value()); // frame-domain lookup
    if (sample_buffer_.empty()) {
        first_buffered_at_ = rt.now();
        // The buffer phase of generation `upload_generation_` opens with its
        // first sample and closes when upload_buffer ships it.
        SHOG_TRACE_ASYNC_BEGIN(rt.trace(), rt.now(), rt.trace_track(), "buffer",
                               upload_generation_);
        schedule_flush_timer(rt);
    }
    last_buffered_at_ = rt.now();
    sample_buffer_.push_back(index);
    if (sample_buffer_.size() >= config_.upload_batch_frames) {
        upload_buffer(rt);
    }
    schedule_next_sample(rt);
}

void Shoggoth_strategy::schedule_flush_timer(sim::Edge_runtime& rt) {
    // Ship a partial buffer on a dedicated timer instead of waiting for the
    // next sample tick to notice: tick-checked max-wait both quantized the
    // flush to the sampling period and — because schedule_next_sample stops
    // ticking near stream end — silently dropped a partially filled buffer
    // at the end of the stream. Clamping to the stream duration flushes any
    // remainder at stream end, inside the simulation horizon.
    const std::uint64_t generation = upload_generation_;
    const Sim_time at = std::min(first_buffered_at_ + config_.upload_max_wait,
                                 Sim_time{rt.stream().duration()});
    rt.schedule(std::max(Sim_duration{}, at - rt.now()), [this, &rt, generation] {
        if (generation == upload_generation_ && !sample_buffer_.empty()) {
            upload_buffer(rt);
        }
    });
}

void Shoggoth_strategy::upload_buffer(sim::Edge_runtime& rt) {
    if (sample_buffer_.empty()) {
        return;
    }
    SHOG_TRACE_ASYNC_END(rt.trace(), rt.now(), rt.trace_track(), "buffer",
                         upload_generation_);
    const std::uint64_t generation = upload_generation_;
    ++upload_generation_; // invalidate any pending flush timer
    std::vector<std::size_t> frames = std::move(sample_buffer_);
    sample_buffer_.clear();
    frames_uploaded_ += frames.size();

    // Batch statistics for the codec model: average the sampled frames.
    double complexity = 0.0;
    double motion = 0.0;
    for (std::size_t idx : frames) {
        const video::Frame f = rt.stream().frame_at(idx);
        complexity += f.complexity;
        motion += f.motion_level;
    }
    complexity /= static_cast<double>(frames.size());
    motion /= static_cast<double>(frames.size());

    const Sim_duration gap =
        frames.size() > 1
            ? (last_buffered_at_ - first_buffered_at_) / static_cast<double>(frames.size() - 1)
            : Sim_duration{1.0 / current_rate()};
    // "All images are resized to 512x512" before encoding and upload.
    const double res = config_.upload_resolution;
    const Bytes payload = rt.h264().batch_bytes(frames.size(), res, res, complexity, motion,
                                                gap);
    // Paper: compressing the buffered samples takes 1-3 seconds.
    const Sim_duration encode = rt.h264().encode_seconds(frames.size(), res, res);
    const Sim_duration up_delay = rt.link().send_up(rt.now(), payload);
    SHOG_TRACE_ASYNC_BEGIN(rt.trace(), rt.now(), rt.trace_track(), "upload", generation);
    rt.schedule(encode + up_delay, [this, &rt, frames = std::move(frames),
                                    generation]() mutable {
        // The batch has reached the cloud: labeling now queues on the shared
        // GPU pool behind every other device's work. Teacher inference cost
        // is the service time; the downlink leaves once the job completes.
        SHOG_TRACE_ASYNC_END(rt.trace(), rt.now(), rt.trace_track(), "upload", generation);
        SHOG_TRACE_ASYNC_BEGIN(rt.trace(), rt.now(), rt.trace_track(), "await_labels",
                               generation);
        const Sim_duration service =
            static_cast<double>(frames.size()) *
            cloud_device_.seconds_for_gflops(teacher_infer_gflops_);
        rt.cloud().submit(
            rt.device_id(), service,
            [this, &rt, frames = std::move(frames), generation]() mutable {
                SHOG_TRACE_ASYNC_END(rt.trace(), rt.now(), rt.trace_track(), "await_labels",
                                     generation);
                cloud_label_batch(rt, std::move(frames), generation);
            },
            sim::Cloud_job_kind::label, drift_.rate());
    });
}

void Shoggoth_strategy::cloud_label_batch(sim::Edge_runtime& rt, std::vector<std::size_t> frames,
                                          std::uint64_t generation) {
    const video::World_model& world = rt.stream().world();
    std::vector<models::Labeled_sample> samples;
    Bytes label_payload;
    double agreement_sum = 0.0;

    for (std::size_t idx : frames) {
        const video::Frame frame = rt.stream().frame_at(idx);
        // The edge extracts the same proposals when it later trains on this
        // frame; labeling matches teacher boxes against them (Eq. 1).
        const std::vector<models::Proposal> proposals = student_.propose(frame, world);
        Labeled_frame labeled = labeler_.label(frame, world, proposals, label_rng_);
        ++frames_labeled_;

        if (have_last_teacher_output_) {
            controller_.observe_phi(
                phi_between(labeled.teacher_detections, last_teacher_output_));
        }
        last_teacher_output_ = labeled.teacher_detections;
        have_last_teacher_output_ = true;

        if (config_.alpha_source == Shoggoth_config::Alpha_source::agreement) {
            agreement_sum +=
                detection_agreement(student_.detect_on(proposals), labeled.teacher_detections);
        }

        label_payload +=
            netsim::label_bytes(rt.message_sizes(), labeled.teacher_detections.size());
        for (models::Labeled_sample& s : labeled.samples) {
            samples.push_back(std::move(s));
        }
    }

    // Control round (cloud side): telemetry up, new rate down.
    bool flush_stale = false;
    if (config_.adaptive_sampling) {
        (void)rt.link().send_up(rt.now(), rt.message_sizes().telemetry_bytes);
        const double posterior_alpha = drain_alpha();
        const double alpha =
            config_.alpha_source == Shoggoth_config::Alpha_source::agreement
                ? (frames.empty() ? posterior_alpha
                                  : agreement_sum / static_cast<double>(frames.size()))
                : posterior_alpha;
        // Domain-break detection: a sharp alpha move between control rounds
        // means the scene the older pending labels describe no longer exists
        // (night fell, or day returned). Shipping a flush flag with the rate
        // command keeps the next session from training on the stale domain.
        if (config_.domain_flush_alpha_delta < 1.0 && last_control_alpha_ >= 0.0 &&
            std::abs(alpha - last_control_alpha_) >= config_.domain_flush_alpha_delta) {
            flush_stale = true;
        }
        // Drift-rate estimate for the cloud's staleness scheduling: how fast
        // alpha is moving per wall second, smoothed across control rounds. A
        // camera crossing day->night spikes this; a static scene stays ~0.
        drift_.observe(alpha, rt.now());
        last_control_alpha_ = alpha;
        const double lambda = resource_monitor_.drain_average();
        (void)controller_.update(alpha, lambda);
        control_trace_.push_back(Control_record{rt.now(), controller_.rate(), alpha,
                                                controller_.phi_bar(), lambda});
        label_payload += rt.message_sizes().rate_command_bytes;
    }

    const Sim_duration down_delay = rt.link().send_down(rt.now(), label_payload);
    const std::size_t frame_count = frames.size();
    SHOG_TRACE_ASYNC_BEGIN(rt.trace(), rt.now(), rt.trace_track(), "download", generation);
    rt.schedule(down_delay, [this, &rt, samples = std::move(samples), frame_count,
                             flush_stale, generation]() mutable {
        SHOG_TRACE_ASYNC_END(rt.trace(), rt.now(), rt.trace_track(), "download", generation);
        edge_receive_labels(rt, std::move(samples), frame_count, flush_stale);
    });
}

void Shoggoth_strategy::edge_receive_labels(sim::Edge_runtime& rt,
                                            std::vector<models::Labeled_sample> samples,
                                            std::size_t frames, bool flush_stale) {
    if (flush_stale) {
        // The labels that just arrived are from the new scene (alpha was
        // measured on them); everything buffered before them is not.
        pending_.clear();
        pending_frames_ = 0;
        ++stale_flushes_;
        SHOG_TRACE_INSTANT(rt.trace(), rt.now(), rt.trace_track(), "flush_stale",
                           stale_flushes_);
    }
    pending_.push_back(Pending_batch{std::move(samples), frames, rt.now()});
    pending_frames_ += frames;
    SHOG_TRACE_INSTANT(rt.trace(), rt.now(), rt.trace_track(), "apply", frames);
    maybe_start_training(rt);
}

void Shoggoth_strategy::maybe_start_training(sim::Edge_runtime& rt) {
    // Recent-frame horizon: labeled data from a scene that no longer exists
    // is dropped rather than trained on.
    while (!pending_.empty() && rt.now() - pending_.front().at > config_.sample_horizon) {
        pending_frames_ -= pending_.front().frames;
        pending_.pop_front();
    }
    if (training_busy_ || pending_frames_ < config_.frames_per_session || pending_.empty()) {
        return;
    }
    std::vector<models::Labeled_sample> batch;
    while (!pending_.empty()) {
        for (models::Labeled_sample& s : pending_.front().samples) {
            batch.push_back(std::move(s));
        }
        pending_.pop_front();
    }
    pending_frames_ = 0;
    if (batch.empty()) {
        return;
    }
    const Training_report estimate = trainer_.estimate_session_cost(batch.size());
    const Sim_duration wall = estimate.overall_seconds() * config_.training_wall_factor;

    training_busy_ = true;
    rt.set_training_active(true);
    rt.count_training_session();
    // Edge training is serialized by training_busy_, so the span is a plain
    // sync span on the device track (never overlaps itself).
    SHOG_TRACE_SPAN_BEGIN(rt.trace(), rt.now(), rt.trace_track(), "train",
                          rt.training_sessions());
    rt.schedule(wall, [this, &rt, batch = std::move(batch),
                       session = rt.training_sessions()]() mutable {
        SHOG_TRACE_SPAN_END(rt.trace(), rt.now(), rt.trace_track(), "train", session);
        (void)trainer_.train(batch);
        rt.set_training_active(false);
        training_busy_ = false;
        maybe_start_training(rt); // drain any batch that filled meanwhile
    });
}

double Shoggoth_strategy::drain_alpha() {
    const double alpha = predictions_seen_ > 0
                             ? static_cast<double>(predictions_accurate_) /
                                   static_cast<double>(predictions_seen_)
                             : 1.0;
    predictions_seen_ = 0;
    predictions_accurate_ = 0;
    return alpha;
}

std::vector<detect::Detection> Shoggoth_strategy::infer(sim::Edge_runtime& rt,
                                                        const video::Frame& frame) {
    return student_.detect(frame, rt.stream().world());
}

void Shoggoth_strategy::on_inference(sim::Edge_runtime& rt, const video::Frame& frame,
                                     const std::vector<detect::Detection>& detections) {
    (void)frame;
    if (detections.empty()) {
        // A frame where the model sees nothing at all is evidence of
        // inaccuracy on continuously-busy video: count it as one inaccurate
        // prediction so alpha degrades instead of going blind.
        ++predictions_seen_;
    }
    for (const detect::Detection& det : detections) {
        ++predictions_seen_;
        if (det.confidence > config_.alpha_threshold) {
            ++predictions_accurate_;
        }
    }
    resource_monitor_.record_until(
        rt.now(),
        rt.edge_compute().utilization(rt.stream().fps(), rt.training_active()));
}

} // namespace shog::core
