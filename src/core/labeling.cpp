#include "core/labeling.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/units.hpp"

namespace shog::core {

Online_labeler::Online_labeler(models::Detector& teacher, Labeler_config config)
    : teacher_{teacher}, config_{config} {
    SHOG_REQUIRE(config_.match_iou > 0.0 && config_.match_iou < 1.0,
                 "match IoU must lie in (0, 1)");
    SHOG_REQUIRE(config_.negative_keep > 0.0 && config_.negative_keep <= 1.0,
                 "negative keep probability must lie in (0, 1]");
}

Labeled_frame Online_labeler::label(const video::Frame& frame,
                                    const video::World_model& world,
                                    const std::vector<models::Proposal>& edge_proposals,
                                    Rng& rng) const {
    Labeled_frame out;
    out.teacher_detections = teacher_.detect(frame, world);

    // Greedy one-to-one assignment of proposals to teacher detections.
    std::vector<bool> taken(out.teacher_detections.size(), false);
    for (const models::Proposal& proposal : edge_proposals) {
        double best_match_iou = config_.match_iou;
        std::size_t best = models::k_no_gt;
        double best_any_iou = 0.0; // including already-taken boxes
        for (std::size_t t = 0; t < out.teacher_detections.size(); ++t) {
            const double overlap = detect::iou(proposal.box, out.teacher_detections[t].box);
            best_any_iou = std::max(best_any_iou, overlap);
            if (taken[t]) {
                continue;
            }
            if (overlap >= best_match_iou) {
                best_match_iou = overlap;
                best = t;
            }
        }
        models::Labeled_sample sample;
        sample.feature = proposal.feature;
        if (best != models::k_no_gt) {
            taken[best] = true;
            const detect::Detection& det = out.teacher_detections[best];
            sample.class_label = det.class_id; // Eq. 1: positive, from detector
            sample.box_target = models::encode_box_offsets(proposal.box, det.box);
        } else {
            if (best_any_iou >= config_.ambiguous_iou) {
                continue; // ignore zone: probably the same object, don't teach "background"
            }
            sample.class_label = 0; // Eq. 1: negative sample
            sample.weight = config_.negative_weight;
            if (!rng.chance(config_.negative_keep)) {
                continue;
            }
        }
        out.samples.push_back(std::move(sample));
    }
    return out;
}

namespace {

struct Label_summary {
    std::vector<double> class_hist; ///< normalized
    double count = 0.0;
    double mean_confidence = 0.0;
};

Label_summary summarize(const std::vector<detect::Detection>& detections,
                        std::size_t num_classes) {
    Label_summary s;
    s.class_hist.assign(num_classes + 1, 0.0);
    s.count = static_cast<double>(detections.size());
    for (const detect::Detection& d : detections) {
        const std::size_t c = std::min(d.class_id, num_classes);
        s.class_hist[c] += 1.0;
        s.mean_confidence += d.confidence;
    }
    if (!detections.empty()) {
        s.mean_confidence /= s.count;
        for (double& v : s.class_hist) {
            v /= s.count;
        }
    }
    return s;
}

} // namespace

double detection_agreement(const std::vector<detect::Detection>& detections,
                           const std::vector<detect::Detection>& reference,
                           double match_iou) {
    if (detections.empty() && reference.empty()) {
        return 1.0;
    }
    if (detections.empty() || reference.empty()) {
        return 0.0;
    }
    std::vector<detect::Ground_truth> pseudo_gt;
    pseudo_gt.reserve(reference.size());
    for (const detect::Detection& d : reference) {
        pseudo_gt.push_back(detect::Ground_truth{d.box, d.class_id});
    }
    const detect::Match_result match = detect::match_detections(detections, pseudo_gt, match_iou);
    return 2.0 * static_cast<double>(match.true_positives) /
           static_cast<double>(detections.size() + reference.size());
}

double phi_between(const std::vector<detect::Detection>& current,
                   const std::vector<detect::Detection>& previous, std::size_t num_classes) {
    if (current.empty() && previous.empty()) {
        return 0.0;
    }
    if (current.empty() || previous.empty()) {
        return 1.0; // everything appeared or everything vanished
    }
    const Label_summary a = summarize(current, num_classes);
    const Label_summary b = summarize(previous, num_classes);

    // Total-variation distance between class histograms.
    double hist_tv = 0.0;
    for (std::size_t c = 0; c < a.class_hist.size(); ++c) {
        hist_tv += std::abs(a.class_hist[c] - b.class_hist[c]);
    }
    hist_tv *= 0.5;

    const double max_count = std::max({a.count, b.count, 1.0});
    const double count_change = std::abs(a.count - b.count) / max_count;
    const double conf_change = std::abs(a.mean_confidence - b.mean_confidence);

    return std::clamp(0.45 * hist_tv + 0.35 * count_change + 0.20 * conf_change, 0.0, 1.0);
}

} // namespace shog::core
