#include "core/adaptive_trainer.hpp"

#include <algorithm>
#include <cmath>

#include "nn/batchnorm.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace shog::core {

Trainer_config ours_config() { return Trainer_config{}; }

Trainer_config input_replay_config() {
    Trainer_config c;
    c.replay_stage = "input";
    c.freeze_front = false; // whole network fine-tunes at full learning rate
    return c;
}

Trainer_config completely_freezing_config() {
    Trainer_config c;
    c.replay_stage = "pool";
    c.freeze_front = true;
    c.front_stats_adapt = false; // moments frozen, backward never crosses
    return c;
}

Trainer_config conv5_4_config() {
    Trainer_config c;
    c.replay_stage = "conv5_4";
    return c;
}

Trainer_config no_replay_config() {
    Trainer_config c;
    c.replay_stage = "input";
    c.freeze_front = false;
    c.replay_capacity = 0; // current batch only
    return c;
}

std::size_t Adaptive_trainer::fresh_per_minibatch(std::size_t k, std::size_t n, std::size_t m) {
    SHOG_REQUIRE(k >= 1 && n >= 1, "mini-batch and batch sizes must be positive");
    if (m == 0) {
        return k;
    }
    const double exact = static_cast<double>(k) * static_cast<double>(n) /
                         static_cast<double>(n + m);
    return std::max<std::size_t>(1, static_cast<std::size_t>(std::lround(exact)));
}

Adaptive_trainer::Adaptive_trainer(models::Detector& detector, Trainer_config config,
                                   models::Deployed_profile profile,
                                   device::Compute_model device)
    : detector_{detector},
      config_{std::move(config)},
      profile_{std::move(profile)},
      device_{std::move(device)},
      memory_{config_.replay_capacity},
      rng_{config_.seed} {
    SHOG_REQUIRE(config_.epochs >= 1, "epochs must be positive");
    SHOG_REQUIRE(config_.minibatch >= 2, "mini-batch must be >= 2 (batch statistics)");
    cut_ = detector_.net().cut_after(config_.replay_stage);
    cut_stage_ = profile_.cut_stage_for(config_.replay_stage);

    // Slow the front layers' normalization statistics so latent activations
    // stored in the replay memory stay valid across many sessions.
    nn::Sequential& trunk = detector_.net().trunk();
    for (std::size_t i = 0; i < cut_; ++i) {
        if (auto* brn = dynamic_cast<nn::Batch_renorm*>(&trunk.layer(i))) {
            brn->set_momentum(config_.front_stats_momentum);
        }
    }
}

std::vector<Replay_sample> Adaptive_trainer::latent_batch(
    const std::vector<models::Labeled_sample>& fresh) {
    models::Detector_net& net = detector_.net();
    std::vector<Replay_sample> out;
    out.reserve(fresh.size());

    if (cut_ == 0) {
        // Input replay: the latent *is* the raw feature.
        for (const models::Labeled_sample& s : fresh) {
            out.push_back(Replay_sample{s.feature, s.class_label, s.box_target, s.weight});
        }
        return out;
    }

    // Mini-batched pass through the front layers. Training mode when the
    // normalization moments are allowed to adapt (ours), eval mode otherwise
    // (completely freezing).
    const bool training_mode = config_.front_stats_adapt;
    const std::size_t d = net.feature_dim();
    for (std::size_t start = 0; start < fresh.size(); start += config_.minibatch) {
        const std::size_t end = std::min(fresh.size(), start + config_.minibatch);
        Tensor features{end - start, d};
        for (std::size_t i = start; i < end; ++i) {
            SHOG_REQUIRE(fresh[i].feature.size() == d, "sample feature width mismatch");
            for (std::size_t c = 0; c < d; ++c) {
                features.at(i - start, c) = fresh[i].feature[c];
            }
        }
        const Tensor latent =
            net.trunk().forward_range(0, cut_, features, training_mode && end - start >= 2);
        for (std::size_t i = start; i < end; ++i) {
            Replay_sample rs;
            rs.activation.resize(latent.cols());
            for (std::size_t c = 0; c < latent.cols(); ++c) {
                rs.activation[c] = latent.at(i - start, c);
            }
            rs.class_label = fresh[i].class_label;
            rs.box_target = fresh[i].box_target;
            rs.weight = fresh[i].weight;
            out.push_back(std::move(rs));
        }
    }
    return out;
}

double Adaptive_trainer::run_latent_minibatch(const std::vector<const Replay_sample*>& fresh,
                                              const std::vector<const Replay_sample*>& replay,
                                              nn::Sgd& optimizer) {
    models::Detector_net& net = detector_.net();
    nn::Sequential& trunk = net.trunk();
    nn::Sequential& cls = net.class_head();
    nn::Sequential& box = net.box_head();

    const std::size_t n = fresh.size() + replay.size();
    SHOG_CHECK(n >= 2, "mini-batch too small for batch statistics");
    const std::size_t width = net.width_at_cut(cut_);

    Tensor latents{n, width};
    std::vector<std::size_t> labels(n);
    Tensor box_targets{n, 4};
    std::vector<double> box_mask(n, 0.0);
    std::vector<double> weights(n, 1.0);
    auto fill = [&](std::size_t row, const Replay_sample& s) {
        SHOG_CHECK(s.activation.size() == width, "replay activation width mismatch");
        for (std::size_t c = 0; c < width; ++c) {
            latents.at(row, c) = s.activation[c];
        }
        labels[row] = s.class_label;
        weights[row] = s.weight;
        if (s.class_label != 0) {
            box_mask[row] = 1.0;
            for (std::size_t c = 0; c < 4; ++c) {
                box_targets.at(row, c) = s.box_target[c];
            }
        }
    };
    std::size_t row = 0;
    for (const Replay_sample* s : fresh) {
        fill(row++, *s);
    }
    for (const Replay_sample* s : replay) {
        fill(row++, *s);
    }

    trunk.zero_grad();
    cls.zero_grad();
    box.zero_grad();

    const std::size_t trunk_end = trunk.layer_count();
    const Tensor trunk_out = trunk.forward_range(cut_, trunk_end, latents, true);
    const Tensor logits = cls.forward(trunk_out, true);
    Tensor box_out = box.forward(trunk_out, true);
    box_out *= net.max_offset();

    const nn::Loss_result cls_loss = nn::softmax_cross_entropy(logits, labels, weights);
    const nn::Loss_result box_loss = nn::smooth_l1(box_out, box_targets, box_mask);

    Tensor grad_trunk = cls.backward(cls_loss.grad);
    Tensor box_grad = box_loss.grad;
    box_grad *= net.max_offset() * config_.box_loss_weight;
    grad_trunk += box.backward(box_grad);
    (void)trunk.backward_range(cut_, trunk_end, grad_trunk);

    std::vector<nn::Parameter*> params = trunk.parameters_range(cut_, trunk_end);
    for (nn::Parameter* p : cls.parameters()) {
        params.push_back(p);
    }
    for (nn::Parameter* p : box.parameters()) {
        params.push_back(p);
    }
    optimizer.step(params);
    return cls_loss.value + config_.box_loss_weight * box_loss.value;
}

double Adaptive_trainer::run_warmup_minibatch(const std::vector<models::Labeled_sample>& fresh,
                                              nn::Sgd& optimizer) {
    // First mini-batch of the first session: the front layers still learn
    // ("adjusting the learning rate to 0 after first batch").
    models::Detector_net& net = detector_.net();
    nn::Sequential& trunk = net.trunk();
    nn::Sequential& cls = net.class_head();
    nn::Sequential& box = net.box_head();

    const std::size_t n = std::min(fresh.size(), config_.minibatch);
    if (n < 2) {
        return 0.0;
    }
    Tensor features{n, net.feature_dim()};
    std::vector<std::size_t> labels(n);
    Tensor box_targets{n, 4};
    std::vector<double> box_mask(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t c = 0; c < net.feature_dim(); ++c) {
            features.at(i, c) = fresh[i].feature[c];
        }
        labels[i] = fresh[i].class_label;
        if (fresh[i].class_label != 0) {
            box_mask[i] = 1.0;
            for (std::size_t c = 0; c < 4; ++c) {
                box_targets.at(i, c) = fresh[i].box_target[c];
            }
        }
    }

    trunk.zero_grad();
    cls.zero_grad();
    box.zero_grad();
    const Tensor trunk_out = trunk.forward(features, true);
    const Tensor logits = cls.forward(trunk_out, true);
    Tensor box_out = box.forward(trunk_out, true);
    box_out *= net.max_offset();
    const nn::Loss_result cls_loss = nn::softmax_cross_entropy(logits, labels);
    const nn::Loss_result box_loss = nn::smooth_l1(box_out, box_targets, box_mask);
    Tensor grad_trunk = cls.backward(cls_loss.grad);
    Tensor box_grad = box_loss.grad;
    box_grad *= net.max_offset() * config_.box_loss_weight;
    grad_trunk += box.backward(box_grad);
    (void)trunk.backward(grad_trunk);

    std::vector<nn::Parameter*> params = trunk.parameters();
    for (nn::Parameter* p : cls.parameters()) {
        params.push_back(p);
    }
    for (nn::Parameter* p : box.parameters()) {
        params.push_back(p);
    }
    optimizer.step(params);
    return cls_loss.value + config_.box_loss_weight * box_loss.value;
}

Training_report Adaptive_trainer::estimate_session_cost(std::size_t fresh_count) const {
    Training_report report;
    report.fresh_samples = fresh_count;
    if (fresh_count == 0) {
        return report;
    }
    const std::size_t m_eff = memory_.size();
    const std::size_t k = config_.minibatch;
    const std::size_t n_fresh_mb = fresh_per_minibatch(k, fresh_count, m_eff);
    const std::size_t mb_per_epoch =
        (fresh_count + n_fresh_mb - 1) / n_fresh_mb;
    const double total_mb = static_cast<double>(config_.epochs * mb_per_epoch);
    // Device cost is priced in deployed-image units: a real detector pushes
    // a whole frame (all of its regions) through the network in one pass.
    const double spi = std::max(1.0, config_.samples_per_image);
    const double k_img = static_cast<double>(k) / spi;
    const double fresh_img = static_cast<double>(fresh_count) / spi;

    const bool frozen_front = config_.freeze_front && cut_ > 0;
    double fwd_gflops = 0.0;
    double bwd_gflops = 0.0;
    if (frozen_front) {
        // Fresh samples cross the front once (latent precompute); epochs
        // iterate only above the cut.
        fwd_gflops += fresh_img * profile_.forward_gflops_below(cut_stage_);
        fwd_gflops += total_mb * k_img * profile_.forward_gflops_above(cut_stage_);
        bwd_gflops += total_mb * k_img * profile_.backward_gflops_above(cut_stage_);
    } else {
        // Whole-network fine-tuning: every epoch, every sample crosses all
        // layers forward and backward.
        const double full_fwd = profile_.forward_gflops_above(0);
        fwd_gflops += total_mb * k_img * full_fwd;
        bwd_gflops += total_mb * k_img * 2.0 * full_fwd;
    }
    report.minibatches = static_cast<std::size_t>(total_mb);
    report.forward_seconds = device_.seconds_for_gflops(fwd_gflops);
    report.backward_seconds = device_.seconds_for_gflops(bwd_gflops);
    return report;
}

void Adaptive_trainer::warm_start(const std::vector<models::Labeled_sample>& samples) {
    SHOG_REQUIRE(sessions_ == 0, "warm_start must precede online sessions");
    if (!memory_.enabled() || samples.empty()) {
        return;
    }
    const std::vector<Replay_sample> latents = latent_batch(samples);
    memory_.update_after_training(latents, rng_);
}

Training_report Adaptive_trainer::train(const std::vector<models::Labeled_sample>& all_fresh) {
    SHOG_REQUIRE(!all_fresh.empty(), "training session needs samples");
    models::Detector_net& net = detector_.net();
    nn::Sequential& trunk = net.trunk();

    nn::Sgd optimizer{nn::Sgd_config{config_.learning_rate, config_.momentum,
                                     config_.weight_decay}};

    // Split off the validation holdout (tail of the batch = newest labels).
    std::vector<const models::Labeled_sample*> holdout;
    std::vector<models::Labeled_sample> fresh;
    const auto holdout_count = static_cast<std::size_t>(
        config_.validation_fraction * static_cast<double>(all_fresh.size()));
    fresh.reserve(all_fresh.size() - holdout_count);
    for (std::size_t i = 0; i < all_fresh.size(); ++i) {
        if (i + holdout_count >= all_fresh.size()) {
            holdout.push_back(&all_fresh[i]);
        } else {
            fresh.push_back(all_fresh[i]);
        }
    }
    if (fresh.empty()) {
        fresh.assign(all_fresh.begin(), all_fresh.end());
        holdout.clear();
    }
    const std::vector<double> pre_state = net.state_vector();

    Training_report report = estimate_session_cost(all_fresh.size());
    report.fresh_samples = all_fresh.size();
    if (!holdout.empty()) {
        report.holdout_accuracy_before = holdout_accuracy(holdout);
    }

    // --- Training control (paper §III-B) -------------------------------------
    // Statistics policy first, so even the warmup pass honors it.
    trunk.set_update_running_stats_range(0, cut_, config_.front_stats_adapt);
    double warmup_loss = -1.0;
    if (config_.freeze_front && cut_ > 0 && !front_frozen_applied_) {
        // "lr to 0 after the first batch": one warmup mini-batch trains the
        // front, then it freezes. The completely-freezing ablation
        // (front_stats_adapt == false) never touches the front at all.
        if (config_.front_stats_adapt) {
            warmup_loss = run_warmup_minibatch(fresh, optimizer);
        }
        trunk.set_lr_scale_range(0, cut_, 0.0);
        front_frozen_applied_ = true;
    }

    // --- Latent computation (front crossed once when frozen) -----------------
    std::vector<Replay_sample> latents = latent_batch(fresh);

    // --- Epoch loop over the latent space -------------------------------------
    const std::size_t m = memory_.size();
    const std::size_t n_fresh_mb =
        fresh_per_minibatch(config_.minibatch, latents.size(), m);
    const std::size_t n_replay_mb =
        m > 0 ? config_.minibatch - std::min(config_.minibatch, n_fresh_mb) : 0;

    std::vector<std::size_t> order(latents.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }

    double first_loss = warmup_loss;
    double last_loss = 0.0;
    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        rng_.shuffle(order);
        for (std::size_t start = 0; start < order.size(); start += n_fresh_mb) {
            const std::size_t end = std::min(order.size(), start + n_fresh_mb);
            std::vector<const Replay_sample*> fresh_part;
            fresh_part.reserve(end - start);
            for (std::size_t i = start; i < end; ++i) {
                fresh_part.push_back(&latents[order[i]]);
            }
            std::vector<const Replay_sample*> replay_part;
            if (n_replay_mb > 0 && memory_.size() > 0) {
                replay_part = memory_.draw(n_replay_mb, rng_);
            }
            if (fresh_part.size() + replay_part.size() < 2) {
                continue;
            }
            last_loss = run_latent_minibatch(fresh_part, replay_part, optimizer);
            if (first_loss < 0.0) {
                first_loss = last_loss;
            }
        }
    }
    report.initial_loss = first_loss < 0.0 ? 0.0 : first_loss;
    report.final_loss = last_loss;
    report.replay_samples_used = n_replay_mb * report.minibatches;

    // --- Validation gate -------------------------------------------------------
    if (!holdout.empty()) {
        report.holdout_accuracy_after = holdout_accuracy(holdout);
        if (report.holdout_accuracy_after <
            report.holdout_accuracy_before - config_.commit_tolerance) {
            net.load_state_vector(pre_state);
            report.committed = false;
        }
    }

    // --- Algorithm 1 memory update --------------------------------------------
    if (report.committed && memory_.enabled()) {
        // Store post-session activations (front is frozen afterwards, so
        // recomputation keeps stored latents exact).
        const std::vector<Replay_sample> post = latent_batch(fresh);
        memory_.update_after_training(post, rng_);
    } else {
        memory_.update_after_training({}, rng_);
    }
    ++sessions_;
    return report;
}

double Adaptive_trainer::holdout_accuracy(
    const std::vector<const models::Labeled_sample*>& holdout) {
    models::Detector_net& net = detector_.net();
    Tensor features{holdout.size(), net.feature_dim()};
    for (std::size_t i = 0; i < holdout.size(); ++i) {
        for (std::size_t c = 0; c < net.feature_dim(); ++c) {
            features.at(i, c) = holdout[i]->feature[c];
        }
    }
    const models::Detector_net::Output out = net.infer(features);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < holdout.size(); ++i) {
        std::size_t best = 0;
        for (std::size_t c = 1; c <= net.num_classes(); ++c) {
            if (out.class_probs.at(i, c) > out.class_probs.at(i, best)) {
                best = c;
            }
        }
        correct += (best == holdout[i]->class_label) ? 1 : 0;
    }
    return static_cast<double>(correct) / static_cast<double>(holdout.size());
}

} // namespace shog::core
