#include "core/replay_memory.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace shog::core {

Replay_memory::Replay_memory(std::size_t capacity) : capacity_{capacity} {
    samples_.reserve(capacity);
}

const Replay_sample& Replay_memory::at(std::size_t i) const {
    SHOG_REQUIRE(i < samples_.size(), "replay sample index out of range");
    return samples_[i];
}

std::size_t Replay_memory::replacement_count(std::size_t capacity, std::size_t run) {
    SHOG_REQUIRE(run >= 1, "training runs are 1-based");
    return capacity / run; // Algorithm 1 line 7: h = Msize / i
}

void Replay_memory::update_after_training(const std::vector<Replay_sample>& batch, Rng& rng) {
    ++runs_;
    if (capacity_ == 0 || batch.empty()) {
        return;
    }
    if (!full()) {
        // Initial runs: memorize all available samples (Algorithm 1 line 12).
        const std::size_t room = capacity_ - samples_.size();
        if (batch.size() <= room) {
            samples_.insert(samples_.end(), batch.begin(), batch.end());
        } else {
            for (std::size_t idx : rng.sample_without_replacement(batch.size(), room)) {
                samples_.push_back(batch[idx]);
            }
        }
        return;
    }
    // Full: replace h random residents with h random batch samples.
    std::size_t h = replacement_count(capacity_, runs_);
    h = std::min(h, batch.size());
    if (h == 0) {
        return;
    }
    const std::vector<std::size_t> add = rng.sample_without_replacement(batch.size(), h);
    const std::vector<std::size_t> evict = rng.sample_without_replacement(samples_.size(), h);
    for (std::size_t k = 0; k < h; ++k) {
        samples_[evict[k]] = batch[add[k]];
    }
}

std::vector<const Replay_sample*> Replay_memory::draw(std::size_t k, Rng& rng) const {
    SHOG_REQUIRE(!samples_.empty(), "cannot draw from an empty replay memory");
    std::vector<const Replay_sample*> out;
    out.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
        out.push_back(&samples_[rng.index(samples_.size())]);
    }
    return out;
}

void Replay_memory::clear() noexcept {
    samples_.clear();
    runs_ = 0;
}

} // namespace shog::core
