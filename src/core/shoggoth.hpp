// The Shoggoth edge-cloud strategy (paper Fig. 2), wiring every mechanism
// together over the discrete-event runtime:
//
//   edge:  adaptive frame sampling -> buffer -> H.264 encode -> uplink
//          adaptive training sessions with latent replay when a labeled
//          batch is ready (inference fps dips while one runs)
//          alpha / lambda telemetry
//   cloud: teacher online labeling (Eq. 1), phi computation, sampling-rate
//          controller (Eq. 2-3), rate commands + labels on the downlink
//
// With `adaptive_sampling = false` the same machinery runs at a fixed rate,
// which is exactly the paper's Prompt baseline.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "core/adaptive_trainer.hpp"
#include "core/controller.hpp"
#include "core/labeling.hpp"
#include "device/monitor.hpp"
#include "sim/strategy.hpp"

namespace shog::core {

struct Shoggoth_config {
    Trainer_config trainer;          ///< defaults are the paper's "ours"
    Controller_config controller;
    Labeler_config labeler;
    bool adaptive_sampling = true;   ///< false => the Prompt baseline
    double fixed_rate = 2.0;         ///< fps used when adaptive_sampling is off
    double initial_rate = 0.5;
    std::size_t upload_batch_frames = 8;
    /// Ship a partial buffer after this long, so control rounds stay
    /// responsive even at r_min (an 8-frame buffer at 0.1 fps would
    /// otherwise stall the controller for 80 s).
    Sim_duration upload_max_wait{15.0};
    /// A training session starts once this many labeled frames are pending
    /// (the paper's "every training batch contains 300 images" is frame-
    /// denominated; each frame yields several region samples per Eq. 1).
    std::size_t frames_per_session = 60;
    /// Labeled samples older than this are discarded before a session — the
    /// paper's "carefully selected recent frame horizon": train on what the
    /// scene looks like *now*, not minutes ago.
    Sim_duration sample_horizon{90.0};
    /// Seed the replay memory from the offline (daytime) training set at
    /// deployment so the first online session already rehearses the base
    /// domain (standard latent-replay practice).
    bool warm_replay = true;
    std::size_t warm_samples = 1200;
    /// Uploaded samples are resized to this square resolution before H.264
    /// encoding ("all images are resized to 512x512").
    double upload_resolution = 512.0;
    /// A jump of estimated accuracy by at least this much between control
    /// rounds marks a domain break: the cloud ships a flush flag with the
    /// rate command and the edge drops pending labeled batches from before
    /// the break (they describe a scene that no longer exists). >= 1
    /// disables the mechanism.
    double domain_flush_alpha_delta = 0.2;
    double alpha_threshold = 0.5;    ///< theta of the alpha accuracy estimate
    /// How alpha (estimated accuracy) is obtained:
    ///  - agreement: cloud-side F1 between the edge's detections and the
    ///    teacher labels on sampled frames (robust to the over-confidence of
    ///    a drifted model; the edge ships its detections with the upload);
    ///  - posterior: the paper's literal formula (fraction of predictions
    ///    whose posterior exceeds alpha_threshold).
    enum class Alpha_source { agreement, posterior };
    Alpha_source alpha_source = Alpha_source::agreement;
    /// Wall-clock factor on the modeled training time (preemption overhead).
    double training_wall_factor = 1.15;
};

class Shoggoth_strategy final : public sim::Strategy {
public:
    /// `student` runs at the edge (mutated by training); `teacher` labels in
    /// the cloud. Both borrowed; the caller keeps them alive.
    Shoggoth_strategy(models::Detector& student, models::Detector& teacher,
                      Shoggoth_config config, models::Deployed_profile edge_profile,
                      device::Compute_model edge_device, device::Compute_model cloud_device);

    [[nodiscard]] std::string name() const override {
        return config_.adaptive_sampling ? "Shoggoth" : "Prompt";
    }
    void start(sim::Edge_runtime& rt) override;
    [[nodiscard]] std::vector<detect::Detection> infer(sim::Edge_runtime& rt,
                                                       const video::Frame& frame) override;
    void on_inference(sim::Edge_runtime& rt, const video::Frame& frame,
                      const std::vector<detect::Detection>& detections) override;

    [[nodiscard]] const Sampling_controller& controller() const noexcept { return controller_; }
    [[nodiscard]] const Adaptive_trainer& trainer() const noexcept { return trainer_; }
    [[nodiscard]] double current_rate() const noexcept;
    [[nodiscard]] std::size_t frames_uploaded() const noexcept { return frames_uploaded_; }
    [[nodiscard]] std::size_t frames_labeled() const noexcept { return frames_labeled_; }
    /// Domain breaks detected (pending labels flushed as stale).
    [[nodiscard]] std::size_t stale_flushes() const noexcept { return stale_flushes_; }
    /// Current model-drift estimate (core::Drift_estimator over the control
    /// rounds). Shipped with every label submission so the cloud's staleness
    /// policy can serve the fastest-rotting device first.
    [[nodiscard]] double drift_rate() const noexcept { return drift_.rate(); }

    /// One control-round snapshot (for traces, tests and the Table III bench).
    struct Control_record {
        Sim_time at;
        double rate;
        double alpha;
        double phi_bar;
        double lambda;
    };
    [[nodiscard]] const std::vector<Control_record>& control_trace() const noexcept {
        return control_trace_;
    }

private:
    models::Detector& student_;
    Shoggoth_config config_;
    Adaptive_trainer trainer_;
    Online_labeler labeler_;
    Sampling_controller controller_;
    device::Resource_monitor resource_monitor_;
    Rng label_rng_{0x5a5a};

    // Cloud inference cost of the teacher per frame.
    device::Compute_model cloud_device_;
    double teacher_infer_gflops_;

    // Edge state.
    std::vector<std::size_t> sample_buffer_; ///< frame indices awaiting upload
    Sim_time first_buffered_at_;
    Sim_time last_buffered_at_;
    struct Pending_batch {
        std::vector<models::Labeled_sample> samples;
        std::size_t frames = 0;
        Sim_time at;
    };
    std::deque<Pending_batch> pending_;
    std::size_t pending_frames_ = 0;
    bool training_busy_ = false;
    std::size_t frames_uploaded_ = 0;
    std::size_t frames_labeled_ = 0;
    /// Bumped on every upload; pending flush timers from before the bump are
    /// stale and fire as no-ops.
    std::uint64_t upload_generation_ = 0;

    // alpha bookkeeping (since the last control round).
    std::size_t predictions_seen_ = 0;
    std::size_t predictions_accurate_ = 0;
    double last_control_alpha_ = -1.0;
    Drift_estimator drift_;
    std::size_t stale_flushes_ = 0;

    // phi bookkeeping (cloud side).
    std::vector<detect::Detection> last_teacher_output_;
    bool have_last_teacher_output_ = false;
    std::vector<Control_record> control_trace_;

    void schedule_next_sample(sim::Edge_runtime& rt);
    void on_sample_tick(sim::Edge_runtime& rt);
    void schedule_flush_timer(sim::Edge_runtime& rt);
    void upload_buffer(sim::Edge_runtime& rt);
    /// `generation` is the upload generation this batch belongs to — the id
    /// threading the buffer/upload/await_labels/download trace phases of
    /// one batch together (concurrent generations overlap on the device
    /// track, so the spans are async and need a stable key).
    void cloud_label_batch(sim::Edge_runtime& rt, std::vector<std::size_t> frames,
                           std::uint64_t generation);
    void edge_receive_labels(sim::Edge_runtime& rt, std::vector<models::Labeled_sample> samples,
                             std::size_t frames, bool flush_stale);
    void maybe_start_training(sim::Edge_runtime& rt);
    [[nodiscard]] double drain_alpha();
};

} // namespace shog::core
