// Adaptive frame-sampling rate controller (paper §III-C, Eq. 2-3).
//
//   r_{t+1} = [ R(phi) + R(alpha) + R(lambda) ]^{r_max}_{r_min}
//   R(phi)    = eta_r     * (phi_bar_t - phi_target)
//   R(alpha)  = eta_alpha * max(0, alpha_target - alpha_t)
//   R(lambda) = (1 + lambda_bar_{t+1} - lambda_bar_t) * r_t
//
// The lambda term carries the current rate forward (scaled by the change in
// edge resource usage); the phi and alpha terms push it up when the scene
// changes fast or estimated accuracy sags, and let it decay toward r_min on
// stationary video. The paper uses r_min = 0.1 fps, r_max = 2 fps.
#pragma once

#include <cmath>
#include <cstddef>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace shog::core {

struct Controller_config {
    double phi_target = 0.18;
    /// Target for the estimated-accuracy signal. With the agreement-based
    /// alpha (student-vs-teacher F1), a healthy student sits near 0.65, so
    /// the target is set just below that; with the paper's posterior alpha,
    /// 0.8 is the natural choice.
    double alpha_target = 0.60;
    /// When true, the target self-calibrates to `alpha_target_fraction` of
    /// the best alpha recently achieved — different streams (class counts,
    /// densities) have different healthy-agreement levels, and a fixed
    /// target either never fires or never rests.
    bool adaptive_alpha_target = true;
    double alpha_target_fraction = 0.90;
    double alpha_peak_decay = 0.995; ///< per update; lets the peak track regime changes
    double eta_r = 1.6;      ///< step size for the phi term
    double eta_alpha = 2.0;  ///< step size for the alpha term
    double r_min = 0.1;      ///< fps
    double r_max = 2.0;      ///< fps
    std::size_t phi_horizon = 6; ///< recent labeled frames averaged for phi_bar
};

class Sampling_controller {
public:
    explicit Sampling_controller(Controller_config config = {}, double initial_rate = 1.0);

    /// Feed one phi observation (per newly labeled frame pair).
    void observe_phi(double phi);

    /// Apply Eq. 2 with the latest accuracy estimate and resource usage;
    /// returns (and stores) the new sampling rate.
    double update(double alpha, double lambda);

    [[nodiscard]] double rate() const noexcept { return rate_; }
    [[nodiscard]] double phi_bar() const noexcept { return phi_window_.mean(); }
    [[nodiscard]] std::size_t updates() const noexcept { return updates_; }

    /// The alpha target currently in force (self-calibrated or static).
    [[nodiscard]] double effective_alpha_target() const noexcept;

    // Individual R terms, exposed for white-box tests.
    [[nodiscard]] double r_phi() const noexcept;
    [[nodiscard]] double r_alpha(double alpha) const noexcept;
    [[nodiscard]] double r_lambda(double lambda) const noexcept;

    [[nodiscard]] const Controller_config& config() const noexcept { return config_; }

private:
    Controller_config config_;
    double rate_;
    Moving_average phi_window_;
    double last_lambda_ = 0.0;
    bool lambda_seen_ = false;
    double alpha_peak_ = 0.0;
    std::size_t updates_ = 0;
};

/// Model-drift rate estimator shared by the strategies: an EMA of
/// |d alpha / dt| across control rounds. The value rides on every cloud job
/// (`Cloud_runtime::submit`'s drift_rate) so the staleness scheduling
/// policy can label the fastest-rotting device first — one estimator type
/// keeps Shoggoth and AMS jobs on a comparable drift scale.
class Drift_estimator {
public:
    /// Fold in one control round's alpha at time `now`; the first round
    /// only seeds the state.
    void observe(double alpha, Sim_time now) noexcept {
        if (last_alpha_ >= 0.0 && now > last_at_) {
            const double instant =
                std::abs(alpha - last_alpha_) / (now - last_at_).value(); // alpha/s slope
            rate_ = 0.5 * rate_ + 0.5 * instant;
        }
        last_at_ = now;
        last_alpha_ = alpha;
    }

    /// Current |d alpha / dt| estimate (0 until two rounds were seen).
    [[nodiscard]] double rate() const noexcept { return rate_; }

private:
    double last_alpha_ = -1.0;
    Sim_time last_at_{-1.0};
    double rate_ = 0.0;
};

} // namespace shog::core
