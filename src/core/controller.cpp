#include "core/controller.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace shog::core {

Sampling_controller::Sampling_controller(Controller_config config, double initial_rate)
    : config_{config}, rate_{initial_rate}, phi_window_{config.phi_horizon} {
    SHOG_REQUIRE(config_.r_min > 0.0 && config_.r_max > config_.r_min,
                 "rate bounds must satisfy 0 < r_min < r_max");
    SHOG_REQUIRE(config_.eta_r >= 0.0 && config_.eta_alpha >= 0.0,
                 "step sizes must be non-negative");
    SHOG_REQUIRE(config_.phi_horizon >= 1, "phi horizon must be positive");
    rate_ = std::clamp(rate_, config_.r_min, config_.r_max);
}

void Sampling_controller::observe_phi(double phi) {
    SHOG_REQUIRE(phi >= 0.0 && phi <= 1.0, "phi must lie in [0, 1]");
    phi_window_.add(phi);
}

double Sampling_controller::r_phi() const noexcept {
    return config_.eta_r * (phi_window_.mean() - config_.phi_target);
}

double Sampling_controller::effective_alpha_target() const noexcept {
    if (!config_.adaptive_alpha_target || alpha_peak_ <= 0.0) {
        return config_.alpha_target;
    }
    return std::clamp(config_.alpha_target_fraction * alpha_peak_, 0.35, 0.85);
}

double Sampling_controller::r_alpha(double alpha) const noexcept {
    return config_.eta_alpha * std::max(0.0, effective_alpha_target() - alpha);
}

double Sampling_controller::r_lambda(double lambda) const noexcept {
    const double previous = lambda_seen_ ? last_lambda_ : lambda;
    return (1.0 + lambda - previous) * rate_;
}

double Sampling_controller::update(double alpha, double lambda) {
    SHOG_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha must lie in [0, 1]");
    SHOG_REQUIRE(lambda >= 0.0 && lambda <= 1.0, "lambda must lie in [0, 1]");
    alpha_peak_ = std::max(alpha, alpha_peak_ * config_.alpha_peak_decay);
    const double next = r_phi() + r_alpha(alpha) + r_lambda(lambda);
    last_lambda_ = lambda;
    lambda_seen_ = true;
    rate_ = std::clamp(next, config_.r_min, config_.r_max);
    ++updates_;
    return rate_;
}

} // namespace shog::core
