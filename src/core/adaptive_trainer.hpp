// Adaptive training with latent replay (paper §III-B, Fig. 3).
//
// One training session fine-tunes the student on N freshly-labeled samples
// concatenated (at the replay layer) with samples drawn from the replay
// memory, in the fixed proportion K*N/(N+M) fresh : K*M/(N+M) replay per
// mini-batch of size K.
//
// Training control, exactly as the paper specifies:
//  - front layers (below the replay cut) have their learning rate set to 0
//    after the first batch, but their Batch-Renorm moments keep adapting to
//    the input statistics of every batch;
//  - with the front frozen, fresh samples cross the front layers only once
//    per session (their latent activations are cached), which is where the
//    Table II speedup comes from;
//  - the "completely freezing" ablation also freezes the normalization
//    moments and never touches the front;
//  - the "input" ablation replays raw inputs and fine-tunes the whole
//    network at full learning rate every epoch (this is also how the AMS
//    baseline trains in the cloud);
//  - "no replay" trains on the fresh batch alone, full network.
//
// Timing: besides doing the real (simulation-scale) SGD, every session is
// costed against the deployed-model profile (YOLOv4-ResNet18 FLOPs) on a
// given device, producing the forward/backward/overall seconds of Table II.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/replay_memory.hpp"
#include "device/compute.hpp"
#include "models/deployed.hpp"
#include "models/detector.hpp"
#include "models/samples.hpp"

namespace shog::nn {
class Sgd;
} // namespace shog::nn

namespace shog::core {

struct Trainer_config {
    /// Replay cut: "input", "stem", "conv2_x", ..., "conv5_4", "pool".
    std::string replay_stage = "pool";
    /// Freeze front-layer weights (lr -> 0) after the first mini-batch.
    bool freeze_front = true;
    /// Let Batch-Renorm moments below the cut keep adapting (ours: true;
    /// "completely freezing": false).
    bool front_stats_adapt = true;
    std::size_t batch_size = 300;      ///< N fresh samples per session
    std::size_t replay_capacity = 1500; ///< M
    std::size_t minibatch = 64;        ///< K
    std::size_t epochs = 8;
    double learning_rate = 0.003;
    double momentum = 0.9;
    double weight_decay = 3e-4;
    /// The class head is what drift breaks; the box head adapts gently so
    /// online label noise does not erode the pretrained localization.
    double box_loss_weight = 0.35;
    /// Running-statistics momentum applied to normalization layers *below*
    /// the replay cut while they adapt (slow, so stored latent activations
    /// age negligibly — paper §III-B's aging argument).
    double front_stats_momentum = 0.006;
    /// Average region samples contributed by one deployed video frame; the
    /// device cost model divides sample counts by this so that session time
    /// is priced in the paper's image units (a real detector processes all
    /// regions of a frame in one pass).
    double samples_per_image = 6.0;
    /// Validation-gated commit: this fraction of each session's samples is
    /// held out; if the retrained model's label agreement on the holdout
    /// drops more than `commit_tolerance` below the pre-session model's, the
    /// session is rolled back. Guards against sessions dominated by noisy or
    /// already-stale labels. Set to 0 to disable.
    double validation_fraction = 0.15;
    double commit_tolerance = 0.02;
    std::uint64_t seed = 5;
};

/// Canonical ablation configurations of Table II.
[[nodiscard]] Trainer_config ours_config();
[[nodiscard]] Trainer_config input_replay_config();
[[nodiscard]] Trainer_config completely_freezing_config();
[[nodiscard]] Trainer_config conv5_4_config();
[[nodiscard]] Trainer_config no_replay_config();

struct Training_report {
    double initial_loss = 0.0;
    double final_loss = 0.0;
    std::size_t minibatches = 0;
    std::size_t fresh_samples = 0;
    std::size_t replay_samples_used = 0;
    /// Validation gate outcome.
    bool committed = true;
    double holdout_accuracy_before = 0.0;
    double holdout_accuracy_after = 0.0;
    /// Deployed-model time on the training device (Table II columns).
    Sim_duration forward_seconds;
    Sim_duration backward_seconds;
    [[nodiscard]] Sim_duration overall_seconds() const noexcept {
        return forward_seconds + backward_seconds;
    }
};

class Adaptive_trainer {
public:
    /// The trainer mutates `detector` in place; `device` prices the session.
    Adaptive_trainer(models::Detector& detector, Trainer_config config,
                     models::Deployed_profile profile, device::Compute_model device);

    /// Run one adaptive training session on freshly-labeled samples.
    /// Updates the replay memory per Algorithm 1 afterwards.
    Training_report train(const std::vector<models::Labeled_sample>& fresh);

    /// Seed the replay memory with (typically offline/pretraining) samples
    /// without running a training session. Latent replay deployments
    /// initialize the memory from the pretraining set so the first online
    /// session already rehearses the base domain.
    void warm_start(const std::vector<models::Labeled_sample>& samples);

    /// Deployed-model cost (seconds) of a session with the given sizes —
    /// usable without running one (the fps model uses it for scheduling).
    [[nodiscard]] Training_report estimate_session_cost(std::size_t fresh_count) const;

    [[nodiscard]] Replay_memory& memory() noexcept { return memory_; }
    [[nodiscard]] const Replay_memory& memory() const noexcept { return memory_; }
    [[nodiscard]] const Trainer_config& config() const noexcept { return config_; }
    [[nodiscard]] std::size_t sessions_run() const noexcept { return sessions_; }

    /// Mini-batch composition (paper §III-B Training Control): number of
    /// fresh samples in a K-sized mini-batch given N fresh and M in memory.
    [[nodiscard]] static std::size_t fresh_per_minibatch(std::size_t k, std::size_t n,
                                                         std::size_t m);

private:
    models::Detector& detector_;
    Trainer_config config_;
    models::Deployed_profile profile_;
    device::Compute_model device_;
    Replay_memory memory_;
    Rng rng_;
    std::size_t sessions_ = 0;
    std::size_t cut_ = 0;       ///< trunk layer index of the replay cut
    std::size_t cut_stage_ = 0; ///< deployed-profile stage count below cut
    bool front_frozen_applied_ = false;

    double run_latent_minibatch(const std::vector<const Replay_sample*>& fresh,
                                const std::vector<const Replay_sample*>& replay,
                                nn::Sgd& optimizer);
    double run_warmup_minibatch(const std::vector<models::Labeled_sample>& fresh,
                                nn::Sgd& optimizer);
    [[nodiscard]] std::vector<Replay_sample> latent_batch(
        const std::vector<models::Labeled_sample>& fresh);
    /// Fraction of holdout samples whose argmax class matches the label.
    [[nodiscard]] double holdout_accuracy(
        const std::vector<const models::Labeled_sample*>& holdout);
};

} // namespace shog::core
