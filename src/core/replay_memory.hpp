// Replay memory with the management policy of the paper's Algorithm 1.
//
// The memory stores *latent* samples: the activation volume of each sample
// at the configured replay layer (raw input features when the replay layer
// is "input"), plus its training label. Updates are triggered only after an
// adaptive training run: when full, h = Msize / i randomly-chosen batch
// samples replace h randomly-chosen memory slots (i = training-run counter),
// which gives every batch ever seen an equal probability of residing in
// memory — the reservoir property the paper credits for preventing
// forgetting. When not yet full, all available samples are memorized.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace shog::core {

struct Replay_sample {
    std::vector<double> activation; ///< at the replay layer
    std::size_t class_label = 0;
    std::array<double, 4> box_target{0.0, 0.0, 0.0, 0.0};
    double weight = 1.0;
};

class Replay_memory {
public:
    explicit Replay_memory(std::size_t capacity);

    /// Algorithm 1 lines 6-13: merge the (just trained-on) batch into the
    /// memory. Increments the training-run counter i.
    void update_after_training(const std::vector<Replay_sample>& batch, Rng& rng);

    [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] bool full() const noexcept { return samples_.size() == capacity_; }
    [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }
    [[nodiscard]] std::size_t training_runs() const noexcept { return runs_; }

    [[nodiscard]] const Replay_sample& at(std::size_t i) const;
    [[nodiscard]] const std::vector<Replay_sample>& samples() const noexcept { return samples_; }

    /// Draw k samples (with replacement) for a training mini-batch.
    [[nodiscard]] std::vector<const Replay_sample*> draw(std::size_t k, Rng& rng) const;

    /// The number of replacements Algorithm 1 performs at run i when full.
    [[nodiscard]] static std::size_t replacement_count(std::size_t capacity, std::size_t run);

    void clear() noexcept;

private:
    std::size_t capacity_;
    std::size_t runs_ = 0;
    std::vector<Replay_sample> samples_;
};

} // namespace shog::core
