// Online labeling in the cloud (paper §III-A Eq. 1) and the label-space
// change metric phi (paper §III-C).
//
// The teacher detector labels sampled frames: every edge proposal that
// overlaps a teacher detection (IoU >= gate) becomes a positive sample with
// the teacher's class and box; everything else becomes a negative sample.
// All pseudo-labeled samples are weighted equally across domains, exactly as
// the paper states.
//
// phi_k compares the teacher's outputs on consecutive sampled frames: the
// output on I_k is scored against the output on I_{k-1} as if it were
// ground truth, using the task loss (here: 1 - F1 blended with 1 - mean
// IoU of matched pairs). Slowly-changing scenes score near 0.
#pragma once

#include <cstddef>
#include <vector>

#include "detect/box.hpp"
#include "models/detector.hpp"
#include "models/samples.hpp"
#include "video/stream.hpp"

namespace shog::core {

struct Labeler_config {
    double match_iou = 0.5;
    /// Proposals whose best overlap with a teacher box falls in
    /// [ambiguous_iou, match_iou) are *dropped*: they are probably the same
    /// object localized differently, and labeling them negative would teach
    /// the student to suppress true objects (the standard ignore-zone of
    /// detector training).
    double ambiguous_iou = 0.2;
    /// Probability of keeping each negative sample (all kept by default; can
    /// be lowered to re-balance extremely cluttered scenes).
    double negative_keep = 1.0;
    /// Loss weight of negative samples relative to positives.
    double negative_weight = 0.75;
};

struct Labeled_frame {
    std::vector<models::Labeled_sample> samples;
    std::vector<detect::Detection> teacher_detections;
};

class Online_labeler {
public:
    /// The labeler borrows the teacher; the caller keeps it alive.
    Online_labeler(models::Detector& teacher, Labeler_config config = {});

    /// Label one frame: run the teacher, then match the edge device's
    /// proposals against the teacher detections (Eq. 1).
    [[nodiscard]] Labeled_frame label(const video::Frame& frame,
                                      const video::World_model& world,
                                      const std::vector<models::Proposal>& edge_proposals,
                                      Rng& rng) const;

    [[nodiscard]] models::Detector& teacher() noexcept { return teacher_; }
    [[nodiscard]] const Labeler_config& config() const noexcept { return config_; }

private:
    models::Detector& teacher_;
    Labeler_config config_;
};

/// phi between consecutive teacher outputs (both in [0, 1]; higher = faster
/// scene change).
///
/// Note on the definition: the paper scores T(I_k) against T(I_{k-1}) with
/// the task loss. At sub-fps sampling rates, box-level matching between
/// frames seconds apart is dominated by ordinary object *motion*, not by
/// scene change, and saturates. We therefore compare motion-invariant label
/// summaries — class histogram distance, detection-count change and mean
/// confidence change — which behave like the paper's phi on the time scales
/// the controller actually samples (see DESIGN.md, substitutions).
[[nodiscard]] double phi_between(const std::vector<detect::Detection>& current,
                                 const std::vector<detect::Detection>& previous,
                                 std::size_t num_classes = 8);

/// Class-aware F1 agreement between a model's detections and reference
/// detections (teacher labels) at an IoU gate. 1.0 when both are empty.
/// Used as the cloud-side "estimated accuracy" alpha signal.
[[nodiscard]] double detection_agreement(const std::vector<detect::Detection>& detections,
                                         const std::vector<detect::Detection>& reference,
                                         double match_iou = 0.5);

} // namespace shog::core
