// Dataset presets mimicking the paper's three evaluation streams.
//
// The real UA-DETRAC / KITTI / Waymo videos are not shippable, so each
// preset reproduces the *statistical profile* the paper leans on: class mix,
// traffic density, camera type (static surveillance vs ego-motion dashcam),
// resolution (bandwidth model input), and — most importantly — how harsh and
// fast the domain drift is, which is what separates the three Edge-Only
// baselines in Table I.
#pragma once

#include <cstdint>

#include "video/stream.hpp"

namespace shog::video {

struct Dataset_preset {
    const char* name;
    Stream_config stream;
    World_config world;
    Domain_schedule schedule;
};

/// UA-DETRAC-like: static traffic-surveillance camera, 4 vehicle classes
/// with car/van confusion, heavy density swings and harsh day->night->rain
/// cycling. The hardest drift of the three (paper Edge-Only mAP 34.2).
[[nodiscard]] Dataset_preset ua_detrac_like(std::uint64_t seed, double duration = 600.0);

/// KITTI-like (Car only): ego-motion dashcam, single class, mild mostly-day
/// drift (paper Edge-Only mAP 56.8 — the easiest stream).
[[nodiscard]] Dataset_preset kitti_like(std::uint64_t seed, double duration = 600.0);

/// Waymo-Open-like: multi-class with pedestrians/cyclists, mixed day/night
/// suburban driving, intermediate drift (paper Edge-Only mAP 47.5).
[[nodiscard]] Dataset_preset waymo_like(std::uint64_t seed, double duration = 600.0);

/// Look up by name ("ua_detrac", "kitti", "waymo"); throws on unknown names.
[[nodiscard]] Dataset_preset preset_by_name(const char* name, std::uint64_t seed,
                                            double duration = 600.0);

} // namespace shog::video
