// Scene domains and their evolution over time.
//
// The paper's data-drift setting (Fig. 1) is a video whose *domain* —
// illumination, weather, crowd density — changes over minutes-to-hours,
// shifting the feature distribution of the same object classes. This module
// models a domain as a small continuous state and a schedule as piecewise
// holds with linear ramp transitions, optionally cycling (so earlier domains
// recur, which is what makes catastrophic forgetting observable).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace shog::video {

enum class Weather { sunny, cloudy, rainy };

[[nodiscard]] const char* to_string(Weather w) noexcept;

struct Domain {
    double illumination = 1.0; ///< 0 = pitch night, 1 = bright day
    Weather weather = Weather::sunny;
    double density = 0.5; ///< traffic density scale in [0, 1]
    double clutter = 0.3; ///< background clutter level in [0, 1]
};

/// A perceptual distance between domains; drives drift-rate measurement and
/// the synthetic H.264 motion estimate during transitions.
[[nodiscard]] double domain_distance(const Domain& a, const Domain& b) noexcept;

/// Piecewise-constant segments joined by linear ramps.
class Domain_schedule {
public:
    struct Segment {
        Domain domain;
        double hold; ///< time spent inside the domain (excluding ramps)
    };

    /// `ramp` is the transition duration inserted between consecutive
    /// segments. If `cycle` is true the schedule repeats indefinitely.
    Domain_schedule(std::vector<Segment> segments, double ramp, bool cycle);

    /// Domain at absolute stream time t (>= 0).
    [[nodiscard]] Domain at(double t) const;

    /// One full pass through all segments + ramps.
    [[nodiscard]] double period() const noexcept { return period_; }

    [[nodiscard]] bool cycles() const noexcept { return cycle_; }
    [[nodiscard]] std::size_t segment_count() const noexcept { return segments_.size(); }
    [[nodiscard]] const Segment& segment(std::size_t i) const;

    /// Finite-difference drift speed (domain distance per second) at t.
    [[nodiscard]] double drift_rate(double t, double dt = 1.0) const;

private:
    std::vector<Segment> segments_;
    double ramp_;
    bool cycle_;
    double period_ = 0.0;

    /// Start time of segment i's hold within one period.
    [[nodiscard]] double hold_start(std::size_t i) const noexcept;
};

/// Convenience builders for common day cycles.
[[nodiscard]] Domain day_sunny(double density = 0.5);
[[nodiscard]] Domain day_cloudy(double density = 0.5);
[[nodiscard]] Domain day_rainy(double density = 0.5);
[[nodiscard]] Domain dusk(double density = 0.5);
[[nodiscard]] Domain night(double density = 0.5);

} // namespace shog::video
