#include "video/world.hpp"

#include <algorithm>
#include <cmath>

namespace shog::video {

std::size_t World_model::weather_index(Weather w) noexcept {
    return static_cast<std::size_t>(w);
}

World_model::World_model(World_config config) : config_{std::move(config)} {
    SHOG_REQUIRE(config_.feature_dim >= 4, "feature_dim too small");
    SHOG_REQUIRE(config_.num_classes >= 1, "need at least one class");
    SHOG_REQUIRE(config_.illumination_floor > 0.0 && config_.illumination_floor <= 1.0,
                 "illumination floor must lie in (0, 1]");

    Rng rng{config_.seed};
    const std::size_t d = config_.feature_dim;

    // Class prototypes: random directions scaled to class_separation.
    prototypes_.resize(config_.num_classes + 1); // index 0 unused
    for (std::size_t c = 1; c <= config_.num_classes; ++c) {
        std::vector<double> p(d);
        double norm = 0.0;
        for (double& v : p) {
            v = rng.gaussian();
            norm += v * v;
        }
        norm = std::sqrt(norm);
        for (double& v : p) {
            v = v / norm * config_.class_separation;
        }
        prototypes_[c] = std::move(p);
    }
    // Deliberate class confusion (e.g. van pulled toward car).
    for (const auto& [anchor, follower] : config_.confusable_pairs) {
        SHOG_REQUIRE(anchor >= 1 && anchor <= config_.num_classes &&
                         follower >= 1 && follower <= config_.num_classes,
                     "confusable pair class id out of range");
        for (std::size_t i = 0; i < d; ++i) {
            prototypes_[follower][i] = config_.confusable_mix * prototypes_[anchor][i] +
                                       (1.0 - config_.confusable_mix) * prototypes_[follower][i];
        }
    }

    // Weather transforms: W = I + rot * G with G ~ N(0, 1/sqrt(d)); sunny is
    // identity so the pre-training domain is the canonical frame.
    weather_matrix_.resize(3);
    weather_offset_.resize(3);
    for (std::size_t w = 0; w < 3; ++w) {
        weather_matrix_[w].assign(d * d, 0.0);
        weather_offset_[w].assign(d, 0.0);
        const bool is_sunny = (w == weather_index(Weather::sunny));
        const double rot = is_sunny ? 0.0 : config_.weather_rotation;
        for (std::size_t i = 0; i < d; ++i) {
            for (std::size_t j = 0; j < d; ++j) {
                const double g = rng.gaussian() / std::sqrt(static_cast<double>(d));
                weather_matrix_[w][i * d + j] = (i == j ? 1.0 : 0.0) + rot * g;
            }
        }
        if (!is_sunny) {
            double norm = 0.0;
            for (double& v : weather_offset_[w]) {
                v = rng.gaussian();
                norm += v * v;
            }
            norm = std::sqrt(norm);
            for (double& v : weather_offset_[w]) {
                v = v / norm * config_.weather_bias;
            }
        }
    }

    // Night transform: a fixed offset direction plus a mixing perturbation,
    // both scaled by (1 - illumination) at observation time.
    night_offset_.assign(d, 0.0);
    {
        double norm = 0.0;
        for (double& v : night_offset_) {
            v = rng.gaussian();
            norm += v * v;
        }
        norm = std::sqrt(norm);
        for (double& v : night_offset_) {
            v = v / norm * config_.night_bias;
        }
    }
    night_matrix_.assign(d * d, 0.0);
    for (double& v : night_matrix_) {
        v = rng.gaussian() / std::sqrt(static_cast<double>(d));
    }

    background_center_.assign(d, 0.0);
    for (double& v : background_center_) {
        v = 0.25 * rng.gaussian();
    }
}

const std::vector<double>& World_model::prototype(std::size_t class_id) const {
    SHOG_REQUIRE(class_id >= 1 && class_id <= config_.num_classes, "class id out of range");
    return prototypes_[class_id];
}

std::vector<double> World_model::sample_appearance(std::size_t class_id, Rng& rng) const {
    const std::vector<double>& proto = prototype(class_id);
    std::vector<double> a(proto.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = proto[i] + config_.intra_class_spread * rng.gaussian();
    }
    return a;
}

double World_model::illumination_gain(double illumination) const noexcept {
    const double il = std::clamp(illumination, 0.0, 1.0);
    return config_.illumination_floor +
           (1.0 - config_.illumination_floor) * std::pow(il, config_.illumination_gamma);
}

double World_model::noise_sigma(const Domain& domain, double sensor_noise,
                                double robustness) const noexcept {
    const double keep = 1.0 - std::clamp(robustness, 0.0, 0.99);
    const double darkness = (1.0 - std::clamp(domain.illumination, 0.0, 1.0)) * keep;
    double sigma = config_.base_noise + sensor_noise;
    sigma *= 1.0 + config_.night_extra_noise * darkness;
    if (domain.weather == Weather::rainy) {
        sigma *= 1.0 + config_.rain_extra_noise * keep;
    }
    return sigma;
}

std::vector<double> World_model::observe(const std::vector<double>& appearance,
                                         const Domain& domain, double sensor_noise,
                                         double occlusion, Rng& rng, double robustness) const {
    SHOG_REQUIRE(appearance.size() == config_.feature_dim, "appearance dimension mismatch");
    const std::size_t d = config_.feature_dim;
    const std::size_t w = weather_index(domain.weather);
    const double keep = 1.0 - std::clamp(robustness, 0.0, 0.99);
    const double darkness = (1.0 - std::clamp(domain.illumination, 0.0, 1.0)) * keep;
    const double gain = illumination_gain(1.0 - darkness);
    const double sigma = noise_sigma(domain, sensor_noise, robustness);

    const double night_mix = config_.night_rotation * darkness;
    std::vector<double> x(d, 0.0);
    for (std::size_t i = 0; i < d; ++i) {
        // Weather transform attenuated by robustness: W' = I + keep*(W - I).
        double acc = keep * weather_offset_[w][i];
        const double* wrow = weather_matrix_[w].data() + i * d;
        const double* nrow = night_matrix_.data() + i * d;
        for (std::size_t j = 0; j < d; ++j) {
            const double identity = (i == j) ? 1.0 : 0.0;
            const double wij = identity + keep * (wrow[j] - identity);
            acc += (wij + night_mix * nrow[j]) * appearance[j];
        }
        x[i] = gain * acc + darkness * night_offset_[i] + sigma * rng.gaussian();
    }

    // Occlusion: damp ceil(occlusion * d) randomly-chosen dimensions.
    const double occ = std::clamp(occlusion, 0.0, 1.0);
    if (occ > 0.0) {
        const auto n_occ = static_cast<std::size_t>(std::ceil(occ * static_cast<double>(d)));
        for (std::size_t idx : rng.sample_without_replacement(d, n_occ)) {
            x[idx] *= config_.occlusion_damping;
        }
    }
    return x;
}

std::vector<double> World_model::background(const Domain& domain, double sensor_noise,
                                            Rng& rng, double robustness) const {
    const std::size_t d = config_.feature_dim;
    const double keep = 1.0 - std::clamp(robustness, 0.0, 0.99);
    const double darkness = (1.0 - std::clamp(domain.illumination, 0.0, 1.0)) * keep;
    const double gain = illumination_gain(1.0 - darkness);
    const double sigma = noise_sigma(domain, sensor_noise, robustness);
    // Clutter widens the background distribution toward the object manifold;
    // at night the same glare/gain offset applies, which is why clutter can
    // resemble dim vehicles.
    const double spread = 0.5 + 1.1 * domain.clutter;
    std::vector<double> x(d);
    for (std::size_t i = 0; i < d; ++i) {
        x[i] = gain * (background_center_[i] + spread * rng.gaussian()) +
               0.8 * darkness * night_offset_[i] + sigma * rng.gaussian();
    }
    return x;
}

} // namespace shog::video
