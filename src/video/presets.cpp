#include "video/presets.hpp"

#include <cstring>

#include "common/require.hpp"

namespace shog::video {

Dataset_preset ua_detrac_like(std::uint64_t seed, double duration) {
    Dataset_preset p{
        "ua_detrac",
        Stream_config{},
        World_config{},
        // Harsh cycle: sunny rush hour -> cloudy -> rain -> dusk -> night,
        // short ramps, repeating so early domains recur (forgetting shows).
        Domain_schedule{{
                            {day_sunny(0.95), 30.0},
                            {day_cloudy(0.7), 40.0},
                            {day_rainy(0.8), 55.0},
                            {dusk(0.6), 35.0},
                            {night(0.55), 75.0},
                        },
                        12.0,
                        /*cycle=*/true},
    };
    p.stream.seed = seed;
    p.stream.duration = duration;
    p.stream.image_width = 960.0;
    p.stream.image_height = 540.0;
    p.stream.spawn_rate = 2.2;
    p.stream.mean_dwell = 8.0;
    p.stream.ego_motion = 0.0;
    p.stream.class_names = {"car", "van", "bus", "truck"};
    p.stream.class_frequency = {0.62, 0.16, 0.10, 0.12};
    p.stream.class_size_fraction = {0.055, 0.06, 0.11, 0.09};

    p.world.seed = seed ^ 0x9d03;
    p.world.num_classes = 4;
    p.world.confusable_pairs = {{1, 2}}; // van pulled toward car (Fig. 1)
    p.world.night_extra_noise = 0.7;
    p.world.night_bias = 4.2;
    p.world.weather_rotation = 0.28;
    p.world.weather_bias = 1.1;
    return p;
}

Dataset_preset kitti_like(std::uint64_t seed, double duration) {
    Dataset_preset p{
        "kitti",
        Stream_config{},
        World_config{},
        // Day-only drift (no night leg): weather is what moves, so the
        // weather transform is strong for this preset.
        Domain_schedule{{
                            {day_sunny(0.5), 60.0},
                            {day_cloudy(0.45), 75.0},
                            {day_rainy(0.4), 80.0},
                            {day_sunny(0.55), 55.0},
                            {day_rainy(0.5), 60.0},
                        },
                        20.0,
                        /*cycle=*/true},
    };
    p.stream.seed = seed;
    p.stream.duration = duration;
    p.stream.image_width = 1242.0;
    p.stream.image_height = 375.0;
    p.stream.spawn_rate = 1.3;
    p.stream.mean_dwell = 6.5;
    p.stream.ego_motion = 0.35; // dashcam
    p.stream.class_names = {"car"};
    p.stream.class_frequency = {1.0};
    p.stream.class_size_fraction = {0.065};

    p.world.seed = seed ^ 0x11a7;
    p.world.num_classes = 1;
    p.world.night_extra_noise = 0.6;
    p.world.weather_rotation = 0.35;
    p.world.weather_bias = 1.5;
    p.world.base_noise = 0.16;
    return p;
}

Dataset_preset waymo_like(std::uint64_t seed, double duration) {
    Dataset_preset p{
        "waymo",
        Stream_config{},
        World_config{},
        // Mixed suburban driving with a real night leg.
        Domain_schedule{{
                            {day_sunny(0.55), 45.0},
                            {day_cloudy(0.5), 50.0},
                            {dusk(0.45), 45.0},
                            {night(0.4), 80.0},
                            {day_cloudy(0.5), 45.0},
                        },
                        16.0,
                        /*cycle=*/true},
    };
    p.stream.seed = seed;
    p.stream.duration = duration;
    p.stream.image_width = 1280.0;
    p.stream.image_height = 720.0;
    p.stream.spawn_rate = 1.7;
    p.stream.mean_dwell = 7.0;
    p.stream.ego_motion = 0.25;
    p.stream.class_names = {"car", "pedestrian", "cyclist", "truck"};
    p.stream.class_frequency = {0.55, 0.25, 0.08, 0.12};
    p.stream.class_size_fraction = {0.065, 0.028, 0.036, 0.10};

    p.world.seed = seed ^ 0x3a3a;
    p.world.num_classes = 4;
    p.world.night_extra_noise = 0.75;
    p.world.night_bias = 4.0;
    p.world.weather_rotation = 0.22;
    p.world.weather_bias = 1.0;
    return p;
}

Dataset_preset preset_by_name(const char* name, std::uint64_t seed, double duration) {
    SHOG_REQUIRE(name != nullptr, "preset name must not be null");
    if (std::strcmp(name, "ua_detrac") == 0) {
        return ua_detrac_like(seed, duration);
    }
    if (std::strcmp(name, "kitti") == 0) {
        return kitti_like(seed, duration);
    }
    if (std::strcmp(name, "waymo") == 0) {
        return waymo_like(seed, duration);
    }
    SHOG_REQUIRE(false, std::string{"unknown dataset preset '"} + name + "'");
    return ua_detrac_like(seed, duration); // unreachable
}

} // namespace shog::video
