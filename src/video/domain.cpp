#include "video/domain.hpp"

#include <cmath>

#include "common/require.hpp"

namespace shog::video {

const char* to_string(Weather w) noexcept {
    switch (w) {
    case Weather::sunny:
        return "sunny";
    case Weather::cloudy:
        return "cloudy";
    case Weather::rainy:
        return "rainy";
    }
    return "?";
}

double domain_distance(const Domain& a, const Domain& b) noexcept {
    const double d_illum = std::abs(a.illumination - b.illumination);
    const double d_density = std::abs(a.density - b.density);
    const double d_clutter = std::abs(a.clutter - b.clutter);
    const double d_weather = (a.weather == b.weather) ? 0.0 : 0.35;
    return d_illum + 0.5 * d_density + 0.3 * d_clutter + d_weather;
}

Domain_schedule::Domain_schedule(std::vector<Segment> segments, double ramp, bool cycle)
    : segments_{std::move(segments)}, ramp_{ramp}, cycle_{cycle} {
    SHOG_REQUIRE(!segments_.empty(), "schedule needs at least one segment");
    SHOG_REQUIRE(ramp_ >= 0.0, "ramp must be non-negative");
    for (const Segment& s : segments_) {
        SHOG_REQUIRE(s.hold >= 0.0, "segment hold must be non-negative");
        SHOG_REQUIRE(s.domain.illumination >= 0.0 && s.domain.illumination <= 1.0,
                     "illumination must lie in [0, 1]");
        SHOG_REQUIRE(s.domain.density >= 0.0 && s.domain.density <= 1.0,
                     "density must lie in [0, 1]");
        SHOG_REQUIRE(s.domain.clutter >= 0.0 && s.domain.clutter <= 1.0,
                     "clutter must lie in [0, 1]");
    }
    for (const Segment& s : segments_) {
        period_ += s.hold + ramp_;
    }
    if (!cycle_) {
        period_ -= ramp_; // no ramp after the final segment
    }
    SHOG_REQUIRE(period_ > 0.0, "schedule period must be positive");
}

const Domain_schedule::Segment& Domain_schedule::segment(std::size_t i) const {
    SHOG_REQUIRE(i < segments_.size(), "segment index out of range");
    return segments_[i];
}

double Domain_schedule::hold_start(std::size_t i) const noexcept {
    double t = 0.0;
    for (std::size_t k = 0; k < i; ++k) {
        t += segments_[k].hold + ramp_;
    }
    return t;
}

Domain Domain_schedule::at(double t) const {
    SHOG_REQUIRE(t >= 0.0, "schedule time must be non-negative");
    double local = t;
    if (cycle_) {
        local = std::fmod(t, period_);
    } else if (local >= period_) {
        return segments_.back().domain;
    }

    for (std::size_t i = 0; i < segments_.size(); ++i) {
        const double start = hold_start(i);
        const double hold_end = start + segments_[i].hold;
        if (local < hold_end) {
            return segments_[i].domain;
        }
        const bool last = (i + 1 == segments_.size());
        if (last && !cycle_) {
            return segments_.back().domain;
        }
        const double ramp_end = hold_end + ramp_;
        if (local < ramp_end) {
            const Domain& from = segments_[i].domain;
            const Domain& to = segments_[last ? 0 : i + 1].domain;
            const double f = ramp_ > 0.0 ? (local - hold_end) / ramp_ : 1.0;
            Domain mixed;
            mixed.illumination = from.illumination + f * (to.illumination - from.illumination);
            mixed.density = from.density + f * (to.density - from.density);
            mixed.clutter = from.clutter + f * (to.clutter - from.clutter);
            mixed.weather = f < 0.5 ? from.weather : to.weather;
            return mixed;
        }
    }
    return segments_.back().domain;
}

double Domain_schedule::drift_rate(double t, double dt) const {
    SHOG_REQUIRE(dt > 0.0, "drift_rate step must be positive");
    const Domain before = at(t);
    const Domain after = at(t + dt);
    return domain_distance(before, after) / dt;
}

Domain day_sunny(double density) { return Domain{1.0, Weather::sunny, density, 0.25}; }
Domain day_cloudy(double density) { return Domain{0.75, Weather::cloudy, density, 0.3}; }
Domain day_rainy(double density) { return Domain{0.55, Weather::rainy, density, 0.45}; }
Domain dusk(double density) { return Domain{0.35, Weather::cloudy, density, 0.35}; }
Domain night(double density) { return Domain{0.12, Weather::sunny, density, 0.4}; }

} // namespace shog::video
