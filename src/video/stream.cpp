#include "video/stream.hpp"

#include <algorithm>
#include <cmath>

namespace shog::video {

Video_stream::Video_stream(Stream_config config, World_config world_config,
                           Domain_schedule schedule)
    : config_{std::move(config)},
      world_{std::move(world_config)},
      schedule_{std::move(schedule)},
      frame_count_{static_cast<std::size_t>(config_.duration * config_.fps)} {
    SHOG_REQUIRE(config_.fps > 0.0, "fps must be positive");
    SHOG_REQUIRE(config_.duration > 0.0, "duration must be positive");
    SHOG_REQUIRE(config_.image_width > 0.0 && config_.image_height > 0.0,
                 "image size must be positive");
    SHOG_REQUIRE(config_.spawn_rate > 0.0, "spawn rate must be positive");
    SHOG_REQUIRE(config_.mean_dwell > 0.0, "dwell must be positive");

    const std::size_t n_classes = world_.num_classes();
    if (config_.class_size_fraction.empty()) {
        config_.class_size_fraction.assign(n_classes, 0.08);
    }
    if (config_.class_frequency.empty()) {
        config_.class_frequency.assign(n_classes, 1.0);
    }
    if (config_.class_names.empty()) {
        for (std::size_t c = 1; c <= n_classes; ++c) {
            config_.class_names.push_back("class" + std::to_string(c));
        }
    }
    SHOG_REQUIRE(config_.class_size_fraction.size() == n_classes,
                 "class_size_fraction size mismatch");
    SHOG_REQUIRE(config_.class_frequency.size() == n_classes, "class_frequency size mismatch");
    SHOG_REQUIRE(config_.class_names.size() == n_classes, "class_names size mismatch");

    generate_tracks();
}

const std::string& Video_stream::class_name(std::size_t class_id) const {
    SHOG_REQUIRE(class_id >= 1 && class_id <= config_.class_names.size(),
                 "class id out of range");
    return config_.class_names[class_id - 1];
}

void Video_stream::generate_tracks() {
    Rng rng = Rng{config_.seed}.split(0xc0ffee);
    // Normalized class sampling CDF.
    std::vector<double> cdf(config_.class_frequency.size());
    double total = 0.0;
    for (std::size_t i = 0; i < cdf.size(); ++i) {
        total += config_.class_frequency[i];
        cdf[i] = total;
    }
    SHOG_REQUIRE(total > 0.0, "class frequencies must not all be zero");

    // Poisson arrivals at the max rate, thinned by schedule density.
    double t = 0.0;
    std::size_t next_id = 1;
    while (t < config_.duration) {
        t += -std::log(std::max(rng.uniform(), 1e-12)) / config_.spawn_rate;
        if (t >= config_.duration) {
            break;
        }
        const Domain domain = schedule_.at(t);
        if (!rng.chance(domain.density)) {
            continue;
        }
        Track track;
        track.id = next_id++;
        const double u = rng.uniform() * total;
        track.class_id = 1;
        for (std::size_t i = 0; i < cdf.size(); ++i) {
            if (u <= cdf[i]) {
                track.class_id = i + 1;
                break;
            }
        }
        track.appearance = world_.sample_appearance(track.class_id, rng);
        track.spawn = t;
        const double dwell =
            config_.mean_dwell * std::exp(0.45 * rng.gaussian()); // lognormal-ish
        track.exit = std::min(config_.duration, t + std::max(1.0, dwell));
        track.scale = std::clamp(std::exp(0.35 * rng.gaussian()), 0.45, 2.2);

        const double nominal = config_.class_size_fraction[track.class_id - 1] *
                               config_.image_width * track.scale;
        track.width = nominal;
        track.height = nominal * rng.uniform(0.6, 0.95);

        // Enter from left or right, crossing horizontally with slight drift.
        const bool from_left = rng.chance(0.5);
        const double travel = config_.image_width + track.width;
        const double speed = travel / std::max(1.0, track.exit - track.spawn);
        track.vx = from_left ? speed : -speed;
        track.x0 = from_left ? -track.width / 2.0 : config_.image_width + track.width / 2.0;
        track.y0 = rng.uniform(0.25, 0.85) * config_.image_height;
        track.vy = rng.gaussian(0.0, 4.0);
        tracks_.push_back(std::move(track));
    }

    // Time index: iterate tracks in order so every bucket lists its live
    // tracks ascending — frame_at then visits candidates in exactly the
    // order the former full scan did.
    const auto bucket_count = static_cast<std::size_t>(std::ceil(config_.duration));
    tracks_by_second_.assign(std::max<std::size_t>(bucket_count, 1), {});
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        const Track& track = tracks_[i];
        const auto first = static_cast<std::size_t>(std::max(track.spawn, 0.0));
        for (std::size_t b = first; b < tracks_by_second_.size(); ++b) {
            if (static_cast<double>(b) >= track.exit) {
                break;
            }
            tracks_by_second_[b].push_back(static_cast<std::uint32_t>(i));
        }
    }
}

detect::Box Video_stream::track_box(const Track& t, double time) const noexcept {
    const double dt = time - t.spawn;
    const double cx = t.x0 + t.vx * dt;
    const double cy = t.y0 + t.vy * dt;
    return detect::Box::from_center(cx, cy, t.width, t.height)
        .clipped(config_.image_width, config_.image_height);
}

std::size_t Video_stream::index_at(double t) const {
    SHOG_REQUIRE(t >= 0.0, "time must be non-negative");
    const auto idx = static_cast<std::size_t>(t * config_.fps);
    return std::min(idx, frame_count_ > 0 ? frame_count_ - 1 : 0);
}

Frame Video_stream::frame_at(std::size_t index) const {
    SHOG_REQUIRE(index < frame_count_, "frame index out of range");
    Frame frame;
    frame.index = index;
    frame.timestamp = static_cast<double>(index) / config_.fps;
    frame.domain = schedule_.at(frame.timestamp);

    Rng frame_rng = Rng{config_.seed}.split(0x10000 + index);

    const double min_area = 0.0002 * config_.image_width * config_.image_height;
    double moving_area = 0.0;
    const std::size_t bucket =
        std::min(static_cast<std::size_t>(frame.timestamp), tracks_by_second_.size() - 1);
    for (const std::uint32_t track_index : tracks_by_second_[bucket]) {
        const Track& t = tracks_[track_index];
        if (frame.timestamp < t.spawn || frame.timestamp >= t.exit) {
            continue;
        }
        const detect::Box box = track_box(t, frame.timestamp);
        if (!box.valid() || box.area() < min_area) {
            continue;
        }
        Rendered_object obj;
        obj.object_id = t.id;
        obj.class_id = t.class_id;
        obj.box = box;
        obj.appearance = &t.appearance;
        obj.scale = t.scale;
        moving_area += box.area() * std::abs(t.vx) / config_.image_width;
        frame.objects.push_back(obj);
    }

    // Occlusion: overlapped-by-a-nearer-object fraction (nearer = larger id
    // proxies "spawned later = closer to camera") + clutter flicker.
    for (std::size_t i = 0; i < frame.objects.size(); ++i) {
        Rendered_object& obj = frame.objects[i];
        double occluded = 0.0;
        for (std::size_t j = 0; j < frame.objects.size(); ++j) {
            if (i == j || frame.objects[j].object_id < obj.object_id) {
                continue;
            }
            occluded = std::max(occluded, detect::iou(obj.box, frame.objects[j].box));
        }
        Rng obj_rng = frame_rng.split(obj.object_id);
        obj.occlusion = std::clamp(0.8 * occluded + 0.2 * frame.domain.clutter * obj_rng.uniform(),
                              0.0, 0.9);
    }

    const double image_area = config_.image_width * config_.image_height;
    frame.motion_level = std::clamp(moving_area / image_area + config_.ego_motion +
                                   2.0 * schedule_.drift_rate(frame.timestamp),
                               0.0, 1.0);
    frame.complexity = std::clamp(0.35 + 0.5 * frame.domain.clutter +
                                 0.15 * static_cast<double>(frame.objects.size()) / 10.0,
                             0.0, 1.0);
    return frame;
}

std::vector<detect::Ground_truth> Video_stream::ground_truth(const Frame& frame) {
    std::vector<detect::Ground_truth> gt;
    gt.reserve(frame.objects.size());
    for (const Rendered_object& obj : frame.objects) {
        gt.push_back(detect::Ground_truth{obj.box, obj.class_id});
    }
    return gt;
}

} // namespace shog::video
