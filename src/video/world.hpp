// The appearance "physics" shared by the whole simulated world.
//
// Every object carries a latent appearance vector drawn from a
// class-conditional distribution. What a detector actually *sees* is a
// domain-transformed observation of that latent:
//
//   x = g(illum) * (W_weather * a + b_weather) + sensor noise,
//   with occlusion damping a random subset of dimensions.
//
// The illumination gain g compresses class separation at night (exactly the
// failure mode in the paper's Fig. 1), the weather transform rotates/offsets
// the manifold, and noise floors rise at night and in rain. A model
// pre-trained on daytime/sunny observations therefore degrades on other
// domains — until it is re-trained on teacher-labeled samples from them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "video/domain.hpp"

namespace shog::video {

struct World_config {
    std::size_t feature_dim = 24;
    std::size_t num_classes = 4;  ///< 1-based ids 1..num_classes; 0 = background
    double class_separation = 2.4; ///< prototype norm (bigger = easier task)
    double intra_class_spread = 0.55;
    /// Pairs of classes made deliberately confusable (e.g. car/van). Each
    /// entry mixes the second class's prototype toward the first.
    std::vector<std::pair<std::size_t, std::size_t>> confusable_pairs;
    double confusable_mix = 0.45;

    // Domain transform strengths.
    double illumination_floor = 0.50; ///< g at illumination 0
    double illumination_gamma = 0.85;
    double weather_rotation = 0.25; ///< off-identity magnitude of W_weather
    double weather_bias = 0.9;      ///< norm of b_weather
    /// Night is not a pure gain change: headlights, glare and sensor gain
    /// shift and mix the feature manifold. Both effects ramp in as
    /// illumination drops.
    double night_bias = 2.8;     ///< norm of the additive night offset at illum 0
    double night_rotation = 0.8; ///< extra mixing magnitude at illum 0
    double base_noise = 0.18;    ///< world-intrinsic observation noise
    double night_extra_noise = 0.6; ///< noise multiplier ramp as illumination drops
    double rain_extra_noise = 0.45;
    double occlusion_damping = 0.15; ///< occluded dims are scaled by this

    std::uint64_t seed = 1234;
};

class World_model {
public:
    explicit World_model(World_config config);

    [[nodiscard]] const World_config& config() const noexcept { return config_; }
    [[nodiscard]] std::size_t feature_dim() const noexcept { return config_.feature_dim; }
    [[nodiscard]] std::size_t num_classes() const noexcept { return config_.num_classes; }

    /// Class prototype (class_id in 1..num_classes).
    [[nodiscard]] const std::vector<double>& prototype(std::size_t class_id) const;

    /// Draw a per-object latent appearance for the class.
    [[nodiscard]] std::vector<double> sample_appearance(std::size_t class_id, Rng& rng) const;

    /// Observe an object appearance under a domain.
    ///
    /// `sensor_noise` is the detector-specific extra noise (teacher <
    /// student); `occlusion` in [0, 1] is the per-frame occluded fraction;
    /// `robustness` in [0, 1) models how much of the domain degradation a
    /// detector's capacity undoes (a 300-GFLOP golden model genuinely
    /// recovers dark, rain-smeared inputs that a lightweight model cannot) —
    /// it proportionally attenuates the night/weather transform and the
    /// domain-driven part of the noise.
    [[nodiscard]] std::vector<double> observe(const std::vector<double>& appearance,
                                              const Domain& domain, double sensor_noise,
                                              double occlusion, Rng& rng,
                                              double robustness = 0.0) const;

    /// A background (non-object) observation under the domain; clutter raises
    /// its variance so that night clutter can resemble dim objects.
    [[nodiscard]] std::vector<double> background(const Domain& domain, double sensor_noise,
                                                 Rng& rng, double robustness = 0.0) const;

    /// Illumination gain g(illum) — exposed for tests.
    [[nodiscard]] double illumination_gain(double illumination) const noexcept;

    /// Effective noise sigma under a domain for a detector — exposed for tests.
    [[nodiscard]] double noise_sigma(const Domain& domain, double sensor_noise,
                                     double robustness = 0.0) const noexcept;

private:
    World_config config_;
    std::vector<std::vector<double>> prototypes_;      // [class][dim]
    std::vector<std::vector<double>> weather_matrix_;  // [weather][dim*dim]
    std::vector<std::vector<double>> weather_offset_;  // [weather][dim]
    std::vector<double> night_offset_;                 // [dim]
    std::vector<double> night_matrix_;                 // [dim*dim], off-identity part
    std::vector<double> background_center_;

    [[nodiscard]] static std::size_t weather_index(Weather w) noexcept;
};

} // namespace shog::video
