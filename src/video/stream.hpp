// Deterministic synthetic video stream.
//
// A stream owns a world model, a domain schedule, and a population of object
// tracks generated at construction (Poisson arrivals thinned by the
// schedule's density). frame_at(i) is pure random access: the same (seed,
// index) always yields the same frame — a property the test suite checks and
// the simulation harness relies on (strategies sample frames at arbitrary
// times while the evaluator strides over others).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "detect/box.hpp"
#include "video/domain.hpp"
#include "video/world.hpp"

namespace shog::video {

/// One visible object instance in a frame.
struct Rendered_object {
    std::size_t object_id = 0;
    std::size_t class_id = 0;
    detect::Box box;
    /// Latent appearance (constant over the object's lifetime).
    const std::vector<double>* appearance = nullptr;
    /// Per-frame occluded fraction in [0, 1].
    double occlusion = 0.0;
    /// Apparent scale relative to the class's nominal size.
    double scale = 1.0;
};

struct Frame {
    std::size_t index = 0;
    double timestamp = 0.0;
    Domain domain;
    std::vector<Rendered_object> objects;
    /// Fraction of the image changing per frame (drives the H.264 model).
    double motion_level = 0.0;
    /// Texture/clutter complexity in [0, 1] (drives the H.264 model).
    double complexity = 0.0;
};

struct Stream_config {
    std::uint64_t seed = 1;
    double fps = 30.0;
    double duration = 600.0;
    double image_width = 960.0;
    double image_height = 540.0;
    /// Arrival intensity at density 1.0, in objects per second.
    double spawn_rate = 1.4;
    /// Mean on-screen dwell time per object.
    double mean_dwell = 9.0;
    /// Global ego-motion level added to every frame's motion (KITTI-like
    /// dashcam streams set this high; static surveillance cameras near 0).
    double ego_motion = 0.0;
    /// Nominal object size as a fraction of image width, per class
    /// (class_id-1 indexed). Defaults applied when empty.
    std::vector<double> class_size_fraction;
    /// Relative spawn frequency per class (class_id-1 indexed; normalized).
    std::vector<double> class_frequency;
    std::vector<std::string> class_names;
};

class Video_stream {
public:
    Video_stream(Stream_config config, World_config world_config, Domain_schedule schedule);

    [[nodiscard]] const Stream_config& config() const noexcept { return config_; }
    [[nodiscard]] const World_model& world() const noexcept { return world_; }
    [[nodiscard]] const Domain_schedule& schedule() const noexcept { return schedule_; }

    [[nodiscard]] std::size_t frame_count() const noexcept { return frame_count_; }
    [[nodiscard]] double fps() const noexcept { return config_.fps; }
    [[nodiscard]] double duration() const noexcept { return config_.duration; }
    [[nodiscard]] std::size_t num_classes() const noexcept { return world_.num_classes(); }
    [[nodiscard]] const std::string& class_name(std::size_t class_id) const;

    /// Deterministic random access to frame i in [0, frame_count).
    [[nodiscard]] Frame frame_at(std::size_t index) const;

    /// Frame index at or before time t.
    [[nodiscard]] std::size_t index_at(double t) const;

    /// Ground truth of a frame (boxes + classes), for evaluators.
    [[nodiscard]] static std::vector<detect::Ground_truth> ground_truth(const Frame& frame);

    /// Total tracks generated over the stream (for tests / stats).
    [[nodiscard]] std::size_t track_count() const noexcept { return tracks_.size(); }

private:
    struct Track {
        std::size_t id;
        std::size_t class_id;
        std::vector<double> appearance;
        double spawn;
        double exit;
        double x0, y0;   // center position at spawn (px)
        double vx, vy;   // velocity (px/s)
        double scale;    // apparent size multiplier
        double width, height; // nominal box size (px)
    };

    Stream_config config_;
    World_model world_;
    Domain_schedule schedule_;
    std::size_t frame_count_;
    std::vector<Track> tracks_;
    /// Per-second index: tracks alive at any instant of second [b, b+1), in
    /// ascending track order. frame_at scans only the handful of tracks
    /// live near its timestamp instead of the whole population — same
    /// candidate set and iteration order, so rendering is bit-identical.
    std::vector<std::vector<std::uint32_t>> tracks_by_second_;

    void generate_tracks();
    [[nodiscard]] detect::Box track_box(const Track& t, double time) const noexcept;
};

} // namespace shog::video
