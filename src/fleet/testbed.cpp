#include "fleet/testbed.hpp"

#include <utility>

#include "models/pretrain.hpp"
#include "video/presets.hpp"

namespace shog::fleet {

Testbed make_testbed(const char* preset_name, std::size_t cameras, std::uint64_t seed,
                     double duration) {
    SHOG_REQUIRE(cameras >= 1, "fleet testbed needs at least one camera");
    const video::Dataset_preset preset = video::preset_by_name(preset_name, seed, duration);
    Testbed testbed;
    for (std::size_t i = 0; i < cameras; ++i) {
        video::Stream_config stream_config = preset.stream;
        stream_config.seed = preset.stream.seed + i;
        testbed.streams.push_back(std::make_unique<video::Video_stream>(
            stream_config, preset.world, preset.schedule));
    }
    testbed.pristine = models::make_student(testbed.streams.front()->world(), seed);
    testbed.teacher = models::make_teacher(testbed.streams.front()->world(), seed);
    return testbed;
}

namespace {

/// `factory(student)` builds one device's strategy around its cloned student.
template <typename Factory>
Fleet build_fleet(const Testbed& testbed, std::size_t devices, Factory&& factory) {
    SHOG_REQUIRE(devices >= 1 && devices <= testbed.streams.size(),
                 "fleet size must fit the testbed's cameras");
    Fleet fleet;
    for (std::size_t i = 0; i < devices; ++i) {
        fleet.students.push_back(testbed.pristine->clone());
        fleet.strategies.push_back(factory(*fleet.students.back()));
        fleet.specs.push_back(
            sim::Device_spec{fleet.strategies.back().get(), testbed.streams[i].get()});
    }
    return fleet;
}

} // namespace

Fleet make_shoggoth_fleet(const Testbed& testbed, std::size_t devices,
                          core::Shoggoth_config config,
                          device::Compute_model cloud_device) {
    return build_fleet(testbed, devices, [&](models::Detector& student) {
        return std::make_unique<core::Shoggoth_strategy>(
            student, *testbed.teacher, config,
            models::Deployed_profile::yolov4_resnet18(), device::jetson_tx2(),
            cloud_device);
    });
}

Fleet make_ams_fleet(const Testbed& testbed, std::size_t devices, baselines::Ams_config config,
                     device::Compute_model cloud_device) {
    return build_fleet(testbed, devices, [&](models::Detector& student) {
        return std::make_unique<baselines::Ams_strategy>(
            student, *testbed.teacher, config,
            models::Deployed_profile::yolov4_resnet18(), cloud_device);
    });
}

} // namespace shog::fleet
