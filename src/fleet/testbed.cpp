#include "fleet/testbed.hpp"

#include <algorithm>
#include <utility>

#include "models/pretrain.hpp"
#include "sim/shard.hpp"
#include "video/presets.hpp"

namespace shog::fleet {

namespace {

Testbed build_testbed(const video::Dataset_preset& preset, std::size_t cameras,
                      std::uint64_t seed) {
    SHOG_REQUIRE(cameras >= 1, "fleet testbed needs at least one camera");
    Testbed testbed;
    for (std::size_t i = 0; i < cameras; ++i) {
        video::Stream_config stream_config = preset.stream;
        stream_config.seed = preset.stream.seed + i;
        testbed.streams.push_back(std::make_unique<video::Video_stream>(
            stream_config, preset.world, preset.schedule));
    }
    testbed.pristine = models::make_student(testbed.streams.front()->world(), seed);
    testbed.teacher = models::make_teacher(testbed.streams.front()->world(), seed);
    return testbed;
}

} // namespace

Testbed make_testbed(const char* preset_name, std::size_t cameras, std::uint64_t seed,
                     double duration) {
    return build_testbed(video::preset_by_name(preset_name, seed, duration), cameras, seed);
}

Testbed make_correlated_drift_testbed(const char* preset_name, std::size_t cameras,
                                      std::uint64_t seed, double duration) {
    video::Dataset_preset preset = video::preset_by_name(preset_name, seed, duration);
    // One synchronized day/night square wave with sharp ramps, shared by
    // every camera: at each break the whole fleet's alpha collapses at once,
    // every controller spikes its sampling rate, and the cloud sees the
    // correlated upload burst (the fleet-level stress the per-camera cycled
    // schedules of the stock presets smear out). Segment lengths scale with
    // the stream so even a short smoke run crosses at least one break.
    const double hold = 0.3 * duration;
    const double ramp = std::max(1.0, 0.03 * duration);
    preset.schedule = video::Domain_schedule{{
                                                 {video::day_sunny(0.6), hold},
                                                 {video::night(0.45), hold},
                                             },
                                             ramp,
                                             /*cycle=*/true};
    return build_testbed(preset, cameras, seed);
}

std::vector<Edge_class> default_edge_classes() {
    // idle fps on the 5.2-GFLOP student: ~30 (tx2) / ~20 (mid) / ~11
    // (straggler), so the mix spans real-time down to clearly degraded.
    return {
        Edge_class{"tx2", device::jetson_tx2(),
                   netsim::Link_config{12.0, 40.0, Sim_duration{0.025}}, 5.2},
        Edge_class{"mid", device::Compute_model{"mid_tier", 0.11},
                   netsim::Link_config{8.0, 24.0, Sim_duration{0.035}}, 5.2},
        Edge_class{"straggler", device::Compute_model{"straggler", 0.06},
                   netsim::Link_config{3.0, 10.0, Sim_duration{0.08}}, 5.2},
    };
}

sim::Device_hardware hardware_of(const Edge_class& edge_class) {
    return sim::Device_hardware{edge_class.link, edge_class.device,
                                device::Edge_contention_config{},
                                edge_class.inference_gflops};
}

void assign_heterogeneous_hardware(Fleet& fleet, const std::vector<Edge_class>& classes) {
    SHOG_REQUIRE(!classes.empty(), "heterogeneous fleet needs at least one edge class");
    for (std::size_t i = 0; i < fleet.specs.size(); ++i) {
        fleet.specs[i].hardware = hardware_of(classes[i % classes.size()]);
    }
}

namespace {

/// `factory(student, device_index)` builds one device's strategy around its
/// cloned student (the index lets heterogeneous fleets pick per-device
/// hardware at construction time). With `wrap_cameras`, device i watches
/// stream i mod cameras — the city-scale fleets reuse a camera pool far
/// smaller than the fleet so stream construction stays O(cameras), not
/// O(devices); without it, oversubscribing the testbed is an error.
template <typename Factory>
void grow_fleet(Fleet& fleet, const Testbed& testbed, std::size_t devices,
                Factory&& factory, bool wrap_cameras = false) {
    for (std::size_t i = 0; i < devices; ++i) {
        const std::size_t device = fleet.specs.size();
        const std::size_t camera =
            wrap_cameras ? device % testbed.streams.size() : device;
        SHOG_REQUIRE(camera < testbed.streams.size(),
                     "fleet size must fit the testbed's cameras");
        fleet.students.push_back(testbed.pristine->clone());
        // The factory keys off the device position (not the camera) so the
        // per-device edge-class cycle stays aligned with
        // assign_heterogeneous_hardware even when cameras wrap.
        fleet.strategies.push_back(factory(*fleet.students.back(), device));
        fleet.specs.push_back(sim::Device_spec{fleet.strategies.back().get(),
                                               testbed.streams[camera].get(),
                                               {}});
    }
}

/// Start a fleet with its own teacher copy (see the Fleet doc: parallel
/// sweep cells must not share the testbed's mutable teacher).
Fleet seed_fleet(const Testbed& testbed) {
    Fleet fleet;
    fleet.teacher = testbed.teacher->clone();
    return fleet;
}

auto shoggoth_factory(models::Detector& teacher, core::Shoggoth_config config,
                      device::Compute_model cloud_device,
                      std::vector<Edge_class> classes = {}) {
    // With edge classes, device i trains on its own accelerator (the trainer
    // prices session wall time from it); without, every device is a TX2.
    return [&teacher, config = std::move(config), cloud_device = std::move(cloud_device),
            classes = std::move(classes)](models::Detector& student, std::size_t i) {
        const device::Compute_model edge =
            classes.empty() ? device::jetson_tx2() : classes[i % classes.size()].device;
        return std::make_unique<core::Shoggoth_strategy>(
            student, teacher, config, models::Deployed_profile::yolov4_resnet18(),
            edge, cloud_device);
    };
}

auto ams_factory(models::Detector& teacher, baselines::Ams_config config,
                 device::Compute_model cloud_device) {
    return [&teacher, config = std::move(config),
            cloud_device = std::move(cloud_device)](models::Detector& student,
                                                    std::size_t) {
        return std::make_unique<baselines::Ams_strategy>(
            student, teacher, config,
            models::Deployed_profile::yolov4_resnet18(), cloud_device);
    };
}

} // namespace

Fleet make_shoggoth_fleet(const Testbed& testbed, std::size_t devices,
                          core::Shoggoth_config config,
                          device::Compute_model cloud_device) {
    SHOG_REQUIRE(devices >= 1, "fleet needs at least one device");
    Fleet fleet = seed_fleet(testbed);
    grow_fleet(fleet, testbed, devices,
               shoggoth_factory(*fleet.teacher, std::move(config), std::move(cloud_device)));
    return fleet;
}

Fleet make_ams_fleet(const Testbed& testbed, std::size_t devices, baselines::Ams_config config,
                     device::Compute_model cloud_device) {
    SHOG_REQUIRE(devices >= 1, "fleet needs at least one device");
    Fleet fleet = seed_fleet(testbed);
    grow_fleet(fleet, testbed, devices,
               ams_factory(*fleet.teacher, std::move(config), std::move(cloud_device)));
    return fleet;
}

Fleet make_mixed_fleet(const Testbed& testbed, std::size_t shoggoth_devices,
                       std::size_t ams_devices, core::Shoggoth_config shoggoth_config,
                       baselines::Ams_config ams_config,
                       device::Compute_model cloud_device) {
    SHOG_REQUIRE(shoggoth_devices + ams_devices >= 1, "fleet needs at least one device");
    Fleet fleet = seed_fleet(testbed);
    grow_fleet(fleet, testbed, shoggoth_devices,
               shoggoth_factory(*fleet.teacher, std::move(shoggoth_config), cloud_device));
    grow_fleet(fleet, testbed, ams_devices,
               ams_factory(*fleet.teacher, std::move(ams_config), std::move(cloud_device)));
    return fleet;
}

std::vector<Policy_setup> default_policy_setups() {
    return {
        Policy_setup{"fifo", sim::Policy_kind::fifo, Sim_duration{}},
        Policy_setup{"priority", sim::Policy_kind::priority, Sim_duration{}},
        Policy_setup{"fair_share", sim::Policy_kind::fair_share, Sim_duration{}},
        Policy_setup{"fifo_preempt", sim::Policy_kind::fifo, Sim_duration{2.0}},
    };
}

Fleet make_policy_sweep_fleet(const Testbed& testbed, std::size_t devices,
                              bool heterogeneous) {
    const std::size_t ams_devices = devices / 2;
    const std::size_t shoggoth_devices = devices - ams_devices;
    // Policies only differ under contention: a fleet of 8 leaves a full
    // V100 mostly idle, so the sweep runs on a proportionally scaled-down
    // cloud share instead of simulating hundreds of devices.
    const device::Compute_model cloud_share{"v100_share", 1.5};
    // Halve the fine-tune trigger so AMS train jobs land in the mix well
    // within short sweeps (under heavy FIFO queueing the default 60-frame
    // cadence can push the first fine-tune past the end of the stream).
    baselines::Ams_config ams_config;
    ams_config.frames_per_session = 30;
    Fleet fleet = seed_fleet(testbed);
    grow_fleet(fleet, testbed, shoggoth_devices,
               shoggoth_factory(*fleet.teacher, {}, cloud_share,
                                heterogeneous ? default_edge_classes()
                                              : std::vector<Edge_class>{}));
    grow_fleet(fleet, testbed, ams_devices,
               ams_factory(*fleet.teacher, ams_config, cloud_share));
    if (heterogeneous) {
        assign_heterogeneous_hardware(fleet);
    }
    return fleet;
}

Fleet make_scale_fleet(const Testbed& testbed, std::size_t devices, bool heterogeneous) {
    SHOG_REQUIRE(devices >= 1, "fleet needs at least one device");
    // Same contended operating point as make_policy_sweep_fleet (mixed
    // Shoggoth/AMS on the scaled-down cloud share), but device i watches
    // stream i mod cameras: the testbed's camera pool is reused so a
    // 10^4-device fleet does not need 10^4 track populations. Devices
    // sharing a camera still diverge — distinct harness RNG substreams,
    // distinct edge classes, distinct cloud contention histories.
    const device::Compute_model cloud_share{"v100_share", 1.5};
    baselines::Ams_config ams_config;
    ams_config.frames_per_session = 30;
    const std::size_t ams_devices = devices / 2;
    const std::size_t shoggoth_devices = devices - ams_devices;
    Fleet fleet = seed_fleet(testbed);
    grow_fleet(fleet, testbed, shoggoth_devices,
               shoggoth_factory(*fleet.teacher, {}, cloud_share,
                                heterogeneous ? default_edge_classes()
                                              : std::vector<Edge_class>{}),
               /*wrap_cameras=*/true);
    grow_fleet(fleet, testbed, ams_devices,
               ams_factory(*fleet.teacher, ams_config, cloud_share),
               /*wrap_cameras=*/true);
    if (heterogeneous) {
        assign_heterogeneous_hardware(fleet);
    }
    return fleet;
}

// The run_*_cell family below is what sim::run_sweep workers call
// concurrently (bench_fleet, fleet_scaling, test_sweep). The contract that
// makes that safe: every cell builds its OWN Fleet (own students, own
// strategies, own deep-cloned teacher — see make_policy_sweep_fleet) and its
// own Cluster_config/engine; the only thing cells share is the const
// Testbed&, which they read through const, stateless accessors. Nothing in
// a cell may write through the testbed or touch process-global state.
namespace {

/// shards == 0 keeps the sequential engine (the bit-identical default);
/// shards > 0 runs the same specs through the device-sharded engine.
sim::Cluster_result run_cell_engine(const std::vector<sim::Device_spec>& specs,
                                    const sim::Cluster_config& config,
                                    std::size_t shards) {
    if (shards == 0) {
        return sim::run_cluster(specs, config);
    }
    return sim::run_cluster_sharded(specs, config, sim::Shard_options{shards});
}

} // namespace

sim::Cluster_result run_policy_cell(const Testbed& testbed, std::size_t devices,
                                    bool heterogeneous, const Policy_setup& setup,
                                    std::uint64_t seed, std::size_t shards) {
    Fleet fleet = make_policy_sweep_fleet(testbed, devices, heterogeneous);
    sim::Cluster_config config;
    config.harness.seed = seed ^ 0x8888;
    config.cloud.policy = setup.kind;
    config.cloud.preempt_label_wait = setup.preempt_label_wait;
    return run_cell_engine(fleet.specs, config, shards);
}

std::vector<Sharding_setup> default_sharding_setups() {
    using sim::Placement_kind;
    using sim::Policy_kind;
    return {
        // PR 2 reference points on the undifferentiated pool.
        Sharding_setup{"gpu1_any_priority", 1, Placement_kind::any_free,
                       Policy_kind::priority, Sim_duration{}, 1, 0},
        Sharding_setup{"gpu1_any_fifo_preempt", 1, Placement_kind::any_free,
                       Policy_kind::fifo, Sim_duration{2.0}, 1, 0},
        // Single-GPU variants of the new knobs (affinity still wins warm
        // starts whenever consecutive dispatches come from one device).
        Sharding_setup{"gpu1_affinity_priority", 1, Placement_kind::device_affinity,
                       Policy_kind::priority, Sim_duration{}, 1, 0},
        Sharding_setup{"gpu1_any_staleness", 1, Placement_kind::any_free,
                       Policy_kind::staleness, Sim_duration{}, 1, 0},
        // Sharded: a second server of the same share (the devices-per-GPU
        // axis: N devices now contend on 2 GPUs worth of teacher).
        Sharding_setup{"gpu2_any_priority", 2, Placement_kind::any_free,
                       Policy_kind::priority, Sim_duration{}, 1, 0},
        Sharding_setup{"gpu2_affinity_staleness", 2, Placement_kind::device_affinity,
                       Policy_kind::staleness, Sim_duration{}, 1, 0},
        Sharding_setup{"gpu2_partition1_priority", 2, Placement_kind::kind_partition,
                       Policy_kind::priority, Sim_duration{}, 1, 1},
        Sharding_setup{"gpu2_affinity_staleness_b4", 2, Placement_kind::device_affinity,
                       Policy_kind::staleness, Sim_duration{}, 4, 0},
    };
}

sim::Cluster_result run_sharding_cell(const Testbed& testbed, std::size_t devices,
                                      bool heterogeneous, const Sharding_setup& setup,
                                      std::uint64_t seed, std::size_t shards) {
    Fleet fleet = make_policy_sweep_fleet(testbed, devices, heterogeneous);
    sim::Cluster_config config;
    config.harness.seed = seed ^ 0x8888;
    config.cloud.gpu_count = setup.gpu_count;
    config.cloud.placement = setup.placement;
    config.cloud.policy = setup.policy;
    config.cloud.preempt_label_wait = setup.preempt_label_wait;
    config.cloud.max_batch = setup.max_batch;
    config.cloud.label_reserved_gpus = setup.label_reserved_gpus;
    return run_cell_engine(fleet.specs, config, shards);
}

std::vector<sim::Gpu_profile> make_straggler_profiles(std::size_t gpu_count,
                                                      double straggler_speed,
                                                      Sim_duration mtbf,
                                                      Sim_duration mttr) {
    SHOG_REQUIRE(gpu_count >= 1, "profiles need at least one GPU");
    std::vector<sim::Gpu_profile> profiles(gpu_count);
    for (sim::Gpu_profile& profile : profiles) {
        profile.mtbf = mtbf;
        profile.mttr = mttr;
    }
    profiles.front().speed = straggler_speed;
    return profiles;
}

std::vector<Reliability_setup> default_reliability_setups() {
    using sim::Placement_kind;
    using sim::Policy_kind;
    constexpr Sim_duration never{std::numeric_limits<double>::infinity()};
    return {
        // Healthy 2-GPU reference (identical to the sharded gpu2 cell).
        Reliability_setup{"gpu2_any_healthy", 2, Placement_kind::any_free,
                          Policy_kind::priority, 1.0, never, Sim_duration{10.0}, 0.0,
                          Sim_duration{}, 0},
        // One 4x straggler: index-blind placement keeps feeding it labels.
        Reliability_setup{"gpu2_any_straggler4x", 2, Placement_kind::any_free,
                          Policy_kind::priority, 0.25, never, Sim_duration{10.0}, 0.0,
                          Sim_duration{}, 0},
        // speed_aware sends work to the fast server first...
        Reliability_setup{"gpu2_speed_straggler4x", 2, Placement_kind::speed_aware,
                          Policy_kind::priority, 0.25, never, Sim_duration{10.0}, 0.0,
                          Sim_duration{}, 0},
        // ...and re-queueing rescues labels the straggler still caught.
        Reliability_setup{"gpu2_speed_straggler4x_rq2", 2, Placement_kind::speed_aware,
                          Policy_kind::priority, 0.25, never, Sim_duration{10.0}, 2.0,
                          Sim_duration{}, 0},
        // Failing fleet: every server cycles MTBF 60 s / MTTR 10 s.
        Reliability_setup{"gpu2_speed_failures", 2, Placement_kind::speed_aware,
                          Policy_kind::priority, 1.0, Sim_duration{60.0},
                          Sim_duration{10.0}, 0.0, Sim_duration{}, 0},
        // A failing reserved label server must not deadlock labels.
        Reliability_setup{"gpu2_partition1_failures", 2, Placement_kind::kind_partition,
                          Policy_kind::priority, 1.0, Sim_duration{60.0},
                          Sim_duration{10.0}, 0.0, Sim_duration{}, 1},
    };
}

sim::Cluster_result run_reliability_cell(const Testbed& testbed, std::size_t devices,
                                         bool heterogeneous,
                                         const Reliability_setup& setup,
                                         std::uint64_t seed, std::size_t shards,
                                         sim::Obs_options obs) {
    Fleet fleet = make_policy_sweep_fleet(testbed, devices, heterogeneous);
    sim::Cluster_config config;
    config.obs = obs;
    config.harness.seed = seed ^ 0x8888;
    config.cloud.gpu_count = setup.gpu_count;
    config.cloud.placement = setup.placement;
    config.cloud.policy = setup.policy;
    config.cloud.preempt_label_wait = setup.preempt_label_wait;
    config.cloud.label_reserved_gpus = setup.label_reserved_gpus;
    config.cloud.gpu_profiles = make_straggler_profiles(
        setup.gpu_count, setup.straggler_speed, setup.mtbf, setup.mttr);
    config.cloud.reliability_seed = seed ^ 0xf417;
    config.cloud.straggler_requeue_factor = setup.straggler_requeue_factor;
    return run_cell_engine(fleet.specs, config, shards);
}

} // namespace shog::fleet
