// Fleet testbed: shared construction helpers for multi-device cluster
// experiments (examples and benches). One world and one pretrained
// student/teacher pair serve the whole fleet; each camera gets its own
// track population (distinct stream seed) so devices see different video.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/ams.hpp"
#include "core/shoggoth.hpp"
#include "sim/harness.hpp"
#include "video/stream.hpp"

namespace shog::fleet {

struct Testbed {
    std::vector<std::unique_ptr<video::Video_stream>> streams; ///< one per camera
    std::unique_ptr<models::Detector> pristine;                ///< cloned per device
    std::unique_ptr<models::Detector> teacher;
};

/// Build `cameras` same-world streams plus the pretrained model pair.
/// Preset names: "ua_detrac", "kitti", "waymo".
[[nodiscard]] Testbed make_testbed(const char* preset_name, std::size_t cameras,
                                   std::uint64_t seed, double duration);

/// One runnable fleet: owns the per-device students and strategies backing
/// `specs`. Keep it alive across run_cluster.
struct Fleet {
    std::vector<std::unique_ptr<models::Detector>> students;
    std::vector<std::unique_ptr<sim::Strategy>> strategies;
    std::vector<sim::Device_spec> specs;
};

[[nodiscard]] Fleet make_shoggoth_fleet(const Testbed& testbed, std::size_t devices,
                                        core::Shoggoth_config config = {},
                                        device::Compute_model cloud_device = device::v100());

[[nodiscard]] Fleet make_ams_fleet(const Testbed& testbed, std::size_t devices,
                                   baselines::Ams_config config = {},
                                   device::Compute_model cloud_device = device::v100());

} // namespace shog::fleet
