// Fleet testbed: shared construction helpers for multi-device cluster
// experiments (examples and benches). One world and one pretrained
// student/teacher pair serve the whole fleet; each camera gets its own
// track population (distinct stream seed) so devices see different video.
//
// Supports heterogeneous fleets (mixed edge accelerators and link profiles,
// including straggler devices), mixed-strategy fleets (Shoggoth + AMS, so
// AMS-style cloud fine-tune jobs contend with labeling), and a correlated
// cluster-drift scenario where every camera crosses day/night at the same
// wall-clock instant and the upload spike hits the cloud at once.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "baselines/ams.hpp"
#include "core/shoggoth.hpp"
#include "sim/harness.hpp"
#include "video/stream.hpp"

namespace shog::fleet {

/// Threading: one Testbed is shared *read-only* across parallel sweep
/// cells (sim::run_sweep workers call run_policy_cell / run_sharding_cell
/// / run_reliability_cell against it concurrently). That is sound because
/// every access from a cell is const and genuinely stateless —
/// Video_stream::frame_at(i) is pure random access on (seed, index), and
/// `pristine` is only cloned — with ONE exception: Detector::detect() runs
/// through mutable network state, so `teacher` must never be used from a
/// cell directly. fleet::Fleet deep-clones it per cell instead (see below).
/// Anything added to this struct must either stay const-and-stateless
/// under concurrent cells or get the same clone-per-cell treatment.
struct Testbed {
    std::vector<std::unique_ptr<video::Video_stream>> streams; ///< one per camera
    std::unique_ptr<models::Detector> pristine;                ///< cloned per device
    std::unique_ptr<models::Detector> teacher;
};

/// Build `cameras` same-world streams plus the pretrained model pair.
/// Preset names: "ua_detrac", "kitti", "waymo".
[[nodiscard]] Testbed make_testbed(const char* preset_name, std::size_t cameras,
                                   std::uint64_t seed, double duration);

/// Like make_testbed, but every camera runs one synchronized sharp
/// day->night->day schedule (short ramps): the whole fleet's controllers
/// detect the break simultaneously, raise their sampling rates together and
/// the correlated upload-batch spike lands on the shared cloud at once.
[[nodiscard]] Testbed make_correlated_drift_testbed(const char* preset_name,
                                                    std::size_t cameras, std::uint64_t seed,
                                                    double duration);

/// One class of edge hardware in a heterogeneous fleet.
struct Edge_class {
    const char* name;
    device::Compute_model device;
    netsim::Link_config link;
    double inference_gflops = 5.2;
};

/// The default three-way mix: a TX2-class device on a healthy link, a
/// mid-tier device on a slower link, and a straggler (weak accelerator,
/// thin high-latency uplink) — cf. SurveilEdge-style mixed deployments.
[[nodiscard]] std::vector<Edge_class> default_edge_classes();

[[nodiscard]] sim::Device_hardware hardware_of(const Edge_class& edge_class);

/// One runnable fleet: owns the per-device students and strategies backing
/// `specs`. Keep it alive across run_cluster.
///
/// The fleet also owns a deep copy of the testbed's teacher: detect() runs
/// through mutable network state, so sweep cells sharing one teacher would
/// race when sim::run_sweep runs them on parallel workers. Teacher
/// detections are a pure function of weights and frame (the per-frame RNG
/// reseeds from the detector config), so the clone is output-identical to
/// sharing — cells stay bit-identical to the sequential path.
struct Fleet {
    std::unique_ptr<models::Detector> teacher;
    std::vector<std::unique_ptr<models::Detector>> students;
    std::vector<std::unique_ptr<sim::Strategy>> strategies;
    std::vector<sim::Device_spec> specs;
};

/// Make the fleet heterogeneous: device i gets classes[i % classes.size()].
/// This overrides the *harness-side* hardware (fps, link, lambda). A
/// strategy that prices edge training itself (Shoggoth's Adaptive_trainer)
/// is fixed at construction — build it with the matching edge device, as
/// make_policy_sweep_fleet does, or straggler training runs at TX2 speed.
void assign_heterogeneous_hardware(Fleet& fleet,
                                   const std::vector<Edge_class>& classes =
                                       default_edge_classes());

[[nodiscard]] Fleet make_shoggoth_fleet(const Testbed& testbed, std::size_t devices,
                                        core::Shoggoth_config config = {},
                                        device::Compute_model cloud_device = device::v100());

[[nodiscard]] Fleet make_ams_fleet(const Testbed& testbed, std::size_t devices,
                                   baselines::Ams_config config = {},
                                   device::Compute_model cloud_device = device::v100());

/// Mixed-strategy fleet: devices [0, shoggoth_devices) run Shoggoth, the
/// next ams_devices run AMS — their whole-model cloud fine-tunes are the
/// train jobs that contend with (and under FIFO starve) labeling.
[[nodiscard]] Fleet make_mixed_fleet(const Testbed& testbed, std::size_t shoggoth_devices,
                                     std::size_t ams_devices,
                                     core::Shoggoth_config shoggoth_config = {},
                                     baselines::Ams_config ams_config = {},
                                     device::Compute_model cloud_device = device::v100());

/// One cell of the scheduling-policy sweep bench_fleet and fleet_scaling
/// share: a policy plus its preemption bound.
struct Policy_setup {
    const char* label;
    sim::Policy_kind kind;
    Sim_duration preempt_label_wait;
};

/// fifo / priority / fair_share / fifo_preempt (2 s wait bound).
[[nodiscard]] std::vector<Policy_setup> default_policy_setups();

/// One cell of the multi-GPU sharding sweep: how many GPU servers the cloud
/// share is split into, which server a dispatch lands on (placement), the
/// dispatch-order policy, and the cross-device teacher-batching knob. At
/// {1 GPU, any_free, max_batch 1} a cell reproduces the corresponding
/// Policy_setup cell bit-identically.
struct Sharding_setup {
    const char* label;
    std::size_t gpu_count = 1;
    sim::Placement_kind placement = sim::Placement_kind::any_free;
    sim::Policy_kind policy = sim::Policy_kind::priority;
    Sim_duration preempt_label_wait;
    std::size_t max_batch = 1;
    std::size_t label_reserved_gpus = 0; ///< kind_partition only
};

/// The curated comparison set fleet_scaling prints: the PR 2 bests
/// (priority, fifo+preempt) on the undifferentiated pool, then staleness /
/// device_affinity / kind_partition shards at 1 and 2 GPUs.
[[nodiscard]] std::vector<Sharding_setup> default_sharding_setups();

/// Run one sharding cell on the same contended operating point (and seed)
/// as run_policy_cell: the half-Shoggoth half-AMS sweep fleet against the
/// scaled-down cloud share, now split into `setup.gpu_count` servers.
/// `shards` > 0 routes the cell through sim::run_cluster_sharded with that
/// many device shards (byte-identical output); 0 — the default, a no-op —
/// keeps the sequential engine.
[[nodiscard]] sim::Cluster_result run_sharding_cell(const Testbed& testbed,
                                                    std::size_t devices, bool heterogeneous,
                                                    const Sharding_setup& setup,
                                                    std::uint64_t seed,
                                                    std::size_t shards = 0);

/// One cell of the cloud-reliability sweep: the sharded cloud with
/// heterogeneous, unreliable servers. `straggler_speed` < 1 makes the
/// lowest-index server a straggler (e.g. 0.25 = 4x slower; see
/// make_straggler_profiles for why the slow shard gets the low index); a
/// finite `mtbf` puts every server on an MTBF/MTTR failure/repair cycle.
/// With the profile defaults (speed 1, MTBF = infinity, factor 0) a cell
/// reproduces the corresponding Sharding_setup cell bit-identically.
struct Reliability_setup {
    const char* label;
    std::size_t gpu_count = 2;
    sim::Placement_kind placement = sim::Placement_kind::speed_aware;
    sim::Policy_kind policy = sim::Policy_kind::priority;
    /// Speed multiplier of server 0; the rest run at 1.0.
    double straggler_speed = 1.0;
    /// Applied to every server. Infinity = no failures.
    Sim_duration mtbf{std::numeric_limits<double>::infinity()};
    Sim_duration mttr{10.0};
    double straggler_requeue_factor = 0.0; ///< Cloud_config knob; 0 = off
    Sim_duration preempt_label_wait;
    std::size_t label_reserved_gpus = 0; ///< kind_partition only
};

/// Per-server profiles for a cloud whose *first* server is a straggler
/// (speed `straggler_speed`) and whose every server fails at `mtbf`/`mttr`.
/// The straggler sits at the lowest index — exactly where an index-ordered
/// placement lands jobs first — so any_free pays the worst case while
/// speed_aware routes around it.
[[nodiscard]] std::vector<sim::Gpu_profile> make_straggler_profiles(
    std::size_t gpu_count, double straggler_speed,
    Sim_duration mtbf = Sim_duration{std::numeric_limits<double>::infinity()},
    Sim_duration mttr = Sim_duration{10.0});

/// The curated reliability comparison fleet_scaling prints: healthy
/// reference, one 4x straggler under index-blind vs speed-aware placement
/// (with and without straggler re-queueing), and failing fleets including
/// the kind_partition reserved-server case.
[[nodiscard]] std::vector<Reliability_setup> default_reliability_setups();

/// Run one reliability cell on the same contended operating point (and
/// seed) as run_sharding_cell; the failure process seeds off `seed` so
/// cells replay bit-identically. `shards` as in run_sharding_cell. `obs`
/// passes a trace sink / metrics registry into the cell's Cluster_config
/// (the default — all null — is the zero-overhead dark path).
[[nodiscard]] sim::Cluster_result run_reliability_cell(const Testbed& testbed,
                                                       std::size_t devices,
                                                       bool heterogeneous,
                                                       const Reliability_setup& setup,
                                                       std::uint64_t seed,
                                                       std::size_t shards = 0,
                                                       sim::Obs_options obs = {});

/// The contended operating point the policy sweep runs on: a half-Shoggoth
/// half-AMS fleet (fine-tune cadence halved so train jobs land within short
/// runs) against a scaled-down cloud share — the many-devices-per-GPU regime
/// where dispatch order decides whether labeling starves behind training.
[[nodiscard]] Fleet make_policy_sweep_fleet(const Testbed& testbed, std::size_t devices,
                                            bool heterogeneous);

/// City-scale variant of make_policy_sweep_fleet: `devices` may exceed the
/// testbed's camera count — device i watches stream i mod cameras, so the
/// expensive per-camera track populations are built once and shared while
/// every device keeps its own student, strategy state, RNG substream and
/// (optionally heterogeneous) hardware. Used by the fleet_scale bench to
/// push N to 10^4 without 10^4 stream constructions.
[[nodiscard]] Fleet make_scale_fleet(const Testbed& testbed, std::size_t devices,
                                     bool heterogeneous);

/// Run one sweep cell: the sweep fleet under `setup`, seeded like the
/// scaling runs (bench_fleet and fleet_scaling share this so their numbers
/// stay comparable). `shards` as in run_sharding_cell.
[[nodiscard]] sim::Cluster_result run_policy_cell(const Testbed& testbed,
                                                  std::size_t devices, bool heterogeneous,
                                                  const Policy_setup& setup,
                                                  std::uint64_t seed,
                                                  std::size_t shards = 0);

} // namespace shog::fleet
