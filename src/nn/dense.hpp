// Fully-connected layer: y = x W + b, with He-style initialization.
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace shog::nn {

class Dense final : public Layer {
public:
    Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor infer(const Tensor& input) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }
    [[nodiscard]] Flops flops(std::size_t batch) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;
    [[nodiscard]] std::size_t output_width() const override { return out_features_; }

    [[nodiscard]] std::size_t in_features() const noexcept { return in_features_; }
    [[nodiscard]] std::size_t out_features() const noexcept { return out_features_; }
    [[nodiscard]] Parameter& weight() noexcept { return weight_; }
    [[nodiscard]] Parameter& bias() noexcept { return bias_; }

private:
    Dense(const Dense& other); // used by clone()

    std::size_t in_features_;
    std::size_t out_features_;
    Parameter weight_;
    Parameter bias_;
    Tensor cached_input_;
};

} // namespace shog::nn
