// Layer abstraction for the from-scratch NN substrate.
//
// Design notes for the Shoggoth use-case:
//  - Each layer caches what it needs during forward() and consumes the cache
//    in backward(); param gradients accumulate until zero_grad().
//  - Parameters carry a per-parameter lr_scale so the adaptive trainer can
//    implement the paper's "learning-rate-to-zero after the first batch"
//    front-layer policy without touching the optimizer.
//  - flops() powers the device cost models that turn per-layer work into
//    Jetson-TX2 / V100 seconds (Table II timings, Fig. 4 fps).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace shog::nn {

/// A trainable tensor plus its gradient accumulator.
struct Parameter {
    std::string name;
    Tensor value;
    Tensor grad;
    /// Multiplies the optimizer learning rate; 0 freezes the parameter.
    double lr_scale = 1.0;

    Parameter(std::string n, Tensor v)
        : name{std::move(n)}, value{std::move(v)}, grad{value.shape()} {}

    void zero_grad() noexcept { grad.fill(0.0); }
};

/// Forward + backward FLOP counts for one pass over a batch.
struct Flops {
    double forward = 0.0;
    double backward = 0.0;

    [[nodiscard]] double total() const noexcept { return forward + backward; }
    Flops& operator+=(const Flops& rhs) noexcept {
        forward += rhs.forward;
        backward += rhs.backward;
        return *this;
    }
};

class Layer {
public:
    virtual ~Layer() = default;

    Layer(const Layer&) = delete;
    Layer& operator=(const Layer&) = delete;

    /// Forward pass. `training` selects batch-statistics behaviour in
    /// normalization layers.
    [[nodiscard]] virtual Tensor forward(const Tensor& input, bool training) = 0;

    /// Pure-inference forward: numerically identical to
    /// forward(input, false) but with no backward caches and no cache
    /// allocations/copies. The default delegates to forward(); hot layers
    /// override it with a cache-free path (same per-element operation
    /// order, so outputs stay bit-identical — pinned by the nn tests).
    /// Must NOT be followed by backward().
    [[nodiscard]] virtual Tensor infer(const Tensor& input) { return forward(input, false); }

    /// Backward pass: accumulates parameter gradients, returns gradient with
    /// respect to the forward input. Must be called after forward().
    [[nodiscard]] virtual Tensor backward(const Tensor& grad_output) = 0;

    /// Mutable views of the trainable parameters (empty for stateless layers).
    [[nodiscard]] virtual std::vector<Parameter*> parameters() { return {}; }

    [[nodiscard]] virtual std::size_t parameter_count() const {
        std::size_t n = 0;
        for (const Parameter* p : const_cast<Layer*>(this)->parameters()) {
            n += p->value.size();
        }
        return n;
    }

    /// FLOPs for a batch of the given size.
    [[nodiscard]] virtual Flops flops(std::size_t batch) const = 0;

    /// Deep copy (used by the AMS baseline to fine-tune a cloud-side clone).
    [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

    /// Feature width of the layer output (0 when shape-preserving).
    [[nodiscard]] virtual std::size_t output_width() const { return 0; }

    void zero_grad() {
        for (Parameter* p : parameters()) {
            p->zero_grad();
        }
    }

    /// Set the lr multiplier on all parameters of this layer.
    void set_lr_scale(double scale) {
        for (Parameter* p : parameters()) {
            p->lr_scale = scale;
        }
    }

protected:
    Layer() = default;
    Layer(Layer&&) = default;
    Layer& operator=(Layer&&) = default;
};

} // namespace shog::nn
