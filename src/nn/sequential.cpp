#include "nn/sequential.hpp"

#include "nn/batchnorm.hpp"

namespace shog::nn {

std::size_t Sequential::add(std::string stage_name_in, std::unique_ptr<Layer> layer_in) {
    SHOG_REQUIRE(layer_in != nullptr, "cannot add a null layer");
    SHOG_REQUIRE(!stage_name_in.empty(), "stage name must be non-empty");
    entries_.push_back(Entry{std::move(stage_name_in), std::move(layer_in)});
    return entries_.size() - 1;
}

Layer& Sequential::layer(std::size_t i) {
    SHOG_REQUIRE(i < entries_.size(), "layer index out of range");
    return *entries_[i].layer;
}

const std::string& Sequential::stage_name(std::size_t i) const {
    SHOG_REQUIRE(i < entries_.size(), "layer index out of range");
    return entries_[i].name;
}

std::size_t Sequential::index_of(const std::string& name) const {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].name == name) {
            return i;
        }
    }
    SHOG_REQUIRE(false, "no stage named '" + name + "'");
    return 0; // unreachable
}

bool Sequential::has_stage(const std::string& name) const noexcept {
    for (const Entry& e : entries_) {
        if (e.name == name) {
            return true;
        }
    }
    return false;
}

void Sequential::check_range(std::size_t begin, std::size_t end) const {
    SHOG_REQUIRE(begin <= end && end <= entries_.size(), "invalid layer range");
}

Tensor Sequential::forward(const Tensor& input, bool training) {
    return forward_range(0, entries_.size(), input, training);
}

Tensor Sequential::infer(const Tensor& input) {
    Tensor x = input;
    for (const Entry& entry : entries_) {
        x = entry.layer->infer(x);
    }
    return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
    return backward_range(0, entries_.size(), grad_output);
}

Tensor Sequential::forward_range(std::size_t begin, std::size_t end, const Tensor& input,
                                 bool training) {
    check_range(begin, end);
    Tensor x = input;
    for (std::size_t i = begin; i < end; ++i) {
        x = entries_[i].layer->forward(x, training);
    }
    return x;
}

Tensor Sequential::backward_range(std::size_t begin, std::size_t end, const Tensor& grad_output) {
    check_range(begin, end);
    Tensor g = grad_output;
    for (std::size_t i = end; i > begin; --i) {
        g = entries_[i - 1].layer->backward(g);
    }
    return g;
}

std::vector<Parameter*> Sequential::parameters() {
    return parameters_range(0, entries_.size());
}

std::vector<Parameter*> Sequential::parameters_range(std::size_t begin, std::size_t end) {
    check_range(begin, end);
    std::vector<Parameter*> out;
    for (std::size_t i = begin; i < end; ++i) {
        for (Parameter* p : entries_[i].layer->parameters()) {
            out.push_back(p);
        }
    }
    return out;
}

Flops Sequential::flops(std::size_t batch) const {
    return flops_range(0, entries_.size(), batch);
}

Flops Sequential::flops_range(std::size_t begin, std::size_t end, std::size_t batch) const {
    check_range(begin, end);
    Flops total;
    for (std::size_t i = begin; i < end; ++i) {
        total += entries_[i].layer->flops(batch);
    }
    return total;
}

void Sequential::set_lr_scale_range(std::size_t begin, std::size_t end, double scale) {
    check_range(begin, end);
    for (std::size_t i = begin; i < end; ++i) {
        entries_[i].layer->set_lr_scale(scale);
    }
}

void Sequential::set_update_running_stats_range(std::size_t begin, std::size_t end, bool update) {
    check_range(begin, end);
    for (std::size_t i = begin; i < end; ++i) {
        if (auto* bn = dynamic_cast<Batch_norm*>(entries_[i].layer.get())) {
            bn->set_update_running_stats(update);
        } else if (auto* brn = dynamic_cast<Batch_renorm*>(entries_[i].layer.get())) {
            brn->set_update_running_stats(update);
        }
    }
}

std::unique_ptr<Layer> Sequential::clone() const {
    auto copy = std::make_unique<Sequential>();
    for (const Entry& e : entries_) {
        copy->add(e.name, e.layer->clone());
    }
    return copy;
}

std::size_t Sequential::output_width() const {
    for (std::size_t i = entries_.size(); i > 0; --i) {
        const std::size_t w = entries_[i - 1].layer->output_width();
        if (w > 0) {
            return w;
        }
    }
    return 0;
}

std::vector<double> Sequential::state_vector() const {
    std::vector<double> state;
    for (const Entry& e : entries_) {
        for (Parameter* p : e.layer->parameters()) {
            const auto& storage = p->value.storage();
            state.insert(state.end(), storage.begin(), storage.end());
        }
        // Normalization running stats are part of the deployable model.
        if (const auto* bn = dynamic_cast<const Batch_norm*>(e.layer.get())) {
            const auto& m = bn->running_mean().storage();
            const auto& v = bn->running_var().storage();
            state.insert(state.end(), m.begin(), m.end());
            state.insert(state.end(), v.begin(), v.end());
        } else if (const auto* brn = dynamic_cast<const Batch_renorm*>(e.layer.get())) {
            const auto& m = brn->running_mean().storage();
            const auto& v = brn->running_var().storage();
            state.insert(state.end(), m.begin(), m.end());
            state.insert(state.end(), v.begin(), v.end());
        }
    }
    return state;
}

void Sequential::load_state_vector(const std::vector<double>& state) {
    std::size_t offset = 0;
    auto take = [&](Tensor& dst) {
        SHOG_REQUIRE(offset + dst.size() <= state.size(), "state vector too short");
        for (std::size_t i = 0; i < dst.size(); ++i) {
            dst.at(i) = state[offset + i];
        }
        offset += dst.size();
    };
    for (Entry& e : entries_) {
        for (Parameter* p : e.layer->parameters()) {
            take(p->value);
        }
        if (auto* bn = dynamic_cast<Batch_norm*>(e.layer.get())) {
            take(const_cast<Tensor&>(bn->running_mean()));
            take(const_cast<Tensor&>(bn->running_var()));
        } else if (auto* brn = dynamic_cast<Batch_renorm*>(e.layer.get())) {
            take(const_cast<Tensor&>(brn->running_mean()));
            take(const_cast<Tensor&>(brn->running_var()));
        }
    }
    SHOG_REQUIRE(offset == state.size(), "state vector too long");
}

} // namespace shog::nn
