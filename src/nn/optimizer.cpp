#include "nn/optimizer.hpp"

#include "common/require.hpp"

namespace shog::nn {

Sgd::Sgd(Sgd_config config) : config_{config} {
    SHOG_REQUIRE(config.learning_rate > 0.0, "learning rate must be positive");
    SHOG_REQUIRE(config.momentum >= 0.0 && config.momentum < 1.0, "momentum must lie in [0, 1)");
    SHOG_REQUIRE(config.weight_decay >= 0.0, "weight decay must be non-negative");
}

void Sgd::set_learning_rate(double lr) {
    SHOG_REQUIRE(lr > 0.0, "learning rate must be positive");
    config_.learning_rate = lr;
}

void Sgd::step(const std::vector<Parameter*>& params) {
    for (Parameter* p : params) {
        SHOG_REQUIRE(p != nullptr, "null parameter handed to optimizer");
        if (p->lr_scale == 0.0) {
            continue;
        }
        const double lr = config_.learning_rate * p->lr_scale;
        auto [it, inserted] = velocity_.try_emplace(p, p->value.shape());
        Tensor& vel = it->second;
        SHOG_CHECK(vel.shape() == p->value.shape(), "optimizer state shape drift");
        for (std::size_t i = 0; i < p->value.size(); ++i) {
            double g = p->grad.at(i);
            if (config_.weight_decay > 0.0) {
                g += config_.weight_decay * p->value.at(i);
            }
            vel.at(i) = config_.momentum * vel.at(i) - lr * g;
            p->value.at(i) += vel.at(i);
        }
    }
}

} // namespace shog::nn
