#include "nn/gradcheck.hpp"

#include <cmath>

#include "common/require.hpp"

namespace shog::nn {

namespace {

double probe_loss(Layer& layer, const Tensor& input, const Tensor& probe, bool training) {
    Tensor out = layer.forward(input, training);
    SHOG_REQUIRE(out.shape() == probe.shape(), "probe shape mismatch");
    double loss = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        loss += out.at(i) * probe.at(i);
    }
    return loss;
}

} // namespace

Gradcheck_report gradcheck_layer(Layer& layer, const Tensor& input, Rng& rng, bool training,
                                 double step) {
    // Shape discovery pass + analytic gradients.
    Tensor out = layer.forward(input, training);
    Tensor probe = Tensor::randn(out.shape(), rng);

    layer.zero_grad();
    out = layer.forward(input, training);
    (void)out;
    Tensor analytic_input_grad = layer.backward(probe);

    // Snapshot analytic parameter grads.
    const std::vector<Parameter*> params = layer.parameters();
    std::vector<Tensor> analytic_param_grads;
    analytic_param_grads.reserve(params.size());
    for (const Parameter* p : params) {
        analytic_param_grads.push_back(p->grad);
    }

    Gradcheck_report report;

    // Input gradient by central differences.
    Tensor x = input;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double saved = x.at(i);
        x.at(i) = saved + step;
        const double plus = probe_loss(layer, x, probe, training);
        x.at(i) = saved - step;
        const double minus = probe_loss(layer, x, probe, training);
        x.at(i) = saved;
        const double numeric = (plus - minus) / (2.0 * step);
        report.max_input_grad_error =
            std::max(report.max_input_grad_error, std::abs(numeric - analytic_input_grad.at(i)));
    }

    // Parameter gradients by central differences.
    std::size_t param_index = 0;
    for (Parameter* p : layer.parameters()) {
        for (std::size_t i = 0; i < p->value.size(); ++i) {
            const double saved = p->value.at(i);
            p->value.at(i) = saved + step;
            const double plus = probe_loss(layer, input, probe, training);
            p->value.at(i) = saved - step;
            const double minus = probe_loss(layer, input, probe, training);
            p->value.at(i) = saved;
            const double numeric = (plus - minus) / (2.0 * step);
            report.max_param_grad_error =
                std::max(report.max_param_grad_error,
                         std::abs(numeric - analytic_param_grads[param_index].at(i)));
        }
        ++param_index;
    }
    return report;
}

} // namespace shog::nn
