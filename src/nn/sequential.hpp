// Sequential container with *named stages* and partial (range) execution.
//
// Latent replay (paper §III-B, Fig. 3) needs to run the network in two
// halves around the replay layer:
//   - fresh samples:   input --front layers--> replay activations
//   - replay samples:  injected directly at the replay layer
//   - concatenated:    replay layer --rear layers--> heads
// forward_range/backward_range provide exactly that. Stage names ("stem",
// "conv2_x", ..., "conv5_4", "pool") let callers address the cut point the
// same way the paper's ablation does.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace shog::nn {

class Sequential final : public Layer {
public:
    Sequential() = default;
    Sequential(Sequential&&) = default;
    Sequential& operator=(Sequential&&) = default;

    /// Append a layer under a stage name. Names need not be unique; the first
    /// match wins for index_of(). Returns the layer index.
    std::size_t add(std::string stage_name, std::unique_ptr<Layer> layer);

    [[nodiscard]] std::size_t layer_count() const noexcept { return entries_.size(); }
    [[nodiscard]] Layer& layer(std::size_t i);
    [[nodiscard]] const std::string& stage_name(std::size_t i) const;

    /// Index of the first layer whose stage name matches; throws if absent.
    [[nodiscard]] std::size_t index_of(const std::string& stage_name) const;
    [[nodiscard]] bool has_stage(const std::string& stage_name) const noexcept;

    // -- full-network Layer interface -----------------------------------------

    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor infer(const Tensor& input) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::vector<Parameter*> parameters() override;
    [[nodiscard]] Flops flops(std::size_t batch) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;
    [[nodiscard]] std::size_t output_width() const override;

    // -- partial execution -----------------------------------------------------

    /// Run layers [begin, end) on `input`. end may equal layer_count().
    [[nodiscard]] Tensor forward_range(std::size_t begin, std::size_t end, const Tensor& input,
                                       bool training);

    /// Backpropagate through layers [begin, end) (which must have just run a
    /// forward over the same row count); returns the gradient at `begin`.
    [[nodiscard]] Tensor backward_range(std::size_t begin, std::size_t end,
                                        const Tensor& grad_output);

    /// Parameters of layers [begin, end).
    [[nodiscard]] std::vector<Parameter*> parameters_range(std::size_t begin, std::size_t end);

    /// FLOPs of layers [begin, end) at the given batch size.
    [[nodiscard]] Flops flops_range(std::size_t begin, std::size_t end,
                                    std::size_t batch) const;

    /// Set the lr multiplier for all parameters of layers [begin, end).
    void set_lr_scale_range(std::size_t begin, std::size_t end, double scale);

    /// Toggle running-statistic updates on every normalization layer in
    /// [begin, end).
    void set_update_running_stats_range(std::size_t begin, std::size_t end, bool update);

    // -- weight serialization ---------------------------------------------------

    /// Flattened copy of all parameter values (optimizer state excluded).
    [[nodiscard]] std::vector<double> state_vector() const;
    /// Restore from state_vector() output; sizes must match exactly.
    void load_state_vector(const std::vector<double>& state);

private:
    struct Entry {
        std::string name;
        std::unique_ptr<Layer> layer;
    };
    std::vector<Entry> entries_;

    void check_range(std::size_t begin, std::size_t end) const;
};

} // namespace shog::nn
