// Finite-difference gradient verification used by the test suite.
#pragma once

#include <functional>

#include "nn/layer.hpp"

namespace shog::nn {

struct Gradcheck_report {
    double max_input_grad_error = 0.0;
    double max_param_grad_error = 0.0;

    [[nodiscard]] bool ok(double tolerance) const noexcept {
        return max_input_grad_error <= tolerance && max_param_grad_error <= tolerance;
    }
};

/// Verify a layer's backward() against central finite differences of a scalar
/// loss L = sum(forward(x) * probe) where `probe` is a fixed random tensor.
/// Checks both d L / d input and d L / d parameters.
[[nodiscard]] Gradcheck_report gradcheck_layer(Layer& layer, const Tensor& input, Rng& rng,
                                               bool training = true, double step = 1e-5);

} // namespace shog::nn
