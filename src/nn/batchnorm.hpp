// Batch Normalization and Batch Renormalization (Ioffe, NeurIPS 2017).
//
// Shoggoth's training control (paper §III-B) relies on two properties that
// these layers expose explicitly:
//  - running statistics can keep adapting even when gamma/beta are frozen
//    ("freeze the weights ... while making the BN moments adapt freely");
//  - BRN corrects the train/inference mismatch of small mini-batches via the
//    clamped r/d correction, "making learning with fine-grained batches
//    faster and more robust".
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace shog::nn {

/// Classic batch normalization over features (rank-2 input: batch x features).
class Batch_norm final : public Layer {
public:
    Batch_norm(std::size_t features, double momentum = 0.1, double epsilon = 1e-5);

    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor infer(const Tensor& input) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
    [[nodiscard]] Flops flops(std::size_t batch) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;
    [[nodiscard]] std::size_t output_width() const override { return features_; }

    /// When false, running statistics are not updated during training
    /// (the "completely freezing" ablation).
    void set_update_running_stats(bool update) noexcept { update_running_stats_ = update; }
    [[nodiscard]] bool update_running_stats() const noexcept { return update_running_stats_; }

    [[nodiscard]] const Tensor& running_mean() const noexcept { return running_mean_; }
    [[nodiscard]] const Tensor& running_var() const noexcept { return running_var_; }
    [[nodiscard]] std::size_t features() const noexcept { return features_; }

protected:
    std::size_t features_;
    double momentum_;
    double epsilon_;
    bool update_running_stats_ = true;
    Parameter gamma_;
    Parameter beta_;
    Tensor running_mean_;
    Tensor running_var_;

    // forward cache
    Tensor cached_xhat_;
    Tensor cached_centered_;
    Tensor cached_inv_std_;
    bool cached_training_ = false;

    void update_stats(const Tensor& batch_mean, const Tensor& batch_var) noexcept;
};

/// Batch Renormalization: train-time activations are corrected toward the
/// inference statistics via r = clamp(sigma_B / sigma, 1/r_max, r_max) and
/// d = clamp((mu_B - mu)/sigma, -d_max, d_max), with r and d treated as
/// constants in the backward pass.
class Batch_renorm final : public Layer {
public:
    Batch_renorm(std::size_t features, double momentum = 0.05, double epsilon = 1e-5,
                 double r_max = 3.0, double d_max = 5.0);

    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor infer(const Tensor& input) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::vector<Parameter*> parameters() override { return {&gamma_, &beta_}; }
    [[nodiscard]] Flops flops(std::size_t batch) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override;
    [[nodiscard]] std::size_t output_width() const override { return features_; }

    void set_update_running_stats(bool update) noexcept { update_running_stats_ = update; }
    [[nodiscard]] bool update_running_stats() const noexcept { return update_running_stats_; }

    /// Running-statistics momentum. The adaptive trainer slows the *front*
    /// layers' statistics during online adaptation so that latent-replay
    /// activations age negligibly (paper §III-B).
    void set_momentum(double momentum);
    [[nodiscard]] double momentum() const noexcept { return momentum_; }

    /// Relaxation schedule knobs (r_max=1, d_max=0 degenerates to plain BN
    /// train behaviour pinned to running stats).
    void set_clamps(double r_max, double d_max);
    [[nodiscard]] double r_max() const noexcept { return r_max_; }
    [[nodiscard]] double d_max() const noexcept { return d_max_; }

    [[nodiscard]] const Tensor& running_mean() const noexcept { return running_mean_; }
    [[nodiscard]] const Tensor& running_var() const noexcept { return running_var_; }
    [[nodiscard]] std::size_t features() const noexcept { return features_; }

private:
    std::size_t features_;
    double momentum_;
    double epsilon_;
    double r_max_;
    double d_max_;
    bool update_running_stats_ = true;
    Parameter gamma_;
    Parameter beta_;
    Tensor running_mean_;
    Tensor running_var_;

    // forward cache
    Tensor cached_xhat_;
    Tensor cached_centered_;
    Tensor cached_inv_std_;
    Tensor cached_r_;
    bool cached_training_ = false;
};

} // namespace shog::nn
