// Stateless activation layers.
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace shog::nn {

class Relu final : public Layer {
public:
    Relu() = default;

    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor infer(const Tensor& input) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] Flops flops(std::size_t batch) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<Relu>();
    }

private:
    Tensor mask_;
    std::size_t width_ = 0;
};

/// Leaky ReLU with fixed negative slope (used by the detection heads, whose
/// score margins benefit from non-dying gradients during online training).
class Leaky_relu final : public Layer {
public:
    explicit Leaky_relu(double slope = 0.1);

    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor infer(const Tensor& input) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] Flops flops(std::size_t batch) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<Leaky_relu>(slope_);
    }

private:
    double slope_;
    Tensor cached_input_;
    std::size_t width_ = 0;
};

/// Hyperbolic tangent (used by the box-refinement head to bound offsets).
class Tanh final : public Layer {
public:
    Tanh() = default;

    [[nodiscard]] Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor infer(const Tensor& input) override;
    [[nodiscard]] Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] Flops flops(std::size_t batch) const override;
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<Tanh>();
    }

private:
    Tensor cached_output_;
    std::size_t width_ = 0;
};

} // namespace shog::nn
