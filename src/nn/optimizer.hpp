// Mini-batch SGD with momentum and weight decay. Honors per-parameter
// lr_scale so the adaptive trainer can freeze front layers by scaling their
// learning rate to zero (paper §III-B "Training Control").
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/layer.hpp"

namespace shog::nn {

struct Sgd_config {
    double learning_rate = 0.01;
    double momentum = 0.9;
    double weight_decay = 0.0;
};

class Sgd {
public:
    explicit Sgd(Sgd_config config);

    /// Apply one update step to the given parameters using their accumulated
    /// gradients, then leave gradients untouched (callers zero them).
    void step(const std::vector<Parameter*>& params);

    [[nodiscard]] const Sgd_config& config() const noexcept { return config_; }
    void set_learning_rate(double lr);

    /// Drop accumulated momentum (used when swapping models in/out).
    void reset_state() noexcept { velocity_.clear(); }

private:
    Sgd_config config_;
    /// Per-parameter momentum, keyed by parameter *address*. Pointer keys
    /// are deterministic here only because the map is lookup-only: step()
    /// walks the caller's params vector (stable order) and does
    /// try_emplace/find per entry; nothing ever iterates the map or sorts
    /// by key, so allocator address layout cannot reach the weights.
    /// tests/test_nn_training.cpp pins two identical runs to bit-identical
    /// weights; the lint (rule ptr-key) rejects any future iteration.
    std::unordered_map<const Parameter*, Tensor> velocity_; // shog-lint: lookup-only
};

} // namespace shog::nn
