// Loss functions used by the detector training: softmax cross-entropy for
// the class head (background = class 0, matching Eq. 1's positive/negative
// labeling), and smooth-L1 for the box-refinement head.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace shog::nn {

struct Loss_result {
    double value = 0.0; ///< mean loss over the batch
    Tensor grad;        ///< gradient w.r.t. the loss input (already / batch)
};

/// Row-wise softmax of logits.
[[nodiscard]] Tensor softmax(const Tensor& logits);

/// Mean softmax cross-entropy of `logits` [batch x classes] against integer
/// `labels`. Optional per-row weights (defaults to 1); weights rescale both
/// the loss and the gradient.
[[nodiscard]] Loss_result softmax_cross_entropy(const Tensor& logits,
                                                const std::vector<std::size_t>& labels,
                                                const std::vector<double>& row_weights = {});

/// Mean smooth-L1 (Huber, delta=1) between predictions and targets
/// [batch x dims], with a per-row mask (rows with mask 0 contribute nothing;
/// typically background rows have no box target).
[[nodiscard]] Loss_result smooth_l1(const Tensor& prediction, const Tensor& target,
                                    const std::vector<double>& row_mask);

} // namespace shog::nn
