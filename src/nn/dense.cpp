#include "nn/dense.hpp"

#include <cmath>

namespace shog::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_features_{in_features},
      out_features_{out_features},
      weight_{"weight", Tensor::randn({in_features, out_features}, rng, 0.0,
                                      std::sqrt(2.0 / static_cast<double>(in_features)))},
      bias_{"bias", Tensor{std::vector<std::size_t>{out_features}}} {
    SHOG_REQUIRE(in_features > 0 && out_features > 0, "Dense needs positive dimensions");
}

Dense::Dense(const Dense& other)
    : in_features_{other.in_features_},
      out_features_{other.out_features_},
      weight_{other.weight_.name, other.weight_.value},
      bias_{other.bias_.name, other.bias_.value} {
    weight_.lr_scale = other.weight_.lr_scale;
    bias_.lr_scale = other.bias_.lr_scale;
}

Tensor Dense::forward(const Tensor& input, bool /*training*/) {
    SHOG_REQUIRE(input.rank() == 2 && input.cols() == in_features_,
                 "Dense input width mismatch");
    cached_input_ = input;
    Tensor out = matmul(input, weight_.value);
    out.add_row_vector(bias_.value);
    return out;
}

Tensor Dense::infer(const Tensor& input) {
    SHOG_REQUIRE(input.rank() == 2 && input.cols() == in_features_,
                 "Dense input width mismatch");
    // Same arithmetic as forward() without the cached_input_ copy.
    Tensor out = matmul(input, weight_.value);
    out.add_row_vector(bias_.value);
    return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
    SHOG_REQUIRE(grad_output.rank() == 2 && grad_output.cols() == out_features_,
                 "Dense grad width mismatch");
    SHOG_REQUIRE(!cached_input_.empty(), "Dense backward before forward");
    SHOG_REQUIRE(grad_output.rows() == cached_input_.rows(),
                 "Dense grad batch mismatch");
    // dW = x^T g, db = sum_rows g, dx = g W^T
    weight_.grad += matmul_tn(cached_input_, grad_output);
    Tensor column_grads = grad_output.column_sum();
    bias_.grad += column_grads;
    return matmul_nt(grad_output, weight_.value);
}

Flops Dense::flops(std::size_t batch) const {
    const double b = static_cast<double>(batch);
    const double in = static_cast<double>(in_features_);
    const double out = static_cast<double>(out_features_);
    Flops f;
    f.forward = 2.0 * b * in * out;
    // backward: dW (2*b*in*out) + dx (2*b*in*out) + db (b*out)
    f.backward = 4.0 * b * in * out + b * out;
    return f;
}

std::unique_ptr<Layer> Dense::clone() const { return std::unique_ptr<Dense>(new Dense(*this)); }

} // namespace shog::nn
