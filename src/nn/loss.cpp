#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace shog::nn {

Tensor softmax(const Tensor& logits) {
    SHOG_REQUIRE(logits.rank() == 2, "softmax needs rank-2 logits");
    Tensor out = logits;
    const std::size_t rows = logits.rows();
    const std::size_t cols = logits.cols();
    for (std::size_t r = 0; r < rows; ++r) {
        double max_logit = out.at(r, 0);
        for (std::size_t c = 1; c < cols; ++c) {
            max_logit = std::max(max_logit, out.at(r, c));
        }
        double denom = 0.0;
        for (std::size_t c = 0; c < cols; ++c) {
            out.at(r, c) = std::exp(out.at(r, c) - max_logit);
            denom += out.at(r, c);
        }
        for (std::size_t c = 0; c < cols; ++c) {
            out.at(r, c) /= denom;
        }
    }
    return out;
}

Loss_result softmax_cross_entropy(const Tensor& logits, const std::vector<std::size_t>& labels,
                                  const std::vector<double>& row_weights) {
    SHOG_REQUIRE(logits.rank() == 2, "cross-entropy needs rank-2 logits");
    SHOG_REQUIRE(labels.size() == logits.rows(), "one label per row required");
    SHOG_REQUIRE(row_weights.empty() || row_weights.size() == labels.size(),
                 "row weights must match batch size");

    const std::size_t rows = logits.rows();
    const std::size_t cols = logits.cols();
    Tensor probs = softmax(logits);

    Loss_result result;
    result.grad = probs;
    double total_weight = 0.0;
    double loss = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
        SHOG_REQUIRE(labels[r] < cols, "label out of class range");
        const double w = row_weights.empty() ? 1.0 : row_weights[r];
        total_weight += w;
        const double p = std::max(probs.at(r, labels[r]), 1e-12);
        loss += -w * std::log(p);
        result.grad.at(r, labels[r]) -= 1.0;
        for (std::size_t c = 0; c < cols; ++c) {
            result.grad.at(r, c) *= w;
        }
    }
    const double denom = total_weight > 0.0 ? total_weight : 1.0;
    result.value = loss / denom;
    result.grad *= 1.0 / denom;
    return result;
}

Loss_result smooth_l1(const Tensor& prediction, const Tensor& target,
                      const std::vector<double>& row_mask) {
    SHOG_REQUIRE(prediction.rank() == 2 && prediction.shape() == target.shape(),
                 "smooth_l1 shape mismatch");
    SHOG_REQUIRE(row_mask.size() == prediction.rows(), "one mask entry per row required");

    const std::size_t rows = prediction.rows();
    const std::size_t cols = prediction.cols();
    Loss_result result;
    result.grad = Tensor{rows, cols};

    double active_rows = 0.0;
    for (double m : row_mask) {
        active_rows += (m != 0.0) ? 1.0 : 0.0;
    }
    const double denom = active_rows > 0.0 ? active_rows * static_cast<double>(cols) : 1.0;

    double loss = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
        if (row_mask[r] == 0.0) {
            continue;
        }
        for (std::size_t c = 0; c < cols; ++c) {
            const double diff = prediction.at(r, c) - target.at(r, c);
            const double ad = std::abs(diff);
            if (ad < 1.0) {
                loss += 0.5 * diff * diff;
                result.grad.at(r, c) = diff / denom;
            } else {
                loss += ad - 0.5;
                result.grad.at(r, c) = (diff > 0.0 ? 1.0 : -1.0) / denom;
            }
        }
    }
    result.value = loss / denom;
    return result;
}

} // namespace shog::nn
