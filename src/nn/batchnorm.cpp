#include "nn/batchnorm.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace shog::nn {

Batch_norm::Batch_norm(std::size_t features, double momentum, double epsilon)
    : features_{features},
      momentum_{momentum},
      epsilon_{epsilon},
      gamma_{"gamma", Tensor::full({features}, 1.0)},
      beta_{"beta", Tensor{std::vector<std::size_t>{features}}},
      running_mean_{std::vector<std::size_t>{features}},
      running_var_{Tensor::full({features}, 1.0)} {
    SHOG_REQUIRE(features > 0, "Batch_norm needs positive feature count");
    SHOG_REQUIRE(momentum > 0.0 && momentum <= 1.0, "momentum must lie in (0, 1]");
}

void Batch_norm::update_stats(const Tensor& batch_mean, const Tensor& batch_var) noexcept {
    for (std::size_t c = 0; c < features_; ++c) {
        running_mean_.at(c) += momentum_ * (batch_mean.at(c) - running_mean_.at(c));
        running_var_.at(c) += momentum_ * (batch_var.at(c) - running_var_.at(c));
    }
}

Tensor Batch_norm::forward(const Tensor& input, bool training) {
    SHOG_REQUIRE(input.rank() == 2 && input.cols() == features_, "Batch_norm width mismatch");
    cached_training_ = training;
    const std::size_t m = input.rows();

    Tensor mean;
    Tensor var;
    if (training && m > 1) {
        mean = input.column_mean();
        var = input.column_variance(mean);
        if (update_running_stats_) {
            update_stats(mean, var);
        }
    } else {
        mean = running_mean_;
        var = running_var_;
        cached_training_ = false; // eval-statistics path for backward
    }

    cached_centered_ = input;
    cached_inv_std_ = Tensor{std::vector<std::size_t>{features_}};
    for (std::size_t c = 0; c < features_; ++c) {
        cached_inv_std_.at(c) = 1.0 / std::sqrt(var.at(c) + epsilon_);
    }
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < features_; ++c) {
            cached_centered_.at(r, c) -= mean.at(c);
        }
    }
    cached_xhat_ = cached_centered_;
    Tensor out{m, features_};
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < features_; ++c) {
            cached_xhat_.at(r, c) *= cached_inv_std_.at(c);
            out.at(r, c) = gamma_.value.at(c) * cached_xhat_.at(r, c) + beta_.value.at(c);
        }
    }
    return out;
}

Tensor Batch_norm::infer(const Tensor& input) {
    SHOG_REQUIRE(input.rank() == 2 && input.cols() == features_, "Batch_norm width mismatch");
    // Eval-statistics path of forward() with no caches. Every output element
    // is an independent scalar chain ((x - mu) * inv_std, then gamma/beta),
    // so reproducing the expressions keeps the result bit-identical.
    const std::size_t m = input.rows();
    std::vector<double> inv_std(features_);
    for (std::size_t c = 0; c < features_; ++c) {
        inv_std[c] = 1.0 / std::sqrt(running_var_.at(c) + epsilon_);
    }
    Tensor out{m, features_};
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < features_; ++c) {
            const double centered = input.at(r, c) - running_mean_.at(c);
            const double xhat = centered * inv_std[c];
            out.at(r, c) = gamma_.value.at(c) * xhat + beta_.value.at(c);
        }
    }
    return out;
}

Tensor Batch_norm::backward(const Tensor& grad_output) {
    SHOG_REQUIRE(!cached_xhat_.empty(), "Batch_norm backward before forward");
    SHOG_REQUIRE(grad_output.shape() == cached_xhat_.shape(), "Batch_norm grad shape mismatch");
    const std::size_t m = grad_output.rows();
    const double md = static_cast<double>(m);

    // Parameter grads.
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < features_; ++c) {
            gamma_.grad.at(c) += grad_output.at(r, c) * cached_xhat_.at(r, c);
            beta_.grad.at(c) += grad_output.at(r, c);
        }
    }

    Tensor grad_in{m, features_};
    if (!cached_training_) {
        // Statistics were constants: dx = dy * gamma * inv_std.
        for (std::size_t r = 0; r < m; ++r) {
            for (std::size_t c = 0; c < features_; ++c) {
                grad_in.at(r, c) =
                    grad_output.at(r, c) * gamma_.value.at(c) * cached_inv_std_.at(c);
            }
        }
        return grad_in;
    }

    // Full BN backward through batch statistics.
    for (std::size_t c = 0; c < features_; ++c) {
        double sum_dxhat = 0.0;
        double sum_dxhat_xhat = 0.0;
        for (std::size_t r = 0; r < m; ++r) {
            const double dxhat = grad_output.at(r, c) * gamma_.value.at(c);
            sum_dxhat += dxhat;
            sum_dxhat_xhat += dxhat * cached_xhat_.at(r, c);
        }
        for (std::size_t r = 0; r < m; ++r) {
            const double dxhat = grad_output.at(r, c) * gamma_.value.at(c);
            grad_in.at(r, c) = cached_inv_std_.at(c) / md *
                               (md * dxhat - sum_dxhat - cached_xhat_.at(r, c) * sum_dxhat_xhat);
        }
    }
    return grad_in;
}

Flops Batch_norm::flops(std::size_t batch) const {
    const double n = static_cast<double>(batch) * static_cast<double>(features_);
    return Flops{8.0 * n, 12.0 * n};
}

std::unique_ptr<Layer> Batch_norm::clone() const {
    auto copy = std::make_unique<Batch_norm>(features_, momentum_, epsilon_);
    copy->gamma_.value = gamma_.value;
    copy->beta_.value = beta_.value;
    copy->gamma_.lr_scale = gamma_.lr_scale;
    copy->beta_.lr_scale = beta_.lr_scale;
    copy->running_mean_ = running_mean_;
    copy->running_var_ = running_var_;
    copy->update_running_stats_ = update_running_stats_;
    return copy;
}

Batch_renorm::Batch_renorm(std::size_t features, double momentum, double epsilon, double r_max,
                           double d_max)
    : features_{features},
      momentum_{momentum},
      epsilon_{epsilon},
      r_max_{r_max},
      d_max_{d_max},
      gamma_{"gamma", Tensor::full({features}, 1.0)},
      beta_{"beta", Tensor{std::vector<std::size_t>{features}}},
      running_mean_{std::vector<std::size_t>{features}},
      running_var_{Tensor::full({features}, 1.0)} {
    SHOG_REQUIRE(features > 0, "Batch_renorm needs positive feature count");
    SHOG_REQUIRE(momentum > 0.0 && momentum <= 1.0, "momentum must lie in (0, 1]");
    set_clamps(r_max, d_max);
}

void Batch_renorm::set_momentum(double momentum) {
    SHOG_REQUIRE(momentum > 0.0 && momentum <= 1.0, "momentum must lie in (0, 1]");
    momentum_ = momentum;
}

void Batch_renorm::set_clamps(double r_max, double d_max) {
    SHOG_REQUIRE(r_max >= 1.0, "r_max must be >= 1");
    SHOG_REQUIRE(d_max >= 0.0, "d_max must be >= 0");
    r_max_ = r_max;
    d_max_ = d_max;
}

Tensor Batch_renorm::forward(const Tensor& input, bool training) {
    SHOG_REQUIRE(input.rank() == 2 && input.cols() == features_, "Batch_renorm width mismatch");
    const std::size_t m = input.rows();
    cached_training_ = training && m > 1;

    if (!cached_training_) {
        // Inference: use running statistics directly.
        cached_centered_ = input;
        cached_inv_std_ = Tensor{std::vector<std::size_t>{features_}};
        for (std::size_t c = 0; c < features_; ++c) {
            cached_inv_std_.at(c) = 1.0 / std::sqrt(running_var_.at(c) + epsilon_);
        }
        Tensor out{m, features_};
        cached_xhat_ = Tensor{m, features_};
        for (std::size_t r = 0; r < m; ++r) {
            for (std::size_t c = 0; c < features_; ++c) {
                const double xhat =
                    (input.at(r, c) - running_mean_.at(c)) * cached_inv_std_.at(c);
                cached_xhat_.at(r, c) = xhat;
                out.at(r, c) = gamma_.value.at(c) * xhat + beta_.value.at(c);
            }
        }
        return out;
    }

    const Tensor batch_mean = input.column_mean();
    const Tensor batch_var = input.column_variance(batch_mean);

    cached_inv_std_ = Tensor{std::vector<std::size_t>{features_}};
    cached_r_ = Tensor{std::vector<std::size_t>{features_}};
    Tensor d{std::vector<std::size_t>{features_}};
    for (std::size_t c = 0; c < features_; ++c) {
        const double sigma_b = std::sqrt(batch_var.at(c) + epsilon_);
        const double sigma_run = std::sqrt(running_var_.at(c) + epsilon_);
        cached_inv_std_.at(c) = 1.0 / sigma_b;
        cached_r_.at(c) = std::clamp(sigma_b / sigma_run, 1.0 / r_max_, r_max_);
        d.at(c) = std::clamp((batch_mean.at(c) - running_mean_.at(c)) / sigma_run, -d_max_, d_max_);
    }

    cached_centered_ = input;
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < features_; ++c) {
            cached_centered_.at(r, c) -= batch_mean.at(c);
        }
    }

    cached_xhat_ = Tensor{m, features_};
    Tensor out{m, features_};
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < features_; ++c) {
            const double xhat =
                cached_centered_.at(r, c) * cached_inv_std_.at(c) * cached_r_.at(c) + d.at(c);
            cached_xhat_.at(r, c) = xhat;
            out.at(r, c) = gamma_.value.at(c) * xhat + beta_.value.at(c);
        }
    }

    if (update_running_stats_) {
        for (std::size_t c = 0; c < features_; ++c) {
            running_mean_.at(c) += momentum_ * (batch_mean.at(c) - running_mean_.at(c));
            running_var_.at(c) += momentum_ * (batch_var.at(c) - running_var_.at(c));
        }
    }
    return out;
}

Tensor Batch_renorm::infer(const Tensor& input) {
    SHOG_REQUIRE(input.rank() == 2 && input.cols() == features_, "Batch_renorm width mismatch");
    // Inference path of forward() with no caches; bit-identical (see
    // Batch_norm::infer).
    const std::size_t m = input.rows();
    std::vector<double> inv_std(features_);
    for (std::size_t c = 0; c < features_; ++c) {
        inv_std[c] = 1.0 / std::sqrt(running_var_.at(c) + epsilon_);
    }
    Tensor out{m, features_};
    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < features_; ++c) {
            const double xhat = (input.at(r, c) - running_mean_.at(c)) * inv_std[c];
            out.at(r, c) = gamma_.value.at(c) * xhat + beta_.value.at(c);
        }
    }
    return out;
}

Tensor Batch_renorm::backward(const Tensor& grad_output) {
    SHOG_REQUIRE(!cached_xhat_.empty(), "Batch_renorm backward before forward");
    SHOG_REQUIRE(grad_output.shape() == cached_xhat_.shape(),
                 "Batch_renorm grad shape mismatch");
    const std::size_t m = grad_output.rows();
    const double md = static_cast<double>(m);

    for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < features_; ++c) {
            gamma_.grad.at(c) += grad_output.at(r, c) * cached_xhat_.at(r, c);
            beta_.grad.at(c) += grad_output.at(r, c);
        }
    }

    Tensor grad_in{m, features_};
    if (!cached_training_) {
        for (std::size_t r = 0; r < m; ++r) {
            for (std::size_t c = 0; c < features_; ++c) {
                grad_in.at(r, c) =
                    grad_output.at(r, c) * gamma_.value.at(c) * cached_inv_std_.at(c);
            }
        }
        return grad_in;
    }

    // r and d are stop-gradient constants; gradient through batch mean and
    // std as in BN, scaled by r:
    //   dx = (r/sigma_b) * (dxhat - mean(dxhat) - z * mean(dxhat * z))
    // with z = (x - mu_b)/sigma_b (note: z, not the r-corrected xhat).
    for (std::size_t c = 0; c < features_; ++c) {
        double sum_dxhat = 0.0;
        double sum_dxhat_z = 0.0;
        for (std::size_t r = 0; r < m; ++r) {
            const double dxhat = grad_output.at(r, c) * gamma_.value.at(c);
            const double z = cached_centered_.at(r, c) * cached_inv_std_.at(c);
            sum_dxhat += dxhat;
            sum_dxhat_z += dxhat * z;
        }
        const double scale = cached_r_.at(c) * cached_inv_std_.at(c);
        for (std::size_t r = 0; r < m; ++r) {
            const double dxhat = grad_output.at(r, c) * gamma_.value.at(c);
            const double z = cached_centered_.at(r, c) * cached_inv_std_.at(c);
            grad_in.at(r, c) =
                scale * (dxhat - sum_dxhat / md - z * sum_dxhat_z / md);
        }
    }
    return grad_in;
}

Flops Batch_renorm::flops(std::size_t batch) const {
    const double n = static_cast<double>(batch) * static_cast<double>(features_);
    return Flops{10.0 * n, 14.0 * n};
}

std::unique_ptr<Layer> Batch_renorm::clone() const {
    auto copy = std::make_unique<Batch_renorm>(features_, momentum_, epsilon_, r_max_, d_max_);
    copy->gamma_.value = gamma_.value;
    copy->beta_.value = beta_.value;
    copy->gamma_.lr_scale = gamma_.lr_scale;
    copy->beta_.lr_scale = beta_.lr_scale;
    copy->running_mean_ = running_mean_;
    copy->running_var_ = running_var_;
    copy->update_running_stats_ = update_running_stats_;
    return copy;
}

} // namespace shog::nn
