#include "nn/activations.hpp"

#include <cmath>

namespace shog::nn {

Tensor Relu::forward(const Tensor& input, bool /*training*/) {
    width_ = input.rank() == 2 ? input.cols() : input.size();
    mask_ = input;
    Tensor out = input;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out.at(i) > 0.0) {
            mask_.at(i) = 1.0;
        } else {
            mask_.at(i) = 0.0;
            out.at(i) = 0.0;
        }
    }
    return out;
}

Tensor Relu::infer(const Tensor& input) {
    width_ = input.rank() == 2 ? input.cols() : input.size();
    Tensor out = input;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (!(out.at(i) > 0.0)) {
            out.at(i) = 0.0;
        }
    }
    return out;
}

Tensor Relu::backward(const Tensor& grad_output) {
    SHOG_REQUIRE(!mask_.empty(), "Relu backward before forward");
    SHOG_REQUIRE(grad_output.shape() == mask_.shape(), "Relu grad shape mismatch");
    Tensor grad = grad_output;
    grad *= mask_;
    return grad;
}

Flops Relu::flops(std::size_t batch) const {
    const double n = static_cast<double>(batch) * static_cast<double>(width_ == 0 ? 1 : width_);
    return Flops{n, n};
}

Leaky_relu::Leaky_relu(double slope) : slope_{slope} {
    SHOG_REQUIRE(slope >= 0.0 && slope < 1.0, "leaky slope must lie in [0, 1)");
}

Tensor Leaky_relu::forward(const Tensor& input, bool /*training*/) {
    width_ = input.rank() == 2 ? input.cols() : input.size();
    cached_input_ = input;
    Tensor out = input;
    out.apply([this](double x) { return x > 0.0 ? x : slope_ * x; });
    return out;
}

Tensor Leaky_relu::infer(const Tensor& input) {
    width_ = input.rank() == 2 ? input.cols() : input.size();
    Tensor out = input;
    out.apply([this](double x) { return x > 0.0 ? x : slope_ * x; });
    return out;
}

Tensor Leaky_relu::backward(const Tensor& grad_output) {
    SHOG_REQUIRE(!cached_input_.empty(), "Leaky_relu backward before forward");
    SHOG_REQUIRE(grad_output.shape() == cached_input_.shape(),
                 "Leaky_relu grad shape mismatch");
    Tensor grad = grad_output;
    for (std::size_t i = 0; i < grad.size(); ++i) {
        grad.at(i) *= cached_input_.at(i) > 0.0 ? 1.0 : slope_;
    }
    return grad;
}

Flops Leaky_relu::flops(std::size_t batch) const {
    const double n = static_cast<double>(batch) * static_cast<double>(width_ == 0 ? 1 : width_);
    return Flops{n, n};
}

Tensor Tanh::forward(const Tensor& input, bool /*training*/) {
    width_ = input.rank() == 2 ? input.cols() : input.size();
    Tensor out = input;
    out.apply([](double x) { return std::tanh(x); });
    cached_output_ = out;
    return out;
}

Tensor Tanh::infer(const Tensor& input) {
    width_ = input.rank() == 2 ? input.cols() : input.size();
    Tensor out = input;
    out.apply([](double x) { return std::tanh(x); });
    return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
    SHOG_REQUIRE(!cached_output_.empty(), "Tanh backward before forward");
    SHOG_REQUIRE(grad_output.shape() == cached_output_.shape(), "Tanh grad shape mismatch");
    Tensor grad = grad_output;
    for (std::size_t i = 0; i < grad.size(); ++i) {
        const double y = cached_output_.at(i);
        grad.at(i) *= 1.0 - y * y;
    }
    return grad;
}

Flops Tanh::flops(std::size_t batch) const {
    const double n =
        8.0 * static_cast<double>(batch) * static_cast<double>(width_ == 0 ? 1 : width_);
    return Flops{n, n};
}

} // namespace shog::nn
