// Cloud-Only baseline: every frame is H.264-streamed to the cloud, the
// golden teacher model detects, and annotated result frames come back.
// Best accuracy, enormous bandwidth (paper: ~24x Shoggoth's uplink, ~350x
// its downlink), and a low effective fps set by the synchronous
// encode -> uplink -> inference -> downlink pipeline.
#pragma once

#include "device/compute.hpp"
#include "models/deployed.hpp"
#include "models/detector.hpp"
#include "sim/strategy.hpp"

namespace shog::baselines {

struct Cloud_only_config {
    /// Metering/model-update cadence for the continuous streams.
    Sim_duration meter_tick{1.0};
    /// Per-frame encode seconds on the edge HW encoder in streaming mode.
    Sim_duration stream_encode_seconds{0.05};
};

class Cloud_only_strategy final : public sim::Strategy {
public:
    Cloud_only_strategy(models::Detector& teacher, device::Compute_model cloud_device,
                        Cloud_only_config config = {});

    [[nodiscard]] std::string name() const override { return "Cloud-Only"; }
    void start(sim::Edge_runtime& rt) override;
    [[nodiscard]] std::vector<detect::Detection> infer(sim::Edge_runtime& rt,
                                                       const video::Frame& frame) override;

    /// The synchronous pipeline's sustainable result rate.
    [[nodiscard]] double pipeline_fps(sim::Edge_runtime& rt) const;

private:
    models::Detector& teacher_;
    device::Compute_model cloud_device_;
    Cloud_only_config config_;
    double teacher_infer_gflops_;

    void meter_tick(sim::Edge_runtime& rt);
};

} // namespace shog::baselines
