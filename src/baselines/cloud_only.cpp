#include "baselines/cloud_only.hpp"

namespace shog::baselines {

Cloud_only_strategy::Cloud_only_strategy(models::Detector& teacher,
                                         device::Compute_model cloud_device,
                                         Cloud_only_config config)
    : teacher_{teacher},
      cloud_device_{std::move(cloud_device)},
      config_{config},
      teacher_infer_gflops_{
          models::Deployed_profile::mask_rcnn_resnext101().inference_gflops()} {}

double Cloud_only_strategy::pipeline_fps(sim::Edge_runtime& rt) const {
    const auto& sc = rt.stream().config();
    // Use a mid-stream frame for representative codec statistics.
    const video::Frame probe = rt.stream().frame_at(rt.stream().frame_count() / 2);
    const Bytes frame_bytes = rt.h264().stream_frame_bytes(
        sc.image_width, sc.image_height, probe.complexity, probe.motion_level, sc.fps);
    const Bytes result_bytes = frame_bytes * rt.message_sizes().result_frame_overhead;

    const Sim_duration up = transmit_seconds(frame_bytes, rt.link().config().uplink_mbps);
    const Sim_duration down =
        transmit_seconds(result_bytes, rt.link().config().downlink_mbps);
    const Sim_duration infer = cloud_device_.seconds_for_gflops(teacher_infer_gflops_);
    const Sim_duration total = config_.stream_encode_seconds + up + infer + down +
                               2.0 * rt.link().config().propagation;
    return 1.0 / total.value(); // fps from the pipeline period
}

void Cloud_only_strategy::start(sim::Edge_runtime& rt) {
    rt.set_fps_override(pipeline_fps(rt));
    rt.schedule(config_.meter_tick, [this, &rt] { meter_tick(rt); });
}

void Cloud_only_strategy::meter_tick(sim::Edge_runtime& rt) {
    const auto& sc = rt.stream().config();
    const std::size_t idx = rt.stream().index_at(rt.now().value()); // frame-domain lookup
    const video::Frame frame = rt.stream().frame_at(idx);

    // Full-rate video up; full-rate annotated result stream down.
    const Bytes per_frame = rt.h264().stream_frame_bytes(
        sc.image_width, sc.image_height, frame.complexity, frame.motion_level, sc.fps);
    const Bytes up_bytes = per_frame * sc.fps * config_.meter_tick.value(); // frames/tick
    const Bytes down_bytes = up_bytes * rt.message_sizes().result_frame_overhead;
    (void)rt.link().send_up(rt.now(), up_bytes);
    (void)rt.link().send_down(rt.now(), down_bytes);

    // Cloud GPU time: the pipeline's result rate worth of teacher inference.
    rt.add_cloud_gpu_seconds(Gpu_seconds::of(
        rt.fps_override() * config_.meter_tick.value() * // frames per tick
        cloud_device_.seconds_for_gflops(teacher_infer_gflops_)));

    if (rt.now() + config_.meter_tick < Sim_time{rt.stream().duration()}) {
        rt.schedule(config_.meter_tick, [this, &rt] { meter_tick(rt); });
    }
}

std::vector<detect::Detection> Cloud_only_strategy::infer(sim::Edge_runtime& rt,
                                                          const video::Frame& frame) {
    return teacher_.detect(frame, rt.stream().world());
}

} // namespace shog::baselines
