// Edge-Only baseline: the offline-trained student performs all inference on
// the edge device. No network traffic, no adaptation — the strategy the
// paper's 15-20% mAP gains are measured against.
#pragma once

#include "models/detector.hpp"
#include "sim/strategy.hpp"

namespace shog::baselines {

class Edge_only_strategy final : public sim::Strategy {
public:
    explicit Edge_only_strategy(models::Detector& student) : student_{student} {}

    [[nodiscard]] std::string name() const override { return "Edge-Only"; }

    void start(sim::Edge_runtime& rt) override { (void)rt; }

    [[nodiscard]] std::vector<detect::Detection> infer(sim::Edge_runtime& rt,
                                                       const video::Frame& frame) override {
        return student_.detect(frame, rt.stream().world());
    }

private:
    models::Detector& student_;
};

} // namespace shog::baselines
