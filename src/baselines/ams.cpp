#include "baselines/ams.hpp"

#include <algorithm>
#include <cmath>

#include "models/pretrain.hpp"

namespace shog::baselines {

Ams_strategy::Ams_strategy(models::Detector& student, models::Detector& teacher,
                           Ams_config config, models::Deployed_profile profile,
                           device::Compute_model cloud_device)
    : student_{student},
      cloud_copy_{student.clone()},
      config_{std::move(config)},
      profile_{profile},
      labeler_{teacher, config_.labeler},
      controller_{config_.controller, config_.initial_rate},
      resource_monitor_{Sim_duration{1.0}},
      cloud_device_{std::move(cloud_device)},
      teacher_infer_gflops_{
          models::Deployed_profile::mask_rcnn_resnext101().inference_gflops()} {
    cloud_trainer_ = std::make_unique<core::Adaptive_trainer>(*cloud_copy_, config_.trainer,
                                                              profile_, cloud_device_);
}

void Ams_strategy::start(sim::Edge_runtime& rt) {
    // Per-device labeling-noise substream (see Shoggoth_strategy::start).
    label_rng_ = rt.rng().split(0x1abe1);
    if (config_.warm_replay && cloud_trainer_->memory().enabled()) {
        models::Pretrain_config warm_cfg;
        warm_cfg.domains = models::daytime_domains();
        warm_cfg.samples = config_.warm_samples;
        warm_cfg.seed = config_.trainer.seed ^ 0xab;
        cloud_trainer_->warm_start(
            models::synth_dataset(rt.stream().world(), student_.config(), warm_cfg));
    }
    schedule_next_sample(rt);
}

void Ams_strategy::schedule_next_sample(sim::Edge_runtime& rt) {
    const Sim_duration gap{1.0 / controller_.rate()};
    if (rt.now() + gap >= Sim_time{rt.stream().duration()}) {
        return;
    }
    rt.schedule(gap, [this, &rt] { on_sample_tick(rt); });
}

void Ams_strategy::on_sample_tick(sim::Edge_runtime& rt) {
    if (sample_buffer_.empty()) {
        first_buffered_at_ = rt.now();
    }
    sample_buffer_.push_back(rt.stream().index_at(rt.now().value())); // frame-domain lookup
    if (sample_buffer_.size() >= config_.upload_batch_frames ||
        rt.now() - first_buffered_at_ >= config_.upload_max_wait) {
        upload_buffer(rt);
    }
    schedule_next_sample(rt);
}

void Ams_strategy::upload_buffer(sim::Edge_runtime& rt) {
    if (sample_buffer_.empty()) {
        return;
    }
    std::vector<std::size_t> frames = std::move(sample_buffer_);
    sample_buffer_.clear();

    double complexity = 0.0;
    double motion = 0.0;
    for (std::size_t idx : frames) {
        const video::Frame f = rt.stream().frame_at(idx);
        complexity += f.complexity;
        motion += f.motion_level;
    }
    complexity /= static_cast<double>(frames.size());
    motion /= static_cast<double>(frames.size());

    const Sim_duration gap{1.0 / controller_.rate()};
    const double res = config_.upload_resolution;
    const Bytes payload = rt.h264().batch_bytes(frames.size(), res, res, complexity, motion,
                                                gap);
    const Sim_duration encode = rt.h264().encode_seconds(frames.size(), res, res);
    const Sim_duration up_delay = rt.link().send_up(rt.now(), payload);
    const std::uint64_t generation = upload_generation_;
    ++upload_generation_;
    SHOG_TRACE_ASYNC_BEGIN(rt.trace(), rt.now(), rt.trace_track(), "upload", generation);
    rt.schedule(encode + up_delay,
                [this, &rt, frames = std::move(frames), generation]() mutable {
        SHOG_TRACE_ASYNC_END(rt.trace(), rt.now(), rt.trace_track(), "upload", generation);
        // Labeling queues on the shared cloud GPU pool like Shoggoth's; the
        // difference shows up later, when AMS also submits fine-tune jobs.
        const Sim_duration service =
            static_cast<double>(frames.size()) *
            cloud_device_.seconds_for_gflops(teacher_infer_gflops_);
        SHOG_TRACE_ASYNC_BEGIN(rt.trace(), rt.now(), rt.trace_track(), "await_labels",
                               generation);
        rt.cloud().submit(
            rt.device_id(), service,
            [this, &rt, frames = std::move(frames), generation]() mutable {
                SHOG_TRACE_ASYNC_END(rt.trace(), rt.now(), rt.trace_track(),
                                     "await_labels", generation);
                cloud_label_batch(rt, std::move(frames));
            },
            sim::Cloud_job_kind::label, drift_.rate());
    });
}

void Ams_strategy::cloud_label_batch(sim::Edge_runtime& rt, std::vector<std::size_t> frames) {
    const video::World_model& world = rt.stream().world();
    double agreement_sum = 0.0;
    for (std::size_t idx : frames) {
        const video::Frame frame = rt.stream().frame_at(idx);
        const std::vector<models::Proposal> proposals = student_.propose(frame, world);
        core::Labeled_frame labeled = labeler_.label(frame, world, proposals, label_rng_);
        if (have_last_teacher_output_) {
            controller_.observe_phi(
                core::phi_between(labeled.teacher_detections, last_teacher_output_));
        }
        last_teacher_output_ = labeled.teacher_detections;
        have_last_teacher_output_ = true;
        agreement_sum += core::detection_agreement(student_.detect_on(proposals),
                                                   labeled.teacher_detections);
        pending_.push_back(Pending_batch{std::move(labeled.samples), 1, rt.now()});
        ++pending_frames_;
    }

    // Telemetry + control round (same adaptive sampling as Shoggoth).
    (void)rt.link().send_up(rt.now(), rt.message_sizes().telemetry_bytes);
    (void)drain_alpha();
    const double alpha =
        frames.empty() ? 1.0 : agreement_sum / static_cast<double>(frames.size());
    // Drift-rate estimate for staleness scheduling (shared estimator, so
    // Shoggoth and AMS jobs rank on a comparable drift scale).
    drift_.observe(alpha, rt.now());
    const double lambda = resource_monitor_.drain_average();
    (void)controller_.update(alpha, lambda);
    (void)rt.link().send_down(rt.now(), rt.message_sizes().rate_command_bytes);

    maybe_train_in_cloud(rt);
}

void Ams_strategy::maybe_train_in_cloud(sim::Edge_runtime& rt) {
    while (!pending_.empty() && rt.now() - pending_.front().at > config_.sample_horizon) {
        pending_frames_ -= pending_.front().frames;
        pending_.pop_front();
    }
    if (cloud_training_busy_ || pending_frames_ < config_.frames_per_session ||
        pending_.empty()) {
        return;
    }
    std::vector<models::Labeled_sample> batch;
    std::vector<Sim_time> sample_at; // labeling time per sample, oldest first
    while (!pending_.empty()) {
        for (models::Labeled_sample& s : pending_.front().samples) {
            batch.push_back(std::move(s));
            sample_at.push_back(pending_.front().at);
        }
        pending_.pop_front();
    }
    pending_frames_ = 0;
    if (batch.empty()) {
        return;
    }
    cloud_training_busy_ = true;
    rt.count_training_session();
    // Async, not sync: the fine-tune queues/runs in the cloud while other
    // device-track phases (uploads in flight) keep opening and closing.
    const std::uint64_t session = rt.training_sessions();
    SHOG_TRACE_ASYNC_BEGIN(rt.trace(), rt.now(), rt.trace_track(), "cloud_train", session);

    // The fine-tune is a cloud GPU job contending with every device's
    // labeling traffic; its service time is the session cost on the cloud
    // device (train() prices the session with the same estimate). The cloud
    // copy is actually trained when the job completes, then the new weights
    // ship on the downlink.
    const Sim_duration service = cloud_trainer_->estimate_session_cost(batch.size())
                                     .overall_seconds();
    // Preemption-aware resume: if the scheduler checkpoints this fine-tune,
    // re-plan the remainder instead of replaying it verbatim. The session
    // walks the batch oldest-first at uniform per-sample cost, so the
    // remaining service maps to the pending tail of the batch; pending
    // samples whose age passed the replay horizon while the job sat
    // checkpointed are dropped from the plan (their GPU seconds would train
    // on data about to be discarded anyway). The weight update itself still
    // applies the whole distillation batch on completion — the near-stale
    // samples' gradient contribution is marginal, the model prices out
    // their GPU time, which is what repeated preemption wastes.
    sim::Cloud_runtime::Resume_replan replan;
    if (config_.replan_on_resume && service > Sim_duration{}) {
        const Sim_duration per_sample = service / static_cast<double>(batch.size());
        replan = [sample_at = std::move(sample_at), per_sample,
                  horizon = config_.sample_horizon,
                  begin = std::size_t{0}](Sim_duration remaining, Sim_time now) mutable {
            const std::size_t n = sample_at.size();
            const std::size_t pending = std::min(
                n - begin,
                static_cast<std::size_t>(std::llround(remaining / per_sample)));
            // `begin` persists across checkpoints: resumed progress on a
            // re-planned tail never resurrects earlier drops.
            begin = n - pending;
            while (begin < n && sample_at[begin] + horizon <= now) {
                ++begin;
            }
            return static_cast<double>(n - begin) * per_sample;
        };
    }
    rt.cloud().submit(
        rt.device_id(), service,
        [this, &rt, batch = std::move(batch), session]() mutable {
            SHOG_TRACE_ASYNC_END(rt.trace(), rt.now(), rt.trace_track(), "cloud_train",
                                 session);
            (void)cloud_trainer_->train(batch);
            const Bytes update{profile_.update_bytes()};
            const Sim_duration down_delay = rt.link().send_down(rt.now(), update);
            std::vector<double> state = cloud_copy_->net().state_vector();
            ++updates_sent_;
            SHOG_TRACE_ASYNC_BEGIN(rt.trace(), rt.now(), rt.trace_track(), "download",
                                   session);
            rt.schedule(down_delay, [this, &rt, state = std::move(state), session] {
                SHOG_TRACE_ASYNC_END(rt.trace(), rt.now(), rt.trace_track(), "download",
                                     session);
                // Edge installs the update: brief inference stall.
                student_.net().load_state_vector(state);
                SHOG_TRACE_INSTANT(rt.trace(), rt.now(), rt.trace_track(), "apply", session);
                rt.set_training_active(true);
                rt.schedule(config_.swap_seconds, [this, &rt] {
                    rt.set_training_active(false);
                    cloud_training_busy_ = false;
                    maybe_train_in_cloud(rt);
                });
            });
        },
        sim::Cloud_job_kind::train, drift_.rate(), std::move(replan));
}

double Ams_strategy::drain_alpha() {
    const double alpha = predictions_seen_ > 0
                             ? static_cast<double>(predictions_accurate_) /
                                   static_cast<double>(predictions_seen_)
                             : 1.0;
    predictions_seen_ = 0;
    predictions_accurate_ = 0;
    return alpha;
}

std::vector<detect::Detection> Ams_strategy::infer(sim::Edge_runtime& rt,
                                                   const video::Frame& frame) {
    return student_.detect(frame, rt.stream().world());
}

void Ams_strategy::on_inference(sim::Edge_runtime& rt, const video::Frame& frame,
                                const std::vector<detect::Detection>& detections) {
    (void)frame;
    if (detections.empty()) {
        ++predictions_seen_; // blind frame counts as inaccurate (see Shoggoth)
    }
    for (const detect::Detection& det : detections) {
        ++predictions_seen_;
        if (det.confidence > config_.alpha_threshold) {
            ++predictions_accurate_;
        }
    }
    resource_monitor_.record_until(
        rt.now(), rt.edge_compute().utilization(rt.stream().fps(), rt.training_active()));
}

} // namespace shog::baselines
