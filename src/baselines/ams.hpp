// Adaptive Model Streaming (AMS, Khani et al. ICCV'21) baseline.
//
// Same adaptive frame sampling and online labeling as Shoggoth, but the
// *entire* knowledge-distillation loop runs in the cloud: a copy of the
// student is fine-tuned end-to-end (no latent replay, no frozen front —
// this is the whole-network fine-tune the paper's Table II "Input" row
// characterizes) on a V100, and the updated weights are streamed back to
// the edge. Consequences the paper reports and this model reproduces:
//  - downlink dominated by model updates (vs. Shoggoth's tiny label traffic)
//  - cloud GPU time spent on training, limiting edges-per-GPU scalability
//  - edge fps stays near the video rate (no on-device training), minus a
//    brief dip when a model update is swapped in
//  - accuracy slightly below Shoggoth (update staleness + full-model
//    fine-tune on small correlated batches).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "core/adaptive_trainer.hpp"
#include "core/controller.hpp"
#include "core/labeling.hpp"
#include "device/monitor.hpp"
#include "sim/strategy.hpp"

namespace shog::baselines {

struct Ams_config {
    core::Trainer_config trainer = core::input_replay_config();
    core::Controller_config controller;
    core::Labeler_config labeler;
    double initial_rate = 1.0;
    std::size_t upload_batch_frames = 8;
    Sim_duration upload_max_wait{15.0};
    /// Cloud fine-tune triggers after this many labeled frames (same frame-
    /// denominated cadence as Shoggoth).
    std::size_t frames_per_session = 60;
    Sim_duration sample_horizon{150.0};
    bool warm_replay = true;
    std::size_t warm_samples = 1200;
    double upload_resolution = 512.0;
    double alpha_threshold = 0.5;
    /// Edge-side model swap pause (fps dips while weights are installed).
    Sim_duration swap_seconds{0.4};
    /// Preemption-aware resume: when the scheduler checkpoints a fine-tune
    /// (label-wait preemption, server failure), the job re-plans its
    /// remaining batch on resume — samples whose age exceeds
    /// `sample_horizon` by then are dropped from the remainder instead of
    /// being replayed, so repeated preemption stops billing GPU seconds for
    /// training on stale data. Off reproduces the replay-the-remainder
    /// behavior exactly (and with no preemption the two are identical).
    bool replan_on_resume = true;
};

class Ams_strategy final : public sim::Strategy {
public:
    Ams_strategy(models::Detector& student, models::Detector& teacher, Ams_config config,
                 models::Deployed_profile profile, device::Compute_model cloud_device);

    [[nodiscard]] std::string name() const override { return "AMS"; }
    void start(sim::Edge_runtime& rt) override;
    [[nodiscard]] std::vector<detect::Detection> infer(sim::Edge_runtime& rt,
                                                       const video::Frame& frame) override;
    void on_inference(sim::Edge_runtime& rt, const video::Frame& frame,
                      const std::vector<detect::Detection>& detections) override;

    [[nodiscard]] std::size_t model_updates_sent() const noexcept { return updates_sent_; }
    [[nodiscard]] const core::Sampling_controller& controller() const noexcept {
        return controller_;
    }
    /// EMA of |d alpha / dt| across control rounds (see
    /// core::Drift_estimator).
    [[nodiscard]] double drift_rate() const noexcept { return drift_.rate(); }

private:
    models::Detector& student_;
    std::unique_ptr<models::Detector> cloud_copy_;
    Ams_config config_;
    models::Deployed_profile profile_;
    std::unique_ptr<core::Adaptive_trainer> cloud_trainer_;
    core::Online_labeler labeler_;
    core::Sampling_controller controller_;
    device::Resource_monitor resource_monitor_;
    device::Compute_model cloud_device_;
    double teacher_infer_gflops_;
    Rng label_rng_{0xa3a3};

    std::vector<std::size_t> sample_buffer_;
    Sim_time first_buffered_at_;
    struct Pending_batch {
        std::vector<models::Labeled_sample> samples;
        std::size_t frames = 0;
        Sim_time at;
    };
    std::deque<Pending_batch> pending_;
    std::size_t pending_frames_ = 0;
    bool cloud_training_busy_ = false;
    std::size_t updates_sent_ = 0;
    /// Trace key tying one batch's upload/await_labels phases together
    /// (async spans on the device track; concurrent batches overlap).
    std::uint64_t upload_generation_ = 0;

    std::size_t predictions_seen_ = 0;
    std::size_t predictions_accurate_ = 0;
    core::Drift_estimator drift_;
    std::vector<detect::Detection> last_teacher_output_;
    bool have_last_teacher_output_ = false;

    void schedule_next_sample(sim::Edge_runtime& rt);
    void on_sample_tick(sim::Edge_runtime& rt);
    void upload_buffer(sim::Edge_runtime& rt);
    void cloud_label_batch(sim::Edge_runtime& rt, std::vector<std::size_t> frames);
    void maybe_train_in_cloud(sim::Edge_runtime& rt);
    [[nodiscard]] double drain_alpha();
};

} // namespace shog::baselines
