// Thin strong-ish unit helpers. We keep plain doubles for arithmetic speed
// but centralize all unit conversions here so Kbps/bytes/seconds math is
// written once and named at the call site.
#pragma once

#include <cstdint>

namespace shog {

/// Simulation time is seconds since stream start, as double.
using Seconds = double;

/// Payload sizes are bytes, as double (fractional bytes appear in rate math).
using Bytes = double;

constexpr double k_bits_per_byte = 8.0;

/// bytes transferred over a duration -> kilobits per second.
[[nodiscard]] constexpr double bytes_to_kbps(Bytes bytes, Seconds duration) noexcept {
    return duration > 0.0 ? (bytes * k_bits_per_byte / 1000.0) / duration : 0.0;
}

/// kilobits per second sustained for a duration -> bytes.
[[nodiscard]] constexpr Bytes kbps_to_bytes(double kbps, Seconds duration) noexcept {
    return kbps * 1000.0 / k_bits_per_byte * duration;
}

[[nodiscard]] constexpr Bytes kib(double n) noexcept { return n * 1024.0; }
[[nodiscard]] constexpr Bytes mib(double n) noexcept { return n * 1024.0 * 1024.0; }

/// Transmission delay of a payload over a link of `mbps` megabits/second.
[[nodiscard]] constexpr Seconds transmit_seconds(Bytes bytes, double mbps) noexcept {
    return mbps > 0.0 ? (bytes * k_bits_per_byte) / (mbps * 1e6) : 0.0;
}

/// Clamp helper mirroring the paper's [.]^rmax_rmin notation.
[[nodiscard]] constexpr double clamp(double x, double lo, double hi) noexcept {
    return x < lo ? lo : (x > hi ? hi : x);
}

} // namespace shog
