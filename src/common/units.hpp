// Dimensional safety for the simulation kernel: zero-overhead strong types
// with affine time algebra. Each type wraps a single double, every
// operation is constexpr, and construction is explicit — so the compiler
// rejects the unit-mixing bugs that used to be silent (`Sim_time +
// Sim_time`, comparing a timestamp against a duration, paying a raw
// duration into a billing accumulator).
//
// The algebra, in brief:
//
//   Sim_time     - Sim_time      = Sim_duration   (points subtract to a span)
//   Sim_time     + Sim_duration  = Sim_time       (points translate by spans)
//   Sim_duration ± Sim_duration  = Sim_duration
//   Sim_duration * double        = Sim_duration   (and double * Sim_duration)
//   Sim_duration / Sim_duration  = double         (dimensionless ratio)
//   Gpu_seconds::of(Sim_duration)                 (the ONLY duration->billing
//                                                  conversion; += Sim_duration
//                                                  does not compile)
//   Bytes, Kbps                                   (payload and rate quantities)
//
// Forbidden expressions (compile errors, regression-tested by
// tests/test_units_static.cpp via the detection idiom):
//   Sim_time + Sim_time, Sim_time * x, Sim_time < Sim_duration,
//   Gpu_seconds += Sim_duration, implicit double -> any unit type.
//
// `.value()` is the single named escape hatch back to double, meant for
// serialization and the bench JSON layer; outside units.hpp, bench/ and
// tools/ the `unit-escape` shog_lint rule requires a same-line
// justification comment on every use.
#pragma once

#include <compare>
#include <cstdint>

namespace shog {

/// A span of simulated time, in seconds. The vector in the affine algebra:
/// durations add, scale, and divide into dimensionless ratios.
class Sim_duration {
public:
    constexpr Sim_duration() noexcept = default;
    explicit constexpr Sim_duration(double seconds) noexcept : v_{seconds} {}

    /// Escape hatch to raw seconds (serialization / JSON only; see header).
    [[nodiscard]] constexpr double value() const noexcept { return v_; }

    [[nodiscard]] friend constexpr auto operator<=>(Sim_duration, Sim_duration) noexcept = default;

    [[nodiscard]] friend constexpr Sim_duration operator+(Sim_duration a, Sim_duration b) noexcept {
        return Sim_duration{a.v_ + b.v_};
    }
    [[nodiscard]] friend constexpr Sim_duration operator-(Sim_duration a, Sim_duration b) noexcept {
        return Sim_duration{a.v_ - b.v_};
    }
    [[nodiscard]] constexpr Sim_duration operator-() const noexcept { return Sim_duration{-v_}; }
    [[nodiscard]] friend constexpr Sim_duration operator*(Sim_duration d, double k) noexcept {
        return Sim_duration{d.v_ * k};
    }
    [[nodiscard]] friend constexpr Sim_duration operator*(double k, Sim_duration d) noexcept {
        return Sim_duration{k * d.v_};
    }
    [[nodiscard]] friend constexpr Sim_duration operator/(Sim_duration d, double k) noexcept {
        return Sim_duration{d.v_ / k};
    }
    /// Dimensionless ratio of two spans (tick counts, progress fractions).
    [[nodiscard]] friend constexpr double operator/(Sim_duration a, Sim_duration b) noexcept {
        return a.v_ / b.v_;
    }
    constexpr Sim_duration& operator+=(Sim_duration other) noexcept {
        v_ += other.v_;
        return *this;
    }
    constexpr Sim_duration& operator-=(Sim_duration other) noexcept {
        v_ -= other.v_;
        return *this;
    }
    constexpr Sim_duration& operator*=(double k) noexcept {
        v_ *= k;
        return *this;
    }
    constexpr Sim_duration& operator/=(double k) noexcept {
        v_ /= k;
        return *this;
    }

private:
    double v_ = 0.0;
};

/// An absolute point on the simulation event clock (seconds since t=0).
/// The point in the affine algebra: points subtract to a Sim_duration and
/// translate by one, but never add, scale, or compare against a duration.
class Sim_time {
public:
    constexpr Sim_time() noexcept = default;
    explicit constexpr Sim_time(double seconds) noexcept : v_{seconds} {}

    /// Escape hatch to raw seconds (serialization / JSON only; see header).
    [[nodiscard]] constexpr double value() const noexcept { return v_; }

    /// The span from the clock origin t=0 to this point — the named form
    /// of `t - Sim_time{}` for horizon/capacity math.
    [[nodiscard]] constexpr Sim_duration since_start() const noexcept {
        return Sim_duration{v_};
    }

    [[nodiscard]] friend constexpr auto operator<=>(Sim_time, Sim_time) noexcept = default;

    [[nodiscard]] friend constexpr Sim_duration operator-(Sim_time a, Sim_time b) noexcept {
        return Sim_duration{a.v_ - b.v_};
    }
    [[nodiscard]] friend constexpr Sim_time operator+(Sim_time t, Sim_duration d) noexcept {
        return Sim_time{t.v_ + d.value()};
    }
    [[nodiscard]] friend constexpr Sim_time operator-(Sim_time t, Sim_duration d) noexcept {
        return Sim_time{t.v_ - d.value()};
    }
    constexpr Sim_time& operator+=(Sim_duration d) noexcept {
        v_ += d.value();
        return *this;
    }

private:
    double v_ = 0.0;
};

/// Billed GPU occupancy, in GPU-seconds. Deliberately NOT interchangeable
/// with Sim_duration: wall-clock spans enter the billing ledger only
/// through the named conversion `Gpu_seconds::of(...)`, so an accounting
/// path that forgets a share/speed adjustment fails to compile instead of
/// silently over- or under-billing.
class Gpu_seconds {
public:
    constexpr Gpu_seconds() noexcept = default;
    explicit constexpr Gpu_seconds(double seconds) noexcept : v_{seconds} {}

    /// The ONLY route from a wall-clock span to billed occupancy.
    [[nodiscard]] static constexpr Gpu_seconds of(Sim_duration d) noexcept {
        return Gpu_seconds{d.value()};
    }

    /// Escape hatch to raw seconds (serialization / JSON only; see header).
    [[nodiscard]] constexpr double value() const noexcept { return v_; }

    [[nodiscard]] friend constexpr auto operator<=>(Gpu_seconds, Gpu_seconds) noexcept = default;

    [[nodiscard]] friend constexpr Gpu_seconds operator+(Gpu_seconds a, Gpu_seconds b) noexcept {
        return Gpu_seconds{a.v_ + b.v_};
    }
    [[nodiscard]] friend constexpr Gpu_seconds operator-(Gpu_seconds a, Gpu_seconds b) noexcept {
        return Gpu_seconds{a.v_ - b.v_};
    }
    [[nodiscard]] friend constexpr Gpu_seconds operator*(Gpu_seconds g, double k) noexcept {
        return Gpu_seconds{g.v_ * k};
    }
    [[nodiscard]] friend constexpr Gpu_seconds operator*(double k, Gpu_seconds g) noexcept {
        return Gpu_seconds{k * g.v_};
    }
    [[nodiscard]] friend constexpr Gpu_seconds operator/(Gpu_seconds g, double k) noexcept {
        return Gpu_seconds{g.v_ / k};
    }
    /// Dimensionless ratio (utilization = billed / capacity).
    [[nodiscard]] friend constexpr double operator/(Gpu_seconds a, Gpu_seconds b) noexcept {
        return a.v_ / b.v_;
    }
    constexpr Gpu_seconds& operator+=(Gpu_seconds other) noexcept {
        v_ += other.v_;
        return *this;
    }
    constexpr Gpu_seconds& operator-=(Gpu_seconds other) noexcept {
        v_ -= other.v_;
        return *this;
    }

private:
    double v_ = 0.0;
};

/// Payload size in bytes (fractional bytes appear in rate math).
class Bytes {
public:
    constexpr Bytes() noexcept = default;
    explicit constexpr Bytes(double bytes) noexcept : v_{bytes} {}

    /// Escape hatch to a raw byte count (serialization / JSON only).
    [[nodiscard]] constexpr double value() const noexcept { return v_; }

    [[nodiscard]] friend constexpr auto operator<=>(Bytes, Bytes) noexcept = default;

    [[nodiscard]] friend constexpr Bytes operator+(Bytes a, Bytes b) noexcept {
        return Bytes{a.v_ + b.v_};
    }
    [[nodiscard]] friend constexpr Bytes operator-(Bytes a, Bytes b) noexcept {
        return Bytes{a.v_ - b.v_};
    }
    [[nodiscard]] friend constexpr Bytes operator*(Bytes b, double k) noexcept {
        return Bytes{b.v_ * k};
    }
    [[nodiscard]] friend constexpr Bytes operator*(double k, Bytes b) noexcept {
        return Bytes{k * b.v_};
    }
    [[nodiscard]] friend constexpr Bytes operator/(Bytes b, double k) noexcept {
        return Bytes{b.v_ / k};
    }
    /// Dimensionless ratio of two payload sizes.
    [[nodiscard]] friend constexpr double operator/(Bytes a, Bytes b) noexcept {
        return a.v_ / b.v_;
    }
    constexpr Bytes& operator+=(Bytes other) noexcept {
        v_ += other.v_;
        return *this;
    }

private:
    double v_ = 0.0;
};

/// Link throughput in kilobits per second.
class Kbps {
public:
    constexpr Kbps() noexcept = default;
    explicit constexpr Kbps(double kbps) noexcept : v_{kbps} {}

    /// Escape hatch to raw kilobits/second (serialization / JSON only).
    [[nodiscard]] constexpr double value() const noexcept { return v_; }

    [[nodiscard]] friend constexpr auto operator<=>(Kbps, Kbps) noexcept = default;

    [[nodiscard]] friend constexpr Kbps operator+(Kbps a, Kbps b) noexcept {
        return Kbps{a.v_ + b.v_};
    }
    [[nodiscard]] friend constexpr Kbps operator*(Kbps r, double k) noexcept {
        return Kbps{r.v_ * k};
    }

private:
    double v_ = 0.0;
};

constexpr double k_bits_per_byte = 8.0;

/// bytes transferred over a duration -> kilobits per second.
[[nodiscard]] constexpr Kbps bytes_to_kbps(Bytes bytes, Sim_duration duration) noexcept {
    return duration > Sim_duration{}
               ? Kbps{(bytes.value() * k_bits_per_byte / 1000.0) / duration.value()}
               : Kbps{};
}

/// kilobits per second sustained for a duration -> bytes.
[[nodiscard]] constexpr Bytes kbps_to_bytes(Kbps kbps, Sim_duration duration) noexcept {
    return Bytes{kbps.value() * 1000.0 / k_bits_per_byte * duration.value()};
}

[[nodiscard]] constexpr Bytes kib(double n) noexcept { return Bytes{n * 1024.0}; }
[[nodiscard]] constexpr Bytes mib(double n) noexcept { return Bytes{n * 1024.0 * 1024.0}; }

/// Transmission delay of a payload over a link of `mbps` megabits/second.
[[nodiscard]] constexpr Sim_duration transmit_seconds(Bytes bytes, double mbps) noexcept {
    return mbps > 0.0 ? Sim_duration{(bytes.value() * k_bits_per_byte) / (mbps * 1e6)}
                      : Sim_duration{};
}

} // namespace shog
