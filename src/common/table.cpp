#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/require.hpp"

namespace shog {

namespace {

bool looks_numeric(const std::string& s) {
    if (s.empty()) {
        return false;
    }
    bool digit_seen = false;
    for (char c : s) {
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digit_seen = true;
        } else if (c != '.' && c != '-' && c != '+' && c != '/' && c != '%' && c != 'e') {
            return false;
        }
    }
    return digit_seen;
}

} // namespace

Text_table::Text_table(std::vector<std::string> header) : header_{std::move(header)} {
    SHOG_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Text_table::add_row(std::vector<std::string> cells) {
    SHOG_REQUIRE(cells.size() == header_.size(), "row width must match header");
    rows_.push_back(std::move(cells));
}

std::string Text_table::num(double value, int precision) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << value;
    return os.str();
}

std::string Text_table::str() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "| ";
            const std::size_t pad = widths[c] - row[c].size();
            if (looks_numeric(row[c])) {
                os << std::string(pad, ' ') << row[c];
            } else {
                os << row[c] << std::string(pad, ' ');
            }
            os << ' ';
        }
        os << "|\n";
    };

    auto emit_rule = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };

    emit_rule();
    emit_row(header_);
    emit_rule();
    for (const auto& row : rows_) {
        emit_row(row);
    }
    emit_rule();
    return os.str();
}

} // namespace shog
