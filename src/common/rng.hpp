// Deterministic random number generation.
//
// The whole library seeds explicitly and never touches global RNG state, so
// every experiment is reproducible bit-for-bit across runs and platforms.
// We implement our own distributions (uniform via 53-bit doubles, gaussian
// via Box-Muller) because the standard library's distribution outputs are
// implementation-defined.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "common/require.hpp"

namespace shog {

/// splitmix64: tiny, fast, passes BigCrush as a 64-bit mixer. Used both as
/// the core engine and to derive independent child streams.
class Rng {
public:
    explicit Rng(std::uint64_t seed) noexcept : state_{seed ^ k_golden} {}

    /// Next raw 64-bit value.
    [[nodiscard]] std::uint64_t next_u64() noexcept {
        state_ += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform double in [0, 1) with 53 bits of entropy.
    [[nodiscard]] double uniform() noexcept {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform();
    }

    /// Uniform integer in [0, n). n must be positive.
    [[nodiscard]] std::size_t index(std::size_t n) {
        SHOG_REQUIRE(n > 0, "index() needs a non-empty range");
        // Rejection-free multiply-shift; bias is negligible for n << 2^64.
        return static_cast<std::size_t>(next_u64() % n);
    }

    /// Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] int uniform_int(int lo, int hi) {
        SHOG_REQUIRE(lo <= hi, "uniform_int() empty range");
        return lo + static_cast<int>(index(static_cast<std::size_t>(hi - lo) + 1));
    }

    /// Standard normal via Box-Muller (deterministic across platforms).
    [[nodiscard]] double gaussian() noexcept {
        if (has_spare_) {
            has_spare_ = false;
            return spare_;
        }
        double u1 = uniform();
        double u2 = uniform();
        // Guard against log(0).
        if (u1 <= 0.0) {
            u1 = 0x1.0p-53;
        }
        const double mag = std::sqrt(-2.0 * std::log(u1));
        const double ang = 2.0 * std::numbers::pi * u2;
        spare_ = mag * std::sin(ang);
        has_spare_ = true;
        return mag * std::cos(ang);
    }

    /// Normal with the given mean and standard deviation.
    [[nodiscard]] double gaussian(double mean, double stddev) noexcept {
        return mean + stddev * gaussian();
    }

    /// Bernoulli trial.
    [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

    /// Poisson-distributed count (Knuth's algorithm; fine for small lambda).
    [[nodiscard]] int poisson(double lambda) {
        SHOG_REQUIRE(lambda >= 0.0, "poisson() needs lambda >= 0");
        const double limit = std::exp(-lambda);
        int k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > limit);
        return k - 1;
    }

    /// Derive an independent child stream; children with distinct tags are
    /// decorrelated from the parent and each other.
    [[nodiscard]] Rng split(std::uint64_t tag) noexcept {
        // Mix the tag through one splitmix step of a copy of our state.
        Rng child{state_ ^ (tag * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL)};
        (void)child.next_u64();
        return child;
    }

    /// Sample k distinct indices from [0, n) uniformly (partial Fisher-Yates).
    [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                                      std::size_t k) {
        SHOG_REQUIRE(k <= n, "cannot sample more items than the population");
        std::vector<std::size_t> pool(n);
        for (std::size_t i = 0; i < n; ++i) {
            pool[i] = i;
        }
        for (std::size_t i = 0; i < k; ++i) {
            const std::size_t j = i + index(n - i);
            std::swap(pool[i], pool[j]);
        }
        pool.resize(k);
        return pool;
    }

    /// In-place Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items) {
        for (std::size_t i = items.size(); i > 1; --i) {
            const std::size_t j = index(i);
            std::swap(items[i - 1], items[j]);
        }
    }

private:
    static constexpr std::uint64_t k_golden = 0x9e3779b97f4a7c15ULL;
    std::uint64_t state_;
    double spare_ = 0.0;
    bool has_spare_ = false;
};

} // namespace shog
