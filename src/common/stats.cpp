#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace shog {

void Running_stats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void Running_stats::merge(const Running_stats& other) noexcept {
    if (other.n_ == 0) {
        return;
    }
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void Running_stats::reset() noexcept { *this = Running_stats{}; }

double Running_stats::variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Running_stats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::vector<double> values, double q) {
    SHOG_REQUIRE(!values.empty(), "quantile of empty sample");
    SHOG_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must lie in [0, 1]");
    std::sort(values.begin(), values.end());
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return values[lo] + frac * (values[hi] - values[lo]);
}

Streaming_quantile::Streaming_quantile(double q) : q_{q} {
    SHOG_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must lie in [0, 1]");
}

void Streaming_quantile::add(double x) {
    if (lower_.empty() || x <= lower_.top()) {
        lower_.push(x);
    } else {
        upper_.push(x);
    }
    // Rebalance so lower_ holds exactly floor((n-1)*q) + 1 samples — its
    // top is then the lower order statistic of the R-7 interpolation pair.
    const double pos = q_ * static_cast<double>(count() - 1);
    const std::size_t target = static_cast<std::size_t>(std::floor(pos)) + 1;
    while (lower_.size() > target) {
        upper_.push(lower_.top());
        lower_.pop();
    }
    while (lower_.size() < target) {
        lower_.push(upper_.top());
        upper_.pop();
    }
}

double Streaming_quantile::value() const {
    SHOG_REQUIRE(!empty(), "quantile of empty sample");
    // Mirrors quantile(): pos = q * (n - 1), linear interpolation between
    // the straddling order statistics.
    const double pos = q_ * static_cast<double>(count() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    const double x_lo = lower_.top();
    const double x_hi = hi == lo ? x_lo : upper_.top();
    return x_lo + frac * (x_hi - x_lo);
}

Ecdf::Ecdf(std::vector<double> samples) : sorted_{std::move(samples)} {
    SHOG_REQUIRE(!sorted_.empty(), "ECDF needs at least one sample");
    std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const noexcept {
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::inverse(double p) const {
    SHOG_REQUIRE(p >= 0.0 && p <= 1.0, "ECDF inverse level must lie in [0, 1]");
    if (p <= 0.0) {
        return sorted_.front();
    }
    const auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(sorted_.size())));
    return sorted_[std::min(rank, sorted_.size()) - 1];
}

Moving_average::Moving_average(std::size_t capacity) : capacity_{capacity} {
    SHOG_REQUIRE(capacity > 0, "moving average capacity must be positive");
    buffer_.reserve(capacity);
}

void Moving_average::add(double x) {
    if (buffer_.size() < capacity_) {
        buffer_.push_back(x);
        sum_ += x;
    } else {
        sum_ += x - buffer_[head_];
        buffer_[head_] = x;
        head_ = (head_ + 1) % capacity_;
    }
}

double Moving_average::mean() const noexcept {
    return buffer_.empty() ? 0.0 : sum_ / static_cast<double>(buffer_.size());
}

void Moving_average::reset() noexcept {
    buffer_.clear();
    head_ = 0;
    sum_ = 0.0;
}

Ewma::Ewma(double alpha) : alpha_{alpha} {
    SHOG_REQUIRE(alpha > 0.0 && alpha <= 1.0, "EWMA smoothing must lie in (0, 1]");
}

void Ewma::add(double x) noexcept {
    if (!initialized_) {
        value_ = x;
        initialized_ = true;
    } else {
        value_ += alpha_ * (x - value_);
    }
}

void Ewma::reset() noexcept {
    value_ = 0.0;
    initialized_ = false;
}

} // namespace shog
