// Error handling helpers for the shoggoth library.
//
// Two levels, per the house rules:
//  - SHOG_REQUIRE: validates caller-supplied input on public API
//    boundaries; throws std::invalid_argument with context on failure.
//  - SHOG_CHECK:   validates internal invariants / states that indicate a
//    library bug; throws shog::Internal_error (so tests can catch it)
//    rather than aborting, keeping the library usable as a long-running
//    service component.
#pragma once

#include <stdexcept>
#include <string>

namespace shog {

/// Thrown when an internal invariant of the library is violated.
class Internal_error : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_requirement(const char* expr, const char* file, int line,
                                           const std::string& what) {
    throw std::invalid_argument(std::string{"requirement failed: "} + expr + " at " + file + ":" +
                                std::to_string(line) + (what.empty() ? "" : (": " + what)));
}

[[noreturn]] inline void throw_internal(const char* expr, const char* file, int line,
                                        const std::string& what) {
    throw Internal_error(std::string{"internal invariant failed: "} + expr + " at " + file + ":" +
                         std::to_string(line) + (what.empty() ? "" : (": " + what)));
}

} // namespace detail
} // namespace shog

#define SHOG_REQUIRE(expr, msg)                                                   \
    do {                                                                          \
        if (!(expr)) {                                                            \
            ::shog::detail::throw_requirement(#expr, __FILE__, __LINE__, (msg));  \
        }                                                                         \
    } while (false)

#define SHOG_CHECK(expr, msg)                                                     \
    do {                                                                          \
        if (!(expr)) {                                                            \
            ::shog::detail::throw_internal(#expr, __FILE__, __LINE__, (msg));     \
        }                                                                         \
    } while (false)
