// Plain-text table rendering for the benchmark harnesses: every bench
// binary prints the same rows the paper's tables report, via this helper.
#pragma once

#include <string>
#include <vector>

namespace shog {

class Text_table {
public:
    explicit Text_table(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    /// Render with column-aligned plain text. Numeric-looking cells are
    /// right-aligned, text cells left-aligned.
    [[nodiscard]] std::string str() const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

    /// Format helper: fixed-precision double.
    [[nodiscard]] static std::string num(double value, int precision = 1);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace shog
