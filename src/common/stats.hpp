// Small statistics toolkit: running moments, quantiles, empirical CDFs,
// and windowed averages. Used by the metrics collectors and the adaptive
// sampling controller.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <vector>

namespace shog {

/// Numerically stable running mean/variance (Welford).
class Running_stats {
public:
    void add(double x) noexcept;
    void merge(const Running_stats& other) noexcept;
    void reset() noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
    [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }
    [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Linear-interpolated quantile of a sample (the R-7 estimator, the same
/// definition NumPy uses by default). q in [0, 1]. Throws on empty input.
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// Exact streaming quantile at a fixed level: O(log n) insertion, O(1)
/// query, O(n) memory but no end-of-run sort or full-sample scan. The two
/// internal heaps straddle the R-7 interpolation point, so value() returns
/// bit-for-bit what quantile(all_samples, q) would — this is an *exact*
/// order-statistic structure, not a sketch (pinned by the stats tests).
/// Used for fleet aggregates (p95 label latency) that were previously
/// sort-at-end scans over per-run vectors.
class Streaming_quantile {
public:
    explicit Streaming_quantile(double q);

    void add(double x);
    [[nodiscard]] std::size_t count() const noexcept { return lower_.size() + upper_.size(); }
    [[nodiscard]] bool empty() const noexcept { return count() == 0; }
    /// The R-7 quantile of everything added so far. Throws when empty.
    [[nodiscard]] double value() const;

private:
    double q_;
    /// The smallest floor((n-1)*q) + 1 samples; top() is the lower order
    /// statistic of the interpolation pair.
    std::priority_queue<double> lower_;
    /// The rest; top() is the upper order statistic.
    std::priority_queue<double, std::vector<double>, std::greater<double>> upper_;
};

/// Empirical CDF over a fixed sample. Evaluation is O(log n).
class Ecdf {
public:
    explicit Ecdf(std::vector<double> samples);

    /// P(X <= x).
    [[nodiscard]] double at(double x) const noexcept;
    /// Inverse CDF (quantile) for p in [0, 1].
    [[nodiscard]] double inverse(double p) const;
    [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
    [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept { return sorted_; }

private:
    std::vector<double> sorted_;
};

/// Fixed-horizon moving average over the most recent `capacity` samples.
class Moving_average {
public:
    explicit Moving_average(std::size_t capacity);

    void add(double x);
    [[nodiscard]] double mean() const noexcept;
    [[nodiscard]] std::size_t count() const noexcept { return buffer_.size(); }
    [[nodiscard]] bool full() const noexcept { return buffer_.size() == capacity_; }
    void reset() noexcept;

private:
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::vector<double> buffer_;
    double sum_ = 0.0;
};

/// Exponentially-weighted moving average with configurable smoothing.
class Ewma {
public:
    explicit Ewma(double alpha);

    void add(double x) noexcept;
    [[nodiscard]] double value() const noexcept { return value_; }
    [[nodiscard]] bool initialized() const noexcept { return initialized_; }
    void reset() noexcept;

private:
    double alpha_;
    double value_ = 0.0;
    bool initialized_ = false;
};

} // namespace shog
