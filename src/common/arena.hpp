// Chunked object arena with stable addresses.
//
// The cluster harness keeps one simulation-state object per device and
// hands out references that event closures capture for the whole run, so
// the container must never relocate elements — but a vector of unique_ptrs
// costs one allocation and one pointer chase per device, which is real
// money at 10^4 devices. Stable_arena places objects contiguously inside
// fixed-size chunks: addresses are stable for the arena's lifetime,
// neighbours share cache lines, and construction is one placement-new per
// element plus one allocation per chunk.
//
// Threading: NOT thread-safe, by design — an arena belongs to one engine,
// and each sim::run_sweep cell builds its own engine. Arena addresses are
// also layout-dependent: they must never feed ordering or keyed iteration
// that reaches output (shog_lint's ptr-key rule enforces this).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/require.hpp"

namespace shog {

template <typename T, std::size_t ChunkCapacity = 64>
class Stable_arena {
    static_assert(ChunkCapacity > 0, "chunks must hold at least one element");

public:
    Stable_arena() = default;
    Stable_arena(const Stable_arena&) = delete;
    Stable_arena& operator=(const Stable_arena&) = delete;
    Stable_arena(Stable_arena&&) = delete;
    Stable_arena& operator=(Stable_arena&&) = delete;

    ~Stable_arena() { clear(); }

    /// Construct a new element in place; the returned reference (and its
    /// address) stays valid until clear()/destruction.
    template <typename... Args>
    T& emplace_back(Args&&... args) {
        if (size_ == chunks_.size() * ChunkCapacity) {
            chunks_.push_back(std::make_unique<Chunk>());
        }
        Chunk& chunk = *chunks_[size_ / ChunkCapacity];
        T* slot = chunk.slot(size_ % ChunkCapacity);
        T* element = ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
        ++size_;
        return *element;
    }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    [[nodiscard]] T& operator[](std::size_t i) {
        SHOG_REQUIRE(i < size_, "arena index out of range");
        return *chunks_[i / ChunkCapacity]->slot(i % ChunkCapacity);
    }
    [[nodiscard]] const T& operator[](std::size_t i) const {
        SHOG_REQUIRE(i < size_, "arena index out of range");
        return *chunks_[i / ChunkCapacity]->slot(i % ChunkCapacity);
    }

    /// Destroy all elements (reverse construction order) and release chunks.
    void clear() noexcept {
        for (std::size_t i = size_; i > 0; --i) {
            chunks_[(i - 1) / ChunkCapacity]->slot((i - 1) % ChunkCapacity)->~T();
        }
        size_ = 0;
        chunks_.clear();
    }

private:
    struct Chunk {
        alignas(T) unsigned char storage[sizeof(T) * ChunkCapacity];

        [[nodiscard]] T* slot(std::size_t i) noexcept {
            return std::launder(reinterpret_cast<T*>(storage + i * sizeof(T)));
        }
        [[nodiscard]] const T* slot(std::size_t i) const noexcept {
            return std::launder(reinterpret_cast<const T*>(storage + i * sizeof(T)));
        }
    };

    std::vector<std::unique_ptr<Chunk>> chunks_;
    std::size_t size_ = 0;
};

} // namespace shog
