// Discrete-event simulation primitives: a simulation clock plus a
// time-ordered event queue with stable FIFO ordering for simultaneous
// events (required for deterministic replays).
//
// Two implementations share the same API and the same observable behaviour:
//
//  - Event_queue: a calendar queue (Brown 1988) — the production engine.
//    Pending events live in fixed-width time buckets ("rungs"); only the
//    bucket currently being drained is kept as a binary heap, future
//    buckets are unsorted append-only vectors, and events beyond the
//    window sit in a binary-heap overflow rung. schedule() is O(1)
//    amortized for in-window events, which is what makes 10^7-event
//    city-scale fleet runs cheap.
//  - Heap_event_queue: the original single std::priority_queue. Kept as
//    the reference implementation: the equivalence test drives both with
//    identical traces and asserts identical execution order.
//
// Determinism contract (both implementations): events fire in ascending
// (time, insertion sequence) order. Bucket geometry cannot break this:
// the bucket index is a monotone non-decreasing function of the timestamp,
// so a strictly smaller index implies a strictly earlier time, and events
// that tie on time always land in the same rung, where the exact
// (time, seq) comparison orders them.
//
// Threading: deliberately NOT thread-safe. A queue is owned by exactly one
// simulation engine, and under sim::run_sweep each parallel cell constructs
// its own engine (and thus its own queue) — cross-thread sharing of one
// queue would serialize the clock and is never done. shog_lint and
// -Wthread-safety guard the sharing layer above, not this class.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/require.hpp"
#include "common/units.hpp"

namespace shog {

/// A scheduled callback. Events at equal times fire in insertion order.
class Event_queue {
public:
    using Action = std::function<void()>;

    void schedule(Sim_time at, Action action) {
        SHOG_REQUIRE(at >= now_, "cannot schedule an event in the past");
        insert(Entry{at, sequence_++, std::move(action)});
        ++size_;
    }

    void schedule_in(Sim_duration delay, Action action) {
        schedule(now_ + delay, std::move(action));
    }

    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::size_t pending() const noexcept { return size_; }
    [[nodiscard]] Sim_time now() const noexcept { return now_; }

    [[nodiscard]] Sim_time next_time() const {
        SHOG_REQUIRE(size_ > 0, "no pending events");
        // Rung maintenance only repacks internal storage; the observable
        // state (pending set, order, clock) is untouched, so next_time()
        // stays logically const.
        const_cast<Event_queue*>(this)->advance_to_nonempty();
        return current_.front().at;
    }

    /// Pop and run the earliest event; advances the clock to its time. The
    /// entry is moved out of the rung before it runs, so the action's
    /// closure is never copied (and re-entrant schedule() calls from inside
    /// the action cannot invalidate it).
    void step() {
        SHOG_REQUIRE(size_ > 0, "no pending events");
        advance_to_nonempty();
        std::pop_heap(current_.begin(), current_.end(), Later{});
        Entry entry = std::move(current_.back());
        current_.pop_back();
        --size_;
        now_ = entry.at;
        entry.action();
    }

    /// Run events until the queue drains or the clock passes `until`.
    /// Events scheduled *during* the final step at exactly `until` still
    /// execute: the loop re-examines the earliest pending time after every
    /// step. Returns the number of events executed.
    std::size_t run_until(Sim_time until) {
        std::size_t executed = 0;
        while (size_ > 0 && next_time() <= until) {
            step();
            ++executed;
        }
        now_ = std::max(now_, until);
        return executed;
    }

    /// Advance the clock to `to` without executing anything. Only legal when
    /// no pending event precedes `to` — the sharded engine uses this to align
    /// a queue's clock with an externally ordered interaction (a cloud op
    /// applied at its recorded time) without firing same-time events, which
    /// by the (time, seq) contract come after the op.
    void advance_to(Sim_time to) {
        SHOG_REQUIRE(size_ == 0 || !(next_time() < to),
                     "advance_to would skip a pending event");
        now_ = std::max(now_, to);
    }

private:
    struct Entry {
        Sim_time at;
        std::uint64_t seq;
        Action action;
    };
    /// Heap comparator: "a fires later than b" — makes std:: heap
    /// primitives yield the earliest (time, seq) at the front.
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.at != b.at) {
                return a.at > b.at;
            }
            return a.seq > b.seq; // stable FIFO for equal times
        }
    };

    static constexpr std::size_t min_buckets = 64;
    static constexpr std::size_t max_buckets = std::size_t{1} << 16;
    static constexpr Sim_duration min_width{1e-9};

    /// Bucket index of `at` under the current geometry, or `bucket_count()`
    /// when the event belongs in the overflow rung. Monotone non-decreasing
    /// in `at`, which is all the determinism proof needs.
    [[nodiscard]] std::size_t bucket_index(Sim_time at) const noexcept {
        const Sim_duration offset = at - window_start_;
        if (offset < Sim_duration{}) {
            // The clock can trail a rebuilt window (run_until stopped short
            // of the overflow minimum the window was re-anchored on); such
            // events join bucket 0, where exact comparison orders them.
            return 0;
        }
        if (!(offset < span_)) { // catches infinities and FP boundary slop
            return buckets_.size();
        }
        const auto idx = static_cast<std::size_t>(offset / width_);
        return std::min(idx, buckets_.size() - 1);
    }

    void insert(Entry entry) {
        if (buckets_.empty()) {
            init_window(entry.at);
        }
        const std::size_t idx = bucket_index(entry.at);
        if (idx >= buckets_.size()) {
            if (entry.at > max_overflow_at_) {
                max_overflow_at_ = entry.at;
            }
            overflow_.push_back(std::move(entry));
            std::push_heap(overflow_.begin(), overflow_.end(), Later{});
            return;
        }
        if (static_cast<std::ptrdiff_t>(idx) <= cursor_) {
            // The event's nominal bucket is already being (or has been)
            // drained; it is still >= now_, so it joins the current rung's
            // heap and the exact (time, seq) comparison places it.
            current_.push_back(std::move(entry));
            std::push_heap(current_.begin(), current_.end(), Later{});
            return;
        }
        buckets_[idx].push_back(std::move(entry));
    }

    /// Make `current_` non-empty: advance the cursor over drained buckets,
    /// heapifying the next populated one; when the window is exhausted,
    /// rebuild it around the overflow rung. Precondition: size_ > 0.
    void advance_to_nonempty() {
        while (current_.empty()) {
            std::size_t j = cursor_ < 0 ? 0 : static_cast<std::size_t>(cursor_) + 1;
            while (j < buckets_.size() && buckets_[j].empty()) {
                ++j;
            }
            if (j < buckets_.size()) {
                cursor_ = static_cast<std::ptrdiff_t>(j);
                current_.swap(buckets_[j]);
                if (current_.size() > 1) {
                    std::make_heap(current_.begin(), current_.end(), Later{});
                }
                continue;
            }
            SHOG_CHECK(!overflow_.empty(), "event rungs empty but size_ > 0");
            rebuild_window();
        }
    }

    void init_window(Sim_time first_at) {
        buckets_.assign(min_buckets, {});
        cursor_ = -1;
        window_start_ = first_at;
        width_ = Sim_duration{1.0 / static_cast<double>(min_buckets)};
        span_ = width_ * static_cast<double>(buckets_.size());
    }

    /// Re-anchor the window at the overflow rung's minimum and re-derive
    /// the geometry from its population: ~one pending event per bucket,
    /// width spanning the observed overflow range. Events beyond the new
    /// window stay in the overflow heap.
    void rebuild_window() {
        std::vector<Entry> spill;
        spill.swap(overflow_);
        window_start_ = spill.front().at; // heap front == minimum
        std::size_t count = min_buckets;
        while (count < spill.size() && count < max_buckets) {
            count *= 2;
        }
        const Sim_duration range = max_overflow_at_ - window_start_;
        width_ = std::max(range / static_cast<double>(count), min_width);
        span_ = width_ * static_cast<double>(count);
        buckets_.assign(count, {});
        cursor_ = -1;
        for (Entry& entry : spill) {
            const std::size_t idx = bucket_index(entry.at);
            if (idx >= buckets_.size()) {
                overflow_.push_back(std::move(entry));
            } else {
                buckets_[idx].push_back(std::move(entry));
            }
        }
        if (!overflow_.empty()) {
            std::make_heap(overflow_.begin(), overflow_.end(), Later{});
        }
    }

    std::vector<std::vector<Entry>> buckets_;
    std::vector<Entry> current_;  ///< heap: the bucket being drained
    std::vector<Entry> overflow_; ///< heap: events beyond the window
    std::ptrdiff_t cursor_ = -1;  ///< index of the bucket behind current_
    Sim_time window_start_;
    Sim_duration width_{1.0};
    Sim_duration span_;
    Sim_time max_overflow_at_;
    std::size_t size_ = 0;
    std::uint64_t sequence_ = 0;
    Sim_time now_;
};

/// The original binary-heap event queue. Reference implementation for the
/// calendar queue's equivalence test; not used by the simulation harness.
class Heap_event_queue {
public:
    using Action = std::function<void()>;

    void schedule(Sim_time at, Action action) {
        SHOG_REQUIRE(at >= now_, "cannot schedule an event in the past");
        heap_.push(Entry{at, sequence_++, std::move(action)});
    }

    void schedule_in(Sim_duration delay, Action action) {
        schedule(now_ + delay, std::move(action));
    }

    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
    [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
    [[nodiscard]] Sim_time now() const noexcept { return now_; }
    [[nodiscard]] Sim_time next_time() const {
        SHOG_REQUIRE(!heap_.empty(), "no pending events");
        return heap_.top().at;
    }

    /// Pop and run the earliest event; advances the clock to its time.
    void step() {
        SHOG_REQUIRE(!heap_.empty(), "no pending events");
        // std::priority_queue::top() is const&, but moving the action out
        // is safe: pop()'s sift compares only (at, seq), which the move
        // leaves intact, and the moved-from std::function is destructible.
        Entry entry = std::move(const_cast<Entry&>(heap_.top()));
        heap_.pop();
        now_ = entry.at;
        entry.action();
    }

    /// Run events until the queue drains or the clock passes `until`.
    /// Returns the number of events executed.
    std::size_t run_until(Sim_time until) {
        std::size_t executed = 0;
        while (!heap_.empty() && heap_.top().at <= until) {
            step();
            ++executed;
        }
        now_ = std::max(now_, until);
        return executed;
    }

    /// Advance the clock to `to` without executing anything (see
    /// Event_queue::advance_to).
    void advance_to(Sim_time to) {
        SHOG_REQUIRE(heap_.empty() || !(heap_.top().at < to),
                     "advance_to would skip a pending event");
        now_ = std::max(now_, to);
    }

private:
    struct Entry {
        Sim_time at;
        std::uint64_t seq;
        Action action;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.at != b.at) {
                return a.at > b.at;
            }
            return a.seq > b.seq; // stable FIFO for equal times
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t sequence_ = 0;
    Sim_time now_;
};

} // namespace shog
