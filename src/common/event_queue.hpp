// Discrete-event simulation primitives: a simulation clock plus a
// time-ordered event queue with stable FIFO ordering for simultaneous
// events (required for deterministic replays).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/require.hpp"
#include "common/units.hpp"

namespace shog {

/// A scheduled callback. Events at equal times fire in insertion order.
class Event_queue {
public:
    using Action = std::function<void()>;

    void schedule(Seconds at, Action action) {
        SHOG_REQUIRE(at >= now_, "cannot schedule an event in the past");
        heap_.push(Entry{at, sequence_++, std::move(action)});
    }

    void schedule_in(Seconds delay, Action action) { schedule(now_ + delay, std::move(action)); }

    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
    [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
    [[nodiscard]] Seconds now() const noexcept { return now_; }
    [[nodiscard]] Seconds next_time() const {
        SHOG_REQUIRE(!heap_.empty(), "no pending events");
        return heap_.top().at;
    }

    /// Pop and run the earliest event; advances the clock to its time.
    void step() {
        SHOG_REQUIRE(!heap_.empty(), "no pending events");
        // std::priority_queue::top() returns const&; we must copy the action
        // out before pop. Entries are cheap (one std::function).
        Entry entry = heap_.top();
        heap_.pop();
        now_ = entry.at;
        entry.action();
    }

    /// Run events until the queue drains or the clock passes `until`.
    /// Returns the number of events executed.
    std::size_t run_until(Seconds until) {
        std::size_t executed = 0;
        while (!heap_.empty() && heap_.top().at <= until) {
            step();
            ++executed;
        }
        now_ = std::max(now_, until);
        return executed;
    }

private:
    struct Entry {
        Seconds at;
        std::uint64_t seq;
        Action action;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.at != b.at) {
                return a.at > b.at;
            }
            return a.seq > b.seq; // stable FIFO for equal times
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t sequence_ = 0;
    Seconds now_ = 0.0;
};

} // namespace shog
