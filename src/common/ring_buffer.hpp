// Fixed-capacity ring buffer keeping the most recent N items. Used for the
// recent-frame horizons in the sampling controller and fps tracking.
#pragma once

#include <cstddef>
#include <vector>

#include "common/require.hpp"

namespace shog {

template <typename T>
class Ring_buffer {
public:
    explicit Ring_buffer(std::size_t capacity) : capacity_{capacity} {
        SHOG_REQUIRE(capacity > 0, "ring buffer capacity must be positive");
        items_.reserve(capacity);
    }

    void push(T item) {
        if (items_.size() < capacity_) {
            items_.push_back(std::move(item));
        } else {
            items_[head_] = std::move(item);
            head_ = (head_ + 1) % capacity_;
        }
    }

    [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
    [[nodiscard]] bool full() const noexcept { return items_.size() == capacity_; }

    /// Oldest-first access: at(0) is the oldest retained item.
    [[nodiscard]] const T& at(std::size_t i) const {
        SHOG_REQUIRE(i < items_.size(), "ring buffer index out of range");
        return items_[(head_ + i) % items_.size()];
    }

    /// Newest item.
    [[nodiscard]] const T& back() const {
        SHOG_REQUIRE(!items_.empty(), "ring buffer is empty");
        return at(items_.size() - 1);
    }

    void clear() noexcept {
        items_.clear();
        head_ = 0;
    }

    /// Snapshot oldest-first.
    [[nodiscard]] std::vector<T> to_vector() const {
        std::vector<T> out;
        out.reserve(items_.size());
        for (std::size_t i = 0; i < items_.size(); ++i) {
            out.push_back(at(i));
        }
        return out;
    }

private:
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::vector<T> items_;
};

} // namespace shog
