// Clang Thread Safety Analysis surface for the whole library.
//
// The repo's headline contract is byte-identical determinism for any worker
// count (docs/ARCHITECTURE.md), and its concurrency lives behind a small
// number of explicitly shared members (sim/sweep.cpp's worker pool today,
// device-sharded runs next). These macros make the locking discipline part
// of the *type system*: every mutex-guarded member is declared
// `SHOG_GUARDED_BY(mutex)`, every function that expects the lock held is
// `SHOG_REQUIRES(mutex)`, and a clang build with `-DSHOG_THREAD_SAFETY=ON`
// (-Wthread-safety -Werror) rejects any access that the analysis cannot
// prove safe — at compile time, before TSan ever has to catch it racing.
//
// Under non-clang compilers (CI builds gcc too) every macro expands to
// nothing, so the annotations are free. tools/lint/shog_lint.py closes the
// loop: bare `std::mutex` members are a lint error — shared state must use
// the capability-annotated `shog::Mutex` below so the analysis can see it.
//
// Grammar (docs/ANALYSIS.md has the worked examples):
//   SHOG_CAPABILITY(x)      — type declares a capability named x ("mutex")
//   SHOG_GUARDED_BY(m)      — member may only be read/written with m held
//   SHOG_PT_GUARDED_BY(m)   — pointee (not the pointer) guarded by m
//   SHOG_REQUIRES(m)        — caller must hold m before calling
//   SHOG_ACQUIRE(m) / SHOG_RELEASE(m) — function takes / drops m
//   SHOG_EXCLUDES(m)        — caller must NOT hold m (deadlock guard)
//   SHOG_NO_THREAD_SAFETY_ANALYSIS — opt-out for code the analysis cannot
//                             model (use sparingly, justify in a comment)
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SHOG_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SHOG_THREAD_ANNOTATION
#define SHOG_THREAD_ANNOTATION(x) // no-op outside clang
#endif

#define SHOG_CAPABILITY(x) SHOG_THREAD_ANNOTATION(capability(x))
#define SHOG_SCOPED_CAPABILITY SHOG_THREAD_ANNOTATION(scoped_lockable)
#define SHOG_GUARDED_BY(x) SHOG_THREAD_ANNOTATION(guarded_by(x))
#define SHOG_PT_GUARDED_BY(x) SHOG_THREAD_ANNOTATION(pt_guarded_by(x))
#define SHOG_REQUIRES(...) SHOG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SHOG_REQUIRES_SHARED(...) \
    SHOG_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define SHOG_ACQUIRE(...) SHOG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SHOG_RELEASE(...) SHOG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SHOG_TRY_ACQUIRE(...) SHOG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SHOG_EXCLUDES(...) SHOG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SHOG_ASSERT_CAPABILITY(x) SHOG_THREAD_ANNOTATION(assert_capability(x))
#define SHOG_RETURN_CAPABILITY(x) SHOG_THREAD_ANNOTATION(lock_returned(x))
#define SHOG_NO_THREAD_SAFETY_ANALYSIS SHOG_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace shog {

/// std::mutex with the capability attribute, so members can be declared
/// SHOG_GUARDED_BY(mutex_) and clang's analysis tracks who holds it. This
/// is the only mutex type the lint allows as a class member (rule
/// bare-mutex in tools/lint/shog_lint.py): a bare std::mutex is invisible
/// to the analysis, which is exactly how unguarded state slips in.
class SHOG_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() SHOG_ACQUIRE() { mutex_.lock(); }
    void unlock() SHOG_RELEASE() { mutex_.unlock(); }
    [[nodiscard]] bool try_lock() SHOG_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

private:
    std::mutex mutex_;
};

/// Scoped lock over shog::Mutex (std::lock_guard is not annotated, so the
/// analysis would not see the acquire/release pair).
class SHOG_SCOPED_CAPABILITY Mutex_lock {
public:
    explicit Mutex_lock(Mutex& mutex) SHOG_ACQUIRE(mutex) : mutex_{mutex} { mutex_.lock(); }
    ~Mutex_lock() SHOG_RELEASE() { mutex_.unlock(); }
    Mutex_lock(const Mutex_lock&) = delete;
    Mutex_lock& operator=(const Mutex_lock&) = delete;

private:
    Mutex& mutex_;
};

} // namespace shog
