// Fleet-scaling bench: one JSON line per run so future PRs can track the
// devices-per-GPU scaling curve and the policy/latency knee over time.
//
//   ./bench_fleet [duration_seconds] [seed] [max_devices]
//
// Two sections:
//  1. the homogeneous FIFO scaling sweep (strategy x fleet size), the PR 1
//     curve:
//       {"bench":"fleet","strategy":"Shoggoth","devices":4,...}
//  2. a policy x fleet-mix sweep at N = max_devices with AMS-style cloud
//     fine-tunes in the job mix (half the devices run AMS), under a steady
//     and a correlated day/night drift scenario:
//       {"bench":"fleet_policy","policy":"priority","mix":"heterogeneous",
//        "scenario":"steady","p95_label_latency_s":...,
//        "gpu_utilization":...,...}
//     The p95-label-latency / GPU-utilization pair per policy is the knee
//     to watch: priority and fair_share should cut p95 vs fifo without
//     giving up utilization.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fleet/testbed.hpp"

using namespace shog;

namespace {

void emit_scaling_json(const char* strategy, std::size_t devices,
                       const sim::Cluster_result& r) {
    std::string maps;
    for (const sim::Run_result& d : r.devices) {
        if (!maps.empty()) {
            maps += ',';
        }
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%.4f", d.map);
        maps += buffer;
    }
    std::printf("{\"bench\":\"fleet\",\"strategy\":\"%s\",\"devices\":%zu,"
                "\"gpu_utilization\":%.4f,\"gpu_seconds_per_device\":%.2f,"
                "\"mean_label_latency_s\":%.3f,\"p95_label_latency_s\":%.3f,"
                "\"mean_label_wait_s\":%.3f,\"cloud_jobs\":%zu,"
                "\"fleet_map\":%.4f,\"map_per_device\":[%s]}\n",
                strategy, devices, r.gpu_utilization, r.gpu_seconds_per_device(),
                r.mean_label_latency, r.p95_label_latency, r.mean_label_wait, r.cloud_jobs,
                r.fleet_map, maps.c_str());
}

void emit_policy_json(const char* policy, double preempt_s, const char* mix,
                      const char* scenario, std::size_t shoggoth_devices,
                      std::size_t ams_devices, const sim::Cluster_result& r) {
    std::printf("{\"bench\":\"fleet_policy\",\"policy\":\"%s\",\"preempt_s\":%.1f,"
                "\"mix\":\"%s\",\"scenario\":\"%s\",\"devices\":%zu,"
                "\"shoggoth\":%zu,\"ams\":%zu,"
                "\"gpu_utilization\":%.4f,\"mean_label_latency_s\":%.3f,"
                "\"p95_label_latency_s\":%.3f,\"mean_label_wait_s\":%.3f,"
                "\"cloud_jobs\":%zu,\"preemptions\":%zu,\"peak_queue_depth\":%zu,"
                "\"fleet_map\":%.4f}\n",
                policy, preempt_s, mix, scenario, shoggoth_devices + ams_devices,
                shoggoth_devices, ams_devices, r.gpu_utilization, r.mean_label_latency,
                r.p95_label_latency, r.mean_label_wait, r.cloud_jobs, r.preemptions,
                r.peak_queue_depth, r.fleet_map);
}

void run_policy_sweep(const fleet::Testbed& testbed, const char* scenario,
                      std::size_t devices, std::uint64_t seed) {
    const std::size_t ams_devices = devices / 2;
    const std::size_t shoggoth_devices = devices - ams_devices;
    for (const char* mix : {"homogeneous", "heterogeneous"}) {
        const bool heterogeneous = std::string{mix} == "heterogeneous";
        for (const fleet::Policy_setup& setup : fleet::default_policy_setups()) {
            emit_policy_json(setup.label, setup.preempt_label_wait, mix, scenario,
                             shoggoth_devices, ams_devices,
                             fleet::run_policy_cell(testbed, devices, heterogeneous,
                                                    setup, seed));
        }
    }
}

} // namespace

int main(int argc, char** argv) {
    const double duration = argc > 1 ? std::atof(argv[1]) : 180.0;
    const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 19;
    const std::size_t max_devices =
        argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 8;
    if (duration <= 0.0 || max_devices < 1) {
        std::fprintf(stderr,
                     "usage: bench_fleet [duration_seconds>0] [seed] [max_devices>=1]\n");
        return 1;
    }

    const fleet::Testbed testbed = fleet::make_testbed("waymo", max_devices, seed, duration);
    sim::Cluster_config config;
    config.harness.seed = seed ^ 0x8888;

    for (std::size_t n = 1; n <= max_devices; n *= 2) {
        fleet::Fleet shoggoth = fleet::make_shoggoth_fleet(testbed, n);
        emit_scaling_json("Shoggoth", n, sim::run_cluster(shoggoth.specs, config));
        fleet::Fleet ams = fleet::make_ams_fleet(testbed, n);
        emit_scaling_json("AMS", n, sim::run_cluster(ams.specs, config));
    }

    run_policy_sweep(testbed, "steady", max_devices, seed);

    const fleet::Testbed correlated =
        fleet::make_correlated_drift_testbed("waymo", max_devices, seed, duration);
    run_policy_sweep(correlated, "correlated_drift", max_devices, seed);
    return 0;
}
