// Fleet-scaling bench: one JSON line per (strategy, fleet size) so future
// PRs can track the devices-per-GPU scaling curve over time.
//
//   ./bench_fleet [duration_seconds] [seed] [max_devices]
//
// Output (one line per run):
//   {"bench":"fleet","strategy":"Shoggoth","devices":4,"gpu_utilization":...,
//    "gpu_seconds_per_device":...,"mean_label_latency_s":...,
//    "p95_label_latency_s":...,"fleet_map":...,"map_per_device":[...]}
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fleet/testbed.hpp"

using namespace shog;

namespace {

void emit_json(const char* strategy, std::size_t devices, const sim::Cluster_result& r) {
    std::string maps;
    for (const sim::Run_result& d : r.devices) {
        if (!maps.empty()) {
            maps += ',';
        }
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%.4f", d.map);
        maps += buffer;
    }
    std::printf("{\"bench\":\"fleet\",\"strategy\":\"%s\",\"devices\":%zu,"
                "\"gpu_utilization\":%.4f,\"gpu_seconds_per_device\":%.2f,"
                "\"mean_label_latency_s\":%.3f,\"p95_label_latency_s\":%.3f,"
                "\"mean_label_wait_s\":%.3f,\"cloud_jobs\":%zu,"
                "\"fleet_map\":%.4f,\"map_per_device\":[%s]}\n",
                strategy, devices, r.gpu_utilization, r.gpu_seconds_per_device(),
                r.mean_label_latency, r.p95_label_latency, r.mean_label_wait, r.cloud_jobs,
                r.fleet_map, maps.c_str());
}

} // namespace

int main(int argc, char** argv) {
    const double duration = argc > 1 ? std::atof(argv[1]) : 180.0;
    const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 19;
    const std::size_t max_devices =
        argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 8;
    if (duration <= 0.0 || max_devices < 1) {
        std::fprintf(stderr,
                     "usage: bench_fleet [duration_seconds>0] [seed] [max_devices>=1]\n");
        return 1;
    }

    const fleet::Testbed testbed = fleet::make_testbed("waymo", max_devices, seed, duration);
    sim::Cluster_config config;
    config.harness.seed = seed ^ 0x8888;

    for (std::size_t n = 1; n <= max_devices; n *= 2) {
        fleet::Fleet shoggoth = fleet::make_shoggoth_fleet(testbed, n);
        emit_json("Shoggoth", n, sim::run_cluster(shoggoth.specs, config));
        fleet::Fleet ams = fleet::make_ams_fleet(testbed, n);
        emit_json("AMS", n, sim::run_cluster(ams.specs, config));
    }
    return 0;
}
