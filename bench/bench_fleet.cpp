// Fleet-scaling bench: one JSON line per run so future PRs can track the
// devices-per-GPU scaling curve and the policy/latency knee over time.
//
//   ./bench_fleet [duration_seconds] [seed] [max_devices] [scale_max_devices] [workers]
//                 [scale_stride] [--shards K] [--trace path.json]
//
// `workers` feeds sim::run_sweep: the parameter sweeps (sections 1-4) are
// independent cells fanned across a worker pool, and because run_sweep
// merges results in cell order the emitted JSON is byte-identical for any
// worker count (workers=0 means one per hardware thread). The timed
// sections (5-7) always run sequentially: wall-clock and peak-RSS
// samples would be polluted by concurrent cells.
//
// `--shards K` routes every fleet run in sections 1-4 through
// sim::run_cluster_sharded with K device shards instead of the sequential
// engine (0, the default, keeps run_cluster). The sharded engine is
// byte-identical by contract, so stdout must not change — which is exactly
// what tools/check_bit_identity.sh pins against the golden hash.
//
// `--trace path.json` appends one fully traced fleet_reliability cell (a
// straggling, flapping 2-GPU cloud, so the trace shows occupancy spans, a
// preemption and a straggler re-queue) after the sweeps and writes a
// Chrome-trace/Perfetto JSON to `path.json` plus the sampled metrics to
// `path.json.metrics.csv` (see docs/OBSERVABILITY.md). All trace output
// goes to those files and stderr; stdout is untouched, so the bit-identity
// golden holds with or without the flag.
//
// Seven sections:
//  1. the homogeneous FIFO scaling sweep (strategy x fleet size), the PR 1
//     curve:
//       {"bench":"fleet","strategy":"Shoggoth","devices":4,...}
//  2. a policy x fleet-mix sweep at N = max_devices with AMS-style cloud
//     fine-tunes in the job mix (half the devices run AMS), under a steady
//     and a correlated day/night drift scenario:
//       {"bench":"fleet_policy","policy":"priority","mix":"heterogeneous",
//        "scenario":"steady","p95_label_latency_s":...,
//        "gpu_utilization":...,...}
//     The p95-label-latency / GPU-utilization pair per policy is the knee
//     to watch: priority and fair_share should cut p95 vs fifo without
//     giving up utilization.
//  3. the multi-GPU sharding sweep at N = max_devices heterogeneous:
//     gpu_count x placement x policy x max_batch on the same contended
//     share, locating the throughput/latency knee of cross-device teacher
//     batching and showing where device_affinity / staleness beat the PR 2
//     best:
//       {"bench":"fleet_sharding","gpus":2,"placement":"device_affinity",
//        "policy":"staleness","max_batch":4,"p95_label_latency_s":...,
//        "warm_dispatches":...,...}
//  4. the cloud-reliability sweep at N = max_devices heterogeneous:
//     straggler slowdown x failure rate x placement (plus the straggler
//     re-queue bound) on the 2-GPU contended share — the tail-at-scale
//     regime where one slow or flapping shard decides p95 label latency:
//       {"bench":"fleet_reliability","placement":"speed_aware",
//        "straggler_speed":0.25,"mtbf_s":45.0,"requeue_factor":2.0,
//        "p95_label_latency_s":...,"failures":...,"straggler_requeues":...}
//  5. a pure-scheduler microbench (no video, no models): an oversubscribed
//     64-device submit storm whose queue depth reaches ~20k, timing the
//     dispatch path. This is the regression guard for the O(1)
//     is_waiting/overdue indexes (the pre-index scheduler was quadratic in
//     queue depth: ~1.4 s for the fifo+preempt storm vs ~0.09 s now):
//       {"bench":"fleet_sched_micro","policy":"fifo","preempt_s":2.0,...}
//  6. the city-scale curve: wall-clock and peak RSS of one heterogeneous
//     mixed-strategy run at N in {64, 256, 1000, 4000, 10000} (clamped to
//     scale_max_devices), devices sharing a 64-camera pool. The eval
//     stride grows with N — it strides the *measurement* of accuracy, not
//     the simulated system, so it is quality-neutral per device and keeps
//     10^4 devices in single-digit minutes. Rows run in ascending N
//     because peak_rss_mb() is a process-wide high-water mark:
//       {"bench":"fleet_scale","devices":1000,"eval_stride":27,
//        "wall_ms":...,"peak_rss_mb":...,...}
//  7. the sharded-engine speedup curve: wall-clock of ONE mixed-strategy
//     run at N in {256, 1000, 4000} (clamped to scale_max_devices) through
//     the sequential engine and through run_cluster_sharded at K in
//     {2, 4, 8} device shards. Every row carries wall_ms (and is therefore
//     excluded from the bit-identity hash); cloud_jobs and fleet_map ride
//     along so a broken sharded run is visible at a glance:
//       {"bench":"fleet_shard","devices":4000,"shards":4,"hw_threads":...,
//        "wall_ms":...,"base_wall_ms":...,"speedup":...,...}
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "fleet/testbed.hpp"
#include "obs/trace_export.hpp"
#include "sim/shard.hpp"
#include "sim/sweep.hpp"

using namespace shog;

namespace {

std::string formatf(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    va_list probe;
    va_copy(probe, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, probe);
    va_end(probe);
    std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
    if (n > 0) {
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    }
    va_end(args);
    return out;
}

std::string format_scaling_json(const char* strategy, std::size_t devices,
                                const sim::Cluster_result& r) {
    std::string maps;
    for (const sim::Run_result& d : r.devices) {
        if (!maps.empty()) {
            maps += ',';
        }
        maps += formatf("%.4f", d.map);
    }
    return formatf("{\"bench\":\"fleet\",\"strategy\":\"%s\",\"devices\":%zu,"
                   "\"gpu_utilization\":%.4f,\"gpu_seconds_per_device\":%.2f,"
                   "\"mean_label_latency_s\":%.3f,\"p95_label_latency_s\":%.3f,"
                   "\"mean_label_wait_s\":%.3f,\"cloud_jobs\":%zu,"
                   "\"fleet_map\":%.4f,\"map_per_device\":[%s]}\n",
                   strategy, devices, r.gpu_utilization, r.gpu_seconds_per_device(),
                   r.mean_label_latency, r.p95_label_latency, r.mean_label_wait,
                   r.cloud_jobs, r.fleet_map, maps.c_str());
}

std::string format_policy_json(const char* policy, double preempt_s, const char* mix,
                               const char* scenario, std::size_t shoggoth_devices,
                               std::size_t ams_devices, const sim::Cluster_result& r) {
    return formatf("{\"bench\":\"fleet_policy\",\"policy\":\"%s\",\"preempt_s\":%.1f,"
                   "\"mix\":\"%s\",\"scenario\":\"%s\",\"devices\":%zu,"
                   "\"shoggoth\":%zu,\"ams\":%zu,"
                   "\"gpu_utilization\":%.4f,\"mean_label_latency_s\":%.3f,"
                   "\"p95_label_latency_s\":%.3f,\"mean_label_wait_s\":%.3f,"
                   "\"cloud_jobs\":%zu,\"preemptions\":%zu,\"peak_queue_depth\":%zu,"
                   "\"fleet_map\":%.4f}\n",
                   policy, preempt_s, mix, scenario, shoggoth_devices + ams_devices,
                   shoggoth_devices, ams_devices, r.gpu_utilization, r.mean_label_latency,
                   r.p95_label_latency, r.mean_label_wait, r.cloud_jobs, r.preemptions,
                   r.peak_queue_depth, r.fleet_map);
}

std::string format_sharding_json(const fleet::Sharding_setup& setup, std::size_t devices,
                                 const sim::Cluster_result& r) {
    return formatf("{\"bench\":\"fleet_sharding\",\"cell\":\"%s\",\"gpus\":%zu,"
                   "\"placement\":\"%s\",\"policy\":\"%s\",\"preempt_s\":%.1f,"
                   "\"max_batch\":%zu,\"label_reserved_gpus\":%zu,\"devices\":%zu,"
                   "\"gpu_utilization\":%.4f,\"mean_label_latency_s\":%.3f,"
                   "\"p95_label_latency_s\":%.3f,\"label_jobs\":%zu,\"cloud_jobs\":%zu,"
                   "\"labels_per_s\":%.3f,\"preemptions\":%zu,\"warm_dispatches\":%zu,"
                   "\"peak_queue_depth\":%zu,\"fleet_map\":%.4f}\n",
                   setup.label, setup.gpu_count, to_string(setup.placement),
                   to_string(setup.policy), setup.preempt_label_wait.value(), // raw s
                   setup.max_batch,
                   setup.label_reserved_gpus, devices, r.gpu_utilization,
                   r.mean_label_latency, r.p95_label_latency, r.label_jobs, r.cloud_jobs,
                   r.duration > 0.0 ? static_cast<double>(r.label_jobs) / r.duration : 0.0,
                   r.preemptions, r.warm_dispatches, r.peak_queue_depth, r.fleet_map);
}

std::string format_reliability_json(const fleet::Reliability_setup& setup,
                                    std::size_t devices, const sim::Cluster_result& r) {
    return formatf("{\"bench\":\"fleet_reliability\",\"cell\":\"%s\",\"gpus\":%zu,"
                   "\"placement\":\"%s\",\"policy\":\"%s\",\"straggler_speed\":%.2f,"
                   "\"mtbf_s\":%.1f,\"mttr_s\":%.1f,\"requeue_factor\":%.1f,"
                   "\"devices\":%zu,\"gpu_utilization\":%.4f,"
                   "\"mean_label_latency_s\":%.3f,\"p95_label_latency_s\":%.3f,"
                   "\"label_jobs\":%zu,\"failures\":%zu,\"straggler_requeues\":%zu,"
                   "\"preemptions\":%zu,\"fleet_map\":%.4f}\n",
                   setup.label, setup.gpu_count, to_string(setup.placement),
                   to_string(setup.policy), setup.straggler_speed,
                   std::isfinite(setup.mtbf.value()) ? setup.mtbf.value() : -1.0, // raw s
                   setup.mttr.value(), // raw s
                   setup.straggler_requeue_factor, devices, r.gpu_utilization,
                   r.mean_label_latency, r.p95_label_latency, r.label_jobs, r.failures,
                   r.straggler_requeues, r.preemptions, r.fleet_map);
}

void print_merged(const std::vector<std::string>& lines) {
    std::fputs(sim::merge_sweep_lines(lines).c_str(), stdout);
    std::fflush(stdout);
}

/// Engine selector the --shards flag feeds: 0 = sequential run_cluster,
/// K > 0 = run_cluster_sharded with K device shards (byte-identical output).
sim::Cluster_result run_engine(const std::vector<sim::Device_spec>& specs,
                               const sim::Cluster_config& config, std::size_t shards) {
    if (shards == 0) {
        return sim::run_cluster(specs, config);
    }
    return sim::run_cluster_sharded(specs, config, sim::Shard_options{shards});
}

void run_scaling_sweep(const fleet::Testbed& testbed, std::size_t max_devices,
                       const sim::Cluster_config& config,
                       const sim::Sweep_options& sweep, std::size_t shards) {
    struct Cell {
        const char* strategy;
        std::size_t devices;
    };
    std::vector<Cell> cells;
    for (std::size_t n = 1; n <= max_devices; n *= 2) {
        cells.push_back(Cell{"Shoggoth", n});
        cells.push_back(Cell{"AMS", n});
    }
    print_merged(sim::run_sweep(
        cells.size(),
        [&](std::size_t i) {
            const Cell& cell = cells[i];
            fleet::Fleet fleet =
                std::string{cell.strategy} == "Shoggoth"
                    ? fleet::make_shoggoth_fleet(testbed, cell.devices)
                    : fleet::make_ams_fleet(testbed, cell.devices);
            return format_scaling_json(cell.strategy, cell.devices,
                                       run_engine(fleet.specs, config, shards));
        },
        sweep));
}

void run_policy_sweep(const fleet::Testbed& testbed, const char* scenario,
                      std::size_t devices, std::uint64_t seed,
                      const sim::Sweep_options& sweep, std::size_t shards) {
    const std::size_t ams_devices = devices / 2;
    const std::size_t shoggoth_devices = devices - ams_devices;
    struct Cell {
        const char* mix;
        fleet::Policy_setup setup;
    };
    std::vector<Cell> cells;
    for (const char* mix : {"homogeneous", "heterogeneous"}) {
        for (const fleet::Policy_setup& setup : fleet::default_policy_setups()) {
            cells.push_back(Cell{mix, setup});
        }
    }
    print_merged(sim::run_sweep(
        cells.size(),
        [&](std::size_t i) {
            const Cell& cell = cells[i];
            const bool heterogeneous = std::string{cell.mix} == "heterogeneous";
            return format_policy_json(
                cell.setup.label, cell.setup.preempt_label_wait.value(), // raw s
                cell.mix, scenario,
                shoggoth_devices, ams_devices,
                fleet::run_policy_cell(testbed, devices, heterogeneous, cell.setup, seed,
                                       shards));
        },
        sweep));
}

void run_sharding_sweep(const fleet::Testbed& testbed, std::size_t devices,
                        std::uint64_t seed, const sim::Sweep_options& sweep,
                        std::size_t shards) {
    // Full cross of the sharding knobs: the knee is where adding GPUs or
    // batch depth stops buying p95 label latency. kind_partition needs a
    // server left for trains, so it only appears at gpu_count >= 2.
    std::vector<fleet::Sharding_setup> cells;
    for (std::size_t gpus : {std::size_t{1}, std::size_t{2}}) {
        for (sim::Placement_kind placement :
             {sim::Placement_kind::any_free, sim::Placement_kind::device_affinity,
              sim::Placement_kind::kind_partition}) {
            if (placement == sim::Placement_kind::kind_partition && gpus < 2) {
                continue;
            }
            for (sim::Policy_kind policy :
                 {sim::Policy_kind::priority, sim::Policy_kind::staleness}) {
                for (std::size_t max_batch : {std::size_t{1}, std::size_t{4}}) {
                    fleet::Sharding_setup setup;
                    setup.label = "sweep";
                    setup.gpu_count = gpus;
                    setup.placement = placement;
                    setup.policy = policy;
                    setup.max_batch = max_batch;
                    setup.label_reserved_gpus =
                        placement == sim::Placement_kind::kind_partition ? 1 : 0;
                    cells.push_back(setup);
                }
            }
        }
    }
    // The PR 2 best on the undifferentiated pool, as the reference row.
    for (std::size_t gpus : {std::size_t{1}, std::size_t{2}}) {
        fleet::Sharding_setup setup;
        setup.label = "fifo_preempt_ref";
        setup.gpu_count = gpus;
        setup.policy = sim::Policy_kind::fifo;
        setup.preempt_label_wait = Sim_duration{2.0};
        cells.push_back(setup);
    }
    print_merged(sim::run_sweep(
        cells.size(),
        [&](std::size_t i) {
            return format_sharding_json(cells[i], devices,
                                        fleet::run_sharding_cell(testbed, devices,
                                                                 /*heterogeneous=*/true,
                                                                 cells[i], seed, shards));
        },
        sweep));
}

void run_reliability_sweep(const fleet::Testbed& testbed, std::size_t devices,
                           std::uint64_t seed, const sim::Sweep_options& sweep,
                           std::size_t shards) {
    // Straggler slowdown x failure rate x placement at the contended 2-GPU
    // share: does placement dodge the slow shard, and does label latency
    // survive servers flapping? The straggler re-queue bound only matters
    // when there is a straggler to escape, so factor 2 rows are emitted for
    // the slowed cells only.
    constexpr double never = std::numeric_limits<double>::infinity();
    std::vector<fleet::Reliability_setup> cells;
    for (sim::Placement_kind placement :
         {sim::Placement_kind::any_free, sim::Placement_kind::speed_aware}) {
        for (double straggler_speed : {1.0, 0.25}) {
            for (const double mtbf : {never, 45.0}) {
                for (double requeue : {0.0, 2.0}) {
                    if (requeue > 0.0 && straggler_speed == 1.0) {
                        continue; // no slow shard: the bound never arms
                    }
                    fleet::Reliability_setup setup;
                    setup.label = "sweep";
                    setup.gpu_count = 2;
                    setup.placement = placement;
                    setup.policy = sim::Policy_kind::priority;
                    setup.straggler_speed = straggler_speed;
                    setup.mtbf = Sim_duration{mtbf};
                    setup.mttr = Sim_duration{10.0};
                    setup.straggler_requeue_factor = requeue;
                    cells.push_back(setup);
                }
            }
        }
    }
    // The curated cells fleet_scaling prints (incl. the failing
    // kind_partition reserved-server case).
    for (const fleet::Reliability_setup& setup : fleet::default_reliability_setups()) {
        cells.push_back(setup);
    }
    print_merged(sim::run_sweep(
        cells.size(),
        [&](std::size_t i) {
            return format_reliability_json(
                cells[i], devices,
                fleet::run_reliability_cell(testbed, devices, /*heterogeneous=*/true,
                                            cells[i], seed, shards));
        },
        sweep));
}

void run_sched_micro() {
    // Pure scheduler storm, no video or models: 64 devices flooding one GPU
    // far past capacity so the waiting queue grows ~linearly to ~20k jobs.
    // Wall time is the metric; job count and peak depth pin determinism.
    struct Cell {
        const char* policy;
        double preempt_s;
    };
    for (const Cell& cell : {Cell{"fifo", 0.0}, Cell{"fifo", 2.0}, Cell{"priority", 2.0},
                             Cell{"staleness", 2.0}}) {
        Event_queue queue;
        sim::Cloud_config config;
        config.policy = sim::policy_by_name(cell.policy);
        config.preempt_label_wait = Sim_duration{cell.preempt_s};
        sim::Cloud_runtime cloud{queue, config};
        const std::size_t devices = 64;
        for (std::size_t d = 0; d < devices; ++d) {
            for (int i = 0; i < 400; ++i) {
                queue.schedule(Sim_time{0.5 * i + 0.001 * static_cast<double>(d)},
                               [&cloud, d] {
                                   cloud.submit(d, Sim_duration{0.05}, {},
                                                sim::Cloud_job_kind::label);
                               });
            }
            if (d % 4 == 0) {
                for (int i = 0; i < 40; ++i) {
                    queue.schedule(Sim_time{5.0 * i + 0.002 * static_cast<double>(d)},
                                   [&cloud, d] {
                                       cloud.submit(d, Sim_duration{3.0}, {},
                                                    sim::Cloud_job_kind::train);
                                   });
                }
            }
        }
        const auto start = std::chrono::steady_clock::now();
        (void)queue.run_until(Sim_time{1.0e9});
        const auto stop = std::chrono::steady_clock::now();
        std::printf("{\"bench\":\"fleet_sched_micro\",\"policy\":\"%s\","
                    "\"preempt_s\":%.1f,\"devices\":%zu,\"jobs\":%zu,"
                    "\"peak_queue_depth\":%zu,\"wall_ms\":%.1f}\n",
                    cell.policy, cell.preempt_s, devices, cloud.jobs_completed(),
                    cloud.peak_queue_depth(),
                    std::chrono::duration<double, std::milli>(stop - start).count());
    }
}

/// Accuracy-measurement stride for an N-device city-scale row. Striding the
/// evaluator samples the same per-device quality signal more sparsely; it
/// does not change what the simulated devices do, so it is the one knob
/// that may grow with N without changing the system under test.
std::size_t scale_eval_stride(std::size_t devices) {
    // Grows with N so each row's accuracy-measurement cost stays bounded
    // (eval inference dominates small-N wall time; by N=10^4 the simulated
    // system itself is the bulk, so the top tier backs measurement off to
    // a few samples per device — the fleet mean still pools 10^4 devices).
    if (devices <= 64) {
        return 9;
    }
    if (devices <= 256) {
        return 27;
    }
    if (devices <= 1000) {
        return 81;
    }
    if (devices <= 4000) {
        return 243;
    }
    return 2187;
}

void run_fleet_scale(double duration, std::uint64_t seed, std::size_t scale_max_devices,
                     std::size_t stride_override) {
    // One shared 64-camera pool; devices wrap onto it (make_scale_fleet).
    // Rows ascend in N: peak_rss_mb() is the process high-water mark, so
    // each row's sample is dominated by its own footprint only when no
    // larger row preceded it.
    const std::size_t cameras = std::min<std::size_t>(scale_max_devices, 64);
    const fleet::Testbed testbed = fleet::make_testbed("waymo", cameras, seed, duration);
    for (std::size_t devices :
         {std::size_t{64}, std::size_t{256}, std::size_t{1000}, std::size_t{4000},
          std::size_t{10000}}) {
        if (devices > scale_max_devices) {
            break;
        }
        const std::size_t gpus = std::max<std::size_t>(1, devices / 256);
        sim::Cluster_config config;
        config.harness.seed = seed ^ 0x8888;
        config.harness.eval_stride =
            stride_override > 0 ? stride_override : scale_eval_stride(devices);
        config.cloud.gpu_count = gpus;
        config.cloud.policy = sim::Policy_kind::priority;

        const auto setup_start = std::chrono::steady_clock::now();
        fleet::Fleet fleet =
            fleet::make_scale_fleet(testbed, devices, /*heterogeneous=*/true);
        const auto run_start = std::chrono::steady_clock::now();
        const sim::Cluster_result r = sim::run_cluster(fleet.specs, config);
        const auto run_stop = std::chrono::steady_clock::now();

        std::printf(
            "{\"bench\":\"fleet_scale\",\"devices\":%zu,\"cameras\":%zu,"
            "\"duration_s\":%.1f,\"eval_stride\":%zu,\"gpus\":%zu,"
            "\"setup_ms\":%.1f,\"wall_ms\":%.1f,\"peak_rss_mb\":%.1f,"
            "\"gpu_utilization\":%.4f,\"cloud_jobs\":%zu,\"label_jobs\":%zu,"
            "\"mean_label_latency_s\":%.3f,\"p95_label_latency_s\":%.3f,"
            "\"peak_queue_depth\":%zu,\"fleet_map\":%.4f}\n",
            devices, cameras, duration, config.harness.eval_stride, gpus,
            std::chrono::duration<double, std::milli>(run_start - setup_start).count(),
            std::chrono::duration<double, std::milli>(run_stop - run_start).count(),
            benchutil::peak_rss_mb(), r.gpu_utilization, r.cloud_jobs, r.label_jobs,
            r.mean_label_latency, r.p95_label_latency, r.peak_queue_depth, r.fleet_map);
        std::fflush(stdout);
    }
}

void run_fleet_shard(double duration, std::uint64_t seed, std::size_t scale_max_devices,
                     std::size_t stride_override) {
    // Speedup curve of the sharded engine on the same operating points as
    // fleet_scale: for each N, one sequential baseline run, then the same
    // fleet through run_cluster_sharded at K in {2, 4, 8}. Fresh fleets per
    // run (strategies are stateful); identical config, so the results are
    // byte-identical by contract — cloud_jobs and fleet_map are printed so
    // a divergence would be visible in the artifact even though every row
    // carries wall_ms and is excluded from the bit-identity hash.
    // hw_threads is printed on every row because speedup saturates at
    // min(K, hw_threads): on a single-core host the section measures pure
    // protocol overhead and ~1.0 is the expected reading, not a regression.
    const std::size_t hw_threads =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const std::size_t cameras = std::min<std::size_t>(scale_max_devices, 64);
    const fleet::Testbed testbed = fleet::make_testbed("waymo", cameras, seed, duration);
    for (std::size_t devices :
         {std::size_t{256}, std::size_t{1000}, std::size_t{4000}}) {
        if (devices > scale_max_devices) {
            break;
        }
        sim::Cluster_config config;
        config.harness.seed = seed ^ 0x8888;
        config.harness.eval_stride =
            stride_override > 0 ? stride_override : scale_eval_stride(devices);
        config.cloud.gpu_count = std::max<std::size_t>(1, devices / 256);
        config.cloud.policy = sim::Policy_kind::priority;

        const auto timed_run = [&](std::size_t shards) {
            fleet::Fleet fleet =
                fleet::make_scale_fleet(testbed, devices, /*heterogeneous=*/true);
            const auto start = std::chrono::steady_clock::now();
            const sim::Cluster_result r = run_engine(fleet.specs, config, shards);
            const auto stop = std::chrono::steady_clock::now();
            return std::pair<double, sim::Cluster_result>{
                std::chrono::duration<double, std::milli>(stop - start).count(), r};
        };

        const auto [base_ms, base] = timed_run(0);
        std::printf("{\"bench\":\"fleet_shard\",\"devices\":%zu,\"shards\":0,"
                    "\"hw_threads\":%zu,\"wall_ms\":%.1f,\"cloud_jobs\":%zu,"
                    "\"fleet_map\":%.4f}\n",
                    devices, hw_threads, base_ms, base.cloud_jobs, base.fleet_map);
        std::fflush(stdout);
        for (std::size_t shards : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
            const auto [wall_ms, r] = timed_run(shards);
            std::printf("{\"bench\":\"fleet_shard\",\"devices\":%zu,\"shards\":%zu,"
                        "\"hw_threads\":%zu,\"wall_ms\":%.1f,\"base_wall_ms\":%.1f,"
                        "\"speedup\":%.2f,\"cloud_jobs\":%zu,\"fleet_map\":%.4f}\n",
                        devices, shards, hw_threads, wall_ms, base_ms,
                        wall_ms > 0.0 ? base_ms / wall_ms : 0.0, r.cloud_jobs,
                        r.fleet_map);
            std::fflush(stdout);
        }
    }
}

void run_traced_cell(const fleet::Testbed& testbed, std::size_t devices,
                     std::uint64_t seed, const std::string& trace_path) {
    // One fully traced reliability cell: a 4x straggler at the low index
    // under index-blind placement (so work lands on it and the re-queue
    // bound arms), flapping servers, and a 2 s label-wait preemption bound —
    // the run that exercises every span kind the trace taxonomy defines.
    // Status goes to stderr; stdout stays byte-identical to a flagless run.
    fleet::Reliability_setup setup;
    setup.label = "traced";
    setup.gpu_count = 2;
    setup.placement = sim::Placement_kind::any_free;
    setup.policy = sim::Policy_kind::priority;
    setup.straggler_speed = 0.25;
    setup.mtbf = Sim_duration{45.0};
    setup.mttr = Sim_duration{10.0};
    setup.straggler_requeue_factor = 2.0;
    setup.preempt_label_wait = Sim_duration{2.0};

    obs::Trace_sink sink;
    obs::Metrics_registry metrics;
    sim::Obs_options obs;
    obs.sink = &sink;
    obs.metrics = &metrics;
    const sim::Cluster_result r = fleet::run_reliability_cell(
        testbed, devices, /*heterogeneous=*/true, setup, seed, /*shards=*/0, obs);

    const std::string csv_path = trace_path + ".metrics.csv";
    const bool trace_ok = obs::write_text_file(trace_path, obs::chrome_trace_json(sink));
    const bool csv_ok = obs::write_text_file(csv_path, obs::serialize_metrics_csv(r.metrics));
    std::fprintf(stderr,
                 "[trace] %s: %zu events, %zu buffers (preemptions=%zu "
                 "straggler_requeues=%zu failures=%zu)\n",
                 trace_path.c_str(), sink.event_count(), sink.buffer_count(),
                 r.preemptions, r.straggler_requeues, r.failures);
    std::fprintf(stderr, "[trace] %s: %zu metric series\n", csv_path.c_str(),
                 r.metrics.series.size());
    if (!trace_ok || !csv_ok) {
        std::fprintf(stderr, "[trace] ERROR: failed to write %s\n",
                     trace_ok ? csv_path.c_str() : trace_path.c_str());
        std::exit(1);
    }
}

} // namespace

int main(int argc, char** argv) {
    // --shards K / --trace path may trail the positional arguments
    // anywhere; strip them first so the positional indices below stay
    // stable.
    std::size_t shards = 0;
    std::string trace_path;
    std::vector<const char*> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::string{argv[i]} == "--shards" && i + 1 < argc) {
            shards = static_cast<std::size_t>(std::atoll(argv[++i]));
            continue;
        }
        if (std::string{argv[i]} == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
            continue;
        }
        positional.push_back(argv[i]);
    }
    const std::size_t nargs = positional.size();
    const double duration = nargs > 0 ? std::atof(positional[0]) : 180.0;
    const std::uint64_t seed =
        nargs > 1 ? static_cast<std::uint64_t>(std::atoll(positional[1])) : 19;
    const std::size_t max_devices =
        nargs > 2 ? static_cast<std::size_t>(std::atoll(positional[2])) : 8;
    const std::size_t scale_max_devices =
        nargs > 3 ? static_cast<std::size_t>(std::atoll(positional[3])) : 0;
    sim::Sweep_options sweep;
    sweep.workers = nargs > 4 ? static_cast<std::size_t>(std::atoll(positional[4])) : 1;
    // Progress to stderr only: the JSON contract (stdout byte-identical for
    // any worker count) must not see the nondeterministic completion order.
    sweep.on_cell_done = [](std::size_t done, std::size_t cell_index) {
        std::fprintf(stderr, "[sweep] %zu cells done (last: #%zu)\n", done, cell_index);
    };
    const std::size_t scale_stride =
        nargs > 5 ? static_cast<std::size_t>(std::atoll(positional[5])) : 0;
    if (duration <= 0.0 || max_devices < 1) {
        std::fprintf(stderr,
                     "usage: bench_fleet [duration_seconds>0] [seed] [max_devices>=1] "
                     "[scale_max_devices] [workers (0=auto)] "
                     "[scale_stride (0=per-N schedule)] [--shards K] "
                     "[--trace path.json]\n");
        return 1;
    }

    const fleet::Testbed testbed = fleet::make_testbed("waymo", max_devices, seed, duration);
    sim::Cluster_config config;
    config.harness.seed = seed ^ 0x8888;

    run_scaling_sweep(testbed, max_devices, config, sweep, shards);

    run_policy_sweep(testbed, "steady", max_devices, seed, sweep, shards);

    const fleet::Testbed correlated =
        fleet::make_correlated_drift_testbed("waymo", max_devices, seed, duration);
    run_policy_sweep(correlated, "correlated_drift", max_devices, seed, sweep, shards);

    run_sharding_sweep(testbed, max_devices, seed, sweep, shards);
    run_reliability_sweep(testbed, max_devices, seed, sweep, shards);
    run_sched_micro();
    if (scale_max_devices >= 64) {
        run_fleet_scale(duration, seed, scale_max_devices, scale_stride);
    }
    if (scale_max_devices >= 256) {
        run_fleet_shard(duration, seed, scale_max_devices, scale_stride);
    }
    if (!trace_path.empty()) {
        run_traced_cell(testbed, max_devices, seed, trace_path);
    }
    return 0;
}
