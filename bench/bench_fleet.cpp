// Fleet-scaling bench: one JSON line per run so future PRs can track the
// devices-per-GPU scaling curve and the policy/latency knee over time.
//
//   ./bench_fleet [duration_seconds] [seed] [max_devices]
//
// Four sections:
//  1. the homogeneous FIFO scaling sweep (strategy x fleet size), the PR 1
//     curve:
//       {"bench":"fleet","strategy":"Shoggoth","devices":4,...}
//  2. a policy x fleet-mix sweep at N = max_devices with AMS-style cloud
//     fine-tunes in the job mix (half the devices run AMS), under a steady
//     and a correlated day/night drift scenario:
//       {"bench":"fleet_policy","policy":"priority","mix":"heterogeneous",
//        "scenario":"steady","p95_label_latency_s":...,
//        "gpu_utilization":...,...}
//     The p95-label-latency / GPU-utilization pair per policy is the knee
//     to watch: priority and fair_share should cut p95 vs fifo without
//     giving up utilization.
//  3. the multi-GPU sharding sweep at N = max_devices heterogeneous:
//     gpu_count x placement x policy x max_batch on the same contended
//     share, locating the throughput/latency knee of cross-device teacher
//     batching and showing where device_affinity / staleness beat the PR 2
//     best:
//       {"bench":"fleet_sharding","gpus":2,"placement":"device_affinity",
//        "policy":"staleness","max_batch":4,"p95_label_latency_s":...,
//        "warm_dispatches":...,...}
//  4. the cloud-reliability sweep at N = max_devices heterogeneous:
//     straggler slowdown x failure rate x placement (plus the straggler
//     re-queue bound) on the 2-GPU contended share — the tail-at-scale
//     regime where one slow or flapping shard decides p95 label latency:
//       {"bench":"fleet_reliability","placement":"speed_aware",
//        "straggler_speed":0.25,"mtbf_s":45.0,"requeue_factor":2.0,
//        "p95_label_latency_s":...,"failures":...,"straggler_requeues":...}
//  5. a pure-scheduler microbench (no video, no models): an oversubscribed
//     64-device submit storm whose queue depth reaches ~20k, timing the
//     dispatch path. This is the regression guard for the O(1)
//     is_waiting/overdue indexes (the pre-index scheduler was quadratic in
//     queue depth: ~1.4 s for the fifo+preempt storm vs ~0.09 s now):
//       {"bench":"fleet_sched_micro","policy":"fifo","preempt_s":2.0,...}
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "fleet/testbed.hpp"

using namespace shog;

namespace {

void emit_scaling_json(const char* strategy, std::size_t devices,
                       const sim::Cluster_result& r) {
    std::string maps;
    for (const sim::Run_result& d : r.devices) {
        if (!maps.empty()) {
            maps += ',';
        }
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%.4f", d.map);
        maps += buffer;
    }
    std::printf("{\"bench\":\"fleet\",\"strategy\":\"%s\",\"devices\":%zu,"
                "\"gpu_utilization\":%.4f,\"gpu_seconds_per_device\":%.2f,"
                "\"mean_label_latency_s\":%.3f,\"p95_label_latency_s\":%.3f,"
                "\"mean_label_wait_s\":%.3f,\"cloud_jobs\":%zu,"
                "\"fleet_map\":%.4f,\"map_per_device\":[%s]}\n",
                strategy, devices, r.gpu_utilization, r.gpu_seconds_per_device(),
                r.mean_label_latency, r.p95_label_latency, r.mean_label_wait, r.cloud_jobs,
                r.fleet_map, maps.c_str());
}

void emit_policy_json(const char* policy, double preempt_s, const char* mix,
                      const char* scenario, std::size_t shoggoth_devices,
                      std::size_t ams_devices, const sim::Cluster_result& r) {
    std::printf("{\"bench\":\"fleet_policy\",\"policy\":\"%s\",\"preempt_s\":%.1f,"
                "\"mix\":\"%s\",\"scenario\":\"%s\",\"devices\":%zu,"
                "\"shoggoth\":%zu,\"ams\":%zu,"
                "\"gpu_utilization\":%.4f,\"mean_label_latency_s\":%.3f,"
                "\"p95_label_latency_s\":%.3f,\"mean_label_wait_s\":%.3f,"
                "\"cloud_jobs\":%zu,\"preemptions\":%zu,\"peak_queue_depth\":%zu,"
                "\"fleet_map\":%.4f}\n",
                policy, preempt_s, mix, scenario, shoggoth_devices + ams_devices,
                shoggoth_devices, ams_devices, r.gpu_utilization, r.mean_label_latency,
                r.p95_label_latency, r.mean_label_wait, r.cloud_jobs, r.preemptions,
                r.peak_queue_depth, r.fleet_map);
}

void emit_sharding_json(const fleet::Sharding_setup& setup, std::size_t devices,
                        const sim::Cluster_result& r) {
    std::printf("{\"bench\":\"fleet_sharding\",\"cell\":\"%s\",\"gpus\":%zu,"
                "\"placement\":\"%s\",\"policy\":\"%s\",\"preempt_s\":%.1f,"
                "\"max_batch\":%zu,\"label_reserved_gpus\":%zu,\"devices\":%zu,"
                "\"gpu_utilization\":%.4f,\"mean_label_latency_s\":%.3f,"
                "\"p95_label_latency_s\":%.3f,\"label_jobs\":%zu,\"cloud_jobs\":%zu,"
                "\"labels_per_s\":%.3f,\"preemptions\":%zu,\"warm_dispatches\":%zu,"
                "\"peak_queue_depth\":%zu,\"fleet_map\":%.4f}\n",
                setup.label, setup.gpu_count, to_string(setup.placement),
                to_string(setup.policy), setup.preempt_label_wait, setup.max_batch,
                setup.label_reserved_gpus, devices, r.gpu_utilization,
                r.mean_label_latency, r.p95_label_latency, r.label_jobs, r.cloud_jobs,
                r.duration > 0.0 ? static_cast<double>(r.label_jobs) / r.duration : 0.0,
                r.preemptions, r.warm_dispatches, r.peak_queue_depth, r.fleet_map);
}

void run_sharding_sweep(const fleet::Testbed& testbed, std::size_t devices,
                        std::uint64_t seed) {
    // Full cross of the sharding knobs: the knee is where adding GPUs or
    // batch depth stops buying p95 label latency. kind_partition needs a
    // server left for trains, so it only appears at gpu_count >= 2.
    for (std::size_t gpus : {std::size_t{1}, std::size_t{2}}) {
        for (sim::Placement_kind placement :
             {sim::Placement_kind::any_free, sim::Placement_kind::device_affinity,
              sim::Placement_kind::kind_partition}) {
            if (placement == sim::Placement_kind::kind_partition && gpus < 2) {
                continue;
            }
            for (sim::Policy_kind policy :
                 {sim::Policy_kind::priority, sim::Policy_kind::staleness}) {
                for (std::size_t max_batch : {std::size_t{1}, std::size_t{4}}) {
                    fleet::Sharding_setup setup;
                    setup.label = "sweep";
                    setup.gpu_count = gpus;
                    setup.placement = placement;
                    setup.policy = policy;
                    setup.max_batch = max_batch;
                    setup.label_reserved_gpus =
                        placement == sim::Placement_kind::kind_partition ? 1 : 0;
                    emit_sharding_json(setup, devices,
                                       fleet::run_sharding_cell(testbed, devices,
                                                                /*heterogeneous=*/true,
                                                                setup, seed));
                }
            }
        }
    }
    // The PR 2 best on the undifferentiated pool, as the reference row.
    for (std::size_t gpus : {std::size_t{1}, std::size_t{2}}) {
        fleet::Sharding_setup setup;
        setup.label = "fifo_preempt_ref";
        setup.gpu_count = gpus;
        setup.policy = sim::Policy_kind::fifo;
        setup.preempt_label_wait = 2.0;
        emit_sharding_json(setup, devices,
                           fleet::run_sharding_cell(testbed, devices,
                                                    /*heterogeneous=*/true, setup, seed));
    }
}

void emit_reliability_json(const fleet::Reliability_setup& setup, std::size_t devices,
                           const sim::Cluster_result& r) {
    std::printf("{\"bench\":\"fleet_reliability\",\"cell\":\"%s\",\"gpus\":%zu,"
                "\"placement\":\"%s\",\"policy\":\"%s\",\"straggler_speed\":%.2f,"
                "\"mtbf_s\":%.1f,\"mttr_s\":%.1f,\"requeue_factor\":%.1f,"
                "\"devices\":%zu,\"gpu_utilization\":%.4f,"
                "\"mean_label_latency_s\":%.3f,\"p95_label_latency_s\":%.3f,"
                "\"label_jobs\":%zu,\"failures\":%zu,\"straggler_requeues\":%zu,"
                "\"preemptions\":%zu,\"fleet_map\":%.4f}\n",
                setup.label, setup.gpu_count, to_string(setup.placement),
                to_string(setup.policy), setup.straggler_speed,
                std::isfinite(setup.mtbf) ? setup.mtbf : -1.0, setup.mttr,
                setup.straggler_requeue_factor, devices, r.gpu_utilization,
                r.mean_label_latency, r.p95_label_latency, r.label_jobs, r.failures,
                r.straggler_requeues, r.preemptions, r.fleet_map);
}

void run_reliability_sweep(const fleet::Testbed& testbed, std::size_t devices,
                           std::uint64_t seed) {
    // Straggler slowdown x failure rate x placement at the contended 2-GPU
    // share: does placement dodge the slow shard, and does label latency
    // survive servers flapping? The straggler re-queue bound only matters
    // when there is a straggler to escape, so factor 2 rows are emitted for
    // the slowed cells only.
    constexpr double never = std::numeric_limits<double>::infinity();
    for (sim::Placement_kind placement :
         {sim::Placement_kind::any_free, sim::Placement_kind::speed_aware}) {
        for (double straggler_speed : {1.0, 0.25}) {
            for (double mtbf : {never, 45.0}) {
                for (double requeue : {0.0, 2.0}) {
                    if (requeue > 0.0 && straggler_speed == 1.0) {
                        continue; // no slow shard: the bound never arms
                    }
                    fleet::Reliability_setup setup;
                    setup.label = "sweep";
                    setup.gpu_count = 2;
                    setup.placement = placement;
                    setup.policy = sim::Policy_kind::priority;
                    setup.straggler_speed = straggler_speed;
                    setup.mtbf = mtbf;
                    setup.mttr = 10.0;
                    setup.straggler_requeue_factor = requeue;
                    emit_reliability_json(
                        setup, devices,
                        fleet::run_reliability_cell(testbed, devices,
                                                    /*heterogeneous=*/true, setup, seed));
                }
            }
        }
    }
    // The curated cells fleet_scaling prints (incl. the failing
    // kind_partition reserved-server case).
    for (const fleet::Reliability_setup& setup : fleet::default_reliability_setups()) {
        emit_reliability_json(setup, devices,
                              fleet::run_reliability_cell(testbed, devices,
                                                          /*heterogeneous=*/true, setup,
                                                          seed));
    }
}

void run_sched_micro() {
    // Pure scheduler storm, no video or models: 64 devices flooding one GPU
    // far past capacity so the waiting queue grows ~linearly to ~20k jobs.
    // Wall time is the metric; job count and peak depth pin determinism.
    struct Cell {
        const char* policy;
        double preempt_s;
    };
    for (const Cell& cell : {Cell{"fifo", 0.0}, Cell{"fifo", 2.0}, Cell{"priority", 2.0},
                             Cell{"staleness", 2.0}}) {
        Event_queue queue;
        sim::Cloud_config config;
        config.policy = sim::policy_by_name(cell.policy);
        config.preempt_label_wait = cell.preempt_s;
        sim::Cloud_runtime cloud{queue, config};
        const std::size_t devices = 64;
        for (std::size_t d = 0; d < devices; ++d) {
            for (int i = 0; i < 400; ++i) {
                queue.schedule(0.5 * i + 0.001 * static_cast<double>(d), [&cloud, d] {
                    cloud.submit(d, 0.05, {}, sim::Cloud_job_kind::label);
                });
            }
            if (d % 4 == 0) {
                for (int i = 0; i < 40; ++i) {
                    queue.schedule(5.0 * i + 0.002 * static_cast<double>(d), [&cloud, d] {
                        cloud.submit(d, 3.0, {}, sim::Cloud_job_kind::train);
                    });
                }
            }
        }
        const auto start = std::chrono::steady_clock::now();
        (void)queue.run_until(1.0e9);
        const auto stop = std::chrono::steady_clock::now();
        std::printf("{\"bench\":\"fleet_sched_micro\",\"policy\":\"%s\","
                    "\"preempt_s\":%.1f,\"devices\":%zu,\"jobs\":%zu,"
                    "\"peak_queue_depth\":%zu,\"wall_ms\":%.1f}\n",
                    cell.policy, cell.preempt_s, devices, cloud.jobs_completed(),
                    cloud.peak_queue_depth(),
                    std::chrono::duration<double, std::milli>(stop - start).count());
    }
}

void run_policy_sweep(const fleet::Testbed& testbed, const char* scenario,
                      std::size_t devices, std::uint64_t seed) {
    const std::size_t ams_devices = devices / 2;
    const std::size_t shoggoth_devices = devices - ams_devices;
    for (const char* mix : {"homogeneous", "heterogeneous"}) {
        const bool heterogeneous = std::string{mix} == "heterogeneous";
        for (const fleet::Policy_setup& setup : fleet::default_policy_setups()) {
            emit_policy_json(setup.label, setup.preempt_label_wait, mix, scenario,
                             shoggoth_devices, ams_devices,
                             fleet::run_policy_cell(testbed, devices, heterogeneous,
                                                    setup, seed));
        }
    }
}

} // namespace

int main(int argc, char** argv) {
    const double duration = argc > 1 ? std::atof(argv[1]) : 180.0;
    const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 19;
    const std::size_t max_devices =
        argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 8;
    if (duration <= 0.0 || max_devices < 1) {
        std::fprintf(stderr,
                     "usage: bench_fleet [duration_seconds>0] [seed] [max_devices>=1]\n");
        return 1;
    }

    const fleet::Testbed testbed = fleet::make_testbed("waymo", max_devices, seed, duration);
    sim::Cluster_config config;
    config.harness.seed = seed ^ 0x8888;

    for (std::size_t n = 1; n <= max_devices; n *= 2) {
        fleet::Fleet shoggoth = fleet::make_shoggoth_fleet(testbed, n);
        emit_scaling_json("Shoggoth", n, sim::run_cluster(shoggoth.specs, config));
        fleet::Fleet ams = fleet::make_ams_fleet(testbed, n);
        emit_scaling_json("AMS", n, sim::run_cluster(ams.specs, config));
    }

    run_policy_sweep(testbed, "steady", max_devices, seed);

    const fleet::Testbed correlated =
        fleet::make_correlated_drift_testbed("waymo", max_devices, seed, duration);
    run_policy_sweep(correlated, "correlated_drift", max_devices, seed);

    run_sharding_sweep(testbed, max_devices, seed);
    run_reliability_sweep(testbed, max_devices, seed);
    run_sched_micro();
    return 0;
}
