// Mechanism diagnostics (not a paper artifact): isolates each link of the
// adaptive-online-learning chain so calibration problems are attributable.
#include <iostream>

#include "bench_util.hpp"
#include "core/adaptive_trainer.hpp"
#include "core/labeling.hpp"
#include "detect/metrics.hpp"

using namespace shog;

namespace {

// Detection-level mAP of a detector over frames drawn from one time span.
double span_map(models::Detector& det, const video::Video_stream& stream, double t0, double t1,
                std::size_t stride = 10) {
    std::vector<detect::Frame_eval> frames;
    for (std::size_t i = stream.index_at(t0); i < stream.index_at(t1); i += stride) {
        const video::Frame f = stream.frame_at(i);
        frames.push_back(
            detect::Frame_eval{det.detect(f, stream.world()), video::Video_stream::ground_truth(f)});
    }
    return detect::mean_average_precision(frames, stream.num_classes(), 0.5);
}

// Classifier accuracy on fresh samples from a fixed domain.
double domain_accuracy(models::Detector& det, const video::World_model& world,
                       const video::Domain& domain, std::uint64_t seed) {
    models::Pretrain_config cfg;
    cfg.domains = {domain};
    cfg.samples = 1500;
    cfg.seed = seed;
    const auto ds = models::synth_dataset(world, det.config(), cfg);
    return models::classifier_accuracy(det, ds);
}

} // namespace

int main() {
    const std::uint64_t seed = 2023;
    benchutil::Testbed tb = benchutil::make_testbed("ua_detrac", seed, 200.0);
    const video::World_model& world = tb.stream->world();

    std::cout << "--- classifier accuracy by domain (before adaptation) ---\n";
    for (auto [name, dom] : {std::pair{"day_sunny", video::day_sunny(0.6)},
                             std::pair{"day_rainy", video::day_rainy(0.6)},
                             std::pair{"night", video::night(0.5)}}) {
        std::cout << "  student@" << name << ": "
                  << domain_accuracy(*tb.pristine_student, world, dom, seed ^ 1) << "\n";
        std::cout << "  teacher@" << name << ": "
                  << domain_accuracy(*tb.teacher, world, dom, seed ^ 1) << "\n";
    }

    std::cout << "--- teacher label quality on night frames ---\n";
    {
        // Find a night span: DETRAC schedule night segment.
        double night_t = 0.0;
        for (double t = 0.0; t < 600.0; t += 5.0) {
            if (tb.stream->schedule().at(t).illumination < 0.2) {
                night_t = t;
                break;
            }
        }
        std::cout << "  night at t=" << night_t << "\n";
        auto student = tb.fresh_student();
        core::Online_labeler labeler{*tb.teacher};
        Rng rng{99};
        std::size_t pos = 0, pos_correct = 0, neg = 0, total_gt = 0;
        for (std::size_t k = 0; k < 40; ++k) {
            const video::Frame f = tb.stream->frame_at(tb.stream->index_at(night_t) + k * 15);
            const auto proposals = student->propose(f, world);
            const auto labeled = labeler.label(f, world, proposals, rng);
            total_gt += f.objects.size();
            for (std::size_t i = 0; i < labeled.samples.size(); ++i) {
                const auto& s = labeled.samples[i];
                if (s.class_label == 0) {
                    ++neg;
                    continue;
                }
                ++pos;
                // Check against simulation truth via the proposal provenance.
                // (proposals[i] ordering == labeled sample ordering only when
                // negative_keep=1, which is the default.)
                if (i < proposals.size() && proposals[i].from_object &&
                    f.objects[proposals[i].gt_index].class_id == s.class_label) {
                    ++pos_correct;
                }
            }
        }
        std::cout << "  positives=" << pos << " (correct class " << pos_correct << "), negatives="
                  << neg << ", gt objects=" << total_gt << "\n";
    }

    std::cout << "--- student ceiling: head trained on CLEAN night labels ---\n";
    {
        auto student = tb.fresh_student();
        models::Pretrain_config cfg;
        cfg.domains = {video::night(0.5)};
        cfg.samples = 3000;
        cfg.epochs = 10;
        cfg.seed = 4242;
        const auto clean_night = models::synth_dataset(world, student->config(), cfg);
        nn::Sequential& trunk = student->net().trunk();
        trunk.set_lr_scale_range(0, trunk.layer_count(), 0.0);
        (void)models::pretrain(*student, clean_night, cfg);
        std::cout << "  night accuracy after clean head training: "
                  << domain_accuracy(*student, world, video::night(0.5), 8) << "\n";
        std::cout << "  day accuracy after clean night training:  "
                  << domain_accuracy(*student, world, video::day_sunny(0.6), 7) << "\n";
    }

    std::cout << "--- teacher label class mix at night vs ground truth ---\n";
    {
        auto student = tb.fresh_student();
        core::Online_labeler labeler{*tb.teacher};
        Rng rng{77};
        double night_t = 225.0;
        std::vector<std::size_t> label_hist(world.num_classes() + 1, 0);
        std::vector<std::size_t> gt_hist(world.num_classes() + 1, 0);
        for (std::size_t k = 0; k < 40; ++k) {
            const video::Frame f = tb.stream->frame_at(tb.stream->index_at(night_t) + k * 15);
            for (const auto& obj : f.objects) {
                ++gt_hist[obj.class_id];
            }
            const auto proposals = student->propose(f, world);
            const auto labeled = labeler.label(f, world, proposals, rng);
            for (const auto& s : labeled.samples) {
                ++label_hist[s.class_label];
            }
        }
        std::cout << "  teacher labels:";
        for (std::size_t c = 0; c <= world.num_classes(); ++c) {
            std::cout << " c" << c << "=" << label_hist[c];
        }
        std::cout << "\n  ground truth:  ";
        for (std::size_t c = 0; c <= world.num_classes(); ++c) {
            std::cout << " c" << c << "=" << gt_hist[c];
        }
        std::cout << "\n";
    }

    std::cout << "--- controller trace over the full stream ---\n";
    {
        auto student = tb.fresh_student();
        core::Shoggoth_strategy strategy{*student,
                                         *tb.teacher,
                                         core::Shoggoth_config{},
                                         models::Deployed_profile::yolov4_resnet18(),
                                         device::jetson_tx2(),
                                         device::v100()};
        const auto result = sim::run_strategy(strategy, *tb.stream, tb.harness);
        std::cout << "  mAP=" << result.map << " sessions=" << result.training_sessions
                  << " up=" << result.up_kbps << "\n";
        int shown = 0;
        for (const auto& rec : strategy.control_trace()) {
            if (shown++ % 4 == 0) {
                std::cout << "  t=" << rec.at.value() << " illum=" // report raw seconds
                          << tb.stream->schedule().at(rec.at.value()).illumination
                          << " rate=" << rec.rate << " alpha=" << rec.alpha
                          << " phi=" << rec.phi_bar << " lambda=" << rec.lambda << "\n";
            }
        }

        std::cout << "--- windowed mAP: Shoggoth vs Edge-Only ---\n";
        const auto edge = benchutil::run_edge_only(tb);
        for (std::size_t i = 0; i < result.windowed_map.size() &&
                                i < edge.windowed_map.size();
             i += 2) {
            const double t = result.windowed_map[i].first;
            std::cout << "  t=" << t << " illum=" << tb.stream->schedule().at(t).illumination
                      << " shoggoth=" << result.windowed_map[i].second
                      << " edge=" << edge.windowed_map[i].second << " gain="
                      << result.windowed_map[i].second - edge.windowed_map[i].second << "\n";
        }
    }

    std::cout << "--- oracle adaptation session on night samples ---\n";
    {
        auto student = tb.fresh_student();
        const double day_before = domain_accuracy(*student, world, video::day_sunny(0.6), 7);
        const double night_before = domain_accuracy(*student, world, video::night(0.5), 8);

        // Collect teacher-labeled night samples exactly like the system does.
        core::Online_labeler labeler{*tb.teacher};
        Rng rng{123};
        double night_t = 0.0;
        for (double t = 0.0; t < 600.0; t += 5.0) {
            if (tb.stream->schedule().at(t).illumination < 0.2) {
                night_t = t;
                break;
            }
        }
        std::vector<models::Labeled_sample> batch;
        std::size_t k = 0;
        while (batch.size() < 600 && k < 1500) {
            const video::Frame f = tb.stream->frame_at(tb.stream->index_at(night_t) + k * 7);
            const auto proposals = student->propose(f, world);
            auto labeled = labeler.label(f, world, proposals, rng);
            for (auto& s : labeled.samples) {
                batch.push_back(std::move(s));
            }
            ++k;
        }
        std::cout << "  collected " << batch.size() << " night samples from " << k
                  << " frames\n";

        core::Adaptive_trainer trainer{*student, core::ours_config(),
                                       models::Deployed_profile::yolov4_resnet18(),
                                       device::jetson_tx2()};
        const auto report = trainer.train(batch);
        std::cout << "  session loss " << report.initial_loss << " -> " << report.final_loss
                  << "\n";

        const double day_after = domain_accuracy(*student, world, video::day_sunny(0.6), 7);
        const double night_after = domain_accuracy(*student, world, video::night(0.5), 8);
        std::cout << "  day accuracy:   " << day_before << " -> " << day_after << "\n";
        std::cout << "  night accuracy: " << night_before << " -> " << night_after << "\n";

        std::cout << "  night mAP (stream) before/after: ";
        auto fresh = tb.fresh_student();
        std::cout << span_map(*fresh, *tb.stream, night_t, night_t + 50.0) << " -> "
                  << span_map(*student, *tb.stream, night_t, night_t + 50.0) << "\n";
        std::cout << "  day mAP (stream) before/after:   ";
        std::cout << span_map(*fresh, *tb.stream, 5.0, 50.0) << " -> "
                  << span_map(*student, *tb.stream, 5.0, 50.0) << "\n";
    }
    return 0;
}
