// Figure 4 reproduction: average fps per strategy (left panel) and the
// Shoggoth fps-over-time curve for the initial segment of the UA-DETRAC
// stream (right panel, rendered as an ASCII series).
//
// Paper reference: Edge-Only 30, Cloud-Only ~5-6, Prompt ~23.5, AMS ~29.7,
// Shoggoth ~27.3 average fps; the right panel shows dips from 30 toward
// ~15 fps while adaptive training sessions run.
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace shog;

int main(int argc, char** argv) {
    double duration = 240.0;
    std::uint64_t seed = 2023;
    if (argc > 1) {
        duration = std::atof(argv[1]);
    }
    if (argc > 2) {
        seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
    }

    std::cout << "=== Figure 4: inference fps under each strategy (UA-DETRAC-like) ===\n"
              << "(duration " << duration << " s, seed " << seed << ")\n\n";

    benchutil::Testbed tb = benchutil::make_testbed("ua_detrac", seed, duration);

    Text_table table{{"Strategy", "Average FPS"}};
    const sim::Run_result edge = benchutil::run_edge_only(tb);
    table.add_row({"Edge-Only", Text_table::num(edge.average_fps, 1)});
    const sim::Run_result cloud = benchutil::run_cloud_only(tb);
    table.add_row({"Cloud-Only", Text_table::num(cloud.average_fps, 1)});
    const sim::Run_result prompt = benchutil::run_prompt(tb);
    table.add_row({"Prompt", Text_table::num(prompt.average_fps, 1)});
    const sim::Run_result ams = benchutil::run_ams(tb);
    table.add_row({"AMS", Text_table::num(ams.average_fps, 1)});
    const sim::Run_result shoggoth = benchutil::run_shoggoth(tb);
    table.add_row({"Shoggoth", Text_table::num(shoggoth.average_fps, 1)});

    std::cout << table.str() << "\n";

    std::cout << "--- Shoggoth fps over time (right panel; '#' = 2 fps) ---\n";
    // Sample the timeline at 10 s resolution over the initial segment.
    const double horizon = std::min(duration, 400.0);
    for (double t = 0.0; t < horizon; t += 10.0) {
        double fps = 30.0;
        for (const auto& [from, value] : shoggoth.fps_timeline) {
            if (from <= t) {
                fps = value;
            } else {
                break;
            }
        }
        std::cout << "  t=" << static_cast<int>(t) << "s\t" << Text_table::num(fps, 1) << "\t";
        for (int i = 0; i < static_cast<int>(fps / 2.0); ++i) {
            std::cout << '#';
        }
        std::cout << "\n";
    }

    std::cout << "\nTraining sessions: " << shoggoth.training_sessions
              << "; average fps loss vs Edge-Only: "
              << Text_table::num(edge.average_fps - shoggoth.average_fps, 1) << " fps\n"
              << std::flush;
    return 0;
}
