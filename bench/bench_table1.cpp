// Table I reproduction: Up/Down bandwidth (Kbps) and mAP@0.5 (%) for the
// five strategies on the three dataset presets.
//
// Paper reference values (UA-DETRAC / KITTI / Waymo):
//   Edge-Only  : 0/0 Kbps,       34.2 / 56.8 / 47.5 mAP
//   Cloud-Only : ~3257/3539 etc, 58.9 / 78.0 / 64.7 mAP (best accuracy)
//   Prompt     : 303/22 etc,     48.3 / 71.4 / 61.5 mAP
//   AMS        : 151/226 etc,    51.6 / 72.8 / 59.1 mAP (downlink heavy)
//   Shoggoth   : 135/10 etc,     53.5 / 74.7 / 61.9 mAP
// The harness reproduces the *shape*: ordering, gain over Edge-Only,
// bandwidth ratios.
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
    using namespace shog;

    double duration = 240.0;
    std::uint64_t seed = 2023;
    std::vector<const char*> presets = {"ua_detrac", "kitti", "waymo"};
    if (argc > 1) {
        duration = std::atof(argv[1]);
    }
    if (argc > 2) {
        seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
    }
    if (argc > 3) {
        presets = {argv[3]};
    }

    std::cout << "=== Table I: strategy comparison on three datasets ===\n"
              << "(duration " << duration << " s per stream, seed " << seed << ")\n\n";

    Text_table table{{"Dataset", "Metric", "Edge-Only", "Cloud-Only", "Prompt", "AMS",
                      "Shoggoth"}};

    for (const char* preset : presets) {
        benchutil::Testbed tb = benchutil::make_testbed(preset, seed, duration);

        const sim::Run_result edge = benchutil::run_edge_only(tb);
        benchutil::print_result_line(edge);
        const sim::Run_result cloud = benchutil::run_cloud_only(tb);
        benchutil::print_result_line(cloud);
        const sim::Run_result prompt = benchutil::run_prompt(tb);
        benchutil::print_result_line(prompt);
        const sim::Run_result ams = benchutil::run_ams(tb);
        benchutil::print_result_line(ams);
        const sim::Run_result shoggoth = benchutil::run_shoggoth(tb);
        benchutil::print_result_line(shoggoth);

        auto bw = [](const sim::Run_result& r) {
            return Text_table::num(r.up_kbps, 0) + "/" + Text_table::num(r.down_kbps, 0);
        };
        auto map = [](const sim::Run_result& r) { return Text_table::num(r.map * 100.0, 1); };

        table.add_row({preset, "Up/Down Bandwidth (Kbps)", bw(edge), bw(cloud), bw(prompt),
                       bw(ams), bw(shoggoth)});
        table.add_row({preset, "mAP@0.5 (%)", map(edge), map(cloud), map(prompt), map(ams),
                       map(shoggoth)});
    }

    std::cout << "\n" << table.str() << std::flush;
    return 0;
}
