// Figure 5 reproduction: CDF of the windowed-mAP gain over Edge-Only for
// Cloud-Only, Shoggoth, AMS and Prompt, across all evaluation windows.
//
// Paper shape: Cloud-Only dominates; Shoggoth beats AMS on ~73% of frames;
// Prompt only matches-or-beats Edge-Only ~78% of the time; Shoggoth even
// beats Cloud-Only on ~20% of frames.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

using namespace shog;

namespace {

void print_cdf_row(const char* name, const std::vector<double>& gains) {
    if (gains.empty()) {
        return;
    }
    Ecdf cdf{gains};
    std::cout << "  " << name << ": ";
    for (double g : {-0.10, -0.05, 0.0, 0.05, 0.10, 0.20, 0.30}) {
        std::cout << "P(gain<=" << g << ")=" << Text_table::num(cdf.at(g), 2) << "  ";
    }
    std::cout << "\n";
}

} // namespace

int main(int argc, char** argv) {
    double duration = 240.0;
    std::uint64_t seed = 2023;
    if (argc > 1) {
        duration = std::atof(argv[1]);
    }
    if (argc > 2) {
        seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
    }

    std::cout << "=== Figure 5: CDF of windowed mAP gain vs Edge-Only (UA-DETRAC-like) ===\n"
              << "(duration " << duration << " s, seed " << seed << ", window 20 s)\n\n";

    benchutil::Testbed tb = benchutil::make_testbed("ua_detrac", seed, duration);

    const sim::Run_result edge = benchutil::run_edge_only(tb);
    const sim::Run_result cloud = benchutil::run_cloud_only(tb);
    const sim::Run_result prompt = benchutil::run_prompt(tb);
    const sim::Run_result ams = benchutil::run_ams(tb);
    const sim::Run_result shoggoth = benchutil::run_shoggoth(tb);

    const std::vector<double> g_cloud = sim::windowed_gain(cloud, edge);
    const std::vector<double> g_prompt = sim::windowed_gain(prompt, edge);
    const std::vector<double> g_ams = sim::windowed_gain(ams, edge);
    const std::vector<double> g_shog = sim::windowed_gain(shoggoth, edge);

    print_cdf_row("Cloud-Only", g_cloud);
    print_cdf_row("Shoggoth  ", g_shog);
    print_cdf_row("AMS       ", g_ams);
    print_cdf_row("Prompt    ", g_prompt);

    // Paper-style summary statistics.
    auto frac = [](const std::vector<double>& a, const std::vector<double>& b,
                   auto&& predicate) {
        std::size_t hit = 0;
        const std::size_t n = std::min(a.size(), b.size());
        for (std::size_t i = 0; i < n; ++i) {
            hit += predicate(a[i], b[i]) ? 1 : 0;
        }
        return n > 0 ? static_cast<double>(hit) / static_cast<double>(n) : 0.0;
    };

    std::cout << "\nSummary (fractions of windows):\n";
    std::cout << "  Shoggoth >= Edge-Only:    "
              << Text_table::num(100.0 * frac(g_shog, g_shog,
                                              [](double g, double) { return g >= 0.0; }),
                                 0)
              << "%\n";
    std::cout << "  Prompt   >= Edge-Only:    "
              << Text_table::num(100.0 * frac(g_prompt, g_prompt,
                                              [](double g, double) { return g >= 0.0; }),
                                 0)
              << "%\n";
    std::cout << "  Shoggoth >  AMS:          "
              << Text_table::num(
                     100.0 * frac(g_shog, g_ams, [](double s, double a) { return s > a; }), 0)
              << "%  (paper: 73%)\n";
    std::cout << "  Shoggoth >  Cloud-Only:   "
              << Text_table::num(
                     100.0 * frac(g_shog, g_cloud, [](double s, double c) { return s > c; }),
                     0)
              << "%  (paper: ~20%)\n";
    std::cout << std::flush;
    return 0;
}
