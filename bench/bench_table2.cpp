// Table II reproduction: the adaptive-training ablation — mAP and training
// time (forward / backward / overall seconds on a Jetson TX2) for:
//   Ours (replay at pool)  |  Input replay  |  Completely freezing
//   conv5_4 replay         |  No replay memory
//
// Paper reference (mAP %, fwd s, bwd s, overall s):
//   Ours     53.5  17.8  0.8  18.6      Input  49.6  536.2  31.6  567.8
//   Freezing 50.7  17.8  0.7  18.5      conv5_4 52.3  20.2   5.8  26.0
//   NoReplay 45.6  95.7  6.2  101.9
//
// Timing uses the deployed YOLOv4-ResNet18 profile with the paper's session
// shape (300 images, 1500 replay, K=64, 8 epochs). Accuracy is measured by
// running the full edge-cloud simulation with each trainer variant.
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/adaptive_trainer.hpp"

using namespace shog;

namespace {

struct Variant {
    const char* name;
    core::Trainer_config config;
};

} // namespace

int main(int argc, char** argv) {
    double duration = 240.0;
    std::uint64_t seed = 2023;
    if (argc > 1) {
        duration = std::atof(argv[1]);
    }
    if (argc > 2) {
        seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
    }

    std::cout << "=== Table II: adaptive-training ablation (UA-DETRAC-like) ===\n"
              << "(duration " << duration << " s, seed " << seed << ")\n\n";

    const std::vector<Variant> variants = {
        {"Ours (pool)", core::ours_config()},
        {"Input", core::input_replay_config()},
        {"Completely Freezing", core::completely_freezing_config()},
        {"Conv5_4", core::conv5_4_config()},
        {"No Replay Memory", core::no_replay_config()},
    };

    benchutil::Testbed tb = benchutil::make_testbed("ua_detrac", seed, duration);

    Text_table table{{"Method", "mAP (%)", "Forward (s)", "Backward (s)", "Overall (s)"}};
    for (const Variant& variant : variants) {
        // Timing: one steady-state session with the paper's exact shape.
        auto timing_student = tb.fresh_student();
        core::Trainer_config timing_cfg = variant.config;
        timing_cfg.samples_per_image = 1.0; // price in "image" units like the paper
        core::Adaptive_trainer timing_trainer{*timing_student, timing_cfg,
                                              models::Deployed_profile::yolov4_resnet18(),
                                              device::jetson_tx2()};
        if (timing_cfg.replay_capacity > 0) {
            models::Pretrain_config warm_cfg;
            warm_cfg.domains = models::daytime_domains();
            warm_cfg.samples = timing_cfg.replay_capacity;
            warm_cfg.seed = seed ^ 0x77;
            timing_trainer.warm_start(
                models::synth_dataset(tb.stream->world(), timing_student->config(), warm_cfg));
        }
        const core::Training_report cost =
            timing_trainer.estimate_session_cost(timing_cfg.batch_size);

        // Accuracy: run the full system with this trainer variant.
        core::Shoggoth_config system_cfg;
        system_cfg.trainer = variant.config;
        const sim::Run_result result = benchutil::run_shoggoth(tb, std::move(system_cfg));

        std::cout << "  " << variant.name << ": mAP=" << result.map * 100.0
                  << "% sessions=" << result.training_sessions
                  << " fwd=" << cost.forward_seconds.value() // report in raw seconds
                  << "s bwd=" << cost.backward_seconds.value() << "s\n";

        table.add_row({variant.name, Text_table::num(result.map * 100.0, 1),
                       Text_table::num(cost.forward_seconds.value(), 1),
                       Text_table::num(cost.backward_seconds.value(), 1),
                       Text_table::num(cost.overall_seconds().value(), 1)});
    }

    std::cout << "\n" << table.str() << std::flush;
    return 0;
}
