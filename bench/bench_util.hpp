// Shared setup for the paper-reproduction bench harnesses: builds the
// stream + pretrained detectors for a dataset preset and runs each strategy
// under identical conditions (paired frames, identical initial student
// weights via cloning).
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "baselines/ams.hpp"
#include "baselines/cloud_only.hpp"
#include "baselines/edge_only.hpp"
#include "core/shoggoth.hpp"
#include "models/deployed.hpp"
#include "models/pretrain.hpp"
#include "sim/harness.hpp"
#include "video/presets.hpp"

namespace shog::benchutil {

/// Peak resident set size of this process in MiB (getrusage ru_maxrss,
/// kilobytes on Linux). Process-wide high-water mark: it only ever grows,
/// so benches sampling it per row must run rows in ascending memory order
/// (the fleet_scale sweep runs N ascending for exactly this reason).
inline double peak_rss_mb() {
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0) {
        return -1.0;
    }
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct Testbed {
    video::Dataset_preset preset;
    std::unique_ptr<video::Video_stream> stream;
    std::unique_ptr<models::Detector> pristine_student; ///< cloned per strategy
    std::unique_ptr<models::Detector> teacher;
    sim::Harness_config harness;

    [[nodiscard]] std::unique_ptr<models::Detector> fresh_student() const {
        return pristine_student->clone();
    }
};

inline Testbed make_testbed(const char* preset_name, std::uint64_t seed, double duration) {
    Testbed tb{video::preset_by_name(preset_name, seed, duration), nullptr, nullptr, nullptr,
               {}};
    tb.stream = std::make_unique<video::Video_stream>(tb.preset.stream, tb.preset.world,
                                                      tb.preset.schedule);
    tb.pristine_student = models::make_student(tb.stream->world(), seed);
    tb.teacher = models::make_teacher(tb.stream->world(), seed);
    tb.harness.seed = seed ^ 0x8888;
    return tb;
}

inline sim::Run_result run_edge_only(const Testbed& tb) {
    auto student = tb.fresh_student();
    baselines::Edge_only_strategy strategy{*student};
    sim::Run_result r = sim::run_strategy(strategy, *tb.stream, tb.harness);
    r.dataset = tb.preset.name;
    return r;
}

inline sim::Run_result run_cloud_only(const Testbed& tb) {
    baselines::Cloud_only_strategy strategy{*tb.teacher, device::v100()};
    sim::Run_result r = sim::run_strategy(strategy, *tb.stream, tb.harness);
    r.dataset = tb.preset.name;
    return r;
}

inline sim::Run_result run_shoggoth(const Testbed& tb, core::Shoggoth_config config = {}) {
    auto student = tb.fresh_student();
    core::Shoggoth_strategy strategy{*student,
                                     *tb.teacher,
                                     std::move(config),
                                     models::Deployed_profile::yolov4_resnet18(),
                                     device::jetson_tx2(),
                                     device::v100()};
    sim::Run_result r = sim::run_strategy(strategy, *tb.stream, tb.harness);
    r.dataset = tb.preset.name;
    return r;
}

inline sim::Run_result run_prompt(const Testbed& tb) {
    core::Shoggoth_config config;
    config.adaptive_sampling = false;
    config.fixed_rate = 2.0;
    return run_shoggoth(tb, std::move(config));
}

inline sim::Run_result run_ams(const Testbed& tb, baselines::Ams_config config = {}) {
    auto student = tb.fresh_student();
    baselines::Ams_strategy strategy{*student, *tb.teacher, std::move(config),
                                     models::Deployed_profile::yolov4_resnet18(),
                                     device::v100()};
    sim::Run_result r = sim::run_strategy(strategy, *tb.stream, tb.harness);
    r.dataset = tb.preset.name;
    return r;
}

inline void print_result_line(const sim::Run_result& r) {
    std::cout << "  [" << r.dataset << "] " << r.strategy << ": mAP@0.5=" << r.map * 100.0
              << "% up=" << r.up_kbps << "Kbps down=" << r.down_kbps
              << "Kbps fps=" << r.average_fps << " sessions=" << r.training_sessions
              << " cloudGPU=" << r.cloud_gpu_seconds << "s\n";
}

} // namespace shog::benchutil
