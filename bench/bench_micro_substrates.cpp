// google-benchmark micro-benchmarks for the substrate hot paths: tensor
// linear algebra, detector inference, NMS/mAP, replay-memory updates and
// the sampling controller.
#include <benchmark/benchmark.h>

#include "common/event_queue.hpp"
#include "core/adaptive_trainer.hpp"
#include "core/controller.hpp"
#include "core/replay_memory.hpp"
#include "detect/metrics.hpp"
#include "models/pretrain.hpp"
#include "netsim/h264.hpp"
#include "nn/loss.hpp"
#include "video/presets.hpp"

namespace {

using namespace shog;

void BM_matmul(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng{1};
    const Tensor a = Tensor::randn({n, n}, rng);
    const Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(matmul(a, b));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_matmul)->Arg(16)->Arg(64)->Arg(128);

void BM_softmax_cross_entropy(benchmark::State& state) {
    Rng rng{2};
    const Tensor logits = Tensor::randn({64, 5}, rng);
    std::vector<std::size_t> labels(64);
    for (std::size_t i = 0; i < 64; ++i) {
        labels[i] = rng.index(5);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(nn::softmax_cross_entropy(logits, labels));
    }
}
BENCHMARK(BM_softmax_cross_entropy);

void BM_nms(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng{3};
    std::vector<detect::Detection> dets;
    for (std::size_t i = 0; i < n; ++i) {
        dets.push_back(detect::Detection{
            detect::Box::from_center(rng.uniform(0, 500), rng.uniform(0, 500),
                                     rng.uniform(10, 60), rng.uniform(10, 60)),
            1 + rng.index(4), rng.uniform()});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(detect::nms(dets, 0.5));
    }
}
BENCHMARK(BM_nms)->Arg(20)->Arg(100)->Arg(400);

void BM_frame_generation(benchmark::State& state) {
    const video::Dataset_preset p = video::ua_detrac_like(7, 300.0);
    const video::Video_stream stream{p.stream, p.world, p.schedule};
    std::size_t index = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(stream.frame_at(index));
        index = (index + 37) % stream.frame_count();
    }
}
BENCHMARK(BM_frame_generation);

void BM_detector_inference(benchmark::State& state) {
    const video::Dataset_preset p = video::ua_detrac_like(8, 120.0);
    const video::Video_stream stream{p.stream, p.world, p.schedule};
    auto student = models::make_student(stream.world(), 8);
    const video::Frame frame = stream.frame_at(600);
    for (auto _ : state) {
        benchmark::DoNotOptimize(student->detect(frame, stream.world()));
    }
}
BENCHMARK(BM_detector_inference);

void BM_replay_memory_update(benchmark::State& state) {
    core::Replay_memory memory{1500};
    Rng rng{9};
    std::vector<core::Replay_sample> batch(300);
    for (auto& s : batch) {
        s.activation.assign(64, 0.5);
    }
    for (auto _ : state) {
        memory.update_after_training(batch, rng);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 300);
}
BENCHMARK(BM_replay_memory_update);

void BM_controller_update(benchmark::State& state) {
    core::Sampling_controller controller{core::Controller_config{}, 1.0};
    Rng rng{10};
    for (auto _ : state) {
        controller.observe_phi(rng.uniform());
        benchmark::DoNotOptimize(controller.update(rng.uniform(), rng.uniform()));
    }
}
BENCHMARK(BM_controller_update);

void BM_h264_batch(benchmark::State& state) {
    const netsim::H264_model codec;
    for (auto _ : state) {
        benchmark::DoNotOptimize(codec.batch_bytes(8, 512, 512, 0.6, 0.3, Sim_duration{1.5}));
    }
}
BENCHMARK(BM_h264_batch);

/// The event-engine hot loop at fleet-bench scale: schedule 1M uniformly
/// distributed events, then drain them. Templated over the calendar queue
/// (Event_queue) and the binary-heap reference (Heap_event_queue) so the
/// two substrates stay directly comparable — the calendar's O(1) amortized
/// schedule/step is the whole point of the city-scale engine.
template <typename Queue>
void BM_event_queue_burst(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        Rng rng{42};
        std::vector<double> times(n);
        for (auto& t : times) {
            t = rng.uniform() * 600.0;
        }
        Queue queue;
        std::size_t executed = 0;
        state.ResumeTiming();
        for (const double t : times) {
            queue.schedule(Sim_time{t}, [&executed] { ++executed; });
        }
        while (!queue.empty()) {
            queue.step();
        }
        benchmark::DoNotOptimize(executed);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_event_queue_burst<Event_queue>)->Arg(100000)->Arg(1000000);
BENCHMARK(BM_event_queue_burst<Heap_event_queue>)->Arg(100000)->Arg(1000000);

void BM_map_evaluation(benchmark::State& state) {
    Rng rng{11};
    std::vector<detect::Frame_eval> frames(50);
    for (auto& f : frames) {
        for (int i = 0; i < 8; ++i) {
            const detect::Box box = detect::Box::from_center(
                rng.uniform(0, 500), rng.uniform(0, 500), rng.uniform(10, 60),
                rng.uniform(10, 60));
            f.ground_truth.push_back(detect::Ground_truth{box, 1 + rng.index(4)});
            if (rng.chance(0.8)) {
                f.detections.push_back(detect::Detection{box, 1 + rng.index(4), rng.uniform()});
            }
        }
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(detect::mean_average_precision(frames, 4, 0.5));
    }
}
BENCHMARK(BM_map_evaluation);

} // namespace

BENCHMARK_MAIN();
