// Table III reproduction: sensitivity to the frame sampling rate — uplink
// bandwidth and average IoU for fixed rates {0.1 .. 2.0} fps vs adaptive.
//
// Paper reference:
//   rate       0.1   0.2   0.4   0.8   1.6   2.0   Adaptive
//   Up (Kbps)   19    36    61   122   249   307   135
//   Avg IoU   .483  .524  .556  .623  .612  .597   .640
// Shape: IoU peaks at a mid fixed rate (high rates overfit to recent
// frames), and adaptive beats every fixed rate at moderate bandwidth.
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace shog;

int main(int argc, char** argv) {
    double duration = 240.0;
    std::uint64_t seed = 2023;
    if (argc > 1) {
        duration = std::atof(argv[1]);
    }
    if (argc > 2) {
        seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
    }

    std::cout << "=== Table III: sensitivity to the sampling rate (UA-DETRAC-like) ===\n"
              << "(duration " << duration << " s, seed " << seed << ")\n\n";

    benchutil::Testbed tb = benchutil::make_testbed("ua_detrac", seed, duration);

    std::vector<std::string> header{"rate ->"};
    std::vector<std::string> bw_row{"Up BW (Kbps)"};
    std::vector<std::string> iou_row{"Average IoU"};
    std::vector<std::string> map_row{"mAP@0.5 (%)"};

    for (double rate : {0.1, 0.2, 0.4, 0.8, 1.6, 2.0}) {
        core::Shoggoth_config cfg;
        cfg.adaptive_sampling = false;
        cfg.fixed_rate = rate;
        const sim::Run_result r = benchutil::run_shoggoth(tb, std::move(cfg));
        std::cout << "  fixed " << rate << " fps: up=" << r.up_kbps
                  << "Kbps iou=" << r.average_iou << " mAP=" << r.map * 100.0 << "%\n";
        header.push_back(Text_table::num(rate, 1));
        bw_row.push_back(Text_table::num(r.up_kbps, 0));
        iou_row.push_back(Text_table::num(r.average_iou, 3));
        map_row.push_back(Text_table::num(r.map * 100.0, 1));
    }

    const sim::Run_result adaptive = benchutil::run_shoggoth(tb);
    std::cout << "  adaptive: up=" << adaptive.up_kbps << "Kbps iou=" << adaptive.average_iou
              << " mAP=" << adaptive.map * 100.0 << "%\n";
    header.push_back("Adaptive");
    bw_row.push_back(Text_table::num(adaptive.up_kbps, 0));
    iou_row.push_back(Text_table::num(adaptive.average_iou, 3));
    map_row.push_back(Text_table::num(adaptive.map * 100.0, 1));

    Text_table table{header};
    table.add_row(bw_row);
    table.add_row(iou_row);
    table.add_row(map_row);
    std::cout << "\n" << table.str() << std::flush;
    return 0;
}
