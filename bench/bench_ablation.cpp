// Design-choice ablations beyond the paper's Table II: quantifies each of
// the reproduction's own mechanisms (documented in DESIGN.md §2) on the
// UA-DETRAC-like stream:
//   - warm replay memory on/off
//   - validation-gated commit on/off
//   - recent-frame horizon lengths
//   - alpha source: cloud agreement vs the paper's posterior threshold
//   - Batch Renorm front-stat adaptation speed
#include <cstdlib>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

using namespace shog;

int main(int argc, char** argv) {
    double duration = 240.0;
    std::uint64_t seed = 2023;
    if (argc > 1) {
        duration = std::atof(argv[1]);
    }
    if (argc > 2) {
        seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
    }

    std::cout << "=== Design-choice ablations (UA-DETRAC-like, " << duration << " s) ===\n\n";

    benchutil::Testbed tb = benchutil::make_testbed("ua_detrac", seed, duration);
    Text_table table{{"Variant", "mAP (%)", "Up Kbps", "Sessions", "Avg IoU"}};

    auto run = [&](const char* name, core::Shoggoth_config cfg) {
        const sim::Run_result r = benchutil::run_shoggoth(tb, std::move(cfg));
        std::cout << "  " << name << ": mAP=" << r.map * 100.0 << "% up=" << r.up_kbps
                  << " sessions=" << r.training_sessions << "\n";
        table.add_row({name, Text_table::num(r.map * 100.0, 1), Text_table::num(r.up_kbps, 0),
                       std::to_string(r.training_sessions), Text_table::num(r.average_iou, 3)});
    };

    run("full system", core::Shoggoth_config{});

    {
        core::Shoggoth_config cfg;
        cfg.warm_replay = false;
        run("no warm replay", std::move(cfg));
    }
    {
        core::Shoggoth_config cfg;
        cfg.trainer.validation_fraction = 0.0;
        run("no validation gate", std::move(cfg));
    }
    {
        core::Shoggoth_config cfg;
        cfg.sample_horizon = Sim_duration{30.0};
        run("horizon 30s", std::move(cfg));
    }
    {
        core::Shoggoth_config cfg;
        cfg.sample_horizon = Sim_duration{300.0};
        run("horizon 300s", std::move(cfg));
    }
    {
        core::Shoggoth_config cfg;
        cfg.alpha_source = core::Shoggoth_config::Alpha_source::posterior;
        run("posterior alpha (paper literal)", std::move(cfg));
    }
    {
        core::Shoggoth_config cfg;
        cfg.trainer.front_stats_momentum = 0.05;
        run("fast front stats (aging)", std::move(cfg));
    }
    {
        core::Shoggoth_config cfg;
        cfg.trainer.replay_capacity = 375; // quarter-size replay memory
        run("replay memory / 4", std::move(cfg));
    }

    std::cout << "\n" << table.str() << std::flush;
    return 0;
}
