// Tests for the sharded cloud: per-GPU server state, placement policies
// (any_free / device_affinity / kind_partition), the staleness scheduling
// policy, multi-GPU batching semantics, and the bit-identity of the
// {1 GPU, any_free, max_batch 1} configuration with the pre-sharding pool.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "determinism_harness.hpp"
#include "fleet/testbed.hpp"
#include "sim/cloud.hpp"
#include "sim/harness.hpp"
#include "sim/placement.hpp"

namespace shog::sim {
namespace {

// ---------------------------------------------------------------------------
// Placement-policy unit tests (no video, no models — just the scheduler).
// ---------------------------------------------------------------------------

TEST(Placement, NamesRoundTrip) {
    for (Placement_kind kind :
         {Placement_kind::any_free, Placement_kind::device_affinity,
          Placement_kind::kind_partition}) {
        EXPECT_EQ(placement_by_name(to_string(kind)), kind);
        EXPECT_STREQ(make_placement(kind, 0)->name(), to_string(kind));
    }
    EXPECT_THROW((void)placement_by_name("round_robin"), std::invalid_argument);
}

TEST(Placement, KindPartitionRequiresAnUnreservedGpu) {
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    config.placement = Placement_kind::kind_partition;
    config.label_reserved_gpus = 2; // no server left for trains
    EXPECT_THROW((Cloud_runtime{queue, config}), std::invalid_argument);
    config.label_reserved_gpus = 1;
    EXPECT_NO_THROW((Cloud_runtime{queue, config}));
}

TEST(Placement, MultiGpuCoalescesOnlyOnTheLastIdleServer) {
    // The last-idle-server rule at gpu_count > 1: jobs 0 and 1 each take
    // their own GPU (idle capacity exists while a sibling server is free),
    // jobs 2 and 3 queue behind them — and when the first server frees, the
    // two of them coalesce there (it is the only idle server).
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    config.max_batch = 4;
    config.batch_efficiency = 0.5;
    Cloud_runtime cloud{queue, config};
    for (int i = 0; i < 4; ++i) {
        cloud.submit(static_cast<std::size_t>(i), Sim_duration{2.0}, {});
    }
    (void)queue.run_until(Sim_time{20.0});
    ASSERT_EQ(cloud.jobs_completed(), 4u);
    // Jobs 0, 1: own server, 2 s each. Jobs 2+3 coalesce at t=2 on the
    // first freed server: 2 + 0.5*2 = 3 s of service, done at t=5.
    EXPECT_EQ(cloud.job_latencies()[0], Sim_duration{2.0});
    EXPECT_EQ(cloud.job_latencies()[1], Sim_duration{2.0});
    EXPECT_EQ(cloud.job_latencies()[2], Sim_duration{5.0});
    EXPECT_EQ(cloud.job_latencies()[3], Sim_duration{5.0});
    EXPECT_EQ(cloud.busy_seconds(), Gpu_seconds{7.0});
    EXPECT_EQ(cloud.peak_queue_depth(), 2u);
    // Server 0 ran job 0 then the coalesced pair; server 1 ran job 1.
    const std::vector<Gpu_seconds> per_gpu = cloud.per_gpu_busy_within(Sim_time{20.0});
    ASSERT_EQ(per_gpu.size(), 2u);
    EXPECT_EQ(per_gpu[0], Gpu_seconds{5.0});
    EXPECT_EQ(per_gpu[1], Gpu_seconds{2.0});
}

TEST(Placement, KindPartitionKeepsTrainsOffReservedServers) {
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    config.placement = Placement_kind::kind_partition;
    config.label_reserved_gpus = 1;
    Cloud_runtime cloud{queue, config};
    Sim_time label_done{-1.0};
    Sim_time train2_done{-1.0};
    // Two fine-tunes: the first takes the unreserved server, the second must
    // WAIT even though the reserved server is idle. A label arriving later
    // gets the reserved server immediately.
    cloud.submit(0, Sim_duration{10.0}, {}, Cloud_job_kind::train);
    cloud.submit(0, Sim_duration{10.0}, [&] { train2_done = queue.now(); },
                 Cloud_job_kind::train);
    queue.schedule(Sim_time{1.0}, [&] {
        cloud.submit(1, Sim_duration{1.0}, [&] { label_done = queue.now(); });
    });
    (void)queue.run_until(Sim_time{60.0});
    EXPECT_EQ(label_done, Sim_time{2.0});   // reserved server was free for it
    EXPECT_EQ(train2_done, Sim_time{20.0}); // waited for the unreserved server
    const std::vector<Gpu_seconds> per_gpu = cloud.per_gpu_busy_within(Sim_time{60.0});
    EXPECT_EQ(per_gpu[0], Gpu_seconds{1.0});  // reserved: only the label
    EXPECT_EQ(per_gpu[1], Gpu_seconds{20.0}); // both trains serialized
}

TEST(Placement, KindPartitionFallsBackPastAnUnplaceableHead) {
    // FIFO head is a train that cannot be placed (only the reserved server
    // is free); the scheduler must dispatch the younger label behind it
    // rather than leave the reserved server idle.
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    config.placement = Placement_kind::kind_partition;
    config.label_reserved_gpus = 1;
    Cloud_runtime cloud{queue, config};
    Sim_time label_done{-1.0};
    cloud.submit(0, Sim_duration{5.0}, {}, Cloud_job_kind::train); // unreserved server
    cloud.submit(0, Sim_duration{5.0}, {}, Cloud_job_kind::train); // queued (FIFO head)
    cloud.submit(1, Sim_duration{1.0}, [&] { label_done = queue.now(); });
    (void)queue.run_until(Sim_time{60.0});
    EXPECT_EQ(label_done, Sim_time{1.0}); // did not wait behind the queued train
    EXPECT_EQ(cloud.jobs_completed(), 3u);
}

TEST(Placement, DeviceAffinityDiscountsWarmStarts) {
    Event_queue queue;
    Cloud_config config;
    config.placement = Placement_kind::device_affinity;
    config.affinity_warm_factor = 0.8;
    Cloud_runtime cloud{queue, config};
    // Device 0's first dispatch is cold (nothing resident); its second, on
    // the same server, is warm and runs at the discount.
    cloud.submit(0, Sim_duration{1.0}, {});
    queue.schedule(Sim_time{2.0}, [&] { cloud.submit(0, Sim_duration{1.0}, {}); });
    // A different device is cold again.
    queue.schedule(Sim_time{4.0}, [&] { cloud.submit(1, Sim_duration{1.0}, {}); });
    (void)queue.run_until(Sim_time{20.0});
    ASSERT_EQ(cloud.jobs_completed(), 3u);
    EXPECT_EQ(cloud.job_latencies()[0], Sim_duration{1.0}); // cold
    EXPECT_DOUBLE_EQ(cloud.job_latencies()[1].value(), 0.8); // warm; raw seconds: discount carries ulp residue
    EXPECT_EQ(cloud.job_latencies()[2], Sim_duration{1.0}); // cold (other device)
    EXPECT_EQ(cloud.warm_dispatches(), 1u);
    // Billing follows the discounted service.
    EXPECT_DOUBLE_EQ(cloud.device_gpu_seconds(0).value(), 1.8); // raw seconds: discount carries ulp residue
    EXPECT_EQ(cloud.device_gpu_seconds(1), Gpu_seconds{1.0});
}

TEST(Placement, DeviceAffinityPrefersTheWarmServerOverALowerIndex) {
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    config.placement = Placement_kind::device_affinity;
    config.affinity_warm_factor = 0.8;
    Cloud_runtime cloud{queue, config};
    // Warm up server 0 with device 0 and server 1 with device 1.
    cloud.submit(0, Sim_duration{1.0}, {});
    cloud.submit(1, Sim_duration{1.0}, {});
    // Later, device 1 submits alone: both servers free, but server 1 holds
    // its weights — it must go there (warm) instead of lowest-index 0.
    queue.schedule(Sim_time{3.0}, [&] { cloud.submit(1, Sim_duration{1.0}, {}); });
    (void)queue.run_until(Sim_time{20.0});
    ASSERT_EQ(cloud.jobs_completed(), 3u);
    EXPECT_DOUBLE_EQ(cloud.job_latencies()[2].value(), 0.8); // raw seconds: discount carries ulp residue
    EXPECT_EQ(cloud.warm_dispatches(), 1u);
    const std::vector<Gpu_seconds> per_gpu = cloud.per_gpu_busy_within(Sim_time{20.0});
    EXPECT_EQ(per_gpu[0], Gpu_seconds{1.0});
    EXPECT_DOUBLE_EQ(per_gpu[1].value(), 1.8); // raw seconds: discount carries ulp residue
}

// ---------------------------------------------------------------------------
// Staleness policy.
// ---------------------------------------------------------------------------

TEST(StalenessPolicy, ServesTheFastestDriftingDeviceFirst) {
    Event_queue queue;
    Cloud_config config;
    config.policy = Policy_kind::staleness;
    Cloud_runtime cloud{queue, config};
    std::vector<std::string> order;
    // Server busy until t=5. Device 0's label is older but nearly static
    // (drift 0.01); device 1's is younger but rotting fast (drift 1.0):
    // drift-weighted age at t=5 is 4*0.01 = 0.04 vs 3*1.0 = 3.0.
    cloud.submit(9, Sim_duration{5.0}, [&] { order.push_back("blocker"); });
    queue.schedule(Sim_time{1.0}, [&] {
        cloud.submit(0, Sim_duration{1.0}, [&] { order.push_back("slow_drift"); },
                     Cloud_job_kind::label, 0.01);
    });
    queue.schedule(Sim_time{2.0}, [&] {
        cloud.submit(1, Sim_duration{1.0}, [&] { order.push_back("fast_drift"); },
                     Cloud_job_kind::label, 1.0);
    });
    (void)queue.run_until(Sim_time{30.0});
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[1], "fast_drift");
    EXPECT_EQ(order[2], "slow_drift");
}

TEST(StalenessPolicy, LabelsStillOutrankTrains) {
    Event_queue queue;
    Cloud_config config;
    config.policy = Policy_kind::staleness;
    Cloud_runtime cloud{queue, config};
    std::vector<std::string> order;
    cloud.submit(0, Sim_duration{4.0}, [&] { order.push_back("blocker"); },
                 Cloud_job_kind::train);
    cloud.submit(0, Sim_duration{4.0}, [&] { order.push_back("train"); },
                 Cloud_job_kind::train, 5.0);
    queue.schedule(Sim_time{1.0}, [&] {
        cloud.submit(1, Sim_duration{1.0}, [&] { order.push_back("label"); },
                     Cloud_job_kind::label, 0.0);
    });
    (void)queue.run_until(Sim_time{30.0});
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[1], "label"); // despite the train's older submission
    EXPECT_EQ(order[2], "train");
}

TEST(StalenessPolicy, DegeneratesToOldestFirstWithoutDriftSignal) {
    Event_queue queue;
    Cloud_config config;
    config.policy = Policy_kind::staleness;
    Cloud_runtime cloud{queue, config};
    std::vector<int> order;
    cloud.submit(9, Sim_duration{3.0}, {});
    queue.schedule(Sim_time{1.0}, [&] {
        cloud.submit(0, Sim_duration{1.0}, [&] { order.push_back(0); });
    });
    queue.schedule(Sim_time{2.0}, [&] {
        cloud.submit(1, Sim_duration{1.0}, [&] { order.push_back(1); });
    });
    (void)queue.run_until(Sim_time{30.0});
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0); // equal drift floor -> pure age -> oldest first
    EXPECT_EQ(order[1], 1);
}

// ---------------------------------------------------------------------------
// Bit-identity: the sharded scheduler at its defaults reproduces the
// pre-sharding pool through the whole stack.
// ---------------------------------------------------------------------------

TEST(Sharding, DefaultKnobsReproducePolicyCellBitIdentically) {
    // run_policy_cell is the PR 2 sweep path (no sharding knobs);
    // run_sharding_cell with {1 GPU, any_free, max_batch 1} must produce the
    // same cluster result to the last bit, for a policy with and without
    // preemption. Ported onto the differential determinism harness: every
    // serialized field (fps timelines and windowed-mAP series included) is
    // compared byte for byte, not a hand-picked subset.
    const fleet::Testbed testbed = fleet::make_testbed("ua_detrac", 4, 23, 40.0);
    const struct {
        fleet::Policy_setup policy;
        fleet::Sharding_setup sharding;
    } cells[] = {
        {{"fifo", Policy_kind::fifo, Sim_duration{}},
         {"gpu1_any_fifo", 1, Placement_kind::any_free, Policy_kind::fifo,
          Sim_duration{}, 1, 0}},
        {{"fifo_preempt", Policy_kind::fifo, Sim_duration{2.0}},
         {"gpu1_any_fifo_preempt", 1, Placement_kind::any_free, Policy_kind::fifo,
          Sim_duration{2.0}, 1, 0}},
    };
    for (const auto& cell : cells) {
        shog::testing::expect_identical_cluster(
            [&] {
                return fleet::run_policy_cell(testbed, 4, /*heterogeneous=*/true,
                                              cell.policy, 23);
            },
            [&] {
                return fleet::run_sharding_cell(testbed, 4, /*heterogeneous=*/true,
                                                cell.sharding, 23);
            },
            cell.policy.label);
    }
}

TEST(Sharding, ShardedPoliciesAreDeterministicAcrossReruns) {
    for (Placement_kind placement :
         {Placement_kind::any_free, Placement_kind::device_affinity,
          Placement_kind::kind_partition}) {
        const auto run_script = [placement] {
            Event_queue queue;
            Cloud_config config;
            config.gpu_count = 3;
            config.placement = placement;
            config.label_reserved_gpus =
                placement == Placement_kind::kind_partition ? 1 : 0;
            config.policy = Policy_kind::staleness;
            config.max_batch = 3;
            config.batch_efficiency = 0.6;
            config.preempt_label_wait = Sim_duration{2.0};
            Cloud_runtime cloud{queue, config};
            for (int i = 0; i < 6; ++i) {
                queue.schedule(Sim_time{static_cast<double>(i) * 1.5}, [&cloud, i] {
                    cloud.submit(static_cast<std::size_t>(i % 3), Sim_duration{4.0}, {},
                                 Cloud_job_kind::train, 0.1 * i);
                    cloud.submit(static_cast<std::size_t>((i + 1) % 3),
                                 Sim_duration{0.5}, {}, Cloud_job_kind::label, 0.2 * i);
                });
            }
            (void)queue.run_until(Sim_time{60.0});
            return cloud.job_latencies();
        };
        const std::vector<Sim_duration> a = run_script();
        const std::vector<Sim_duration> b = run_script();
        ASSERT_EQ(a.size(), b.size()) << to_string(placement);
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i], b[i]) << to_string(placement) << " job " << i;
        }
    }
}

} // namespace
} // namespace shog::sim
