// Integration tests: full edge-cloud simulations asserting the paper's
// qualitative claims hold end-to-end. These use a short, drift-heavy custom
// stream so the suite stays fast while the mechanisms still engage.
#include <gtest/gtest.h>

#include "baselines/ams.hpp"
#include "baselines/cloud_only.hpp"
#include "baselines/edge_only.hpp"
#include "core/shoggoth.hpp"
#include "models/pretrain.hpp"
#include "sim/harness.hpp"
#include "video/presets.hpp"

namespace shog {
namespace {

/// A compressed drift gauntlet: day -> night -> day -> night, fast ramps.
video::Dataset_preset gauntlet(std::uint64_t seed, double duration) {
    video::Dataset_preset p = video::ua_detrac_like(seed, duration);
    p.schedule = video::Domain_schedule{{
                                            {video::day_sunny(0.8), 50.0},
                                            {video::night(0.6), 70.0},
                                            {video::day_sunny(0.8), 50.0},
                                            {video::night(0.6), 70.0},
                                        },
                                        10.0,
                                        /*cycle=*/true};
    return p;
}

struct Integration_fixture : public ::testing::Test {
    // Heavy state (stream + pretrained detectors) is shared across the whole
    // suite; tests only ever clone the pristine student.
    static void SetUpTestSuite() {
        preset = new video::Dataset_preset{gauntlet(2023, 300.0)};
        stream = new video::Video_stream{preset->stream, preset->world, preset->schedule};
        pristine = models::make_student(stream->world(), 2023).release();
        teacher = models::make_teacher(stream->world(), 2023).release();
    }
    static void TearDownTestSuite() {
        delete teacher;
        delete pristine;
        delete stream;
        delete preset;
    }
    void SetUp() override { config.eval_stride = 14; }

    sim::Run_result run_shoggoth(core::Shoggoth_config cfg = {}) {
        auto student = pristine->clone();
        core::Shoggoth_strategy strategy{*student,
                                         *teacher,
                                         std::move(cfg),
                                         models::Deployed_profile::yolov4_resnet18(),
                                         device::jetson_tx2(),
                                         device::v100()};
        return sim::run_strategy(strategy, *stream, config);
    }

    sim::Run_result run_edge_only() {
        auto student = pristine->clone();
        baselines::Edge_only_strategy strategy{*student};
        return sim::run_strategy(strategy, *stream, config);
    }

    sim::Run_result run_ams() {
        auto student = pristine->clone();
        baselines::Ams_strategy strategy{*student, *teacher, baselines::Ams_config{},
                                         models::Deployed_profile::yolov4_resnet18(),
                                         device::v100()};
        return sim::run_strategy(strategy, *stream, config);
    }

    static video::Dataset_preset* preset;
    static video::Video_stream* stream;
    static models::Detector* pristine;
    static models::Detector* teacher;
    sim::Harness_config config;
};

video::Dataset_preset* Integration_fixture::preset = nullptr;
video::Video_stream* Integration_fixture::stream = nullptr;
models::Detector* Integration_fixture::pristine = nullptr;
models::Detector* Integration_fixture::teacher = nullptr;

TEST_F(Integration_fixture, ShoggothBeatsEdgeOnlyUnderDrift) {
    // The headline claim: adaptive online learning improves accuracy on a
    // drifting stream.
    const sim::Run_result edge = run_edge_only();
    const sim::Run_result shog = run_shoggoth();
    EXPECT_GT(shog.map, edge.map + 0.02)
        << "Shoggoth " << shog.map << " vs Edge-Only " << edge.map;
    EXPECT_GT(shog.training_sessions, 0u);
}

TEST_F(Integration_fixture, ShoggothUsesFarLessBandwidthThanCloudOnly) {
    baselines::Cloud_only_strategy cloud{*teacher, device::v100()};
    const sim::Run_result cloud_result = sim::run_strategy(cloud, *stream, config);
    const sim::Run_result shog = run_shoggoth();
    EXPECT_GT(cloud_result.up_kbps, 8.0 * shog.up_kbps);
    EXPECT_GT(cloud_result.down_kbps, 20.0 * shog.down_kbps);
    // Cloud-Only remains the accuracy upper bound.
    EXPECT_GE(cloud_result.map, shog.map - 0.02);
}

TEST_F(Integration_fixture, AmsShipsModelsDownlinkHeavy) {
    const sim::Run_result ams = run_ams();
    const sim::Run_result shog = run_shoggoth();
    EXPECT_GT(ams.down_kbps, 3.0 * shog.down_kbps)
        << "AMS downlink " << ams.down_kbps << " vs Shoggoth " << shog.down_kbps;
    // AMS trains in the cloud: more cloud GPU time, fewer edge fps dips.
    EXPECT_GT(ams.cloud_gpu_seconds, 1.5 * shog.cloud_gpu_seconds);
    EXPECT_GT(ams.average_fps, shog.average_fps - 0.5);
}

TEST_F(Integration_fixture, TrainingCostsEdgeFps) {
    const sim::Run_result edge = run_edge_only();
    const sim::Run_result shog = run_shoggoth();
    EXPECT_GT(edge.average_fps, shog.average_fps); // Fig. 4's 2-3 fps loss
    EXPECT_GT(shog.average_fps, 15.0);             // but not catastrophic
    bool dipped = false;
    for (const auto& [t, fps] : shog.fps_timeline) {
        dipped = dipped || fps < 20.0;
    }
    EXPECT_TRUE(dipped); // sessions visibly dent the timeline
}

TEST_F(Integration_fixture, PromptUsesMoreUplinkThanAdaptive) {
    core::Shoggoth_config prompt_cfg;
    prompt_cfg.adaptive_sampling = false;
    prompt_cfg.fixed_rate = 2.0;
    const sim::Run_result prompt = run_shoggoth(std::move(prompt_cfg));
    const sim::Run_result shog = run_shoggoth();
    EXPECT_EQ(prompt.strategy, "Prompt");
    EXPECT_GT(prompt.up_kbps, shog.up_kbps);
}

TEST_F(Integration_fixture, DeterministicEndToEnd) {
    const sim::Run_result a = run_shoggoth();
    const sim::Run_result b = run_shoggoth();
    EXPECT_DOUBLE_EQ(a.map, b.map);
    EXPECT_DOUBLE_EQ(a.up_kbps, b.up_kbps);
    EXPECT_DOUBLE_EQ(a.down_kbps, b.down_kbps);
    EXPECT_EQ(a.training_sessions, b.training_sessions);
}

TEST_F(Integration_fixture, SamplingRateRespondsToDrift) {
    auto student = pristine->clone();
    core::Shoggoth_strategy strategy{*student,
                                     *teacher,
                                     core::Shoggoth_config{},
                                     models::Deployed_profile::yolov4_resnet18(),
                                     device::jetson_tx2(),
                                     device::v100()};
    (void)sim::run_strategy(strategy, *stream, config);
    const auto& trace = strategy.control_trace();
    ASSERT_GT(trace.size(), 5u);
    double min_rate = 10.0;
    double max_rate = 0.0;
    for (const auto& rec : trace) {
        min_rate = std::min(min_rate, rec.rate);
        max_rate = std::max(max_rate, rec.rate);
        EXPECT_GE(rec.rate, 0.1);
        EXPECT_LE(rec.rate, 2.0);
    }
    // The controller actually moves across its range on a drifting stream.
    EXPECT_GT(max_rate, 2.5 * min_rate);
}

} // namespace
} // namespace shog
