// Unit tests for src/common: RNG, statistics, containers, event queue,
// units, table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/event_queue.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace shog {
namespace {

// ---------------------------------------------------------------- Rng ------

TEST(Rng, SameSeedSameSequence) {
    Rng a{42};
    Rng b{42};
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a{1};
    Rng b{2};
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += (a.next_u64() == b.next_u64()) ? 1 : 0;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
    Rng rng{7};
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf) {
    Rng rng{3};
    Running_stats stats;
    for (int i = 0; i < 20000; ++i) {
        stats.add(rng.uniform());
    }
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
    Rng rng{11};
    Running_stats stats;
    for (int i = 0; i < 40000; ++i) {
        stats.add(rng.gaussian());
    }
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled) {
    Rng rng{13};
    Running_stats stats;
    for (int i = 0; i < 20000; ++i) {
        stats.add(rng.gaussian(5.0, 2.0));
    }
    EXPECT_NEAR(stats.mean(), 5.0, 0.06);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, IndexBounds) {
    Rng rng{5};
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.index(17), 17u);
    }
    EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusive) {
    Rng rng{6};
    std::set<int> seen;
    for (int i = 0; i < 1000; ++i) {
        const int v = rng.uniform_int(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u); // all values hit
}

TEST(Rng, ChanceExtremes) {
    Rng rng{8};
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, PoissonMean) {
    Rng rng{9};
    Running_stats stats;
    for (int i = 0; i < 20000; ++i) {
        stats.add(rng.poisson(3.0));
    }
    EXPECT_NEAR(stats.mean(), 3.0, 0.1);
}

TEST(Rng, PoissonZeroLambda) {
    Rng rng{10};
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rng.poisson(0.0), 0);
    }
}

TEST(Rng, SplitIndependence) {
    Rng parent{21};
    Rng a = parent.split(1);
    Rng b = parent.split(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += (a.next_u64() == b.next_u64()) ? 1 : 0;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, SplitDeterministic) {
    Rng p1{21};
    Rng p2{21};
    Rng a = p1.split(99);
    Rng b = p2.split(99);
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, SampleWithoutReplacementDistinct) {
    Rng rng{33};
    const auto picks = rng.sample_without_replacement(50, 20);
    EXPECT_EQ(picks.size(), 20u);
    const std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 20u);
    for (std::size_t p : picks) {
        EXPECT_LT(p, 50u);
    }
}

TEST(Rng, SampleWithoutReplacementAll) {
    Rng rng{34};
    const auto picks = rng.sample_without_replacement(10, 10);
    const std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 10u);
    EXPECT_THROW((void)rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, ShufflePermutes) {
    Rng rng{35};
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> original = v;
    rng.shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, original);
}

// ------------------------------------------------------- Running_stats -----

TEST(RunningStats, MeanAndVariance) {
    Running_stats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.add(x);
    }
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesCombined) {
    Running_stats a;
    Running_stats b;
    Running_stats all;
    Rng rng{77};
    for (int i = 0; i < 500; ++i) {
        const double x = rng.gaussian(3.0, 2.0);
        (i % 2 == 0 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, EmptyDefaults) {
    Running_stats s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

// ------------------------------------------------------------- quantile ----

TEST(Quantile, MedianAndExtremes) {
    std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
    std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(Quantile, Errors) {
    EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
    EXPECT_THROW((void)quantile({1.0}, 1.5), std::invalid_argument);
}

// -------------------------------------------------- Streaming_quantile ----

TEST(StreamingQuantile, MatchesBatchQuantileBitForBit) {
    // The two-heap structure is an exact order statistic, not a sketch:
    // after every insertion its value() must equal the R-7 batch quantile
    // of the samples so far, bit for bit, including the interpolation case.
    for (double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
        Rng rng{42};
        Streaming_quantile streaming{q};
        std::vector<double> samples;
        for (int i = 0; i < 500; ++i) {
            // Mix of ties (coarse grid) and continuous values.
            const double x = rng.chance(0.3) ? std::floor(rng.uniform() * 10.0)
                                             : rng.uniform() * 1000.0;
            streaming.add(x);
            samples.push_back(x);
            ASSERT_EQ(streaming.value(), quantile(samples, q)) // quantile, not a unit
                << "q=" << q << " diverged after sample " << i;
        }
        EXPECT_EQ(streaming.count(), samples.size());
    }
}

TEST(StreamingQuantile, EmptyThrows) {
    Streaming_quantile s{0.95};
    EXPECT_TRUE(s.empty());
    EXPECT_THROW((void)s.value(), std::invalid_argument); // quantile, not a unit
}

// ----------------------------------------------------------------- Ecdf ----

TEST(Ecdf, StepFunction) {
    Ecdf cdf{{1.0, 2.0, 3.0, 4.0}};
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
    EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.at(9.0), 1.0);
}

TEST(Ecdf, Inverse) {
    Ecdf cdf{{10.0, 20.0, 30.0, 40.0}};
    EXPECT_DOUBLE_EQ(cdf.inverse(0.25), 10.0);
    EXPECT_DOUBLE_EQ(cdf.inverse(0.5), 20.0);
    EXPECT_DOUBLE_EQ(cdf.inverse(1.0), 40.0);
}

TEST(Ecdf, MonotoneProperty) {
    Rng rng{55};
    std::vector<double> samples;
    for (int i = 0; i < 200; ++i) {
        samples.push_back(rng.gaussian());
    }
    Ecdf cdf{samples};
    double prev = 0.0;
    for (double x = -3.0; x <= 3.0; x += 0.1) {
        const double p = cdf.at(x);
        EXPECT_GE(p, prev);
        prev = p;
    }
}

// ------------------------------------------------------- Moving_average ----

TEST(MovingAverage, WindowEviction) {
    Moving_average ma{3};
    ma.add(1.0);
    ma.add(2.0);
    ma.add(3.0);
    EXPECT_DOUBLE_EQ(ma.mean(), 2.0);
    EXPECT_TRUE(ma.full());
    ma.add(10.0); // evicts 1.0
    EXPECT_DOUBLE_EQ(ma.mean(), 5.0);
}

TEST(MovingAverage, PartialFill) {
    Moving_average ma{10};
    ma.add(4.0);
    EXPECT_DOUBLE_EQ(ma.mean(), 4.0);
    EXPECT_EQ(ma.count(), 1u);
    EXPECT_FALSE(ma.full());
}

TEST(Ewma, ConvergesToConstant) {
    Ewma e{0.5};
    for (int i = 0; i < 30; ++i) {
        e.add(7.0);
    }
    EXPECT_NEAR(e.value(), 7.0, 1e-6); // Ewma accessor, not a unit
}

TEST(Ewma, FirstValueInitializes) {
    Ewma e{0.1};
    e.add(42.0);
    EXPECT_DOUBLE_EQ(e.value(), 42.0); // Ewma accessor, not a unit
}

// ----------------------------------------------------------- Ring_buffer ---

TEST(RingBuffer, KeepsMostRecent) {
    Ring_buffer<int> rb{3};
    for (int i = 1; i <= 5; ++i) {
        rb.push(i);
    }
    EXPECT_EQ(rb.size(), 3u);
    EXPECT_EQ(rb.at(0), 3);
    EXPECT_EQ(rb.at(2), 5);
    EXPECT_EQ(rb.back(), 5);
}

TEST(RingBuffer, ToVectorOldestFirst) {
    Ring_buffer<int> rb{4};
    for (int i = 0; i < 6; ++i) {
        rb.push(i);
    }
    EXPECT_EQ(rb.to_vector(), (std::vector<int>{2, 3, 4, 5}));
}

TEST(RingBuffer, Errors) {
    Ring_buffer<int> rb{2};
    EXPECT_THROW((void)rb.back(), std::invalid_argument);
    rb.push(1);
    EXPECT_THROW((void)rb.at(1), std::invalid_argument);
}

// ----------------------------------------------------------- Event_queue ---

TEST(EventQueue, TimeOrder) {
    Event_queue q;
    std::vector<int> order;
    q.schedule(Sim_time{3.0}, [&] { order.push_back(3); });
    q.schedule(Sim_time{1.0}, [&] { order.push_back(1); });
    q.schedule(Sim_time{2.0}, [&] { order.push_back(2); });
    while (!q.empty()) {
        q.step();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), Sim_time{3.0});
}

TEST(EventQueue, FifoForEqualTimes) {
    Event_queue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        q.schedule(Sim_time{1.0}, [&order, i] { order.push_back(i); });
    }
    while (!q.empty()) {
        q.step();
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
    Event_queue q;
    int fired = 0;
    q.schedule(Sim_time{1.0}, [&] { ++fired; });
    q.schedule(Sim_time{2.0}, [&] { ++fired; });
    q.schedule(Sim_time{5.0}, [&] { ++fired; });
    EXPECT_EQ(q.run_until(Sim_time{3.0}), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), Sim_time{3.0});
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
    Event_queue q;
    int fired = 0;
    q.schedule(Sim_time{1.0}, [&] {
        ++fired;
        q.schedule_in(Sim_duration{1.0}, [&] { ++fired; });
    });
    (void)q.run_until(Sim_time{10.0});
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PastSchedulingThrows) {
    Event_queue q;
    q.schedule(Sim_time{2.0}, [] {});
    q.step();
    EXPECT_THROW(q.schedule(Sim_time{1.0}, [] {}), std::invalid_argument);
}

// ----------------------------------------------------------------- units ---

TEST(Units, BytesToKbpsRoundTrip) {
    const Kbps kbps = bytes_to_kbps(Bytes{125000.0}, Sim_duration{1.0}); // 1 Mbit in 1 s
    EXPECT_EQ(kbps, Kbps{1000.0});
    EXPECT_EQ(kbps_to_bytes(kbps, Sim_duration{1.0}), Bytes{125000.0});
}

TEST(Units, KbpsToBytesRoundTrip) {
    // The other direction: a rate sustained for a window converts to a
    // payload, and that payload over the same window recovers the rate.
    const Bytes payload = kbps_to_bytes(Kbps{640.0}, Sim_duration{2.5});
    EXPECT_EQ(bytes_to_kbps(payload, Sim_duration{2.5}), Kbps{640.0});
    // Degenerate window: no time means no measurable rate.
    EXPECT_EQ(bytes_to_kbps(Bytes{1000.0}, Sim_duration{}), Kbps{});
}

TEST(Units, TransmitSeconds) {
    // 1 MB over 8 Mbps = 1 second.
    EXPECT_NEAR(transmit_seconds(Bytes{1e6}, 8.0).value(), 1.0, 1e-9); // raw seconds for the tolerance check
    EXPECT_EQ(transmit_seconds(Bytes{1000.0}, 0.0), Sim_duration{});
}

TEST(Units, TransmitSecondsInverse) {
    // transmit_seconds(bytes, mbps) and kbps_to_bytes(mbps * 1000, dt) are
    // inverses: sending the recovered payload takes the original time.
    const Sim_duration dt = transmit_seconds(mib(4.0), 20.0);
    const Bytes recovered = kbps_to_bytes(Kbps{20.0 * 1000.0}, dt);
    EXPECT_NEAR(recovered.value(), mib(4.0).value(), 1e-6); // raw bytes for the tolerance check
}

TEST(Units, AffineTimeAlgebra) {
    constexpr Sim_time t0{2.0};
    constexpr Sim_duration d{3.5};
    static_assert((t0 + d).value() == 5.5); // compile-time arithmetic stays available
    EXPECT_EQ((t0 + d) - t0, d);
    EXPECT_EQ(t0 - Sim_time{}, t0.since_start());
    Sim_time t = t0;
    t += d;
    EXPECT_EQ(t, t0 + d);
    EXPECT_EQ(Gpu_seconds::of(d), Gpu_seconds{3.5});
}

// ----------------------------------------------------------- Text_table ----

TEST(TextTable, RendersAllCells) {
    Text_table t{{"A", "B"}};
    t.add_row({"x", "1.5"});
    t.add_row({"longer", "2"});
    const std::string out = t.str();
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RowWidthChecked) {
    Text_table t{{"A", "B"}};
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumFormatting) {
    EXPECT_EQ(Text_table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Text_table::num(10.0, 0), "10");
}

} // namespace
} // namespace shog
