// The calendar event queue against its reference: Event_queue (bucketed
// rungs + overflow) must execute any schedule in exactly the order the old
// binary heap (Heap_event_queue) does — same times, same stable-FIFO tie
// order — because the whole simulator's bit-for-bit reproducibility hangs
// on that order. These tests drive both implementations side by side on
// randomized traces (ties, re-entrant scheduling, bursty and long-range
// time distributions that force window rebuilds) and pin the run_until
// horizon semantics the harness relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/event_queue.hpp"
#include "common/rng.hpp"

namespace shog {
namespace {

struct Trace_entry {
    int id;
    Sim_time at;
};

bool operator==(const Trace_entry& a, const Trace_entry& b) {
    return a.id == b.id && a.at == b.at;
}

/// Replay one randomized schedule on a queue implementation: `initial`
/// events are scheduled up front, and each executed event re-enters
/// `reschedule_per_event` future events from inside its callback (the
/// pattern the cloud runtime uses for dispatch/complete chains). Returns
/// the execution trace (id, execution-time clock).
template <typename Queue>
std::vector<Trace_entry> replay(std::uint64_t seed, int initial, int reschedule_per_event,
                                double horizon, double spread, bool integer_times) {
    Queue queue;
    Rng rng{seed};
    std::vector<Trace_entry> trace;
    int next_id = 0;

    // The self-referential scheduler: events may schedule more events.
    struct Driver {
        Queue& queue;
        Rng& rng;
        std::vector<Trace_entry>& trace;
        int& next_id;
        int reschedule;
        double spread;
        bool integer_times;

        void schedule_one(double not_before) {
            const int id = next_id++;
            double at = not_before + rng.uniform() * spread;
            if (integer_times) {
                // Coarse grid => massive tie populations, the FIFO
                // tie-order stress case.
                at = std::floor(at);
            }
            queue.schedule(Sim_time{at}, [this, id] {
                trace.push_back(Trace_entry{id, queue.now()});
                for (int r = 0; r < reschedule; ++r) {
                    if (rng.chance(0.4)) {
                        schedule_one(queue.now().value()); // raw spread arithmetic
                    }
                }
            });
        }
    };
    Driver driver{queue, rng, trace, next_id, reschedule_per_event, spread, integer_times};
    for (int i = 0; i < initial; ++i) {
        driver.schedule_one(rng.uniform() * spread);
    }
    (void)queue.run_until(Sim_time{horizon});
    return trace;
}

void expect_identical_traces(std::uint64_t seed, int initial, int reschedule, double horizon,
                             double spread, bool integer_times) {
    const std::vector<Trace_entry> heap =
        replay<Heap_event_queue>(seed, initial, reschedule, horizon, spread, integer_times);
    const std::vector<Trace_entry> calendar =
        replay<Event_queue>(seed, initial, reschedule, horizon, spread, integer_times);
    ASSERT_EQ(heap.size(), calendar.size()) << "seed " << seed;
    for (std::size_t i = 0; i < heap.size(); ++i) {
        EXPECT_TRUE(heap[i] == calendar[i])
            << "seed " << seed << " diverged at event " << i << ": heap (" << heap[i].id
            << ", " << heap[i].at.value() << ") vs calendar (" // diagnostic print
            << calendar[i].id << ", " << calendar[i].at.value() << ")"; // diagnostic print
        if (!(heap[i] == calendar[i])) {
            break;
        }
    }
}

TEST(EventEngine, RandomTracesMatchHeapReference) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        expect_identical_traces(seed, 200, 2, 1.0e9, 50.0, false);
    }
}

TEST(EventEngine, TieHeavyTracesMatchHeapReference) {
    // Integer-grid times: dozens of events share each timestamp, so this is
    // pure stable-FIFO tie-order coverage.
    for (std::uint64_t seed = 11; seed <= 16; ++seed) {
        expect_identical_traces(seed, 300, 2, 1.0e9, 12.0, true);
    }
}

TEST(EventEngine, LongRangeTracesForceWindowRebuilds) {
    // Spread far beyond the initial 64-bucket window so inserts land in the
    // overflow rung and run_until crosses several window rebuilds.
    for (std::uint64_t seed = 21; seed <= 24; ++seed) {
        expect_identical_traces(seed, 150, 1, 1.0e12, 1.0e6, false);
    }
}

TEST(EventEngine, PartialHorizonsMatchHeapReference) {
    // Stop mid-schedule (events remain pending), then the next run_until
    // continues: both engines must agree at every horizon.
    const auto drive = [](auto queue_tag, std::uint64_t seed) {
        using Queue = decltype(queue_tag);
        Queue queue;
        Rng rng{seed};
        std::vector<Trace_entry> trace;
        for (int i = 0; i < 400; ++i) {
            const int id = i;
            const Sim_time at{rng.uniform() * 100.0};
            queue.schedule(at, [&trace, &queue, id] {
                trace.push_back(Trace_entry{id, queue.now()});
            });
        }
        for (double horizon : {10.0, 30.0, 30.0, 55.5, 100.0}) {
            (void)queue.run_until(Sim_time{horizon});
        }
        EXPECT_EQ(queue.pending(), 0u);
        return trace;
    };
    for (std::uint64_t seed = 31; seed <= 34; ++seed) {
        const auto heap = drive(Heap_event_queue{}, seed);
        const auto calendar = drive(Event_queue{}, seed);
        ASSERT_EQ(heap.size(), calendar.size());
        for (std::size_t i = 0; i < heap.size(); ++i) {
            ASSERT_TRUE(heap[i] == calendar[i]) << "seed " << seed << " event " << i;
        }
    }
}

TEST(EventEngine, CallbackSchedulingAtExactHorizonExecutes) {
    // A callback that schedules a new event at exactly the run_until bound
    // during the final step must still see that event execute in the same
    // run (next_time() <= until admits it). The harness depends on this:
    // fps ticks scheduled at `duration` by the last eval event must land.
    const auto drive = [](auto queue_tag) {
        using Queue = decltype(queue_tag);
        Queue queue;
        int fired = 0;
        queue.schedule(Sim_time{10.0}, [&queue, &fired] {
            queue.schedule(Sim_time{10.0}, [&fired] { fired += 10; });
            fired += 1;
        });
        const std::size_t executed = queue.run_until(Sim_time{10.0});
        EXPECT_EQ(executed, 2u);
        EXPECT_EQ(fired, 11);
        EXPECT_EQ(queue.pending(), 0u);
        EXPECT_EQ(queue.now(), Sim_time{10.0});
        return fired;
    };
    EXPECT_EQ(drive(Event_queue{}), drive(Heap_event_queue{}));
}

TEST(EventEngine, ScheduleAtNowRunsBeforeLaterEvents) {
    // schedule(at == now) from inside a callback executes in the same pass,
    // after other already-pending same-time events but before later ones,
    // identically on both engines. Scheduling strictly in the past throws.
    const auto drive = [](auto queue_tag) {
        using Queue = decltype(queue_tag);
        Queue queue;
        std::vector<int> order;
        queue.schedule(Sim_time{5.0}, [&queue, &order] {
            order.push_back(1);
            queue.schedule(queue.now(), [&order] { order.push_back(2); });
            EXPECT_THROW(queue.schedule(Sim_time{1.0}, [] {}), std::invalid_argument);
        });
        queue.schedule(Sim_time{6.0}, [&order] { order.push_back(3); });
        (void)queue.run_until(Sim_time{100.0});
        return order;
    };
    const auto calendar = drive(Event_queue{});
    const auto heap = drive(Heap_event_queue{});
    ASSERT_EQ(calendar, heap);
    EXPECT_EQ(calendar, (std::vector<int>{1, 2, 3}));
}

TEST(EventEngine, NextTimeAndSizeTrackTheSchedule) {
    Event_queue queue;
    EXPECT_EQ(queue.pending(), 0u);
    queue.schedule(Sim_time{3.0}, [] {});
    queue.schedule(Sim_time{1.5}, [] {});
    queue.schedule(Sim_time{7.0}, [] {});
    EXPECT_EQ(queue.pending(), 3u);
    EXPECT_EQ(queue.next_time(), Sim_time{1.5});
    queue.step();
    EXPECT_EQ(queue.pending(), 2u);
    EXPECT_EQ(queue.now(), Sim_time{1.5});
    EXPECT_EQ(queue.next_time(), Sim_time{3.0});
    (void)queue.run_until(Sim_time{100.0});
    EXPECT_EQ(queue.pending(), 0u);
    EXPECT_EQ(queue.now(), Sim_time{100.0});
}

TEST(EventEngine, MillionEventBurstDrainsInOrder) {
    // Volume test at fleet-bench scale: monotone non-decreasing execution
    // times across bucket boundaries and window rebuilds.
    Event_queue queue;
    Rng rng{99};
    const int n = 1'000'000;
    std::size_t executed = 0;
    Sim_time last{-1.0};
    bool monotone = true;
    for (int i = 0; i < n; ++i) {
        queue.schedule(Sim_time{rng.uniform() * 600.0},
                       [&queue, &executed, &last, &monotone] {
                           monotone = monotone && queue.now() >= last;
                           last = queue.now();
                           ++executed;
                       });
    }
    EXPECT_EQ(queue.run_until(Sim_time{600.0}), static_cast<std::size_t>(n));
    EXPECT_EQ(executed, static_cast<std::size_t>(n));
    EXPECT_TRUE(monotone);
}

} // namespace
} // namespace shog
