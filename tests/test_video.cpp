// Unit tests for the synthetic video world: domain schedules, the appearance
// physics (illumination/weather/night transforms, robustness attenuation),
// and the deterministic stream generator.
#include <gtest/gtest.h>

#include <cmath>

#include "video/domain.hpp"
#include "video/presets.hpp"
#include "video/stream.hpp"
#include "video/world.hpp"

namespace shog::video {
namespace {

double vec_distance(const std::vector<double>& a, const std::vector<double>& b) {
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        d += (a[i] - b[i]) * (a[i] - b[i]);
    }
    return std::sqrt(d);
}

// --------------------------------------------------------------- Domain ----

TEST(Domain, DistanceProperties) {
    const Domain a = day_sunny(0.5);
    const Domain b = night(0.5);
    EXPECT_DOUBLE_EQ(domain_distance(a, a), 0.0);
    EXPECT_DOUBLE_EQ(domain_distance(a, b), domain_distance(b, a));
    EXPECT_GT(domain_distance(a, b), 0.5); // day vs night is a big shift
}

TEST(DomainSchedule, HoldsAndRamps) {
    Domain_schedule sched{{{day_sunny(0.5), 100.0}, {night(0.5), 100.0}}, 20.0, false};
    EXPECT_DOUBLE_EQ(sched.at(50.0).illumination, 1.0);
    EXPECT_DOUBLE_EQ(sched.at(130.0).illumination, night(0.5).illumination);
    // Mid-ramp is interpolated.
    const Domain mid = sched.at(110.0);
    EXPECT_GT(mid.illumination, night(0.5).illumination);
    EXPECT_LT(mid.illumination, 1.0);
}

TEST(DomainSchedule, RampWeatherSwitchesAtMidpoint) {
    Domain_schedule sched{{{day_sunny(0.5), 10.0}, {day_rainy(0.5), 10.0}}, 10.0, false};
    EXPECT_EQ(sched.at(12.0).weather, Weather::sunny);  // 20% into ramp
    EXPECT_EQ(sched.at(18.0).weather, Weather::rainy);  // 80% into ramp
}

TEST(DomainSchedule, NonCyclingSticksAtEnd) {
    Domain_schedule sched{{{day_sunny(0.5), 10.0}, {night(0.5), 10.0}}, 5.0, false};
    EXPECT_DOUBLE_EQ(sched.at(1000.0).illumination, night(0.5).illumination);
}

TEST(DomainSchedule, CyclingWraps) {
    Domain_schedule sched{{{day_sunny(0.5), 10.0}, {night(0.5), 10.0}}, 5.0, true};
    EXPECT_DOUBLE_EQ(sched.period(), 30.0);
    EXPECT_DOUBLE_EQ(sched.at(5.0).illumination, sched.at(35.0).illumination);
    EXPECT_DOUBLE_EQ(sched.at(22.0).illumination, sched.at(52.0).illumination);
}

TEST(DomainSchedule, DriftRateZeroInsideHold) {
    Domain_schedule sched{{{day_sunny(0.5), 100.0}, {night(0.5), 100.0}}, 10.0, false};
    EXPECT_DOUBLE_EQ(sched.drift_rate(20.0), 0.0);
    EXPECT_GT(sched.drift_rate(102.0), 0.0); // inside the ramp
}

TEST(DomainSchedule, Validation) {
    EXPECT_THROW((Domain_schedule{{}, 5.0, false}), std::invalid_argument);
    Domain bad = day_sunny(0.5);
    bad.illumination = 1.5;
    EXPECT_THROW((Domain_schedule{{{bad, 10.0}}, 5.0, false}), std::invalid_argument);
}

// ---------------------------------------------------------------- World ----

World_config small_world() {
    World_config cfg;
    cfg.feature_dim = 16;
    cfg.num_classes = 3;
    cfg.seed = 99;
    return cfg;
}

TEST(World, PrototypesSeparated) {
    World_model world{small_world()};
    for (std::size_t a = 1; a <= 3; ++a) {
        for (std::size_t b = a + 1; b <= 3; ++b) {
            EXPECT_GT(vec_distance(world.prototype(a), world.prototype(b)), 1.0);
        }
    }
    EXPECT_THROW((void)world.prototype(0), std::invalid_argument);
    EXPECT_THROW((void)world.prototype(4), std::invalid_argument);
}

TEST(World, ConfusablePairPullsPrototypes) {
    World_config cfg = small_world();
    World_model plain{cfg};
    const double base = vec_distance(plain.prototype(1), plain.prototype(2));
    cfg.confusable_pairs = {{1, 2}};
    World_model confused{cfg};
    EXPECT_LT(vec_distance(confused.prototype(1), confused.prototype(2)), base);
}

TEST(World, IlluminationGainMonotone) {
    World_model world{small_world()};
    double prev = 0.0;
    for (double il = 0.0; il <= 1.0; il += 0.1) {
        const double g = world.illumination_gain(il);
        EXPECT_GE(g, world.config().illumination_floor - 1e-12);
        EXPECT_LE(g, 1.0 + 1e-12);
        EXPECT_GE(g, prev);
        prev = g;
    }
}

TEST(World, NoiseRisesAtNightAndRain) {
    World_model world{small_world()};
    const double day = world.noise_sigma(day_sunny(0.5), 0.1);
    const double dark = world.noise_sigma(night(0.5), 0.1);
    const double rain = world.noise_sigma(day_rainy(0.5), 0.1);
    EXPECT_GT(dark, day);
    EXPECT_GT(rain, world.noise_sigma(day_cloudy(0.5), 0.1));
}

TEST(World, RobustnessAttenuatesNoise) {
    World_model world{small_world()};
    EXPECT_LT(world.noise_sigma(night(0.5), 0.1, 0.7), world.noise_sigma(night(0.5), 0.1, 0.0));
}

TEST(World, NightDisplacesObservations) {
    World_model world{small_world()};
    Rng rng{1};
    const auto appearance = world.sample_appearance(1, rng);
    // Noise-free world to isolate the transform.
    World_config quiet = small_world();
    quiet.base_noise = 1e-6;
    World_model silent{quiet};
    Rng r1{5};
    Rng r2{5};
    const auto day_obs = silent.observe(appearance, day_sunny(0.5), 0.0, 0.0, r1);
    const auto night_obs = silent.observe(appearance, night(0.5), 0.0, 0.0, r2);
    EXPECT_GT(vec_distance(day_obs, night_obs), 1.0);
}

TEST(World, RobustnessRecoversNightObservation) {
    World_config quiet = small_world();
    quiet.base_noise = 1e-6;
    World_model world{quiet};
    Rng rng{2};
    const auto appearance = world.sample_appearance(2, rng);
    Rng r1{7};
    Rng r2{7};
    Rng r3{7};
    const auto day_obs = world.observe(appearance, day_sunny(0.5), 0.0, 0.0, r1, 0.0);
    const auto night_raw = world.observe(appearance, night(0.5), 0.0, 0.0, r2, 0.0);
    const auto night_robust = world.observe(appearance, night(0.5), 0.0, 0.0, r3, 0.8);
    EXPECT_LT(vec_distance(day_obs, night_robust), vec_distance(day_obs, night_raw));
}

TEST(World, OcclusionDampsDimensions) {
    World_config quiet = small_world();
    quiet.base_noise = 1e-6;
    World_model world{quiet};
    Rng rng{3};
    const auto appearance = world.sample_appearance(1, rng);
    Rng r1{9};
    Rng r2{9};
    const auto clear_obs = world.observe(appearance, day_sunny(0.5), 0.0, 0.0, r1);
    const auto occluded = world.observe(appearance, day_sunny(0.5), 0.0, 0.8, r2);
    double clear_norm = 0.0;
    double occ_norm = 0.0;
    for (std::size_t i = 0; i < clear_obs.size(); ++i) {
        clear_norm += clear_obs[i] * clear_obs[i];
        occ_norm += occluded[i] * occluded[i];
    }
    EXPECT_LT(occ_norm, clear_norm);
}

TEST(World, SampleAppearanceNearPrototype) {
    World_model world{small_world()};
    Rng rng{4};
    const auto a = world.sample_appearance(1, rng);
    EXPECT_LT(vec_distance(a, world.prototype(1)),
              vec_distance(a, world.prototype(3)));
}

// --------------------------------------------------------------- Stream ----

Stream_config small_stream(std::uint64_t seed) {
    Stream_config cfg;
    cfg.seed = seed;
    cfg.duration = 60.0;
    cfg.fps = 10.0;
    cfg.spawn_rate = 1.0;
    return cfg;
}

Domain_schedule flat_schedule() {
    return Domain_schedule{{{day_sunny(0.7), 60.0}}, 5.0, false};
}

TEST(Stream, FrameCountMatchesDuration) {
    Video_stream s{small_stream(1), small_world(), flat_schedule()};
    EXPECT_EQ(s.frame_count(), 600u);
    EXPECT_DOUBLE_EQ(s.fps(), 10.0);
}

TEST(Stream, DeterministicFrames) {
    Video_stream s1{small_stream(5), small_world(), flat_schedule()};
    Video_stream s2{small_stream(5), small_world(), flat_schedule()};
    for (std::size_t i : {0u, 57u, 311u, 599u}) {
        const Frame a = s1.frame_at(i);
        const Frame b = s2.frame_at(i);
        ASSERT_EQ(a.objects.size(), b.objects.size());
        for (std::size_t k = 0; k < a.objects.size(); ++k) {
            EXPECT_EQ(a.objects[k].object_id, b.objects[k].object_id);
            EXPECT_DOUBLE_EQ(a.objects[k].box.x1, b.objects[k].box.x1);
            EXPECT_DOUBLE_EQ(a.objects[k].occlusion, b.objects[k].occlusion);
        }
    }
}

TEST(Stream, DifferentSeedsDiffer) {
    Video_stream s1{small_stream(1), small_world(), flat_schedule()};
    Video_stream s2{small_stream(2), small_world(), flat_schedule()};
    EXPECT_NE(s1.track_count(), 0u);
    // Not a hard guarantee per-frame, but track populations should differ.
    std::size_t diff = (s1.track_count() != s2.track_count()) ? 1 : 0;
    const Frame a = s1.frame_at(300);
    const Frame b = s2.frame_at(300);
    diff += (a.objects.size() != b.objects.size()) ? 1 : 0;
    EXPECT_GE(diff, 1u);
}

TEST(Stream, BoxesInsideImage) {
    Video_stream s{small_stream(3), small_world(), flat_schedule()};
    for (std::size_t i = 0; i < s.frame_count(); i += 37) {
        const Frame f = s.frame_at(i);
        for (const Rendered_object& obj : f.objects) {
            EXPECT_GE(obj.box.x1, 0.0);
            EXPECT_GE(obj.box.y1, 0.0);
            EXPECT_LE(obj.box.x2, s.config().image_width);
            EXPECT_LE(obj.box.y2, s.config().image_height);
            EXPECT_TRUE(obj.box.valid());
            EXPECT_GE(obj.class_id, 1u);
            EXPECT_LE(obj.class_id, s.num_classes());
            EXPECT_NE(obj.appearance, nullptr);
            EXPECT_GE(obj.occlusion, 0.0);
            EXPECT_LE(obj.occlusion, 0.9);
        }
        EXPECT_GE(f.motion_level, 0.0);
        EXPECT_LE(f.motion_level, 1.0);
        EXPECT_GE(f.complexity, 0.0);
        EXPECT_LE(f.complexity, 1.0);
    }
}

TEST(Stream, DensityControlsPopulation) {
    Stream_config cfg = small_stream(4);
    Domain_schedule dense{{{day_sunny(1.0), 60.0}}, 5.0, false};
    Domain_schedule sparse{{{day_sunny(0.1), 60.0}}, 5.0, false};
    Video_stream s_dense{cfg, small_world(), dense};
    Video_stream s_sparse{cfg, small_world(), sparse};
    EXPECT_GT(s_dense.track_count(), 2 * s_sparse.track_count());
}

TEST(Stream, GroundTruthMatchesObjects) {
    Video_stream s{small_stream(6), small_world(), flat_schedule()};
    const Frame f = s.frame_at(200);
    const auto gt = Video_stream::ground_truth(f);
    ASSERT_EQ(gt.size(), f.objects.size());
    for (std::size_t i = 0; i < gt.size(); ++i) {
        EXPECT_EQ(gt[i].class_id, f.objects[i].class_id);
        EXPECT_DOUBLE_EQ(gt[i].box.x1, f.objects[i].box.x1);
    }
}

TEST(Stream, IndexAtClamps) {
    Video_stream s{small_stream(7), small_world(), flat_schedule()};
    EXPECT_EQ(s.index_at(0.0), 0u);
    EXPECT_EQ(s.index_at(1.0), 10u);
    EXPECT_EQ(s.index_at(1e9), s.frame_count() - 1);
}

TEST(Stream, EgoMotionRaisesMotionLevel) {
    Stream_config still = small_stream(8);
    Stream_config moving = small_stream(8);
    moving.ego_motion = 0.5;
    Video_stream s1{still, small_world(), flat_schedule()};
    Video_stream s2{moving, small_world(), flat_schedule()};
    EXPECT_GT(s2.frame_at(100).motion_level, s1.frame_at(100).motion_level);
}

// -------------------------------------------------------------- presets ----

TEST(Presets, AllThreeConstruct) {
    for (const char* name : {"ua_detrac", "kitti", "waymo"}) {
        const Dataset_preset p = preset_by_name(name, 42, 120.0);
        Video_stream stream{p.stream, p.world, p.schedule};
        EXPECT_GT(stream.frame_count(), 0u);
        EXPECT_GT(stream.track_count(), 0u);
        EXPECT_EQ(stream.config().class_frequency.size(), stream.num_classes());
        EXPECT_EQ(stream.config().class_names.size(), stream.num_classes());
    }
    EXPECT_THROW((void)preset_by_name("nope", 42), std::invalid_argument);
}

TEST(Presets, KittiIsCarOnly) {
    const Dataset_preset p = kitti_like(1, 60.0);
    EXPECT_EQ(p.world.num_classes, 1u);
    EXPECT_GT(p.stream.ego_motion, 0.0);
}

TEST(Presets, DetracCyclesThroughNight) {
    const Dataset_preset p = ua_detrac_like(1, 600.0);
    bool saw_night = false;
    bool saw_day = false;
    for (double t = 0.0; t < p.schedule.period(); t += 2.0) {
        const Domain d = p.schedule.at(t);
        saw_night = saw_night || d.illumination < 0.2;
        saw_day = saw_day || d.illumination > 0.9;
    }
    EXPECT_TRUE(saw_night);
    EXPECT_TRUE(saw_day);
    EXPECT_TRUE(p.schedule.cycles());
}

TEST(Presets, WaymoHasPedestrians) {
    const Dataset_preset p = waymo_like(1, 60.0);
    bool found = false;
    for (const auto& n : p.stream.class_names) {
        found = found || n == "pedestrian";
    }
    EXPECT_TRUE(found);
}

} // namespace
} // namespace shog::video
