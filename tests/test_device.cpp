// Unit tests for the device cost models: TX2/V100 throughput, the edge
// contention model behind Fig. 4's fps behaviour, and the telemetry
// trackers.
#include <gtest/gtest.h>

#include "device/compute.hpp"
#include "device/monitor.hpp"
#include "models/deployed.hpp"

namespace shog::device {
namespace {

TEST(ComputeModel, SecondsForGflops) {
    const Compute_model tx2 = jetson_tx2();
    EXPECT_NEAR(tx2.seconds_for_gflops(tx2.effective_tflops * 1000.0).value(), // raw seconds
                1.0, 1e-12); // for the tolerance check
    EXPECT_GT(v100().effective_tflops, 10.0 * tx2.effective_tflops);
}

TEST(ComputeModel, TeacherInferenceFitsCloudBudget) {
    // Mask R-CNN on a V100 should take tens of milliseconds.
    const double gflops = models::Deployed_profile::mask_rcnn_resnext101().inference_gflops();
    const Sim_duration t = v100().seconds_for_gflops(gflops);
    EXPECT_GT(t, Sim_duration{0.01});
    EXPECT_LT(t, Sim_duration{0.2});
}

TEST(EdgeCompute, IdleFpsNearVideoRate) {
    // The paper's student runs 30 fps video in real time on the TX2.
    Edge_compute edge{jetson_tx2(), Edge_contention_config{}, 5.2};
    EXPECT_GE(edge.idle_fps(), 30.0);
    EXPECT_LE(edge.idle_fps(), 45.0);
    EXPECT_DOUBLE_EQ(edge.achieved_fps(30.0, false), 30.0);
}

TEST(EdgeCompute, TrainingHalvesFps) {
    // Fig. 4: inference drops from 30 to ~15 fps while a session runs.
    Edge_compute edge{jetson_tx2(), Edge_contention_config{}, 5.2};
    const double fps = edge.achieved_fps(30.0, true);
    EXPECT_GT(fps, 10.0);
    EXPECT_LT(fps, 20.0);
}

TEST(EdgeCompute, TrainingWallTimeScaled) {
    Edge_contention_config cfg;
    cfg.training_share = 0.5;
    Edge_compute edge{jetson_tx2(), cfg, 5.2};
    const Sim_duration dedicated = jetson_tx2().seconds_for_gflops(1000.0);
    EXPECT_NEAR(edge.training_wall_seconds(1000.0).value(), // raw seconds for the
                (dedicated / 0.5).value(), 1e-9);       // tolerance check
}

TEST(EdgeCompute, UtilizationBounds) {
    Edge_compute edge{jetson_tx2(), Edge_contention_config{}, 5.2};
    EXPECT_DOUBLE_EQ(edge.utilization(30.0, true), 1.0);
    const double idle_util = edge.utilization(30.0, false);
    EXPECT_GT(idle_util, 0.5);
    EXPECT_LE(idle_util, 1.0);
}

TEST(EdgeCompute, ConfigValidation) {
    Edge_contention_config bad;
    bad.training_share = 1.0;
    EXPECT_THROW((Edge_compute{jetson_tx2(), bad, 5.2}), std::invalid_argument);
    EXPECT_THROW((Edge_compute{jetson_tx2(), Edge_contention_config{}, 0.0}),
                 std::invalid_argument);
}

// ------------------------------------------------------------ Fps_tracker --

TEST(FpsTracker, TimeWeightedAverage) {
    Fps_tracker t;
    t.record_until(Sim_time{10.0}, 30.0); // 10 s at 30
    t.record_until(Sim_time{15.0}, 15.0); // 5 s at 15
    EXPECT_NEAR(t.average_fps(), (10.0 * 30.0 + 5.0 * 15.0) / 15.0, 1e-12);
}

TEST(FpsTracker, MergesEqualRuns) {
    Fps_tracker t;
    t.record_until(Sim_time{1.0}, 30.0);
    t.record_until(Sim_time{2.0}, 30.0);
    t.record_until(Sim_time{3.0}, 15.0);
    EXPECT_EQ(t.samples().size(), 2u);
    EXPECT_EQ(t.samples()[0].to, Sim_time{2.0});
}

TEST(FpsTracker, FpsAtLookup) {
    Fps_tracker t;
    t.record_until(Sim_time{10.0}, 30.0);
    t.record_until(Sim_time{20.0}, 15.0);
    EXPECT_DOUBLE_EQ(t.fps_at(Sim_time{5.0}), 30.0);
    EXPECT_DOUBLE_EQ(t.fps_at(Sim_time{15.0}), 15.0);
    EXPECT_DOUBLE_EQ(t.fps_at(Sim_time{25.0}), 15.0); // extends last value
}

TEST(FpsTracker, BackwardTimeRejected) {
    Fps_tracker t;
    t.record_until(Sim_time{5.0}, 30.0);
    EXPECT_THROW(t.record_until(Sim_time{4.0}, 30.0), std::invalid_argument);
}

// ------------------------------------------------------- Resource_monitor --

TEST(ResourceMonitor, DrainAveragesSinceLastDrain) {
    Resource_monitor mon{Sim_duration{1.0}};
    mon.record_until(Sim_time{10.0}, 0.5);
    mon.record_until(Sim_time{20.0}, 1.0);
    EXPECT_NEAR(mon.drain_average(), 0.75, 1e-12);
    // After drain, a fresh window.
    mon.record_until(Sim_time{30.0}, 0.2);
    EXPECT_NEAR(mon.drain_average(), 0.2, 1e-12);
    EXPECT_NEAR(mon.lifetime_average(), (0.5 * 10 + 1.0 * 10 + 0.2 * 10) / 30.0, 1e-12);
}

TEST(ResourceMonitor, EmptyDrainIsZero) {
    Resource_monitor mon{Sim_duration{1.0}};
    EXPECT_DOUBLE_EQ(mon.drain_average(), 0.0);
}

TEST(ResourceMonitor, Validation) {
    Resource_monitor mon{Sim_duration{1.0}};
    mon.record_until(Sim_time{1.0}, 0.5);
    EXPECT_THROW(mon.record_until(Sim_time{0.5}, 0.5), std::invalid_argument);
    EXPECT_THROW(mon.record_until(Sim_time{2.0}, 1.5), std::invalid_argument);
}

} // namespace
} // namespace shog::device
