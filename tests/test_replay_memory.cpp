// Tests for Algorithm 1 (replay memory management), including the
// statistical uniform-inclusion property the paper credits for preventing
// catastrophic forgetting.
#include <gtest/gtest.h>

#include <map>

#include "core/replay_memory.hpp"

namespace shog::core {
namespace {

Replay_sample tagged_sample(double tag) {
    Replay_sample s;
    s.activation = {tag};
    s.class_label = 1;
    return s;
}

std::vector<Replay_sample> tagged_batch(double base, std::size_t n) {
    std::vector<Replay_sample> batch;
    for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(tagged_sample(base + static_cast<double>(i)));
    }
    return batch;
}

TEST(ReplayMemory, FillsWhileNotFull) {
    Replay_memory mem{10};
    Rng rng{1};
    mem.update_after_training(tagged_batch(0.0, 4), rng);
    EXPECT_EQ(mem.size(), 4u);
    mem.update_after_training(tagged_batch(100.0, 4), rng);
    EXPECT_EQ(mem.size(), 8u);
    EXPECT_FALSE(mem.full());
    mem.update_after_training(tagged_batch(200.0, 4), rng); // only 2 fit
    EXPECT_EQ(mem.size(), 10u);
    EXPECT_TRUE(mem.full());
    EXPECT_EQ(mem.training_runs(), 3u);
}

TEST(ReplayMemory, NeverExceedsCapacity) {
    Replay_memory mem{25};
    Rng rng{2};
    for (int i = 0; i < 50; ++i) {
        mem.update_after_training(tagged_batch(i * 1000.0, 30), rng);
        EXPECT_LE(mem.size(), 25u);
    }
    EXPECT_TRUE(mem.full());
}

TEST(ReplayMemory, ReplacementCountFormula) {
    // Algorithm 1 line 7: h = Msize / i.
    EXPECT_EQ(Replay_memory::replacement_count(1500, 1), 1500u);
    EXPECT_EQ(Replay_memory::replacement_count(1500, 6), 250u);
    EXPECT_EQ(Replay_memory::replacement_count(1500, 7), 214u);
    EXPECT_EQ(Replay_memory::replacement_count(1500, 2000), 0u);
    EXPECT_THROW((void)Replay_memory::replacement_count(10, 0), std::invalid_argument);
}

TEST(ReplayMemory, ZeroCapacityDisabled) {
    Replay_memory mem{0};
    Rng rng{3};
    EXPECT_FALSE(mem.enabled());
    mem.update_after_training(tagged_batch(0.0, 10), rng);
    EXPECT_EQ(mem.size(), 0u);
    EXPECT_EQ(mem.training_runs(), 1u);
}

TEST(ReplayMemory, DrawWithReplacement) {
    Replay_memory mem{5};
    Rng rng{4};
    mem.update_after_training(tagged_batch(0.0, 5), rng);
    const auto picks = mem.draw(20, rng);
    EXPECT_EQ(picks.size(), 20u);
    for (const Replay_sample* p : picks) {
        EXPECT_GE(p->activation[0], 0.0);
        EXPECT_LT(p->activation[0], 5.0);
    }
    Replay_memory empty{5};
    EXPECT_THROW((void)empty.draw(1, rng), std::invalid_argument);
}

TEST(ReplayMemory, ClearResets) {
    Replay_memory mem{5};
    Rng rng{5};
    mem.update_after_training(tagged_batch(0.0, 5), rng);
    mem.clear();
    EXPECT_EQ(mem.size(), 0u);
    EXPECT_EQ(mem.training_runs(), 0u);
}

TEST(ReplayMemory, UniformInclusionAcrossBatches) {
    // The reservoir property: after many runs, each past batch should hold
    // a roughly equal share of the memory. Tag samples by batch id and
    // check the empirical distribution over repeated trials.
    const std::size_t capacity = 60;
    const std::size_t batch_size = 60;
    const std::size_t num_batches = 12;
    std::map<int, int> batch_counts;
    for (std::uint64_t trial = 0; trial < 40; ++trial) {
        Replay_memory mem{capacity};
        Rng rng{trial * 7 + 1};
        for (std::size_t b = 0; b < num_batches; ++b) {
            mem.update_after_training(tagged_batch(static_cast<double>(b) * 1000.0, batch_size),
                                      rng);
        }
        for (std::size_t i = 0; i < mem.size(); ++i) {
            batch_counts[static_cast<int>(mem.at(i).activation[0] / 1000.0)]++;
        }
    }
    // Expected share per batch = capacity * trials / num_batches = 200.
    const double expected = 40.0 * capacity / static_cast<double>(num_batches);
    for (std::size_t b = 0; b < num_batches; ++b) {
        const double observed = batch_counts[static_cast<int>(b)];
        EXPECT_GT(observed, 0.4 * expected) << "batch " << b << " underrepresented";
        EXPECT_LT(observed, 1.9 * expected) << "batch " << b << " overrepresented";
    }
}

TEST(ReplayMemory, LateBatchesStillEnter) {
    // Even at high run counts, h = Msize/i >= 1 keeps recent data flowing in
    // (until i > Msize). Verify a late batch lands in memory.
    Replay_memory mem{50};
    Rng rng{9};
    for (int b = 0; b < 30; ++b) {
        mem.update_after_training(tagged_batch(b * 1000.0, 50), rng);
    }
    bool found_late = false;
    for (std::size_t i = 0; i < mem.size(); ++i) {
        if (mem.at(i).activation[0] >= 25000.0) {
            found_late = true;
        }
    }
    EXPECT_TRUE(found_late);
}

TEST(ReplayMemory, PreservesSamplePayload) {
    Replay_memory mem{4};
    Rng rng{10};
    Replay_sample s;
    s.activation = {1.0, 2.0, 3.0};
    s.class_label = 2;
    s.box_target = {0.1, 0.2, 0.3, 0.4};
    s.weight = 0.5;
    mem.update_after_training({s}, rng);
    const Replay_sample& stored = mem.at(0);
    EXPECT_EQ(stored.activation, s.activation);
    EXPECT_EQ(stored.class_label, 2u);
    EXPECT_DOUBLE_EQ(stored.box_target[3], 0.4);
    EXPECT_DOUBLE_EQ(stored.weight, 0.5);
}

} // namespace
} // namespace shog::core
