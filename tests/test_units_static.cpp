// Compile-time regression tests for the dimensional-safety layer: the
// detection idiom turns "this expression must NOT compile" into a
// static_assert, so a future edit that quietly re-opens a forbidden unit
// mixing (Sim_time + Sim_time, comparing a timestamp against a duration,
// paying a raw Sim_duration into the Gpu_seconds billing ledger, implicit
// double -> unit conversion) fails this translation unit instead of
// silently re-introducing the bug class units.hpp exists to kill.
//
// The runtime TEST bodies below are deliberately thin: the real assertions
// all run at compile time. gtest only gives the file a place in ctest so a
// broken static_assert is reported by the same gate as everything else.
#include <gtest/gtest.h>

#include <type_traits>
#include <utility>

#include "common/units.hpp"

namespace shog {
namespace {

// ----------------------------------------------------------------------
// Detection idiom: Can_<op><A, B> is true iff `a <op> b` compiles.
// ----------------------------------------------------------------------

template <typename A, typename B, typename = void>
struct Can_add : std::false_type {};
template <typename A, typename B>
struct Can_add<A, B, std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct Can_subtract : std::false_type {};
template <typename A, typename B>
struct Can_subtract<A, B, std::void_t<decltype(std::declval<A>() - std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct Can_multiply : std::false_type {};
template <typename A, typename B>
struct Can_multiply<A, B, std::void_t<decltype(std::declval<A>() * std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct Can_divide : std::false_type {};
template <typename A, typename B>
struct Can_divide<A, B, std::void_t<decltype(std::declval<A>() / std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct Can_less : std::false_type {};
template <typename A, typename B>
struct Can_less<A, B, std::void_t<decltype(std::declval<A>() < std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct Can_plus_assign : std::false_type {};
template <typename A, typename B>
struct Can_plus_assign<A, B,
                       std::void_t<decltype(std::declval<A&>() += std::declval<B>())>>
    : std::true_type {};

// ----------------------------------------------------------------------
// The affine algebra: what MUST compile, with the right result type.
// ----------------------------------------------------------------------

static_assert(std::is_same_v<decltype(Sim_time{} - Sim_time{}), Sim_duration>,
              "points subtract to a span");
static_assert(std::is_same_v<decltype(Sim_time{} + Sim_duration{}), Sim_time>,
              "points translate by spans");
static_assert(std::is_same_v<decltype(Sim_time{} - Sim_duration{}), Sim_time>,
              "points translate backwards by spans");
static_assert(std::is_same_v<decltype(Sim_duration{} + Sim_duration{}), Sim_duration>);
static_assert(std::is_same_v<decltype(Sim_duration{} * 2.0), Sim_duration>);
static_assert(std::is_same_v<decltype(2.0 * Sim_duration{}), Sim_duration>);
static_assert(std::is_same_v<decltype(Sim_duration{1.0} / Sim_duration{1.0}), double>,
              "span ratios are dimensionless");
static_assert(std::is_same_v<decltype(Gpu_seconds::of(Sim_duration{})), Gpu_seconds>,
              "the named duration->billing conversion");
static_assert(std::is_same_v<decltype(Bytes{1.0} / Bytes{1.0}), double>);
static_assert(Can_plus_assign<Sim_time, Sim_duration>::value);
static_assert(Can_plus_assign<Gpu_seconds, Gpu_seconds>::value);
static_assert(Can_less<Sim_time, Sim_time>::value);
static_assert(Can_less<Sim_duration, Sim_duration>::value);

// ----------------------------------------------------------------------
// Forbidden expressions: each one used to be a silent double-mixing bug.
// ----------------------------------------------------------------------

// Absolute times are points, not vectors: they neither add nor scale.
static_assert(!Can_add<Sim_time, Sim_time>::value, "Sim_time + Sim_time must not compile");
static_assert(!Can_multiply<Sim_time, double>::value, "Sim_time * k must not compile");
static_assert(!Can_multiply<double, Sim_time>::value, "k * Sim_time must not compile");
static_assert(!Can_divide<Sim_time, double>::value, "Sim_time / k must not compile");
static_assert(!Can_plus_assign<Sim_time, Sim_time>::value);

// A timestamp and a span are different dimensions: no cross-comparison,
// no span-minus-point.
static_assert(!Can_less<Sim_time, Sim_duration>::value,
              "Sim_time < Sim_duration must not compile");
static_assert(!Can_less<Sim_duration, Sim_time>::value);
static_assert(!Can_subtract<Sim_duration, Sim_time>::value,
              "span - point has no meaning");
static_assert(!Can_add<Sim_duration, Sim_time>::value,
              "write point + span, not span + point: keeps the algebra affine");

// Billing is not wall time: a Sim_duration can only enter the ledger via
// Gpu_seconds::of(...), never by accumulation or arithmetic.
static_assert(!Can_plus_assign<Gpu_seconds, Sim_duration>::value,
              "Gpu_seconds += Sim_duration must not compile");
static_assert(!Can_add<Gpu_seconds, Sim_duration>::value);
static_assert(!Can_subtract<Gpu_seconds, Sim_duration>::value);
static_assert(!Can_less<Gpu_seconds, Sim_duration>::value);
static_assert(!std::is_constructible_v<Gpu_seconds, Sim_duration>,
              "only Gpu_seconds::of() converts a span to billed occupancy");

// Payloads, rates, and times never mix directly.
static_assert(!Can_add<Bytes, Kbps>::value);
static_assert(!Can_add<Bytes, Sim_duration>::value);
static_assert(!Can_less<Bytes, Sim_duration>::value);
static_assert(!Can_divide<Bytes, Sim_duration>::value,
              "use bytes_to_kbps(), which owns the unit conversion");

// Raw doubles must be wrapped explicitly at the boundary — an implicit
// conversion would let any unlabeled quantity flow into any unit type.
static_assert(!std::is_convertible_v<double, Sim_time>);
static_assert(!std::is_convertible_v<double, Sim_duration>);
static_assert(!std::is_convertible_v<double, Gpu_seconds>);
static_assert(!std::is_convertible_v<double, Bytes>);
static_assert(!std::is_convertible_v<double, Kbps>);
// ...and unit types never decay back to double without .value().
static_assert(!std::is_convertible_v<Sim_time, double>);
static_assert(!std::is_convertible_v<Sim_duration, double>);
static_assert(!std::is_convertible_v<Gpu_seconds, double>);

// Distinct unit types never cross-convert, even explicitly... except the
// deliberate Gpu_seconds::of() route tested above.
static_assert(!std::is_constructible_v<Sim_time, Sim_duration>);
static_assert(!std::is_constructible_v<Sim_duration, Sim_time>);
static_assert(!std::is_constructible_v<Bytes, Kbps>);

TEST(UnitsStatic, ForbiddenExpressionsDoNotCompile) {
    // Every assertion in this file already ran at compile time; reaching
    // this body at all is the pass condition.
    SUCCEED();
}

TEST(UnitsStatic, ConstexprAlgebraIsUsableInConstantExpressions) {
    constexpr Sim_time deadline = Sim_time{1.0} + Sim_duration{0.5};
    static_assert(deadline.value() == 1.5); // constexpr unwrap under test
    static_assert(Sim_duration{3.0} / Sim_duration{1.5} == 2.0);
    static_assert(kib(2.0).value() == 2048.0); // constexpr unwrap under test
    SUCCEED();
}

} // namespace
} // namespace shog
