// White-box tests of the Shoggoth strategy plumbing: configuration
// semantics, Prompt mode, warm replay, the alpha sources, and parameterized
// sweeps over system knobs on a short stream.
#include <gtest/gtest.h>

#include "baselines/edge_only.hpp"
#include "core/shoggoth.hpp"
#include "models/pretrain.hpp"
#include "sim/harness.hpp"
#include "video/presets.hpp"

namespace shog::core {
namespace {

struct System_fixture : public ::testing::Test {
    static void SetUpTestSuite() {
        preset = new video::Dataset_preset{video::ua_detrac_like(31, 200.0)};
        stream = new video::Video_stream{preset->stream, preset->world, preset->schedule};
        pristine = models::make_student(stream->world(), 31).release();
        teacher = models::make_teacher(stream->world(), 31).release();
    }
    static void TearDownTestSuite() {
        delete teacher;
        delete pristine;
        delete stream;
        delete preset;
    }
    void SetUp() override { harness.eval_stride = 16; }

    std::pair<sim::Run_result, std::unique_ptr<Shoggoth_strategy>> run(
        Shoggoth_config cfg) {
        auto student = pristine->clone();
        auto strategy = std::make_unique<Shoggoth_strategy>(
            *student, *teacher, std::move(cfg),
            models::Deployed_profile::yolov4_resnet18(), device::jetson_tx2(),
            device::v100());
        sim::Run_result r = sim::run_strategy(*strategy, *stream, harness);
        students.push_back(std::move(student)); // keep alive with the strategy
        return {std::move(r), std::move(strategy)};
    }

    static video::Dataset_preset* preset;
    static video::Video_stream* stream;
    static models::Detector* pristine;
    static models::Detector* teacher;
    std::vector<std::unique_ptr<models::Detector>> students;
    sim::Harness_config harness;
};

video::Dataset_preset* System_fixture::preset = nullptr;
video::Video_stream* System_fixture::stream = nullptr;
models::Detector* System_fixture::pristine = nullptr;
models::Detector* System_fixture::teacher = nullptr;

TEST_F(System_fixture, NamesFollowMode) {
    Shoggoth_config adaptive;
    auto [r1, s1] = run(std::move(adaptive));
    EXPECT_EQ(r1.strategy, "Shoggoth");

    Shoggoth_config fixed;
    fixed.adaptive_sampling = false;
    auto [r2, s2] = run(std::move(fixed));
    EXPECT_EQ(r2.strategy, "Prompt");
}

TEST_F(System_fixture, PromptHoldsFixedRate) {
    Shoggoth_config cfg;
    cfg.adaptive_sampling = false;
    cfg.fixed_rate = 1.5;
    auto [r, strategy] = run(std::move(cfg));
    EXPECT_DOUBLE_EQ(strategy->current_rate(), 1.5);
    EXPECT_TRUE(strategy->control_trace().empty()); // no control rounds
    // Uplink consistent with ~1.5 fps of 512x512 samples.
    EXPECT_GT(r.up_kbps, 40.0);
}

TEST_F(System_fixture, AdaptiveRateStaysInBounds) {
    auto [r, strategy] = run(Shoggoth_config{});
    for (const auto& rec : strategy->control_trace()) {
        EXPECT_GE(rec.rate, 0.1);
        EXPECT_LE(rec.rate, 2.0);
        EXPECT_GE(rec.alpha, 0.0);
        EXPECT_LE(rec.alpha, 1.0);
        EXPECT_GE(rec.lambda, 0.0);
        EXPECT_LE(rec.lambda, 1.0);
    }
    EXPECT_GT(strategy->frames_uploaded(), 10u);
    // Every labeled frame was uploaded; the tail batch flushed at stream end
    // (plus at most one batch still in flight) may not finish labeling
    // before the simulation horizon cuts off.
    EXPECT_GE(strategy->frames_uploaded(), strategy->frames_labeled());
    EXPECT_LE(strategy->frames_uploaded() - strategy->frames_labeled(),
              2 * Shoggoth_config{}.upload_batch_frames);
}

TEST_F(System_fixture, WarmReplayPrefillsMemory) {
    Shoggoth_config warm;
    warm.warm_replay = true;
    auto [r1, s1] = run(std::move(warm));
    EXPECT_GT(s1->trainer().memory().size(), 0u);

    Shoggoth_config cold;
    cold.warm_replay = false;
    cold.frames_per_session = 1000000; // never trains -> memory stays empty
    auto [r2, s2] = run(std::move(cold));
    EXPECT_EQ(s2->trainer().memory().size(), 0u);
}

TEST_F(System_fixture, UplinkScalesWithUploadResolution) {
    Shoggoth_config small;
    small.adaptive_sampling = false;
    small.fixed_rate = 1.0;
    small.upload_resolution = 256.0;
    auto [r_small, s1] = run(std::move(small));

    Shoggoth_config big;
    big.adaptive_sampling = false;
    big.fixed_rate = 1.0;
    big.upload_resolution = 512.0;
    auto [r_big, s2] = run(std::move(big));

    EXPECT_GT(r_big.up_kbps, 1.8 * r_small.up_kbps);
}

TEST_F(System_fixture, PosteriorAlphaRunsEndToEnd) {
    Shoggoth_config cfg;
    cfg.alpha_source = Shoggoth_config::Alpha_source::posterior;
    auto [r, strategy] = run(std::move(cfg));
    EXPECT_GT(r.map, 0.0);
    EXPECT_FALSE(strategy->control_trace().empty());
}

TEST_F(System_fixture, DownlinkIsLabelsOnly) {
    auto [r, strategy] = run(Shoggoth_config{});
    // Labels are a few hundred bytes per frame: downlink must be tiny
    // relative to uplink (paper: 135 up vs 10 down).
    EXPECT_LT(r.down_kbps, 0.6 * r.up_kbps);
}

TEST_F(System_fixture, CloudGpuTimeIsLabelingOnly) {
    auto [r, strategy] = run(Shoggoth_config{});
    // Teacher inference ~40ms/frame on V100: total cloud time should be
    // close to frames_labeled * 0.04 s, far below stream duration.
    const double expected = static_cast<double>(strategy->frames_labeled()) * 0.04;
    EXPECT_NEAR(r.cloud_gpu_seconds, expected, 0.5 * expected + 1.0);
    EXPECT_LT(r.cloud_gpu_seconds, 0.3 * stream->duration());
}

class SessionTrigger : public System_fixture,
                       public ::testing::WithParamInterface<std::size_t> {};

TEST_P(SessionTrigger, MoreFramesPerSessionMeansFewerSessions) {
    Shoggoth_config cfg;
    cfg.adaptive_sampling = false; // fixed 2 fps so supply is constant
    cfg.fixed_rate = 2.0;
    cfg.frames_per_session = GetParam();
    auto [r, strategy] = run(std::move(cfg));
    // Upper bound: total sampled frames / frames_per_session.
    const double sampled = 2.0 * stream->duration();
    EXPECT_LE(static_cast<double>(r.training_sessions),
              sampled / static_cast<double>(GetParam()) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Triggers, SessionTrigger, ::testing::Values(30u, 60u, 120u));

} // namespace
} // namespace shog::core
