// Unit tests for the detector models: network structure/cut points, the
// proposal model, box offset encoding, pretraining effects, cloning and
// serialization, and the deployed-model cost profile.
#include <gtest/gtest.h>

#include "models/deployed.hpp"
#include "models/detector.hpp"
#include "models/pretrain.hpp"
#include "video/presets.hpp"

namespace shog::models {
namespace {

video::World_config test_world_config() {
    video::World_config cfg;
    cfg.feature_dim = 16;
    cfg.num_classes = 3;
    cfg.seed = 7;
    return cfg;
}

Detector_config test_student_config() {
    Detector_config cfg = student_config(16, 3, 11);
    cfg.trunk_widths = {24, 32, 32, 32, 24, 16}; // small for test speed
    return cfg;
}

// ------------------------------------------------------- box encoding ------

TEST(BoxOffsets, RoundTrip) {
    const detect::Box proposal{10.0, 20.0, 50.0, 60.0};
    const detect::Box target{14.0, 18.0, 58.0, 66.0};
    const auto offsets = encode_box_offsets(proposal, target);
    const detect::Box rebuilt = apply_box_offsets(proposal, offsets);
    EXPECT_NEAR(rebuilt.x1, target.x1, 1e-9);
    EXPECT_NEAR(rebuilt.y1, target.y1, 1e-9);
    EXPECT_NEAR(rebuilt.x2, target.x2, 1e-9);
    EXPECT_NEAR(rebuilt.y2, target.y2, 1e-9);
}

TEST(BoxOffsets, IdentityIsZero) {
    const detect::Box b{0.0, 0.0, 10.0, 10.0};
    const auto offsets = encode_box_offsets(b, b);
    for (double o : offsets) {
        EXPECT_NEAR(o, 0.0, 1e-12);
    }
}

TEST(BoxOffsets, InvalidBoxesRejected) {
    const detect::Box good{0.0, 0.0, 10.0, 10.0};
    const detect::Box bad{10.0, 0.0, 0.0, 10.0};
    EXPECT_THROW((void)encode_box_offsets(bad, good), std::invalid_argument);
    EXPECT_THROW((void)encode_box_offsets(good, bad), std::invalid_argument);
}

// ------------------------------------------------------- Detector_net ------

TEST(DetectorNet, CutIndices) {
    Rng rng{1};
    Detector_net net{test_student_config(), rng};
    EXPECT_EQ(net.cut_after("input"), 0u);
    EXPECT_EQ(net.cut_after("stem"), 3u);     // Dense + BRN + activation
    EXPECT_EQ(net.cut_after("conv5_4"), 15u);
    EXPECT_EQ(net.cut_after("pool"), 18u);
    EXPECT_THROW((void)net.cut_after("bogus"), std::invalid_argument);
}

TEST(DetectorNet, WidthsAtCuts) {
    Rng rng{1};
    Detector_net net{test_student_config(), rng};
    EXPECT_EQ(net.width_at_cut(0), 16u);                      // input width
    EXPECT_EQ(net.width_at_cut(net.cut_after("stem")), 24u);
    EXPECT_EQ(net.width_at_cut(net.cut_after("pool")), 16u);
}

TEST(DetectorNet, InferShapes) {
    Rng rng{2};
    Detector_net net{test_student_config(), rng};
    const Tensor features = Tensor::randn({5, 16}, rng);
    const auto out = net.infer(features);
    EXPECT_EQ(out.class_probs.rows(), 5u);
    EXPECT_EQ(out.class_probs.cols(), 4u); // 3 classes + background
    EXPECT_EQ(out.box_offsets.cols(), 4u);
    for (std::size_t r = 0; r < 5; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < 4; ++c) {
            sum += out.class_probs.at(r, c);
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
        for (std::size_t c = 0; c < 4; ++c) {
            EXPECT_LE(std::abs(out.box_offsets.at(r, c)), net.max_offset() + 1e-12);
        }
    }
}

TEST(DetectorNet, StateVectorRoundTrip) {
    Rng rng{3};
    Detector_net a{test_student_config(), rng};
    Rng rng2{99};
    Detector_net b{test_student_config(), rng2};
    b.load_state_vector(a.state_vector());
    const Tensor x = Tensor::randn({3, 16}, rng);
    EXPECT_LT(max_abs_diff(a.infer(x).class_probs, b.infer(x).class_probs), 1e-12);
}

TEST(DetectorNet, CloneMatchesAndDetaches) {
    Rng rng{4};
    Detector_net net{test_student_config(), rng};
    auto copy = net.clone();
    const Tensor x = Tensor::randn({2, 16}, rng);
    EXPECT_LT(max_abs_diff(net.infer(x).class_probs, copy->infer(x).class_probs), 1e-12);
    // Mutate original; clone unchanged.
    for (nn::Parameter* p : net.trunk().parameters()) {
        p->value *= 1.5;
    }
    const auto before = copy->infer(x).class_probs;
    const auto after = copy->infer(x).class_probs;
    EXPECT_LT(max_abs_diff(before, after), 1e-15);
}

TEST(DetectorNet, ReinitHeadsChangesOutputsKeepsTrunk) {
    Rng rng{5};
    Detector_net net{test_student_config(), rng};
    const Tensor x = Tensor::randn({4, 16}, rng);
    const Tensor probs_before = net.infer(x).class_probs;
    const std::vector<double> trunk_before = net.trunk().state_vector();
    Rng hrng{123};
    net.reinit_heads(hrng);
    const Tensor probs_after = net.infer(x).class_probs;
    EXPECT_GT(max_abs_diff(probs_before, probs_after), 1e-6);
    EXPECT_EQ(net.trunk().state_vector(), trunk_before);
}

// ------------------------------------------------------------ Detector -----

TEST(Detector, ProposalsDeterministicPerFrame) {
    const video::Dataset_preset p = video::ua_detrac_like(3, 60.0);
    video::Video_stream stream{p.stream, p.world, p.schedule};
    Rng rng{6};
    Detector det{student_config(p.world.feature_dim, p.world.num_classes, 77), rng};
    const video::Frame frame = stream.frame_at(100);
    const auto a = det.propose(frame, stream.world());
    const auto b = det.propose(frame, stream.world());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].box.x1, b[i].box.x1);
        EXPECT_EQ(a[i].feature, b[i].feature);
    }
}

TEST(Detector, TeacherProposesMoreThanStudentAtNight) {
    video::World_config wc = test_world_config();
    video::Domain_schedule sched{{{video::night(0.8), 120.0}}, 5.0, false};
    video::Stream_config sc;
    sc.seed = 8;
    sc.duration = 120.0;
    sc.fps = 10.0;
    sc.spawn_rate = 2.0;
    video::Video_stream stream{sc, wc, sched};

    Rng r1{1};
    Rng r2{2};
    Detector student{student_config(16, 3, 5), r1};
    Detector teacher{teacher_config(16, 3, 6), r2};
    std::size_t student_props = 0;
    std::size_t teacher_props = 0;
    std::size_t objects = 0;
    for (std::size_t i = 0; i < stream.frame_count(); i += 10) {
        const video::Frame f = stream.frame_at(i);
        objects += f.objects.size();
        for (const auto& prop : student.propose(f, stream.world())) {
            student_props += prop.from_object ? 1 : 0;
        }
        for (const auto& prop : teacher.propose(f, stream.world())) {
            teacher_props += prop.from_object ? 1 : 0;
        }
    }
    ASSERT_GT(objects, 50u);
    EXPECT_GT(teacher_props, student_props);
}

TEST(Detector, DetectOnEmptyProposals) {
    Rng rng{7};
    Detector det{test_student_config(), rng};
    EXPECT_TRUE(det.detect_on({}).empty());
}

TEST(Detector, DetectionsRespectThresholdAndClasses) {
    const video::Dataset_preset p = video::ua_detrac_like(9, 60.0);
    video::Video_stream stream{p.stream, p.world, p.schedule};
    auto student = make_student(stream.world(), 2024);
    const video::Frame frame = stream.frame_at(300);
    for (const auto& det : student->detect(frame, stream.world())) {
        EXPECT_GE(det.confidence, student->config().detect_threshold);
        EXPECT_GE(det.class_id, 1u);
        EXPECT_LE(det.class_id, stream.num_classes());
        EXPECT_TRUE(det.box.valid());
    }
}

// ------------------------------------------------------------ pretrain -----

TEST(Pretrain, ImprovesClassifierAccuracy) {
    video::World_model world{test_world_config()};
    Rng rng{10};
    Detector det{test_student_config(), rng};
    Pretrain_config cfg;
    cfg.domains = daytime_domains();
    cfg.samples = 1500;
    cfg.epochs = 4;
    cfg.seed = 3;
    const auto dataset = synth_dataset(world, det.config(), cfg);
    const double before = classifier_accuracy(det, dataset);
    const Pretrain_report report = pretrain(det, dataset, cfg);
    EXPECT_GT(report.train_accuracy, before + 0.2);
    EXPECT_GT(report.train_accuracy, 0.75);
    EXPECT_EQ(report.samples, dataset.size());
}

TEST(Pretrain, DatasetRespectsBackgroundFraction) {
    video::World_model world{test_world_config()};
    Pretrain_config cfg;
    cfg.domains = daytime_domains();
    cfg.samples = 3000;
    cfg.background_fraction = 0.4;
    cfg.seed = 4;
    const auto dataset = synth_dataset(world, test_student_config(), cfg);
    std::size_t bg = 0;
    for (const auto& s : dataset) {
        bg += (s.class_label == 0) ? 1 : 0;
        EXPECT_LE(s.class_label, world.num_classes());
        EXPECT_EQ(s.feature.size(), world.feature_dim());
    }
    const double frac = static_cast<double>(bg) / static_cast<double>(dataset.size());
    EXPECT_NEAR(frac, 0.4, 0.05);
}

TEST(Pretrain, StudentDegradesUnderDrift) {
    // The drift premise: a daytime student loses accuracy at night, and the
    // loss exceeds the teacher's (which is robust by construction).
    const video::Dataset_preset p = video::ua_detrac_like(11, 60.0);
    video::World_model world{p.world};
    auto student = make_student(world, 31);
    auto teacher = make_teacher(world, 31);

    auto domain_accuracy = [&world](Detector& det, const video::Domain& domain,
                                    std::uint64_t seed) {
        Pretrain_config cfg;
        cfg.domains = {domain};
        cfg.samples = 800;
        cfg.seed = seed;
        const auto ds = synth_dataset(world, det.config(), cfg);
        return classifier_accuracy(det, ds);
    };

    const double student_day = domain_accuracy(*student, video::day_sunny(0.6), 51);
    const double student_night = domain_accuracy(*student, video::night(0.5), 52);
    const double teacher_night = domain_accuracy(*teacher, video::night(0.5), 52);
    EXPECT_GT(student_day, 0.8);
    EXPECT_LT(student_night, student_day - 0.15); // drift hurts
    EXPECT_GT(teacher_night, student_night + 0.1); // teacher is robust
}

TEST(Pretrain, MakeStudentDeterministic) {
    video::World_model world{test_world_config()};
    auto a = make_student(world, 77);
    auto b = make_student(world, 77);
    EXPECT_EQ(a->net().state_vector(), b->net().state_vector());
}

// ------------------------------------------------------ deployed profile ---

TEST(DeployedProfile, SplitsAreConsistent) {
    const Deployed_profile p = Deployed_profile::yolov4_resnet18();
    const double total = p.inference_gflops();
    for (std::size_t cut = 0; cut <= p.stage_count(); ++cut) {
        EXPECT_NEAR(p.forward_gflops_below(cut) + p.forward_gflops_above(cut), total, 1e-9);
        EXPECT_DOUBLE_EQ(p.backward_gflops_below(cut), 2.0 * p.forward_gflops_below(cut));
    }
    EXPECT_GT(total, 5.0);  // a real detector at 512x512 costs several GFLOPs
    EXPECT_LT(total, 30.0);
}

TEST(DeployedProfile, CutStageMapping) {
    const Deployed_profile p = Deployed_profile::yolov4_resnet18();
    EXPECT_EQ(p.cut_stage_for("input"), 0u);
    EXPECT_EQ(p.cut_stage_for("stem"), 1u);
    EXPECT_EQ(p.cut_stage_for("pool"), p.stage_count());
    EXPECT_THROW((void)p.cut_stage_for("bogus"), std::invalid_argument);
}

TEST(DeployedProfile, TeacherCostsMore) {
    EXPECT_GT(Deployed_profile::mask_rcnn_resnext101().inference_gflops(),
              10.0 * Deployed_profile::yolov4_resnet18().inference_gflops());
}

TEST(DeployedProfile, ModelBytesPositive) {
    const Deployed_profile p = Deployed_profile::yolov4_resnet18();
    EXPECT_GT(p.model_bytes(), 1e6);
    EXPECT_GT(p.update_bytes(), 1e5);
    EXPECT_LT(p.update_bytes(), p.model_bytes());
}

} // namespace
} // namespace shog::models
