// End-to-end training behaviour of the NN substrate: convergence on small
// synthetic problems, including the nonlinear case (XOR) that requires the
// hidden layers and the small-batch BRN robustness claim.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace shog::nn {
namespace {

double train_classifier(Sequential& net, const Tensor& x, const std::vector<std::size_t>& y,
                        std::size_t steps, double lr) {
    Sgd opt{Sgd_config{lr, 0.9, 0.0}};
    double loss = 0.0;
    for (std::size_t s = 0; s < steps; ++s) {
        net.zero_grad();
        const Tensor logits = net.forward(x, true);
        const Loss_result r = softmax_cross_entropy(logits, y);
        loss = r.value;
        (void)net.backward(r.grad);
        opt.step(net.parameters());
    }
    return loss;
}

double accuracy(Sequential& net, const Tensor& x, const std::vector<std::size_t>& y) {
    const Tensor logits = net.forward(x, false);
    std::size_t correct = 0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < logits.cols(); ++c) {
            if (logits.at(r, c) > logits.at(r, best)) {
                best = c;
            }
        }
        correct += (best == y[r]) ? 1 : 0;
    }
    return static_cast<double>(correct) / static_cast<double>(x.rows());
}

TEST(Training, LearnsLinearlySeparable) {
    Rng rng{1};
    Sequential net;
    net.add("fc", std::make_unique<Dense>(2, 2, rng));
    Tensor x{64, 2};
    std::vector<std::size_t> y(64);
    for (std::size_t i = 0; i < 64; ++i) {
        const double a = rng.gaussian();
        const double b = rng.gaussian();
        x.at(i, 0) = a;
        x.at(i, 1) = b;
        y[i] = (a + b > 0.0) ? 1 : 0;
    }
    (void)train_classifier(net, x, y, 300, 0.1);
    EXPECT_GE(accuracy(net, x, y), 0.95);
}

TEST(Training, LearnsXorWithHiddenLayer) {
    Rng rng{2};
    Sequential net;
    net.add("fc1", std::make_unique<Dense>(2, 16, rng));
    net.add("act1", std::make_unique<Leaky_relu>(0.1));
    net.add("fc2", std::make_unique<Dense>(16, 2, rng));
    Tensor x{100, 2};
    std::vector<std::size_t> y(100);
    for (std::size_t i = 0; i < 100; ++i) {
        const double a = rng.uniform(-1.0, 1.0);
        const double b = rng.uniform(-1.0, 1.0);
        x.at(i, 0) = a;
        x.at(i, 1) = b;
        y[i] = (a * b > 0.0) ? 1 : 0;
    }
    (void)train_classifier(net, x, y, 800, 0.05);
    EXPECT_GE(accuracy(net, x, y), 0.93);
}

TEST(Training, LossDecreasesMonotonicallyOnAverage) {
    Rng rng{3};
    Sequential net;
    net.add("fc1", std::make_unique<Dense>(3, 10, rng));
    net.add("act", std::make_unique<Relu>());
    net.add("fc2", std::make_unique<Dense>(10, 3, rng));
    Tensor x = Tensor::randn({48, 3}, rng);
    std::vector<std::size_t> y(48);
    for (std::size_t i = 0; i < 48; ++i) {
        y[i] = i % 3;
        x.at(i, y[i]) += 2.0; // separable signal
    }
    const double early = train_classifier(net, x, y, 20, 0.05);
    const double late = train_classifier(net, x, y, 200, 0.05);
    EXPECT_LT(late, early);
}

TEST(Training, BrnNetTrainsWithTinyBatches) {
    // The paper adopts Batch Renormalization because it keeps small-batch
    // training stable. Train the same architecture with BN and BRN on
    // 4-sample mini-batches; the BRN run must converge to a usable model.
    Rng rng{4};
    auto build = [&rng](bool renorm) {
        Sequential net;
        net.add("fc1", std::make_unique<Dense>(2, 12, rng));
        if (renorm) {
            net.add("norm", std::make_unique<Batch_renorm>(12));
        } else {
            net.add("norm", std::make_unique<Batch_norm>(12));
        }
        net.add("act", std::make_unique<Leaky_relu>(0.1));
        net.add("fc2", std::make_unique<Dense>(12, 2, rng));
        return net;
    };

    Tensor x{120, 2};
    std::vector<std::size_t> y(120);
    Rng data_rng{5};
    for (std::size_t i = 0; i < 120; ++i) {
        const double a = data_rng.gaussian();
        const double b = data_rng.gaussian();
        x.at(i, 0) = a;
        x.at(i, 1) = b;
        y[i] = (a > b) ? 1 : 0;
    }

    Sequential brn_net = build(true);
    Sgd opt{Sgd_config{0.05, 0.9, 0.0}};
    for (int epoch = 0; epoch < 40; ++epoch) {
        for (std::size_t start = 0; start + 4 <= 120; start += 4) {
            const Tensor xb = x.slice_rows(start, start + 4);
            std::vector<std::size_t> yb(y.begin() + static_cast<long>(start),
                                        y.begin() + static_cast<long>(start + 4));
            brn_net.zero_grad();
            const Tensor logits = brn_net.forward(xb, true);
            const Loss_result r = softmax_cross_entropy(logits, yb);
            (void)brn_net.backward(r.grad);
            opt.step(brn_net.parameters());
        }
    }
    EXPECT_GE(accuracy(brn_net, x, y), 0.9);
}

TEST(Training, FrozenFrontStillConverges) {
    // Head-only training (the adaptive trainer's steady state) must be able
    // to fit a linearly-solvable problem in latent space.
    Rng rng{6};
    Sequential net;
    net.add("front", std::make_unique<Dense>(2, 8, rng));
    net.add("front_act", std::make_unique<Leaky_relu>(0.1));
    net.add("head", std::make_unique<Dense>(8, 2, rng));
    net.set_lr_scale_range(0, 2, 0.0);
    const Tensor w_front_before = dynamic_cast<Dense&>(net.layer(0)).weight().value;

    Tensor x{80, 2};
    std::vector<std::size_t> y(80);
    for (std::size_t i = 0; i < 80; ++i) {
        const double a = rng.gaussian();
        const double b = rng.gaussian();
        x.at(i, 0) = a;
        x.at(i, 1) = b;
        y[i] = (2.0 * a - b > 0.0) ? 1 : 0;
    }
    (void)train_classifier(net, x, y, 400, 0.05);
    EXPECT_GE(accuracy(net, x, y), 0.92);
    // Front layer untouched.
    EXPECT_EQ(max_abs_diff(dynamic_cast<Dense&>(net.layer(0)).weight().value,
                           w_front_before),
              0.0);
}

TEST(Training, IdenticalRunsProduceBitIdenticalWeights) {
    // Determinism audit pin for Sgd::velocity_ (src/nn/optimizer.hpp): the
    // momentum map is keyed by Parameter *address*, and the two runs below
    // place their parameters at different heap addresses on purpose. That
    // is only safe because the map is lookup-only — step() walks the
    // caller's stably-ordered params vector and does per-key
    // find/try_emplace, so allocator address layout can never reach the
    // update order. If anyone ever iterates velocity_ (the lint's ptr-key
    // rule also forbids it), the momentum updates pick up address order
    // and this bitwise pin breaks.
    const auto build_and_train = [] {
        Rng rng{42};
        Sequential net;
        net.add("fc1", std::make_unique<Dense>(3, 12, rng));
        net.add("bn1", std::make_unique<Batch_renorm>(12));
        net.add("act1", std::make_unique<Leaky_relu>(0.1));
        net.add("fc2", std::make_unique<Dense>(12, 2, rng));
        Tensor x{48, 3};
        std::vector<std::size_t> y(48);
        for (std::size_t i = 0; i < 48; ++i) {
            x.at(i, 0) = rng.gaussian();
            x.at(i, 1) = rng.gaussian();
            x.at(i, 2) = rng.uniform(-1.0, 1.0);
            y[i] = (x.at(i, 0) + x.at(i, 2) > 0.0) ? 1 : 0;
        }
        // weight_decay > 0 so the decay path of the update runs too.
        Sgd opt{Sgd_config{0.05, 0.9, 1e-4}};
        for (std::size_t s = 0; s < 120; ++s) {
            net.zero_grad();
            const Tensor logits = net.forward(x, true);
            const Loss_result r = softmax_cross_entropy(logits, y);
            (void)net.backward(r.grad);
            opt.step(net.parameters());
        }
        std::vector<Tensor> weights;
        for (const Parameter* p : net.parameters()) {
            weights.push_back(p->value);
        }
        return weights;
    };

    // Perturb the allocator between the runs so equal addresses cannot
    // mask an address-order dependence by accident.
    const std::vector<Tensor> run_a = build_and_train();
    const auto heap_shim = std::make_unique<Tensor>(7, 13);
    const std::vector<Tensor> run_b = build_and_train();

    ASSERT_EQ(run_a.size(), run_b.size());
    ASSERT_FALSE(run_a.empty());
    for (std::size_t p = 0; p < run_a.size(); ++p) {
        ASSERT_EQ(run_a[p].size(), run_b[p].size()) << "param " << p;
        for (std::size_t i = 0; i < run_a[p].size(); ++i) {
            // Bit-pattern equality, not ==: -0.0 vs 0.0 or a pair of NaNs
            // would slip through a numeric comparison.
            const auto bits_a = std::bit_cast<std::uint64_t>(run_a[p].at(i));
            const auto bits_b = std::bit_cast<std::uint64_t>(run_b[p].at(i));
            ASSERT_EQ(bits_a, bits_b) << "param " << p << " element " << i;
        }
    }
}

} // namespace
} // namespace shog::nn
