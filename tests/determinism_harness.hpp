// Differential determinism harness: run one testbed through two engines (or
// two configurations that must be observationally equivalent) and require
// BYTE-identical results. Field-by-field EXPECT_DOUBLE_EQ pins rot as
// fields are added; this serializes *every* field of a Cluster_result —
// including the full fps timeline and windowed-mAP series, whose fold
// order is part of the contract — with %.17g (round-trip exact for IEEE
// doubles), so two runs agree iff every emitted bit agrees. Every engine
// variant (run_sweep worker counts, run_cluster_sharded shard counts,
// future engines) gets the same check by passing two closures.
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "sim/harness.hpp"

namespace shog::testing {

/// Exact textual image of a Cluster_result. Two results serialize equally
/// iff they are bit-identical in every serialized metric.
[[nodiscard]] inline std::string serialize_cluster(const sim::Cluster_result& cluster) {
    std::string out;
    char buf[512];
    const auto line = [&](const char* fmt, auto... args) {
        std::snprintf(buf, sizeof buf, fmt, args...);
        out += buf;
    };
    line("cluster duration=%.17g fleet_map=%.17g gpu_busy=%.17g util=%.17g\n",
         cluster.duration, cluster.fleet_map, cluster.gpu_busy_seconds,
         cluster.gpu_utilization);
    line("cluster jobs=%zu labels=%zu mean_lat=%.17g p95_lat=%.17g mean_wait=%.17g\n",
         cluster.cloud_jobs, cluster.label_jobs, cluster.mean_label_latency,
         cluster.p95_label_latency, cluster.mean_label_wait);
    line("cluster depth=%zu preempt=%zu warm=%zu fail=%zu requeue=%zu\n",
         cluster.peak_queue_depth, cluster.preemptions, cluster.warm_dispatches,
         cluster.failures, cluster.straggler_requeues);
    for (std::size_t i = 0; i < cluster.devices.size(); ++i) {
        const sim::Run_result& r = cluster.devices[i];
        line("device %zu %s map=%.17g pooled=%.17g iou=%.17g\n", i, r.strategy.c_str(),
             r.map, r.map_pooled, r.average_iou);
        line("device %zu up=%.17g down=%.17g fps=%.17g dur=%.17g frames=%zu\n", i,
             r.up_kbps, r.down_kbps, r.average_fps, r.duration, r.evaluated_frames);
        line("device %zu train=%zu gpu=%.17g window=%.17g\n", i, r.training_sessions,
             r.cloud_gpu_seconds, r.map_window);
        for (const auto& [at, fps] : r.fps_timeline) {
            line("device %zu fps %.17g %.17g\n", i, at, fps);
        }
        for (const auto& [start, value] : r.windowed_map) {
            line("device %zu wmap %.17g %.17g\n", i, start, value);
        }
    }
    // The sampled metrics snapshot is part of the contract too: a sink-less
    // run serializes nothing here, a metered run must serialize identically
    // across engines and shard counts.
    for (const obs::Metric_series& s : cluster.metrics.series) {
        line("metric %s %s points=%zu\n", s.name.c_str(), obs::metric_kind_name(s.kind),
             s.points.size());
        for (const obs::Metric_point& p : s.points) {
            line("metric %s at=%.17g value=%.17g\n", s.name.c_str(), p.at_seconds, p.value);
        }
    }
    for (const obs::Metric_histogram& h : cluster.metrics.histograms) {
        line("histogram %s observations=%llu\n", h.name.c_str(),
             static_cast<unsigned long long>(h.observations));
        for (const auto& [bucket, count] : h.buckets) {
            line("histogram %s bucket=%lld count=%llu\n", h.name.c_str(),
                 static_cast<long long>(bucket), static_cast<unsigned long long>(count));
        }
    }
    return out;
}

/// Run the reference and candidate engines and require byte-identical
/// serialized Cluster_results.
inline void expect_identical_cluster(
    const std::function<sim::Cluster_result()>& reference,
    const std::function<sim::Cluster_result()>& candidate, const std::string& label) {
    const std::string expected = serialize_cluster(reference());
    const std::string actual = serialize_cluster(candidate());
    EXPECT_EQ(expected, actual) << label;
    // An empty serialization would make the comparison vacuous.
    EXPECT_NE(expected.find("device 0"), std::string::npos) << label;
}

/// String-payload variant for engines whose output is already a merged text
/// artifact (run_sweep's cell lines).
inline void expect_identical_lines(const std::function<std::string()>& reference,
                                   const std::function<std::string()>& candidate,
                                   const std::string& label) {
    const std::string expected = reference();
    const std::string actual = candidate();
    EXPECT_EQ(expected, actual) << label;
    EXPECT_FALSE(expected.empty()) << label;
}

} // namespace shog::testing
