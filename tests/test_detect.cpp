// Unit tests for the detection geometry and metrics: IoU oracles, NMS
// post-conditions (parameterized over thresholds), greedy matching, AP/mAP
// against hand-computed precision-recall curves.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "detect/box.hpp"
#include "detect/metrics.hpp"

namespace shog::detect {
namespace {

// ------------------------------------------------------------------ Box ----

TEST(Box, AreaAndCenter) {
    const Box b{10.0, 20.0, 30.0, 60.0};
    EXPECT_DOUBLE_EQ(b.width(), 20.0);
    EXPECT_DOUBLE_EQ(b.height(), 40.0);
    EXPECT_DOUBLE_EQ(b.area(), 800.0);
    EXPECT_DOUBLE_EQ(b.center_x(), 20.0);
    EXPECT_DOUBLE_EQ(b.center_y(), 40.0);
    EXPECT_TRUE(b.valid());
}

TEST(Box, DegenerateInvalid) {
    const Box b{10.0, 10.0, 10.0, 20.0};
    EXPECT_FALSE(b.valid());
    EXPECT_DOUBLE_EQ(b.area(), 0.0);
}

TEST(Box, FromCenterRoundTrip) {
    const Box b = Box::from_center(50.0, 60.0, 20.0, 10.0);
    EXPECT_DOUBLE_EQ(b.x1, 40.0);
    EXPECT_DOUBLE_EQ(b.y2, 65.0);
    EXPECT_DOUBLE_EQ(b.center_x(), 50.0);
}

TEST(Box, ClippedToImage) {
    const Box b{-10.0, -5.0, 110.0, 50.0};
    const Box c = b.clipped(100.0, 40.0);
    EXPECT_DOUBLE_EQ(c.x1, 0.0);
    EXPECT_DOUBLE_EQ(c.y1, 0.0);
    EXPECT_DOUBLE_EQ(c.x2, 100.0);
    EXPECT_DOUBLE_EQ(c.y2, 40.0);
}

// ------------------------------------------------------------------ IoU ----

TEST(Iou, Identical) {
    const Box b{0.0, 0.0, 10.0, 10.0};
    EXPECT_DOUBLE_EQ(iou(b, b), 1.0);
}

TEST(Iou, Disjoint) {
    EXPECT_DOUBLE_EQ(iou(Box{0, 0, 10, 10}, Box{20, 20, 30, 30}), 0.0);
}

TEST(Iou, Touching) {
    EXPECT_DOUBLE_EQ(iou(Box{0, 0, 10, 10}, Box{10, 0, 20, 10}), 0.0);
}

TEST(Iou, HalfOverlap) {
    // [0,10]x[0,10] vs [5,15]x[0,10]: inter 50, union 150.
    EXPECT_NEAR(iou(Box{0, 0, 10, 10}, Box{5, 0, 15, 10}), 1.0 / 3.0, 1e-12);
}

TEST(Iou, Nested) {
    // inner 25, outer 100 -> IoU 0.25.
    EXPECT_DOUBLE_EQ(iou(Box{0, 0, 10, 10}, Box{2.5, 2.5, 7.5, 7.5}), 0.25);
}

TEST(Iou, Symmetric) {
    Rng rng{1};
    for (int i = 0; i < 100; ++i) {
        const Box a = Box::from_center(rng.uniform(0, 100), rng.uniform(0, 100),
                                       rng.uniform(5, 30), rng.uniform(5, 30));
        const Box b = Box::from_center(rng.uniform(0, 100), rng.uniform(0, 100),
                                       rng.uniform(5, 30), rng.uniform(5, 30));
        EXPECT_DOUBLE_EQ(iou(a, b), iou(b, a));
        EXPECT_GE(iou(a, b), 0.0);
        EXPECT_LE(iou(a, b), 1.0);
    }
}

// ------------------------------------------------------------------ NMS ----

TEST(Nms, SuppressesLowerConfidenceOverlap) {
    std::vector<Detection> dets{
        {Box{0, 0, 10, 10}, 1, 0.9},
        {Box{1, 1, 11, 11}, 1, 0.8}, // heavy overlap with the first
        {Box{50, 50, 60, 60}, 1, 0.7},
    };
    const auto kept = nms(dets, 0.5);
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_DOUBLE_EQ(kept[0].confidence, 0.9);
    EXPECT_DOUBLE_EQ(kept[1].confidence, 0.7);
}

TEST(Nms, DifferentClassesNotSuppressed) {
    std::vector<Detection> dets{
        {Box{0, 0, 10, 10}, 1, 0.9},
        {Box{0, 0, 10, 10}, 2, 0.8},
    };
    EXPECT_EQ(nms(dets, 0.5).size(), 2u);
}

TEST(Nms, EmptyInput) { EXPECT_TRUE(nms({}, 0.5).empty()); }

class NmsThreshold : public ::testing::TestWithParam<double> {};

TEST_P(NmsThreshold, PostConditions) {
    const double threshold = GetParam();
    Rng rng{7};
    std::vector<Detection> dets;
    for (int i = 0; i < 60; ++i) {
        dets.push_back(Detection{
            Box::from_center(rng.uniform(0, 200), rng.uniform(0, 200), rng.uniform(10, 40),
                             rng.uniform(10, 40)),
            1 + rng.index(3), rng.uniform()});
    }
    const auto kept = nms(dets, threshold);
    // (1) descending confidence
    for (std::size_t i = 1; i < kept.size(); ++i) {
        EXPECT_GE(kept[i - 1].confidence, kept[i].confidence);
    }
    // (2) no same-class pair above the IoU threshold survives
    for (std::size_t i = 0; i < kept.size(); ++i) {
        for (std::size_t j = i + 1; j < kept.size(); ++j) {
            if (kept[i].class_id == kept[j].class_id) {
                EXPECT_LE(iou(kept[i].box, kept[j].box), threshold + 1e-12);
            }
        }
    }
    // (3) survivors are a subset of the input
    EXPECT_LE(kept.size(), dets.size());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, NmsThreshold, ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

// ------------------------------------------------------------- matching ----

TEST(Match, OneToOneGreedy) {
    std::vector<Detection> dets{
        {Box{0, 0, 10, 10}, 1, 0.9},
        {Box{0, 0, 10, 10}, 1, 0.8}, // duplicate: must become FP
    };
    std::vector<Ground_truth> gt{{Box{0, 0, 10, 10}, 1}};
    const Match_result m = match_detections(dets, gt, 0.5);
    EXPECT_EQ(m.true_positives, 1u);
    EXPECT_EQ(m.false_positives, 1u);
    EXPECT_EQ(m.false_negatives, 0u);
    EXPECT_EQ(m.detection_to_gt[0], 0u); // higher confidence wins the match
    EXPECT_EQ(m.detection_to_gt[1], Match_result::npos);
}

TEST(Match, ClassMustAgree) {
    std::vector<Detection> dets{{Box{0, 0, 10, 10}, 2, 0.9}};
    std::vector<Ground_truth> gt{{Box{0, 0, 10, 10}, 1}};
    const Match_result m = match_detections(dets, gt, 0.5);
    EXPECT_EQ(m.true_positives, 0u);
    EXPECT_EQ(m.false_positives, 1u);
    EXPECT_EQ(m.false_negatives, 1u);
}

TEST(Match, IouGateRespected) {
    std::vector<Detection> dets{{Box{0, 0, 10, 10}, 1, 0.9}};
    std::vector<Ground_truth> gt{{Box{8, 8, 18, 18}, 1}}; // IoU ~ 0.02
    const Match_result m = match_detections(dets, gt, 0.5);
    EXPECT_EQ(m.true_positives, 0u);
}

TEST(Match, MatchedIouRecorded) {
    std::vector<Detection> dets{{Box{0, 0, 10, 10}, 1, 0.9}};
    std::vector<Ground_truth> gt{{Box{0, 0, 10, 10}, 1}};
    const Match_result m = match_detections(dets, gt, 0.5);
    EXPECT_DOUBLE_EQ(m.matched_iou[0], 1.0);
}

// --------------------------------------------------------------- AP/mAP ----

TEST(AveragePrecision, PerfectDetectorIsOne) {
    std::vector<Frame_eval> frames(3);
    for (auto& f : frames) {
        f.ground_truth = {{Box{0, 0, 10, 10}, 1}, {Box{20, 20, 40, 40}, 1}};
        f.detections = {{Box{0, 0, 10, 10}, 1, 0.9}, {Box{20, 20, 40, 40}, 1, 0.8}};
    }
    const auto ap = average_precision(frames, 1, 0.5);
    ASSERT_TRUE(ap.has_value());
    EXPECT_DOUBLE_EQ(*ap, 1.0);
}

TEST(AveragePrecision, NoDetectionsIsZero) {
    std::vector<Frame_eval> frames(1);
    frames[0].ground_truth = {{Box{0, 0, 10, 10}, 1}};
    const auto ap = average_precision(frames, 1, 0.5);
    ASSERT_TRUE(ap.has_value());
    EXPECT_DOUBLE_EQ(*ap, 0.0);
}

TEST(AveragePrecision, NoGroundTruthIsNullopt) {
    std::vector<Frame_eval> frames(1);
    frames[0].detections = {{Box{0, 0, 10, 10}, 1, 0.9}};
    EXPECT_FALSE(average_precision(frames, 1, 0.5).has_value());
}

TEST(AveragePrecision, HandComputedCurve) {
    // One frame, 2 GT, 3 detections ranked: TP(0.9), FP(0.8), TP(0.7).
    // precision at ranks: 1, 1/2, 2/3; recall: 1/2, 1/2, 1.
    // envelope: [1, 2/3, 2/3]; AP = 0.5*1 + 0*(2/3) + 0.5*(2/3) = 5/6.
    std::vector<Frame_eval> frames(1);
    frames[0].ground_truth = {{Box{0, 0, 10, 10}, 1}, {Box{50, 50, 60, 60}, 1}};
    frames[0].detections = {
        {Box{0, 0, 10, 10}, 1, 0.9},     // TP
        {Box{100, 100, 120, 120}, 1, 0.8}, // FP
        {Box{50, 50, 60, 60}, 1, 0.7},   // TP
    };
    const auto ap = average_precision(frames, 1, 0.5);
    ASSERT_TRUE(ap.has_value());
    EXPECT_NEAR(*ap, 5.0 / 6.0, 1e-12);
}

TEST(MeanAp, AveragesPresentClassesOnly) {
    std::vector<Frame_eval> frames(1);
    frames[0].ground_truth = {{Box{0, 0, 10, 10}, 1}, {Box{30, 30, 40, 40}, 2}};
    frames[0].detections = {{Box{0, 0, 10, 10}, 1, 0.9}}; // class 1 perfect, class 2 zero
    // class 3 has no GT -> excluded from the mean.
    EXPECT_NEAR(mean_average_precision(frames, 3, 0.5), 0.5, 1e-12);
}

TEST(MeanMatchedIou, AveragesTruePositives) {
    std::vector<Frame_eval> frames(1);
    frames[0].ground_truth = {{Box{0, 0, 10, 10}, 1}};
    frames[0].detections = {{Box{0, 0, 10, 8}, 1, 0.9}}; // IoU 0.8
    EXPECT_NEAR(mean_matched_iou(frames, 0.5), 0.8, 1e-12);
}

// ------------------------------------------------------ Stream_evaluator ---

TEST(StreamEvaluator, AccumulatesAndWindows) {
    Stream_evaluator eval{1, 0.5};
    for (int i = 0; i < 40; ++i) {
        Frame_eval f;
        f.ground_truth = {{Box{0, 0, 10, 10}, 1}};
        // First half perfect, second half blind.
        if (i < 20) {
            f.detections = {{Box{0, 0, 10, 10}, 1, 0.9}};
        }
        eval.add_frame(i * 1.0, std::move(f));
    }
    EXPECT_EQ(eval.frame_count(), 40u);
    const auto windows = eval.windowed_map(10.0);
    ASSERT_EQ(windows.size(), 4u);
    EXPECT_DOUBLE_EQ(windows[0].second, 1.0);
    EXPECT_DOUBLE_EQ(windows[3].second, 0.0);
    EXPECT_GT(eval.map(), 0.4);
    EXPECT_LT(eval.map(), 0.6);
}

TEST(StreamEvaluator, MatchesBatchMetricsBitForBitOnRandomStreams) {
    // The incremental evaluator keeps only per-class hit records, but its
    // queries must reproduce the store-all-frames batch path exactly: same
    // matching, same hit order, same AP core => bit-identical doubles.
    for (std::uint64_t seed : {3u, 4u, 5u}) {
        Rng rng{seed};
        const std::size_t num_classes = 3;
        const double threshold = 0.5;
        Stream_evaluator eval{num_classes, threshold};
        std::vector<Frame_eval> batch;
        for (int i = 0; i < 60; ++i) {
            Frame_eval f;
            const std::size_t gts = rng.index(4);
            for (std::size_t g = 0; g < gts; ++g) {
                f.ground_truth.push_back(Ground_truth{
                    Box::from_center(rng.uniform(0, 200), rng.uniform(0, 200),
                                     rng.uniform(10, 40), rng.uniform(10, 40)),
                    1 + rng.index(num_classes)});
            }
            const std::size_t dets = rng.index(5);
            for (std::size_t d = 0; d < dets; ++d) {
                // Half the detections jitter a ground-truth box (plausible
                // matches), half are random (false positives).
                Box box = !f.ground_truth.empty() && rng.chance(0.5)
                              ? f.ground_truth[rng.index(f.ground_truth.size())].box
                              : Box::from_center(rng.uniform(0, 200), rng.uniform(0, 200),
                                                 rng.uniform(10, 40), rng.uniform(10, 40));
                f.detections.push_back(
                    Detection{box, 1 + rng.index(num_classes), rng.uniform()});
            }
            batch.push_back(f);
            eval.add_frame(i * 0.5, std::move(f));
            // Equality must hold at every prefix, not just at end of run.
            if (i % 15 == 14) {
                EXPECT_EQ(eval.map(),
                          mean_average_precision(batch, num_classes, threshold))
                    << "seed " << seed << " frame " << i;
                EXPECT_EQ(eval.average_iou(), mean_matched_iou(batch, threshold))
                    << "seed " << seed << " frame " << i;
            }
        }
    }
}

TEST(StreamEvaluator, RejectsOutOfOrderFrames) {
    Stream_evaluator eval{1, 0.5};
    eval.add_frame(5.0, Frame_eval{});
    EXPECT_THROW(eval.add_frame(4.0, Frame_eval{}), std::invalid_argument);
}

TEST(StreamEvaluator, ConfigValidation) {
    EXPECT_THROW((Stream_evaluator{0, 0.5}), std::invalid_argument);
    EXPECT_THROW((Stream_evaluator{1, 0.0}), std::invalid_argument);
}

} // namespace
} // namespace shog::detect
