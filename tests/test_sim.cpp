// Tests for the simulation harness: event scheduling, measurement plumbing,
// determinism, and the windowed-gain machinery behind Fig. 5.
#include <gtest/gtest.h>

#include "baselines/cloud_only.hpp"
#include "baselines/edge_only.hpp"
#include "models/pretrain.hpp"
#include "sim/harness.hpp"
#include "video/presets.hpp"

namespace shog::sim {
namespace {

struct Sim_fixture : public ::testing::Test {
    static void SetUpTestSuite() {
        preset = new video::Dataset_preset{video::ua_detrac_like(29, 120.0)};
        stream = new video::Video_stream{preset->stream, preset->world, preset->schedule};
        student = models::make_student(stream->world(), 29).release();
        teacher = models::make_teacher(stream->world(), 29).release();
    }
    static void TearDownTestSuite() {
        delete teacher;
        delete student;
        delete stream;
        delete preset;
    }
    void SetUp() override { config.eval_stride = 15; }

    static video::Dataset_preset* preset;
    static video::Video_stream* stream;
    static models::Detector* student;
    static models::Detector* teacher;
    Harness_config config;
};

video::Dataset_preset* Sim_fixture::preset = nullptr;
video::Video_stream* Sim_fixture::stream = nullptr;
models::Detector* Sim_fixture::student = nullptr;
models::Detector* Sim_fixture::teacher = nullptr;

TEST_F(Sim_fixture, EdgeOnlyUsesNoNetwork) {
    baselines::Edge_only_strategy strategy{*student};
    const Run_result r = run_strategy(strategy, *stream, config);
    EXPECT_EQ(r.strategy, "Edge-Only");
    EXPECT_DOUBLE_EQ(r.up_kbps, 0.0);
    EXPECT_DOUBLE_EQ(r.down_kbps, 0.0);
    EXPECT_EQ(r.training_sessions, 0u);
    EXPECT_DOUBLE_EQ(r.cloud_gpu_seconds, 0.0);
    EXPECT_GT(r.map, 0.0);
    EXPECT_LT(r.map, 1.0);
    EXPECT_NEAR(r.average_fps, 30.0, 1.0);
    EXPECT_GT(r.evaluated_frames, 100u);
}

TEST_F(Sim_fixture, EdgeOnlyDeterministic) {
    baselines::Edge_only_strategy s1{*student};
    const Run_result r1 = run_strategy(s1, *stream, config);
    baselines::Edge_only_strategy s2{*student};
    const Run_result r2 = run_strategy(s2, *stream, config);
    EXPECT_DOUBLE_EQ(r1.map, r2.map);
    EXPECT_DOUBLE_EQ(r1.average_iou, r2.average_iou);
    EXPECT_EQ(r1.evaluated_frames, r2.evaluated_frames);
}

TEST_F(Sim_fixture, CloudOnlyMetersBothDirections) {
    baselines::Cloud_only_strategy strategy{*teacher, device::v100()};
    const Run_result r = run_strategy(strategy, *stream, config);
    EXPECT_GT(r.up_kbps, 1000.0);   // a full 30 fps video stream
    EXPECT_GT(r.down_kbps, r.up_kbps); // annotated frames cost a bit more
    EXPECT_LT(r.average_fps, 12.0);    // synchronous pipeline
    EXPECT_GT(r.cloud_gpu_seconds, 10.0);
    EXPECT_GT(r.map, 0.3); // the golden model is good
}

TEST_F(Sim_fixture, CloudOnlyBeatsEdgeOnlyAccuracy) {
    baselines::Edge_only_strategy edge{*student};
    const Run_result edge_result = run_strategy(edge, *stream, config);
    baselines::Cloud_only_strategy cloud{*teacher, device::v100()};
    const Run_result cloud_result = run_strategy(cloud, *stream, config);
    EXPECT_GT(cloud_result.map, edge_result.map + 0.05);
}

TEST_F(Sim_fixture, WindowedSeriesCoverStream) {
    baselines::Edge_only_strategy strategy{*student};
    const Run_result r = run_strategy(strategy, *stream, config);
    ASSERT_FALSE(r.windowed_map.empty());
    EXPECT_NEAR(static_cast<double>(r.windowed_map.size()),
                stream->duration() / config.map_window.value(), 1.0); // raw window count
    for (const auto& [start, value] : r.windowed_map) {
        EXPECT_GE(value, 0.0);
        EXPECT_LE(value, 1.0);
        EXPECT_GE(start, 0.0);
        EXPECT_LT(start, stream->duration());
    }
    // Headline mAP is the mean of the windows.
    double total = 0.0;
    for (const auto& [start, value] : r.windowed_map) {
        total += value;
    }
    EXPECT_NEAR(r.map, total / static_cast<double>(r.windowed_map.size()), 1e-12);
}

TEST_F(Sim_fixture, WindowedGainAlignsWindows) {
    baselines::Edge_only_strategy s1{*student};
    const Run_result a = run_strategy(s1, *stream, config);
    baselines::Edge_only_strategy s2{*student};
    const Run_result b = run_strategy(s2, *stream, config);
    const std::vector<double> gains = windowed_gain(a, b);
    ASSERT_EQ(gains.size(), a.windowed_map.size());
    for (double g : gains) {
        EXPECT_DOUBLE_EQ(g, 0.0); // identical runs -> zero gain everywhere
    }
}

TEST_F(Sim_fixture, FpsTimelineMatchesDuration) {
    baselines::Edge_only_strategy strategy{*student};
    const Run_result r = run_strategy(strategy, *stream, config);
    ASSERT_FALSE(r.fps_timeline.empty());
    EXPECT_LE(r.fps_timeline.back().first, stream->duration());
}

} // namespace
} // namespace shog::sim
