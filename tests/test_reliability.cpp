// Tests for the cloud reliability layer: per-server Gpu_profile (straggler
// speed multipliers, MTBF/MTTR failure processes off deterministic RNG
// substreams), failure checkpointing of in-flight dispatches, failure-aware
// placement (including the kind_partition all-reserved-failed fallback),
// the speed_aware placement, straggler re-queueing of overdue labels, and
// the preemption-aware resume planner (AMS-style stale-sample dropping).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/stats.hpp"
#include "fleet/testbed.hpp"
#include "sim/cloud.hpp"
#include "sim/harness.hpp"
#include "sim/placement.hpp"

namespace shog::sim {
namespace {

constexpr Sim_duration never{std::numeric_limits<double>::infinity()};

// ---------------------------------------------------------------------------
// Config surface.
// ---------------------------------------------------------------------------

TEST(Reliability, SpeedAwareNameRoundTrips) {
    EXPECT_EQ(placement_by_name("speed_aware"), Placement_kind::speed_aware);
    EXPECT_STREQ(make_placement(Placement_kind::speed_aware, 0)->name(), "speed_aware");
}

TEST(Reliability, ProfileValidation) {
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    config.gpu_profiles = {Gpu_profile{}}; // size mismatch
    EXPECT_THROW((Cloud_runtime{queue, config}), std::invalid_argument);
    config.gpu_profiles = {Gpu_profile{}, Gpu_profile{0.0, never, Sim_duration{10.0}}}; // speed 0
    EXPECT_THROW((Cloud_runtime{queue, config}), std::invalid_argument);
    config.gpu_profiles = {Gpu_profile{}, Gpu_profile{1.0, Sim_duration{60.0}, Sim_duration{0.0}}}; // mttr 0
    EXPECT_THROW((Cloud_runtime{queue, config}), std::invalid_argument);
    config.gpu_profiles = {Gpu_profile{}, Gpu_profile{0.5, Sim_duration{60.0}, Sim_duration{10.0}}};
    EXPECT_NO_THROW((Cloud_runtime{queue, config}));
    config.straggler_requeue_factor = 0.5; // must be 0 or >= 1
    EXPECT_THROW((Cloud_runtime{queue, config}), std::invalid_argument);
    config.straggler_requeue_factor = 1.0;
    EXPECT_NO_THROW((Cloud_runtime{queue, config}));
}

// ---------------------------------------------------------------------------
// Straggler speed: wall time and billing scale together.
// ---------------------------------------------------------------------------

TEST(Reliability, StragglerSpeedScalesServiceAndBilling) {
    Event_queue queue;
    Cloud_config config;
    config.gpu_profiles = {Gpu_profile{0.5, never, Sim_duration{10.0}}}; // 2x slow
    Cloud_runtime cloud{queue, config};
    cloud.submit(0, Sim_duration{3.0}, {});
    (void)queue.run_until(Sim_time{60.0});
    ASSERT_EQ(cloud.jobs_completed(), 1u);
    // 3 s of nominal service occupy the half-speed server for 6 wall
    // seconds, and the bill is the occupancy.
    EXPECT_EQ(cloud.job_latencies()[0], Sim_duration{6.0});
    EXPECT_EQ(cloud.device_gpu_seconds(0), Gpu_seconds{6.0});
    EXPECT_EQ(cloud.busy_seconds(), Gpu_seconds{6.0});
}

// ---------------------------------------------------------------------------
// speed_aware placement.
// ---------------------------------------------------------------------------

TEST(Reliability, SpeedAwareRoutesLabelsFastAndTrainsSlow) {
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    config.placement = Placement_kind::speed_aware;
    config.gpu_profiles = {Gpu_profile{0.25, never, Sim_duration{10.0}}, Gpu_profile{}};
    Cloud_runtime cloud{queue, config};
    // Both servers free: the train must soak the straggler (server 0), the
    // label must take the fast server (server 1).
    cloud.submit(0, Sim_duration{4.0}, {}, Cloud_job_kind::train);
    cloud.submit(1, Sim_duration{1.0}, {}, Cloud_job_kind::label);
    (void)queue.run_until(Sim_time{100.0});
    ASSERT_EQ(cloud.jobs_completed(), 2u);
    const std::vector<Gpu_seconds> per_gpu = cloud.per_gpu_busy_within(Sim_time{100.0});
    EXPECT_EQ(per_gpu[0], Gpu_seconds{16.0}); // train: 4 s nominal at speed 0.25
    EXPECT_EQ(per_gpu[1], Gpu_seconds{1.0});  // label: fast server, full speed
}

TEST(Reliability, SpeedAwareTieBreaksToTheWarmServer) {
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    config.placement = Placement_kind::speed_aware;
    config.affinity_warm_factor = 0.8;
    Cloud_runtime cloud{queue, config};
    // Warm server 1 with device 7, then let both servers free up. Device
    // 7's next label must return to server 1 (equal speeds, warm beats
    // lower index) at the warm discount.
    cloud.submit(3, Sim_duration{1.0}, {});
    cloud.submit(7, Sim_duration{1.0}, {});
    queue.schedule(Sim_time{5.0}, [&] { cloud.submit(7, Sim_duration{1.0}, {}); });
    (void)queue.run_until(Sim_time{100.0});
    ASSERT_EQ(cloud.jobs_completed(), 3u);
    EXPECT_DOUBLE_EQ(cloud.job_latencies()[2].value(), 0.8); // raw seconds: discount carries ulp residue
    EXPECT_EQ(cloud.warm_dispatches(), 1u);
    const std::vector<Gpu_seconds> per_gpu = cloud.per_gpu_busy_within(Sim_time{100.0});
    EXPECT_DOUBLE_EQ(per_gpu[1].value(), 1.8); // raw seconds: discount carries ulp residue
}

TEST(Reliability, AllPlacementsSkipFailedServers) {
    // Pure placement units: a failed server is never picked even when idle.
    std::vector<Gpu_state> gpus(2);
    gpus[0].failed = true;
    for (Placement_kind kind :
         {Placement_kind::any_free, Placement_kind::device_affinity,
          Placement_kind::kind_partition, Placement_kind::speed_aware}) {
        const auto placement = make_placement(kind, 1);
        for (Cloud_job_kind job_kind : {Cloud_job_kind::label, Cloud_job_kind::train}) {
            EXPECT_EQ(placement->place(job_kind, 0, gpus).gpu, 1u) << placement->name();
            EXPECT_EQ(placement->eligible_free(job_kind, gpus), 1u) << placement->name();
        }
    }
    // device_affinity: a warm but failed server is not warm capacity.
    gpus[0].resident_device = 4;
    const auto affinity = make_placement(Placement_kind::device_affinity, 0);
    const Placement_decision where = affinity->place(Cloud_job_kind::label, 4, gpus);
    EXPECT_EQ(where.gpu, 1u);
    EXPECT_FALSE(where.warm);
}

// ---------------------------------------------------------------------------
// Failures: checkpoint/resume, billing conservation, determinism.
// ---------------------------------------------------------------------------

TEST(Reliability, FailureCheckpointsInFlightWorkAndConservesBilling) {
    Event_queue queue;
    Cloud_config config;
    config.gpu_profiles = {Gpu_profile{1.0, Sim_duration{6.0}, Sim_duration{2.0}}}; // fails every ~6 s
    Cloud_runtime cloud{queue, config};
    Sim_time done_at{-1.0};
    const Sim_duration service{30.0}; // long enough to be interrupted
    cloud.submit(0, service, [&] { done_at = queue.now(); });
    (void)queue.run_until(Sim_time{2000.0});
    ASSERT_EQ(cloud.jobs_completed(), 1u);
    EXPECT_GE(cloud.failures(), 1u);
    // Downtime stretches the latency past the service time...
    EXPECT_GT(done_at.since_start(), service);
    // ...but the bill is conserved exactly: every checkpoint refunds the
    // unexecuted share, every resume re-bills it, and the executed pieces
    // sum back to the full service.
    EXPECT_NEAR(cloud.device_gpu_seconds(0).value(), service.value(), 1e-9); // raw seconds for the tolerance check
    EXPECT_NEAR(cloud.busy_seconds().value(), service.value(), 1e-9); // raw seconds for the tolerance check
    EXPECT_NEAR(cloud.busy_seconds_within(Sim_time{2000.0}).value(), // raw seconds for the tolerance check
                service.value(), 1e-9); // raw seconds for the tolerance check
}

TEST(Reliability, FailureProcessIsDeterministicAcrossReruns) {
    const auto run_script = [] {
        Event_queue queue;
        Cloud_config config;
        config.gpu_count = 2;
        config.placement = Placement_kind::speed_aware;
        config.policy = Policy_kind::priority;
        config.gpu_profiles = {Gpu_profile{0.5, Sim_duration{15.0}, Sim_duration{3.0}}, Gpu_profile{1.0, Sim_duration{25.0}, Sim_duration{5.0}}};
        config.straggler_requeue_factor = 2.0;
        config.preempt_label_wait = Sim_duration{2.0};
        Cloud_runtime cloud{queue, config};
        for (int i = 0; i < 12; ++i) {
            queue.schedule(Sim_time{1.5 * i}, [&cloud, i] {
                cloud.submit(static_cast<std::size_t>(i % 4), Sim_duration{1.0},
                             {}, Cloud_job_kind::label, 0.1 * i);
                if (i % 3 == 0) {
                    cloud.submit(static_cast<std::size_t>(i % 4), Sim_duration{6.0}, {},
                                 Cloud_job_kind::train);
                }
            });
        }
        (void)queue.run_until(Sim_time{400.0});
        return std::tuple{cloud.job_latencies(), cloud.failures(),
                          cloud.straggler_requeues(), cloud.busy_seconds()};
    };
    const auto a = run_script();
    const auto b = run_script();
    ASSERT_EQ(std::get<0>(a).size(), std::get<0>(b).size());
    for (std::size_t i = 0; i < std::get<0>(a).size(); ++i) {
        EXPECT_EQ(std::get<0>(a)[i], std::get<0>(b)[i]) << "job " << i;
    }
    EXPECT_EQ(std::get<1>(a), std::get<1>(b));
    EXPECT_EQ(std::get<2>(a), std::get<2>(b));
    EXPECT_EQ(std::get<3>(a), std::get<3>(b));
    EXPECT_GE(std::get<1>(a), 1u); // the scenario actually exercises failures
}

TEST(Reliability, KindPartitionServesLabelsWhenEveryReservedServerFails) {
    // The reserved label server goes down (and stays down); queued labels
    // must fall through to the unreserved server instead of deadlocking on
    // their dedicated lane.
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    config.placement = Placement_kind::kind_partition;
    config.label_reserved_gpus = 1;
    config.gpu_profiles = {Gpu_profile{1.0, Sim_duration{0.001}, Sim_duration{1.0e9}}, // fails instantly, stays down
                           Gpu_profile{}};
    Cloud_runtime cloud{queue, config};
    std::size_t labels_done = 0;
    queue.schedule(Sim_time{1.0}, [&] {
        cloud.submit(0, Sim_duration{5.0}, {}, Cloud_job_kind::train);
        cloud.submit(1, Sim_duration{1.0}, [&] { ++labels_done; });
        cloud.submit(2, Sim_duration{1.0}, [&] { ++labels_done; });
    });
    (void)queue.run_until(Sim_time{100.0});
    EXPECT_EQ(cloud.failures(), 1u);
    EXPECT_EQ(labels_done, 2u); // served on the unreserved server
    EXPECT_EQ(cloud.jobs_completed(), 3u);
    const std::vector<Gpu_seconds> per_gpu = cloud.per_gpu_busy_within(Sim_time{100.0});
    EXPECT_EQ(per_gpu[0], Gpu_seconds{0.0}); // the dead reserved server ran nothing
}

// ---------------------------------------------------------------------------
// Straggler re-queueing.
// ---------------------------------------------------------------------------

TEST(Reliability, OverdueLabelMovesOffTheStragglerWhenAFasterServerFrees) {
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    config.placement = Placement_kind::speed_aware;
    config.gpu_profiles = {Gpu_profile{}, Gpu_profile{0.25, never, Sim_duration{10.0}}};
    config.straggler_requeue_factor = 2.0;
    Cloud_runtime cloud{queue, config};
    Sim_time slow_label_done{-1.0};
    // Label A occupies the fast server until t=8; label B must settle for
    // the straggler (nominal 3 s -> wall 12). Its bound fires at
    // 0.1 + 2 x 3 = 6.1 with the fast server still busy, so it is marked;
    // when A completes at t=8 the mark is honored: B checkpoints (7.9 of 12
    // wall seconds executed -> remainder 3 x (1 - 7.9/12) nominal) and
    // finishes on the fast server instead of grinding to t=12.1.
    cloud.submit(0, Sim_duration{8.0}, {});
    queue.schedule(Sim_time{0.1}, [&] {
        cloud.submit(1, Sim_duration{3.0}, [&] { slow_label_done = queue.now(); });
    });
    (void)queue.run_until(Sim_time{100.0});
    ASSERT_EQ(cloud.jobs_completed(), 2u);
    EXPECT_EQ(cloud.straggler_requeues(), 1u);
    const double remainder = 3.0 * (1.0 - 7.9 / 12.0);
    EXPECT_NEAR(slow_label_done.value(), 8.0 + remainder, 1e-9); // raw seconds for the tolerance check
    // Billing follows occupancy: 7.9 wall seconds on the straggler plus the
    // remainder on the fast server.
    EXPECT_NEAR(cloud.device_gpu_seconds(1).value(), 7.9 + remainder, 1e-9); // raw seconds for the tolerance check
}

TEST(Reliability, StragglerRequeueIsOffByDefaultAndBoundedToStragglers) {
    // factor 0 disables the machinery entirely; with it on, a full-speed
    // server never arms a check (the bound falls past completion).
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    config.placement = Placement_kind::speed_aware;
    config.straggler_requeue_factor = 3.0;
    Cloud_runtime cloud{queue, config};
    cloud.submit(0, Sim_duration{2.0}, {});
    cloud.submit(1, Sim_duration{2.0}, {});
    (void)queue.run_until(Sim_time{50.0});
    EXPECT_EQ(cloud.straggler_requeues(), 0u);
    EXPECT_EQ(cloud.job_latencies()[0], Sim_duration{2.0});
    EXPECT_EQ(cloud.job_latencies()[1], Sim_duration{2.0});
}

TEST(Reliability, RequeuedLabelKeepsItsPreemptionBound) {
    // A failure checkpoints a running label back into the queue; its
    // submit-time wait-bound timer is long spent. The re-queue must re-arm
    // the bound, or the label sits out an entire fine-tune — the silent
    // lapse the overdue machinery exists to prevent. Server 0 fails early
    // (mean 0.5 s) and never repairs; server 1 is mid-way through a 2000 s
    // train. Without the re-arm the label waits for the train's completion.
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    config.preempt_label_wait = Sim_duration{2.0};
    config.gpu_profiles = {Gpu_profile{1.0, Sim_duration{0.5}, Sim_duration{1.0e9}}, Gpu_profile{}};
    Cloud_runtime cloud{queue, config};
    Sim_time label_done{-1.0};
    cloud.submit(0, Sim_duration{1000.0}, [&] { label_done = queue.now(); }); // server 0
    cloud.submit(1, Sim_duration{2000.0}, {}, Cloud_job_kind::train);         // server 1
    (void)queue.run_until(Sim_time{3000.0});
    ASSERT_GE(cloud.failures(), 1u); // the label really was checkpointed
    EXPECT_EQ(cloud.preemptions(), 1u);
    ASSERT_GE(label_done, Sim_time{});
    // The re-armed bound evicted the train within ~preempt_label_wait of
    // the failure, so the label finishes around its service time — not
    // after the train's 2000 s.
    EXPECT_LT(label_done, Sim_time{1100.0});
}

TEST(Reliability, OneFreedServerRescuesOneStragglerAtATime) {
    // Two labels are stuck past their bound on two 4x stragglers when the
    // single fast server frees. Only one may checkpoint against it — the
    // other must keep its single escape for the *next* capacity change
    // (burning both against one server would re-place the loser on a slow
    // shard, permanently stuck). Here both escape in sequence: A rides the
    // fast server first, B follows the moment A's remainder completes.
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 3;
    config.placement = Placement_kind::speed_aware;
    config.gpu_profiles = {Gpu_profile{0.25, never, Sim_duration{10.0}}, Gpu_profile{0.25, never, Sim_duration{10.0}},
                           Gpu_profile{}};
    config.straggler_requeue_factor = 2.0;
    Cloud_runtime cloud{queue, config};
    Sim_time a_done{-1.0};
    Sim_time b_done{-1.0};
    cloud.submit(9, Sim_duration{8.0}, {}); // fast server (gpu 2) busy until t=8
    queue.schedule(Sim_time{0.1}, [&] {
        cloud.submit(0, Sim_duration{3.0}, [&] { a_done = queue.now(); }); // gpu 0, wall 12
    });
    queue.schedule(Sim_time{0.2}, [&] {
        cloud.submit(1, Sim_duration{3.0}, [&] { b_done = queue.now(); }); // gpu 1, wall 12
    });
    (void)queue.run_until(Sim_time{100.0});
    ASSERT_EQ(cloud.jobs_completed(), 3u);
    EXPECT_EQ(cloud.straggler_requeues(), 2u);
    // A checkpoints at t=8 (7.9 of 12 wall executed) and finishes on the
    // fast server; B checkpoints only when A's remainder completes.
    const double a_remainder = 3.0 * (1.0 - 7.9 / 12.0);
    EXPECT_NEAR(a_done.value(), 8.0 + a_remainder, 1e-9); // raw seconds for the tolerance check
    const double b_elapsed = 8.0 + a_remainder - 0.2;
    const double b_remainder = 3.0 * (1.0 - b_elapsed / 12.0);
    EXPECT_NEAR(b_done.value(), 8.0 + a_remainder + b_remainder, 1e-9); // raw seconds for the tolerance check
    // Both beat grinding out the straggler walls (t=12.1 / t=12.2).
    EXPECT_LT(b_done, Sim_time{12.0});
}

TEST(Reliability, StragglerRequeueSkipsADispatchCompletingThisInstant) {
    // Label A (fast server) and label B (straggler) both finish at t=2.
    // B is marked straggler-overdue at t=1.5; A's completion at t=2 runs
    // first and triggers the requeue scan while B has zero service left.
    // Checkpointing B there would burn its single straggler escape (and a
    // requeue counter) on a no-op — the remaining > 0 guard must skip it.
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    config.placement = Placement_kind::speed_aware;
    config.gpu_profiles = {Gpu_profile{}, Gpu_profile{0.5, never, Sim_duration{10.0}}};
    config.straggler_requeue_factor = 1.5;
    Cloud_runtime cloud{queue, config};
    cloud.submit(0, Sim_duration{2.0}, {}); // fastest first: server 0, done t=2
    cloud.submit(1, Sim_duration{1.0}, {}); // straggler: wall 2, bound at t=1.5, done t=2
    (void)queue.run_until(Sim_time{50.0});
    ASSERT_EQ(cloud.jobs_completed(), 2u);
    EXPECT_EQ(cloud.straggler_requeues(), 0u);
    EXPECT_EQ(cloud.job_latencies()[0], Sim_duration{2.0});
    EXPECT_EQ(cloud.job_latencies()[1], Sim_duration{2.0});
}

TEST(Reliability, CoalescedFreshLabelIsNotStrandedByARequeuedBatchMate) {
    // A once-requeued remainder can coalesce with a fresh label onto the
    // straggler (last eligible free server). The batch must still arm a
    // straggler check for the fresh member's sake — skipping it whenever
    // any member was requeued would strand the fresh label on the slow
    // shard with its escape unused.
    Event_queue queue;
    Cloud_config config;
    config.gpu_count = 2;
    config.placement = Placement_kind::speed_aware;
    config.gpu_profiles = {Gpu_profile{0.25, never, Sim_duration{10.0}}, Gpu_profile{}};
    config.straggler_requeue_factor = 2.0;
    config.max_batch = 2;
    config.batch_efficiency = 1.0; // keep the service arithmetic exact
    Cloud_runtime cloud{queue, config};
    Sim_time b_done{-1.0};
    cloud.submit(9, Sim_duration{30.0}, {}); // fast server busy until t=30
    queue.schedule(Sim_time{0.1}, [&] {
        cloud.submit(0, Sim_duration{8.0}, {}); // A -> straggler, wall 32; marked at t=16.1
    });
    queue.schedule(Sim_time{25.0}, [&] { cloud.submit(8, Sim_duration{6.0}, {}); });  // L1, queued
    queue.schedule(Sim_time{26.0}, [&] {
        cloud.submit(1, Sim_duration{2.0}, [&] { b_done = queue.now(); }); // B, queued
    });
    // t=30: A is rescued onto nothing yet — L1 takes the fast server, so
    // B coalesces with A's remainder on the straggler (batch wall 10.1 s).
    // The batch is marked at t=35.05 (fast busy); when L1 completes at
    // t=36 the batch checkpoints and B finishes on the fast server.
    (void)queue.run_until(Sim_time{200.0});
    ASSERT_EQ(cloud.jobs_completed(), 4u);
    EXPECT_EQ(cloud.straggler_requeues(), 2u); // A at t=30, the batch at t=36
    const double a_remainder = 8.0 * (1.0 - 29.9 / 32.0);      // 0.525
    const double batch_wall = (2.0 + a_remainder) / 0.25;      // 10.1
    const double b_remainder = 2.0 * (1.0 - 6.0 / batch_wall); // post-checkpoint
    EXPECT_NEAR(b_done.value(), 36.0 + b_remainder, 1e-9); // raw seconds for the tolerance check
    EXPECT_LT(b_done, Sim_time{40.0}); // not the batch's full straggler wall (t=40.1)
}

// ---------------------------------------------------------------------------
// speed_aware vs any_free under one 4x straggler: the headline claim.
// ---------------------------------------------------------------------------

TEST(Reliability, SpeedAwareBeatsAnyFreeOnP95WithOne4xStraggler) {
    // The full contended fleet (N=8 heterogeneous, half AMS) on 2 GPUs
    // whose *first* server is a 4x straggler — the index any_free fills
    // first. speed_aware keeps labels on the fast shard and parks
    // fine-tunes on the slow one; at this operating point the p95 gap is
    // wide (~29 s vs ~45 s at 90 s streams), not a knife edge, and the
    // faster labeling loop also completes more label jobs.
    const fleet::Testbed testbed = fleet::make_testbed("waymo", 8, 19, 90.0);
    fleet::Reliability_setup any_free;
    any_free.label = "any_free_straggler";
    any_free.placement = Placement_kind::any_free;
    any_free.straggler_speed = 0.25;
    fleet::Reliability_setup speed_aware = any_free;
    speed_aware.label = "speed_aware_straggler";
    speed_aware.placement = Placement_kind::speed_aware;
    const Cluster_result a =
        fleet::run_reliability_cell(testbed, 8, /*heterogeneous=*/true, any_free, 19);
    const Cluster_result s =
        fleet::run_reliability_cell(testbed, 8, /*heterogeneous=*/true, speed_aware, 19);
    EXPECT_LT(s.p95_label_latency, 0.75 * a.p95_label_latency);
    EXPECT_GT(s.label_jobs, a.label_jobs);
}

// ---------------------------------------------------------------------------
// Preemption-aware resume planning (the AMS satellite, at the scheduler).
// ---------------------------------------------------------------------------

TEST(Reliability, ReplanDropsStaleWorkUnderRepeatedPreemption) {
    // An AMS-style fine-tune of 10 uniform-cost samples, all labeled at
    // t=0 with a 4 s replay horizon. Labels force a preemption roughly
    // every 2 s; once the clock passes t=4 the pending tail is stale and a
    // re-planning job drops it instead of replaying it — fewer GPU seconds
    // billed and an earlier completion than the replay-the-remainder run.
    const auto run_session = [](bool replanning) {
        Event_queue queue;
        Cloud_config config;
        config.preempt_label_wait = Sim_duration{1.0};
        Cloud_runtime cloud{queue, config};
        Sim_time train_done{-1.0};
        Cloud_runtime::Resume_replan replan;
        if (replanning) {
            replan = [sample_at = std::vector<Sim_time>(10, Sim_time{}),
                      per_sample = Sim_duration{1.0}, horizon = Sim_duration{4.0},
                      begin = std::size_t{0}](Sim_duration remaining,
                                              Sim_time now) mutable {
                const std::size_t n = sample_at.size();
                const std::size_t pending = std::min(
                    n - begin,
                    static_cast<std::size_t>(std::llround(remaining / per_sample)));
                begin = n - pending;
                while (begin < n && sample_at[begin] + horizon <= now) {
                    ++begin;
                }
                return static_cast<double>(n - begin) * per_sample;
            };
        }
        cloud.submit(0, Sim_duration{10.0}, [&] { train_done = queue.now(); },
                     Cloud_job_kind::train, 0.0, std::move(replan));
        for (int i = 0; i < 4; ++i) {
            queue.schedule(Sim_time{0.5 + 2.0 * i}, [&cloud] {
                cloud.submit(1, Sim_duration{0.2}, {}, Cloud_job_kind::label);
            });
        }
        (void)queue.run_until(Sim_time{200.0});
        EXPECT_EQ(cloud.jobs_completed(), 5u);
        return std::pair{cloud.device_gpu_seconds(0), train_done};
    };
    const auto [replay_gpu_s, replay_done] = run_session(false);
    const auto [replan_gpu_s, replan_done] = run_session(true);
    // Replaying the remainder grinds through the full 10 GPU seconds.
    EXPECT_NEAR(replay_gpu_s.value(), 10.0, 1e-9); // raw seconds for the tolerance check
    // Re-planning prices out the stale tail: strictly fewer GPU seconds and
    // an earlier weight update.
    EXPECT_LT(replan_gpu_s, replay_gpu_s - Gpu_seconds{2.0});
    EXPECT_LT(replan_done, replay_done);
    EXPECT_GE(replan_gpu_s, Gpu_seconds{1.0}); // the executed shares stay billed
}

// ---------------------------------------------------------------------------
// Bit-identity: default profiles are a perfect no-op through the full stack.
// ---------------------------------------------------------------------------

TEST(Reliability, DefaultProfilesReproduceShardingCellBitIdentically) {
    // run_reliability_cell always installs profiles, a reliability seed and
    // the requeue knob; with the profile defaults (speed 1, MTBF infinity,
    // factor 0) it must reproduce the PR 3 sharding path to the last bit —
    // no RNG draw, no event, no service-time perturbation.
    const fleet::Testbed testbed = fleet::make_testbed("ua_detrac", 4, 23, 40.0);
    fleet::Sharding_setup sharding;
    sharding.label = "gpu2_any_priority";
    sharding.gpu_count = 2;
    sharding.placement = Placement_kind::any_free;
    sharding.policy = Policy_kind::priority;
    fleet::Reliability_setup reliability;
    reliability.label = "gpu2_any_healthy";
    reliability.gpu_count = 2;
    reliability.placement = Placement_kind::any_free;
    reliability.policy = Policy_kind::priority;
    const Cluster_result a =
        fleet::run_sharding_cell(testbed, 4, /*heterogeneous=*/true, sharding, 23);
    const Cluster_result b =
        fleet::run_reliability_cell(testbed, 4, /*heterogeneous=*/true, reliability, 23);
    ASSERT_EQ(a.devices.size(), b.devices.size());
    for (std::size_t i = 0; i < a.devices.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.devices[i].map, b.devices[i].map) << "device " << i;
        EXPECT_DOUBLE_EQ(a.devices[i].up_kbps, b.devices[i].up_kbps);
        EXPECT_DOUBLE_EQ(a.devices[i].cloud_gpu_seconds, b.devices[i].cloud_gpu_seconds);
    }
    EXPECT_DOUBLE_EQ(a.gpu_busy_seconds, b.gpu_busy_seconds);
    EXPECT_DOUBLE_EQ(a.mean_label_latency, b.mean_label_latency);
    EXPECT_DOUBLE_EQ(a.p95_label_latency, b.p95_label_latency);
    EXPECT_EQ(a.cloud_jobs, b.cloud_jobs);
    EXPECT_EQ(b.failures, 0u);
    EXPECT_EQ(b.straggler_requeues, 0u);
}

// ---------------------------------------------------------------------------
// Strong-type refactor bit-identity: the billing sums and the streaming
// p95 estimator must produce exactly the doubles the raw-double pipeline
// would — the unit wrappers add algebra, never arithmetic.
// ---------------------------------------------------------------------------

TEST(Reliability, TypedLatencyPipelineMatchesRawDoubleQuantileBitForBit) {
    // A contended mixed workload with preemption and coalescing, so the
    // latency stream is irregular. Mirror every completed label latency
    // into a raw-double Streaming_quantile in the same order the scheduler
    // sees them; the typed p95 accessor must agree to the last bit.
    Cloud_config config;
    config.preempt_label_wait = Sim_duration{1.5};
    config.max_batch = 2;
    config.batch_efficiency = 0.7;
    Streaming_quantile mirror{0.95};
    double mirror_sum = 0.0; // raw-double reference accumulation
    std::size_t labels = 0;
    Event_queue queue2;
    Cloud_runtime cloud2{queue2, config};
    for (int i = 0; i < 9; ++i) {
        queue2.schedule(Sim_time{0.7 * i}, [&queue2, &cloud2, &mirror, &mirror_sum,
                                            &labels, i] {
            const Sim_time submitted = queue2.now();
            cloud2.submit(static_cast<std::size_t>(i % 3), Sim_duration{0.9},
                          [&queue2, &mirror, &mirror_sum, &labels, submitted] {
                              const double raw =
                                  (queue2.now() - submitted).value(); // raw mirror feed
                              mirror.add(raw);
                              mirror_sum += raw;
                              ++labels;
                          },
                          Cloud_job_kind::label);
            if (i % 2 == 0) {
                cloud2.submit(static_cast<std::size_t>(i % 3), Sim_duration{3.0}, {},
                              Cloud_job_kind::train);
            }
        });
    }
    (void)queue2.run_until(Sim_time{200.0});
    ASSERT_GT(labels, 0u);
    // Bit-identical, not approximately equal: EXPECT_EQ on the raw bits.
    EXPECT_EQ(cloud2.p95_label_latency().value(), mirror.value()); // raw bit compare
    EXPECT_EQ(cloud2.mean_label_latency().value(),                 // raw bit compare
              mirror_sum / static_cast<double>(labels));
}

TEST(Reliability, TypedBillingSumsMatchRawDoubleAccumulationBitForBit) {
    // The Gpu_seconds ledger must accumulate exactly like a plain double:
    // same additions, same order, same rounding. Drive a coalesced +
    // preempted + straggler workload and mirror the per-device ledger from
    // the typed accessors' own feed (account_direct) plus scripted jobs.
    Event_queue queue;
    Cloud_config config;
    config.gpu_profiles = {Gpu_profile{0.5, never, Sim_duration{10.0}}};
    Cloud_runtime cloud{queue, config};
    // Direct accounting: the classic non-representable residue chain.
    const double spans[] = {0.1, 0.2, 0.3, 1.0 / 3.0, 0.7};
    double raw_ledger = 0.0; // raw-double reference accumulation
    for (const double s : spans) {
        cloud.account_direct(0, Gpu_seconds{s});
        raw_ledger += s;
    }
    EXPECT_EQ(cloud.device_gpu_seconds(0).value(), raw_ledger); // raw bit compare
    // Queued service on the half-speed server stacks on the same ledger.
    cloud.submit(0, Sim_duration{0.3}, {});
    (void)queue.run_until(Sim_time{50.0});
    raw_ledger += 0.3 / 0.5; // nominal service / straggler speed, as billed
    EXPECT_EQ(cloud.device_gpu_seconds(0).value(), raw_ledger); // raw bit compare
    EXPECT_EQ(cloud.busy_seconds().value(),                     // raw bit compare
              raw_ledger);
}

} // namespace
} // namespace shog::sim
