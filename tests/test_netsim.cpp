// Unit tests for the network simulation: H.264 cost model monotonicity and
// operating points, link delays, bandwidth metering, message sizes.
#include <gtest/gtest.h>

#include "netsim/h264.hpp"
#include "netsim/link.hpp"
#include "netsim/messages.hpp"

namespace shog::netsim {
namespace {

// ----------------------------------------------------------------- H264 ----

TEST(H264, IntraScalesWithComplexity) {
    H264_model codec;
    EXPECT_LT(codec.intra_frame_bytes(512, 512, 0.3), codec.intra_frame_bytes(512, 512, 0.9));
}

TEST(H264, IntraScalesWithResolution) {
    H264_model codec;
    EXPECT_LT(codec.intra_frame_bytes(512, 512, 0.5),
              codec.intra_frame_bytes(1280, 720, 0.5));
    // ...but sub-linearly per pixel.
    const double small = codec.intra_frame_bytes(512, 512, 0.5) / Bytes{512.0 * 512.0};
    const double big = codec.intra_frame_bytes(1920, 1080, 0.5) / Bytes{1920.0 * 1080.0};
    EXPECT_LT(big, small);
}

TEST(H264, PredictedGrowsWithGap) {
    H264_model codec;
    Bytes prev;
    for (double gap : {0.033, 0.1, 0.5, 2.0, 10.0}) {
        const Bytes bytes =
            codec.predicted_frame_bytes(512, 512, 0.6, 0.3, Sim_duration{gap});
        EXPECT_GT(bytes, prev);
        prev = bytes;
    }
    // Long gaps approach (but never exceed) the intra cost.
    EXPECT_LE(prev, codec.intra_frame_bytes(512, 512, 0.6) + Bytes{1e-9});
}

TEST(H264, PredictedGrowsWithMotion) {
    H264_model codec;
    EXPECT_LT(codec.predicted_frame_bytes(512, 512, 0.6, 0.05, Sim_duration{0.5}),
              codec.predicted_frame_bytes(512, 512, 0.6, 0.8, Sim_duration{0.5}));
}

TEST(H264, StreamOperatingPoint) {
    // A 960x540 30fps surveillance stream should land in the low-Mbps range
    // the paper's Cloud-Only column reports (~3.3 Mbps).
    H264_model codec;
    const Bytes per_frame = codec.stream_frame_bytes(960, 540, 0.6, 0.25, 30.0);
    const Kbps kbps = bytes_to_kbps(per_frame * 30.0, Sim_duration{1.0});
    EXPECT_GT(kbps, Kbps{1500.0});
    EXPECT_LT(kbps, Kbps{6000.0});
}

TEST(H264, SparseSamplingCostsMorePerFrame) {
    H264_model codec;
    const Bytes stream_frame = codec.stream_frame_bytes(512, 512, 0.6, 0.25, 30.0);
    const Bytes sparse_frame =
        codec.batch_bytes(8, 512, 512, 0.6, 0.25, /*gap=*/Sim_duration{2.0}) / 8.0;
    EXPECT_GT(sparse_frame, 1.3 * stream_frame);
}

TEST(H264, BatchBytesComposition) {
    H264_model codec;
    const Bytes one = codec.batch_bytes(1, 512, 512, 0.6, 0.3, Sim_duration{1.0});
    EXPECT_EQ(one, codec.intra_frame_bytes(512, 512, 0.6));
    const Bytes five = codec.batch_bytes(5, 512, 512, 0.6, 0.3, Sim_duration{1.0});
    EXPECT_EQ(five,
              one + 4.0 * codec.predicted_frame_bytes(512, 512, 0.6, 0.3, Sim_duration{1.0}));
    EXPECT_EQ(codec.batch_bytes(0, 512, 512, 0.6, 0.3, Sim_duration{1.0}), Bytes{});
}

TEST(H264, EncodeLatencyInPaperRange) {
    // "compressing the buffered samples takes 1-3 seconds"
    H264_model codec;
    for (std::size_t frames : {4u, 8u, 16u}) {
        const Sim_duration t = codec.encode_seconds(frames, 512.0, 512.0);
        EXPECT_GE(t, Sim_duration{0.8});
        EXPECT_LE(t, Sim_duration{3.5});
    }
}

TEST(H264, ConfigValidation) {
    H264_config bad;
    bad.p_floor = 1.5;
    EXPECT_THROW((H264_model{bad}), std::invalid_argument);
}

// ----------------------------------------------------------------- Link ----

TEST(Link, TransmitDelayMatchesCapacity) {
    Link link{Link_config{8.0, 16.0, Sim_duration{}}};
    // 1 MB at 8 Mbps up = 1 s; at 16 Mbps down = 0.5 s.
    EXPECT_NEAR(link.send_up(Sim_time{}, Bytes{1e6}).value(), 1.0, 1e-9); // tolerance
    EXPECT_NEAR(link.send_down(Sim_time{}, Bytes{1e6}).value(), 0.5, 1e-9); // tolerance
}

TEST(Link, PropagationAdds) {
    Link link{Link_config{8.0, 8.0, Sim_duration{0.1}}};
    EXPECT_NEAR(link.send_up(Sim_time{}, Bytes{}).value(), 0.1, 1e-12); // tolerance
}

TEST(Link, MetersAccumulate) {
    Link link;
    (void)link.send_up(Sim_time{1.0}, Bytes{500.0});
    (void)link.send_up(Sim_time{2.0}, Bytes{700.0});
    (void)link.send_down(Sim_time{3.0}, Bytes{100.0});
    EXPECT_EQ(link.up_meter().total_bytes(), Bytes{1200.0});
    EXPECT_EQ(link.down_meter().total_bytes(), Bytes{100.0});
    EXPECT_EQ(link.up_meter().message_count(), 2u);
    link.reset_meters();
    EXPECT_EQ(link.up_meter().total_bytes(), Bytes{});
}

TEST(BandwidthMeter, AverageKbps) {
    Bandwidth_meter meter;
    meter.record(Sim_time{}, Bytes{12500.0}); // 100 kbit
    EXPECT_EQ(meter.average_kbps(Sim_duration{10.0}), Kbps{10.0});
}

TEST(BandwidthMeter, WindowedKbps) {
    Bandwidth_meter meter;
    meter.record(Sim_time{1.0}, Bytes{1250.0}); // 10 kbit at t=1
    meter.record(Sim_time{5.0}, Bytes{2500.0}); // 20 kbit at t=5
    meter.record(Sim_time{9.0}, Bytes{1250.0}); // 10 kbit at t=9
    EXPECT_EQ(meter.windowed_kbps(Sim_time{}, Sim_time{10.0}), Kbps{4.0});
    EXPECT_EQ(meter.windowed_kbps(Sim_time{4.0}, Sim_time{6.0}), Kbps{10.0});
}

TEST(BandwidthMeter, TimeOrderEnforced) {
    Bandwidth_meter meter;
    meter.record(Sim_time{5.0}, Bytes{1.0});
    EXPECT_THROW(meter.record(Sim_time{4.0}, Bytes{1.0}), std::invalid_argument);
    EXPECT_THROW(meter.record(Sim_time{6.0}, Bytes{-1.0}), std::invalid_argument);
}

// ------------------------------------------------------------- messages ----

TEST(Messages, LabelBytesScaleWithBoxes) {
    const Message_size_config cfg;
    EXPECT_GT(label_bytes(cfg, 10), label_bytes(cfg, 1));
    EXPECT_EQ(label_bytes(cfg, 0), cfg.label_header_bytes);
    // Mask R-CNN labels carry instance masks: a 6-box frame costs ~2 KB.
    EXPECT_GT(label_bytes(cfg, 6), Bytes{1000.0});
    EXPECT_LT(label_bytes(cfg, 6), Bytes{5000.0});
}

} // namespace
} // namespace shog::netsim
