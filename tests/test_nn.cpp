// Unit tests for the NN substrate: layer forward oracles, gradient checks
// (parameterized across layer kinds and shapes), normalization semantics,
// sequential range execution, losses and the optimizer contract.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dense.hpp"
#include "nn/gradcheck.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace shog::nn {
namespace {

// ------------------------------------------------------------- Dense -------

TEST(Dense, ForwardHandComputed) {
    Rng rng{1};
    Dense d{2, 2, rng};
    d.weight().value = Tensor::from_rows({{1.0, 2.0}, {3.0, 4.0}});
    d.bias().value = Tensor::from_vector({0.5, -0.5});
    const Tensor x = Tensor::from_rows({{1.0, 1.0}});
    const Tensor y = d.forward(x, true);
    EXPECT_DOUBLE_EQ(y.at(0, 0), 4.5);  // 1*1 + 1*3 + 0.5
    EXPECT_DOUBLE_EQ(y.at(0, 1), 5.5);  // 1*2 + 1*4 - 0.5
}

TEST(Dense, InputWidthChecked) {
    Rng rng{1};
    Dense d{3, 2, rng};
    EXPECT_THROW((void)d.forward(Tensor{2, 4}, true), std::invalid_argument);
}

TEST(Dense, BackwardBeforeForwardThrows) {
    Rng rng{1};
    Dense d{2, 2, rng};
    EXPECT_THROW((void)d.backward(Tensor{1, 2}), std::invalid_argument);
}

TEST(Dense, ParameterCount) {
    Rng rng{1};
    Dense d{10, 7, rng};
    EXPECT_EQ(d.parameter_count(), 10u * 7u + 7u);
}

TEST(Dense, CloneIsIndependent) {
    Rng rng{2};
    Dense d{3, 3, rng};
    auto copy = d.clone();
    const Tensor x = Tensor::randn({2, 3}, rng);
    const Tensor y1 = d.forward(x, false);
    const Tensor y2 = copy->forward(x, false);
    EXPECT_LT(max_abs_diff(y1, y2), 1e-14);
    // Mutating the original must not affect the clone.
    d.weight().value *= 2.0;
    const Tensor y3 = copy->forward(x, false);
    EXPECT_LT(max_abs_diff(y2, y3), 1e-14);
}

TEST(Dense, FlopsScaleWithBatch) {
    Rng rng{2};
    Dense d{8, 4, rng};
    const Flops f1 = d.flops(1);
    const Flops f10 = d.flops(10);
    EXPECT_DOUBLE_EQ(f10.forward, 10.0 * f1.forward);
    EXPECT_GT(f1.backward, f1.forward); // backward costs more
}

// ------------------------------------------------------ gradient checks ----

enum class Layer_kind {
    dense,
    relu,
    leaky_relu,
    tanh_act,
    batch_norm,
    batch_renorm,
    // BRN with r_max=1, d_max=0: the r/d stop-gradient corrections vanish, so
    // the training-mode backward is exactly checkable by finite differences.
    // (With free clamps, r and d are input-dependent constants by design and
    // numeric gradients legitimately disagree; stat updates are also frozen
    // here so repeated probe evaluations see a pure function.)
    batch_renorm_tight,
};

struct Gradcheck_case {
    Layer_kind kind;
    std::size_t batch;
    std::size_t width;
    bool training;
};

std::unique_ptr<Layer> make_layer(Layer_kind kind, std::size_t width, Rng& rng) {
    switch (kind) {
    case Layer_kind::dense:
        return std::make_unique<Dense>(width, width + 2, rng);
    case Layer_kind::relu:
        return std::make_unique<Relu>();
    case Layer_kind::leaky_relu:
        return std::make_unique<Leaky_relu>(0.1);
    case Layer_kind::tanh_act:
        return std::make_unique<Tanh>();
    case Layer_kind::batch_norm:
        return std::make_unique<Batch_norm>(width);
    case Layer_kind::batch_renorm:
        return std::make_unique<Batch_renorm>(width);
    case Layer_kind::batch_renorm_tight: {
        auto brn = std::make_unique<Batch_renorm>(width, 0.05, 1e-5, 1.0, 0.0);
        brn->set_update_running_stats(false);
        return brn;
    }
    }
    return nullptr;
}

class LayerGradcheck : public ::testing::TestWithParam<Gradcheck_case> {};

TEST_P(LayerGradcheck, AnalyticMatchesNumeric) {
    const Gradcheck_case c = GetParam();
    Rng rng{static_cast<std::uint64_t>(c.batch * 1000 + c.width)};
    auto layer = make_layer(c.kind, c.width, rng);
    // Offset inputs away from ReLU kinks so central differences are clean.
    Tensor input = Tensor::randn({c.batch, c.width}, rng);
    input += 0.05;
    const Gradcheck_report report = gradcheck_layer(*layer, input, rng, c.training);
    EXPECT_LT(report.max_input_grad_error, 2e-5)
        << "input grad mismatch for layer kind " << static_cast<int>(c.kind);
    EXPECT_LT(report.max_param_grad_error, 2e-5)
        << "param grad mismatch for layer kind " << static_cast<int>(c.kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllLayers, LayerGradcheck,
    ::testing::Values(Gradcheck_case{Layer_kind::dense, 4, 3, true},
                      Gradcheck_case{Layer_kind::dense, 1, 6, true},
                      Gradcheck_case{Layer_kind::relu, 5, 4, true},
                      Gradcheck_case{Layer_kind::leaky_relu, 3, 5, true},
                      Gradcheck_case{Layer_kind::tanh_act, 4, 4, true},
                      Gradcheck_case{Layer_kind::batch_norm, 6, 3, true},
                      Gradcheck_case{Layer_kind::batch_norm, 4, 5, false},
                      Gradcheck_case{Layer_kind::batch_renorm_tight, 6, 3, true},
                      Gradcheck_case{Layer_kind::batch_renorm, 4, 5, false}));

// -------------------------------------------------------- normalization ----

TEST(BatchNorm, NormalizesTrainBatch) {
    Batch_norm bn{2};
    Rng rng{9};
    Tensor x = Tensor::randn({64, 2}, rng);
    x *= 3.0;
    x += 5.0;
    const Tensor y = bn.forward(x, true);
    const Tensor mean = y.column_mean();
    const Tensor var = y.column_variance(mean);
    EXPECT_NEAR(mean.at(0), 0.0, 1e-9);
    EXPECT_NEAR(var.at(0), 1.0, 1e-3);
}

TEST(BatchNorm, RunningStatsConverge) {
    Batch_norm bn{1, /*momentum=*/0.2};
    Rng rng{10};
    for (int i = 0; i < 200; ++i) {
        Tensor x = Tensor::randn({128, 1}, rng);
        x *= 2.0;
        x += 7.0;
        (void)bn.forward(x, true);
    }
    EXPECT_NEAR(bn.running_mean().at(0), 7.0, 0.3);
    // Batch variance is the biased (population) estimator: E = 4 * 127/128.
    EXPECT_NEAR(bn.running_var().at(0), 4.0 * 127.0 / 128.0, 0.6);
}

TEST(BatchNorm, FrozenStatsDoNotUpdate) {
    Batch_norm bn{2};
    bn.set_update_running_stats(false);
    const Tensor before = bn.running_mean();
    Rng rng{11};
    Tensor x = Tensor::randn({16, 2}, rng);
    x += 10.0;
    (void)bn.forward(x, true);
    EXPECT_EQ(max_abs_diff(bn.running_mean(), before), 0.0);
}

TEST(BatchNorm, EvalUsesRunningStats) {
    Batch_norm bn{1};
    Rng rng{12};
    for (int i = 0; i < 40; ++i) {
        Tensor x = Tensor::randn({32, 1}, rng);
        x += 4.0;
        (void)bn.forward(x, true);
    }
    // In eval, an input equal to the running mean maps near beta = 0.
    Tensor probe{1, 1};
    probe.at(0, 0) = bn.running_mean().at(0);
    const Tensor y = bn.forward(probe, false);
    EXPECT_NEAR(y.at(0, 0), 0.0, 1e-6);
}

TEST(BatchRenorm, ClampsRAndD) {
    Batch_renorm brn{1, 0.05, 1e-5, /*r_max=*/1.0, /*d_max=*/0.0};
    Rng rng{13};
    // With r_max=1 and d_max=0, train output must equal normalization by
    // *running* statistics direction: r=1, d=0 regardless of batch stats.
    Tensor x = Tensor::randn({32, 1}, rng);
    x *= 5.0;
    x += 3.0;
    const Tensor y = brn.forward(x, true);
    // y = gamma * ((x - mu_B)/sigma_B * 1 + 0) + beta -> batch-normalized.
    const Tensor mean = y.column_mean();
    EXPECT_NEAR(mean.at(0), 0.0, 1e-9);
}

TEST(BatchRenorm, TrainApproachesEvalAfterWarmup) {
    // BRN's r/d correction keeps train-mode outputs close to eval-mode
    // outputs once running stats have converged — its core selling point.
    Batch_renorm brn{1, 0.1};
    Rng rng{14};
    for (int i = 0; i < 100; ++i) {
        Tensor x = Tensor::randn({64, 1}, rng);
        x *= 2.0;
        x += 1.0;
        (void)brn.forward(x, true);
    }
    Tensor x = Tensor::randn({64, 1}, rng);
    x *= 2.0;
    x += 1.0;
    const Tensor y_train = brn.forward(x, true);
    const Tensor y_eval = brn.forward(x, false);
    EXPECT_LT(max_abs_diff(y_train, y_eval), 0.15);
}

TEST(BatchRenorm, MomentumSetter) {
    Batch_renorm brn{2};
    brn.set_momentum(0.5);
    EXPECT_DOUBLE_EQ(brn.momentum(), 0.5);
    EXPECT_THROW(brn.set_momentum(0.0), std::invalid_argument);
    EXPECT_THROW(brn.set_momentum(1.5), std::invalid_argument);
}

TEST(BatchRenorm, SingleRowUsesRunningStats) {
    Batch_renorm brn{2};
    Tensor x{1, 2};
    x.at(0, 0) = 1.0;
    const Tensor y = brn.forward(x, true); // batch of 1: eval path
    EXPECT_EQ(y.rows(), 1u);
}

// ------------------------------------------------------------ Sequential ---

Sequential make_mlp(Rng& rng) {
    Sequential seq;
    seq.add("fc1", std::make_unique<Dense>(4, 8, rng));
    seq.add("fc1", std::make_unique<Relu>());
    seq.add("fc2", std::make_unique<Dense>(8, 6, rng));
    seq.add("fc2", std::make_unique<Relu>());
    seq.add("head", std::make_unique<Dense>(6, 3, rng));
    return seq;
}

TEST(Sequential, RangeComposition) {
    Rng rng{20};
    Sequential seq = make_mlp(rng);
    const Tensor x = Tensor::randn({5, 4}, rng);
    const Tensor full = seq.forward(x, false);
    const Tensor mid = seq.forward_range(0, 2, x, false);
    const Tensor rest = seq.forward_range(2, seq.layer_count(), mid, false);
    EXPECT_LT(max_abs_diff(full, rest), 1e-12);
}

TEST(Sequential, IndexOfStage) {
    Rng rng{21};
    Sequential seq = make_mlp(rng);
    EXPECT_EQ(seq.index_of("fc1"), 0u);
    EXPECT_EQ(seq.index_of("fc2"), 2u);
    EXPECT_EQ(seq.index_of("head"), 4u);
    EXPECT_TRUE(seq.has_stage("head"));
    EXPECT_FALSE(seq.has_stage("nope"));
    EXPECT_THROW((void)seq.index_of("nope"), std::invalid_argument);
}

TEST(Sequential, BackwardRangeProducesEntryGrad) {
    Rng rng{22};
    Sequential seq = make_mlp(rng);
    const Tensor x = Tensor::randn({3, 4}, rng);
    const Tensor y = seq.forward(x, true);
    Tensor grad{y.rows(), y.cols()};
    grad.fill(1.0);
    const Tensor gx = seq.backward(grad);
    EXPECT_EQ(gx.rows(), 3u);
    EXPECT_EQ(gx.cols(), 4u);
}

TEST(Sequential, LrScaleRangeFreezes) {
    Rng rng{23};
    Sequential seq = make_mlp(rng);
    seq.set_lr_scale_range(0, 2, 0.0);
    for (Parameter* p : seq.parameters_range(0, 2)) {
        EXPECT_EQ(p->lr_scale, 0.0);
    }
    for (Parameter* p : seq.parameters_range(2, seq.layer_count())) {
        EXPECT_EQ(p->lr_scale, 1.0);
    }
}

TEST(Sequential, StateVectorRoundTrip) {
    Rng rng{24};
    Sequential seq = make_mlp(rng);
    const std::vector<double> state = seq.state_vector();
    Rng rng2{999};
    Sequential other = make_mlp(rng2); // different random weights
    other.load_state_vector(state);
    const Tensor x = Tensor::randn({4, 4}, rng);
    EXPECT_LT(max_abs_diff(seq.forward(x, false), other.forward(x, false)), 1e-14);
}

TEST(Sequential, StateVectorSizeChecked) {
    Rng rng{25};
    Sequential seq = make_mlp(rng);
    std::vector<double> bad(seq.state_vector().size() + 1, 0.0);
    EXPECT_THROW(seq.load_state_vector(bad), std::invalid_argument);
}

TEST(Sequential, CloneSameOutputs) {
    Rng rng{26};
    Sequential seq = make_mlp(rng);
    auto copy = seq.clone();
    const Tensor x = Tensor::randn({2, 4}, rng);
    EXPECT_LT(max_abs_diff(seq.forward(x, false), copy->forward(x, false)), 1e-14);
}

TEST(Sequential, StateVectorIncludesNormStats) {
    Rng rng{27};
    Sequential seq;
    seq.add("fc", std::make_unique<Dense>(2, 2, rng));
    seq.add("bn", std::make_unique<Batch_renorm>(2));
    const std::size_t n = seq.state_vector().size();
    // dense (2*2+2) + gamma(2) + beta(2) + running mean(2) + running var(2)
    EXPECT_EQ(n, 6u + 2u + 2u + 2u + 2u);
}

// ----------------------------------------------------------------- loss ----

TEST(Softmax, RowsSumToOne) {
    Rng rng{30};
    const Tensor logits = Tensor::randn({6, 5}, rng);
    const Tensor p = softmax(logits);
    for (std::size_t r = 0; r < p.rows(); ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < p.cols(); ++c) {
            sum += p.at(r, c);
            EXPECT_GT(p.at(r, c), 0.0);
        }
        EXPECT_NEAR(sum, 1.0, 1e-12);
    }
}

TEST(Softmax, LargeLogitsStable) {
    Tensor logits = Tensor::from_rows({{1000.0, 1001.0}});
    const Tensor p = softmax(logits);
    EXPECT_NEAR(p.at(0, 0) + p.at(0, 1), 1.0, 1e-12);
    EXPECT_GT(p.at(0, 1), p.at(0, 0));
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
    Tensor logits{2, 4}; // all zeros -> uniform
    const Loss_result r = softmax_cross_entropy(logits, {0, 3});
    EXPECT_NEAR(r.value, std::log(4.0), 1e-12);
}

TEST(CrossEntropy, PerfectPredictionNearZero) {
    Tensor logits = Tensor::from_rows({{100.0, 0.0}});
    const Loss_result r = softmax_cross_entropy(logits, {0});
    EXPECT_NEAR(r.value, 0.0, 1e-9);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
    Rng rng{31};
    Tensor logits = Tensor::randn({3, 4}, rng);
    const std::vector<std::size_t> labels{1, 0, 3};
    const Loss_result r = softmax_cross_entropy(logits, labels);
    const double h = 1e-6;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        Tensor plus = logits;
        plus.at(i) += h;
        Tensor minus = logits;
        minus.at(i) -= h;
        const double numeric = (softmax_cross_entropy(plus, labels).value -
                                softmax_cross_entropy(minus, labels).value) /
                               (2.0 * h);
        EXPECT_NEAR(numeric, r.grad.at(i), 1e-6);
    }
}

TEST(CrossEntropy, RowWeightsScale) {
    Tensor logits = Tensor::from_rows({{1.0, -1.0}, {1.0, -1.0}});
    const Loss_result equal = softmax_cross_entropy(logits, {0, 1});
    const Loss_result weighted = softmax_cross_entropy(logits, {0, 1}, {1.0, 0.0});
    // Down-weighting the badly-predicted row must reduce the loss.
    EXPECT_LT(weighted.value, equal.value);
    EXPECT_EQ(weighted.grad.at(1, 0), 0.0); // zero-weight row has no gradient
}

TEST(CrossEntropy, LabelOutOfRangeThrows) {
    Tensor logits{1, 3};
    EXPECT_THROW((void)softmax_cross_entropy(logits, {3}), std::invalid_argument);
}

TEST(SmoothL1, QuadraticInsideLinearOutside) {
    Tensor pred = Tensor::from_rows({{0.5, 3.0}});
    Tensor target{1, 2};
    const Loss_result r = smooth_l1(pred, target, {1.0});
    // per-element: 0.5*0.25 = 0.125 and 3-0.5 = 2.5 -> mean over 2 elements
    EXPECT_NEAR(r.value, (0.125 + 2.5) / 2.0, 1e-12);
    EXPECT_NEAR(r.grad.at(0, 0), 0.5 / 2.0, 1e-12); // quadratic region: diff/denom
    EXPECT_NEAR(r.grad.at(0, 1), 1.0 / 2.0, 1e-12); // linear region: sign/denom
}

TEST(SmoothL1, MaskedRowsContributeNothing) {
    Tensor pred = Tensor::from_rows({{10.0}, {0.2}});
    Tensor target{2, 1};
    const Loss_result r = smooth_l1(pred, target, {0.0, 1.0});
    EXPECT_NEAR(r.value, 0.5 * 0.04, 1e-12);
    EXPECT_EQ(r.grad.at(0, 0), 0.0);
}

TEST(SmoothL1, AllMaskedIsZero) {
    Tensor pred{2, 2};
    Tensor target{2, 2};
    const Loss_result r = smooth_l1(pred, target, {0.0, 0.0});
    EXPECT_EQ(r.value, 0.0);
}

// ------------------------------------------------------------------ SGD ----

TEST(Sgd, SkipsFrozenParameters) {
    Rng rng{40};
    Dense d{2, 2, rng};
    const Tensor w_before = d.weight().value;
    d.weight().lr_scale = 0.0;
    d.bias().lr_scale = 1.0;
    const Tensor x = Tensor::randn({4, 2}, rng);
    const Tensor y = d.forward(x, true);
    Tensor g{y.rows(), y.cols()};
    g.fill(1.0);
    (void)d.backward(g);
    Sgd opt{Sgd_config{0.1, 0.0, 0.0}};
    opt.step(d.parameters());
    EXPECT_EQ(max_abs_diff(d.weight().value, w_before), 0.0);
    EXPECT_GT(d.bias().value.at(0) * d.bias().value.at(0), 0.0); // bias moved
}

TEST(Sgd, GradientDescentStep) {
    Rng rng{41};
    Dense d{1, 1, rng};
    d.weight().value.at(0) = 2.0;
    d.bias().value.at(0) = 0.0;
    d.bias().lr_scale = 0.0;
    // loss = output with input 1 -> dL/dw = 1
    Tensor x = Tensor::from_rows({{1.0}});
    (void)d.forward(x, true);
    Tensor g{1, 1};
    g.at(0, 0) = 1.0;
    (void)d.backward(g);
    Sgd opt{Sgd_config{0.5, 0.0, 0.0}};
    opt.step(d.parameters());
    EXPECT_NEAR(d.weight().value.at(0), 1.5, 1e-12);
}

TEST(Sgd, MomentumAccumulates) {
    Rng rng{42};
    Dense d{1, 1, rng};
    d.weight().value.at(0) = 0.0;
    d.bias().lr_scale = 0.0;
    Sgd opt{Sgd_config{0.1, 0.9, 0.0}};
    Tensor x = Tensor::from_rows({{1.0}});
    double prev_step = 0.0;
    double prev_w = 0.0;
    for (int i = 0; i < 3; ++i) {
        d.zero_grad();
        (void)d.forward(x, true);
        Tensor g{1, 1};
        g.at(0, 0) = 1.0;
        (void)d.backward(g);
        opt.step(d.parameters());
        const double step = prev_w - d.weight().value.at(0);
        EXPECT_GT(step, prev_step); // velocity builds up
        prev_step = step;
        prev_w = d.weight().value.at(0);
    }
}

TEST(Sgd, WeightDecayShrinksWeights) {
    Rng rng{43};
    Dense d{1, 1, rng};
    d.weight().value.at(0) = 1.0;
    d.bias().lr_scale = 0.0;
    Sgd opt{Sgd_config{0.1, 0.0, 0.5}};
    d.zero_grad(); // zero gradient; only decay acts
    opt.step(d.parameters());
    EXPECT_NEAR(d.weight().value.at(0), 1.0 - 0.1 * 0.5, 1e-12);
}

TEST(Sgd, ConfigValidation) {
    EXPECT_THROW((Sgd{Sgd_config{0.0, 0.9, 0.0}}), std::invalid_argument);
    EXPECT_THROW((Sgd{Sgd_config{0.1, 1.0, 0.0}}), std::invalid_argument);
    EXPECT_THROW((Sgd{Sgd_config{0.1, 0.9, -1.0}}), std::invalid_argument);
}

} // namespace
} // namespace shog::nn
