// sim::run_sweep: parallel sweep replication must be invisible in the
// output — cells land in index order whatever the worker count, per-cell
// RNG substreams are stable, and a real fleet sweep merges to the same
// bytes on 1 worker and 8.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "determinism_harness.hpp"
#include "fleet/testbed.hpp"
#include "sim/sweep.hpp"

namespace shog {
namespace {

TEST(SweepCellSeed, CellZeroKeepsBaseSeed) {
    EXPECT_EQ(sim::sweep_cell_seed(19, 0), 19u);
    EXPECT_EQ(sim::sweep_cell_seed(0xdeadbeef, 0), 0xdeadbeefu);
}

TEST(SweepCellSeed, SubstreamsAreDeterministicAndDistinct) {
    std::set<std::uint64_t> seeds;
    for (std::size_t cell = 0; cell < 1000; ++cell) {
        const std::uint64_t s = sim::sweep_cell_seed(19, cell);
        EXPECT_EQ(s, sim::sweep_cell_seed(19, cell));
        seeds.insert(s);
    }
    EXPECT_EQ(seeds.size(), 1000u);
    EXPECT_NE(sim::sweep_cell_seed(19, 1), sim::sweep_cell_seed(20, 1));
}

TEST(RunSweep, ResultsLandInCellOrderForAnyWorkerCount) {
    const auto cell = [](std::size_t i) {
        return "cell " + std::to_string(i) + " seed " +
               std::to_string(sim::sweep_cell_seed(7, i)) + "\n";
    };
    sim::Sweep_options sequential;
    sequential.workers = 1;
    const std::vector<std::string> reference = sim::run_sweep(24, cell, sequential);
    ASSERT_EQ(reference.size(), 24u);
    for (std::size_t workers : {std::size_t{2}, std::size_t{8}, std::size_t{0}}) {
        sim::Sweep_options options;
        options.workers = workers;
        EXPECT_EQ(sim::run_sweep(24, cell, options), reference)
            << "workers = " << workers;
    }
}

TEST(RunSweep, EveryCellRunsExactlyOnce) {
    std::atomic<int> runs{0};
    sim::Sweep_options options;
    options.workers = 8;
    const auto results = sim::run_sweep(
        100,
        [&runs](std::size_t i) {
            runs.fetch_add(1);
            return std::to_string(i);
        },
        options);
    EXPECT_EQ(runs.load(), 100);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i], std::to_string(i));
    }
}

TEST(RunSweep, ProgressCallbackCountsEveryCellAndNeverTouchesResults) {
    // on_cell_done is a side channel: it must see every completion exactly
    // once with a monotonically increasing done count, and wiring it up must
    // not change the merged output.
    const auto cell = [](std::size_t i) { return std::to_string(i) + "\n"; };
    const std::vector<std::string> reference = sim::run_sweep(40, cell);
    std::vector<bool> seen(40, false);
    std::size_t last_done = 0;
    sim::Sweep_options options;
    options.workers = 4;
    options.on_cell_done = [&](std::size_t done, std::size_t cell_index) {
        // Serialized under the pool mutex, so plain state is fine here.
        EXPECT_EQ(done, last_done + 1);
        last_done = done;
        ASSERT_LT(cell_index, seen.size());
        EXPECT_FALSE(seen[cell_index]) << "cell reported twice";
        seen[cell_index] = true;
    };
    EXPECT_EQ(sim::run_sweep(40, cell, options), reference);
    EXPECT_EQ(last_done, 40u);
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_TRUE(seen[i]) << "cell " << i << " never reported";
    }
}

TEST(RunSweep, EmptySweepAndMerge) {
    const auto results = sim::run_sweep(0, [](std::size_t) { return std::string{}; });
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(sim::merge_sweep_lines(results), "");
    EXPECT_EQ(sim::merge_sweep_lines({"a\n", "", "b\n"}), "a\nb\n");
}

TEST(RunSweep, CellExceptionPropagatesAfterDrain) {
    std::atomic<int> runs{0};
    sim::Sweep_options options;
    options.workers = 4;
    EXPECT_THROW((void)sim::run_sweep(
                     16,
                     [&runs](std::size_t i) -> std::string {
                         runs.fetch_add(1);
                         if (i == 5) {
                             throw std::runtime_error("cell 5 exploded");
                         }
                         return "ok";
                     },
                     options),
                 std::runtime_error);
    // The pool drains the remaining cells rather than abandoning them.
    EXPECT_EQ(runs.load(), 16);
}

TEST(RunSweep, FleetPolicySweepIsByteIdenticalAcrossWorkerCounts) {
    // The real thing, end to end: four policy cells on a small fleet, run
    // sequentially and on a pool. Every cell builds its own fleet (own
    // teacher clone — see fleet::Fleet) and the merged JSON-ish payload
    // must match byte for byte. Ported onto the differential determinism
    // harness (tests/determinism_harness.hpp).
    const fleet::Testbed testbed = fleet::make_testbed("ua_detrac", 4, 23, 30.0);
    const std::vector<fleet::Policy_setup> setups = fleet::default_policy_setups();
    const auto cell = [&](std::size_t i) {
        const sim::Cluster_result r =
            fleet::run_policy_cell(testbed, 4, /*heterogeneous=*/true, setups[i], 23);
        char line[256];
        std::snprintf(line, sizeof line,
                      "%s busy=%.17g p95=%.17g map=%.17g jobs=%zu\n", setups[i].label,
                      r.gpu_busy_seconds, r.p95_label_latency, r.fleet_map, r.cloud_jobs);
        return std::string{line};
    };
    const auto merged_with = [&](std::size_t workers) {
        sim::Sweep_options options;
        options.workers = workers;
        return sim::merge_sweep_lines(sim::run_sweep(setups.size(), cell, options));
    };
    shog::testing::expect_identical_lines([&] { return merged_with(1); },
                                          [&] { return merged_with(8); },
                                          "policy sweep workers 1 vs 8");
}

} // namespace
} // namespace shog
