// TSan-targeted stress of sim::run_sweep's worker pool (the repo's only
// cross-thread machinery until device-sharded runs land). The suite runs
// under every sanitizer flavor, but its reason to exist is
// SHOG_SANITIZE=thread: hundreds of tiny cells over worker counts
// {1, 2, hardware} maximize handoff interleavings on the atomic cursor,
// the index-addressed result slots and the mutex-guarded progress path,
// so a missing happens-before edge shows up as a TSan report rather than
// as a once-a-month corrupted sweep artifact. Cells are deliberately
// cheap — the contention is the point, not the work.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "sim/sweep.hpp"

namespace shog {
namespace {

constexpr std::size_t kCells = 256;

std::string tiny_cell(std::size_t i) {
    // Deterministic, allocation-bearing payload: the seed math plus a
    // string build, so slots see real writes of varying length.
    return "cell " + std::to_string(i) + " seed " +
           std::to_string(sim::sweep_cell_seed(0x5eed, i)) + "\n";
}

std::vector<std::size_t> worker_counts() {
    // 1 = sequential path, 2 = minimal real contention, 0 = one per
    // hardware thread (whatever this machine has).
    return {1, 2, 0};
}

TEST(SweepStress, HundredsOfTinyCellsMatchSequentialForEveryWorkerCount) {
    sim::Sweep_options sequential;
    sequential.workers = 1;
    const std::vector<std::string> reference = sim::run_sweep(kCells, tiny_cell, sequential);
    ASSERT_EQ(reference.size(), kCells);
    for (std::size_t workers : worker_counts()) {
        sim::Sweep_options options;
        options.workers = workers;
        EXPECT_EQ(sim::run_sweep(kCells, tiny_cell, options), reference)
            << "workers = " << workers;
    }
}

TEST(SweepStress, ProgressCallbackIsSerializedAndCompletes) {
    for (std::size_t workers : worker_counts()) {
        sim::Sweep_options options;
        options.workers = workers;
        // Plain (non-atomic) state mutated from the callback: the contract
        // says calls are serialized under the pool's mutex, so under TSan
        // any two unserialized calls are a hard failure here.
        std::size_t calls = 0;
        std::size_t last_done = 0;
        std::vector<std::size_t> seen(kCells, 0);
        bool monotone = true;
        options.on_cell_done = [&](std::size_t done, std::size_t cell_index) {
            ++calls;
            monotone = monotone && (done == last_done + 1);
            last_done = done;
            ASSERT_LT(cell_index, kCells);
            ++seen[cell_index];
        };
        const auto results = sim::run_sweep(kCells, tiny_cell, options);
        EXPECT_EQ(results.size(), kCells);
        EXPECT_EQ(calls, kCells) << "workers = " << workers;
        EXPECT_EQ(last_done, kCells);
        EXPECT_TRUE(monotone) << "done counts must be strictly increasing";
        for (std::size_t i = 0; i < kCells; ++i) {
            EXPECT_EQ(seen[i], 1u) << "cell " << i;
        }
    }
}

TEST(SweepStress, ThrowingCellsDrainThePoolAndRethrowLowestIndex) {
    for (std::size_t workers : worker_counts()) {
        sim::Sweep_options options;
        options.workers = workers;
        std::atomic<std::size_t> executed{0};
        const auto cell = [&executed](std::size_t i) -> std::string {
            executed.fetch_add(1, std::memory_order_relaxed);
            if (i % 17 == 3) { // indices 3, 20, 37, ... throw
                throw std::runtime_error("cell " + std::to_string(i) + " failed");
            }
            return tiny_cell(i);
        };
        try {
            (void)sim::run_sweep(kCells, cell, options);
            FAIL() << "expected the lowest-index exception to propagate";
        } catch (const std::runtime_error& err) {
            EXPECT_STREQ(err.what(), "cell 3 failed") << "workers = " << workers;
        }
        // Drain contract: a throwing cell must not abandon the remaining
        // cells (callers rely on at-most-once *and* exactly-once-on-drain
        // when retrying individual cells).
        EXPECT_EQ(executed.load(), kCells) << "workers = " << workers;
    }
}

TEST(SweepStress, RepeatedPoolConstructionIsStable) {
    // Thread create/join churn: 50 pools back to back, each fanning 32
    // cells over 4 workers. Leaked threads, double joins or stale slot
    // reuse across constructions would trip TSan/ASan here.
    sim::Sweep_options sequential;
    sequential.workers = 1;
    const auto reference = sim::run_sweep(32, tiny_cell, sequential);
    for (int round = 0; round < 50; ++round) {
        sim::Sweep_options options;
        options.workers = 4;
        EXPECT_EQ(sim::run_sweep(32, tiny_cell, options), reference) << "round " << round;
    }
}

TEST(SweepStress, MutexWrapperSerializesCellSideState) {
    // Exercise shog::Mutex / Mutex_lock (common/thread_annotations.hpp)
    // from inside cells the way future device shards will use it: a
    // non-atomic accumulator that is only ever touched under the lock.
    struct Shared_sum {
        Mutex mutex;
        std::uint64_t value SHOG_GUARDED_BY(mutex) = 0;
    } sum;
    const auto cell = [&](std::size_t i) {
        const std::uint64_t term = sim::sweep_cell_seed(7, i) % 1000;
        {
            Mutex_lock lock{sum.mutex};
            sum.value += term;
        }
        return std::string{};
    };
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < kCells; ++i) {
        expected += sim::sweep_cell_seed(7, i) % 1000;
    }
    sim::Sweep_options options;
    options.workers = 0; // one per hardware thread
    (void)sim::run_sweep(kCells, cell, options);
    Mutex_lock lock{sum.mutex};
    EXPECT_EQ(sum.value, expected);
}

} // namespace
} // namespace shog
